//! Dense fixed-width bitsets — the lattice elements of every dataflow
//! analysis in this crate. Sized at construction; all binary operations
//! require equal widths.

/// A fixed-width set of small integers, packed 64 per word.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BitSet {
    bits: usize,
    words: Vec<u64>,
}

impl BitSet {
    /// The empty set over a domain of `bits` elements.
    pub fn new(bits: usize) -> BitSet {
        BitSet {
            bits,
            words: vec![0; bits.div_ceil(64)],
        }
    }

    /// The full set over a domain of `bits` elements.
    pub fn full(bits: usize) -> BitSet {
        let mut s = BitSet::new(bits);
        for i in 0..bits {
            s.insert(i);
        }
        s
    }

    /// Domain width in bits.
    pub fn len(&self) -> usize {
        self.bits
    }

    /// Whether no element is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Insert element `i`; returns true if it was newly inserted.
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.bits);
        let (w, b) = (i / 64, 1u64 << (i % 64));
        let newly = self.words[w] & b == 0;
        self.words[w] |= b;
        newly
    }

    /// Remove element `i`.
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.bits);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Whether element `i` is set.
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.bits);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// `self |= other`; returns true if `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.bits, other.bits);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// `self &= other`; returns true if `self` changed.
    pub fn intersect_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.bits, other.bits);
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a & b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// `self -= other`.
    pub fn subtract(&mut self, other: &BitSet) {
        debug_assert_eq!(self.bits, other.bits);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Whether every element of `self` is in `other`.
    pub fn is_subset_of(&self, other: &BitSet) -> bool {
        debug_assert_eq!(self.bits, other.bits);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Number of elements set.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Remove every element.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Iterate set elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, w)| {
            let mut w = *w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(129));
        assert!(s.contains(0) && s.contains(129) && !s.contains(64));
        s.remove(0);
        assert!(!s.contains(0));
        assert_eq!(s.count(), 1);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![129]);
    }

    #[test]
    fn set_algebra() {
        let mut a = BitSet::new(70);
        let mut b = BitSet::new(70);
        a.insert(1);
        a.insert(65);
        b.insert(65);
        b.insert(2);
        let mut u = a.clone();
        assert!(u.union_with(&b));
        assert!(!u.union_with(&b)); // already merged: unchanged
        assert_eq!(u.count(), 3);
        let mut i = a.clone();
        assert!(i.intersect_with(&b));
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![65]);
        assert!(i.is_subset_of(&a) && i.is_subset_of(&b));
        assert!(!a.is_subset_of(&b));
        a.subtract(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1]);
        let f = BitSet::full(70);
        assert_eq!(f.count(), 70);
        assert!(u.is_subset_of(&f));
        a.clear();
        assert!(a.is_empty());
    }
}
