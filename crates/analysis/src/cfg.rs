//! Control-flow graph construction over a linear [`Program`]: basic
//! blocks, predecessor/successor edges, reachability, dominators,
//! back-edge detection and natural loops.
//!
//! PCs are instruction indices (the ISA's program counter is an index,
//! not a byte address). Indirect jumps (`Jr`/`Jalr`) have no static
//! target; the builder conservatively gives such blocks an edge to every
//! block, which keeps every may-analysis sound at the cost of precision
//! (no shipped kernel uses them — the lint reports their presence).

use crate::bitset::BitSet;
use mtvp_isa::Program;

/// A maximal straight-line run of instructions `[start, end)`.
#[derive(Clone, Debug)]
pub struct BasicBlock {
    /// First instruction (inclusive).
    pub start: u32,
    /// One past the last instruction (exclusive).
    pub end: u32,
    /// Successor block ids.
    pub succs: Vec<u32>,
    /// Predecessor block ids.
    pub preds: Vec<u32>,
}

impl BasicBlock {
    /// PCs of this block, in order.
    pub fn pcs(&self) -> std::ops::Range<u32> {
        self.start..self.end
    }
}

/// One natural loop, identified by a back edge `latch -> header`.
#[derive(Clone, Debug)]
pub struct NaturalLoop {
    /// Loop header block (dominates every block in the body).
    pub header: u32,
    /// Source of the back edge.
    pub latch: u32,
    /// Body block ids (sorted; includes header and latch).
    pub body: Vec<u32>,
    /// Edges `(from, to)` leaving the loop.
    pub exit_edges: Vec<(u32, u32)>,
}

impl NaturalLoop {
    /// Whether block `b` is in the loop body.
    pub fn contains(&self, b: u32) -> bool {
        self.body.binary_search(&b).is_ok()
    }
}

/// The control-flow graph of one program.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Basic blocks in program order; block 0 is the entry.
    pub blocks: Vec<BasicBlock>,
    /// Block id of each pc.
    pub block_of: Vec<u32>,
    /// Whether each block is reachable from the entry.
    pub reachable: Vec<bool>,
    /// Dominator sets over reachable blocks (`dom[b]` contains `b`);
    /// unreachable blocks keep the full set (vacuously dominated).
    pub dom: Vec<BitSet>,
    /// Back edges `(latch, header)` among reachable blocks.
    pub back_edges: Vec<(u32, u32)>,
    /// Natural loops, one per back edge.
    pub loops: Vec<NaturalLoop>,
    /// Whether any instruction is an indirect jump (`Jr`/`Jalr`).
    pub has_indirect: bool,
    /// PCs whose static branch/jump target lies outside the text segment.
    pub bad_targets: Vec<u32>,
}

impl Cfg {
    /// Build the CFG of `program`. Programs are non-empty in practice
    /// (the builder always emits at least a halt); an empty program
    /// yields an empty graph.
    pub fn build(program: &Program) -> Cfg {
        let n = program.code.len();
        if n == 0 {
            return Cfg {
                blocks: Vec::new(),
                block_of: Vec::new(),
                reachable: Vec::new(),
                dom: Vec::new(),
                back_edges: Vec::new(),
                loops: Vec::new(),
                has_indirect: false,
                bad_targets: Vec::new(),
            };
        }

        // Leaders: entry, every static target, and the instruction after
        // every control transfer or halt.
        let mut leader = vec![false; n];
        leader[0] = true;
        let mut has_indirect = false;
        let mut bad_targets = Vec::new();
        for (pc, inst) in program.code.iter().enumerate() {
            let s = inst.successors(pc as u64, n);
            if s.indirect {
                has_indirect = true;
            }
            if let Some(t) = s.target {
                if t >= 0 && (t as usize) < n {
                    leader[t as usize] = true;
                } else {
                    bad_targets.push(pc as u32);
                }
            }
            if (inst.is_control() || inst.is_halt()) && pc + 1 < n {
                leader[pc + 1] = true;
            }
        }

        let mut blocks = Vec::new();
        let mut block_of = vec![0u32; n];
        for pc in 0..n {
            if leader[pc] {
                blocks.push(BasicBlock {
                    start: pc as u32,
                    end: pc as u32 + 1,
                    succs: Vec::new(),
                    preds: Vec::new(),
                });
            } else {
                blocks.last_mut().expect("pc 0 is a leader").end = pc as u32 + 1;
            }
            block_of[pc] = blocks.len() as u32 - 1;
        }

        // Edges from each block's terminator.
        let nb = blocks.len();
        for b in 0..nb {
            let last = blocks[b].end - 1;
            let s = program.code[last as usize].successors(u64::from(last), n);
            let mut succs = Vec::new();
            if s.indirect {
                // Conservative: an indirect jump may reach any block.
                succs.extend(0..nb as u32);
            } else {
                if let Some(t) = s.target {
                    if t >= 0 && (t as usize) < n {
                        succs.push(block_of[t as usize]);
                    }
                }
                if let Some(f) = s.fall_through {
                    let fb = block_of[f as usize];
                    if !succs.contains(&fb) {
                        succs.push(fb);
                    }
                }
            }
            blocks[b].succs = succs.clone();
            for t in succs {
                blocks[t as usize].preds.push(b as u32);
            }
        }

        // Reachability from the entry block.
        let mut reachable = vec![false; nb];
        let mut stack = vec![0u32];
        reachable[0] = true;
        while let Some(b) = stack.pop() {
            for &t in &blocks[b as usize].succs {
                if !reachable[t as usize] {
                    reachable[t as usize] = true;
                    stack.push(t);
                }
            }
        }

        // Iterative dominators over reachable blocks.
        let mut dom: Vec<BitSet> = (0..nb).map(|_| BitSet::full(nb)).collect();
        let mut entry_dom = BitSet::new(nb);
        entry_dom.insert(0);
        dom[0] = entry_dom;
        let mut changed = true;
        while changed {
            changed = false;
            for b in 1..nb {
                if !reachable[b] {
                    continue;
                }
                let mut next = BitSet::full(nb);
                let mut any_pred = false;
                for &p in &blocks[b].preds {
                    if reachable[p as usize] {
                        next.intersect_with(&dom[p as usize]);
                        any_pred = true;
                    }
                }
                if !any_pred {
                    // Reachable with no reachable preds only happens for
                    // the entry, handled above; keep the full set.
                    continue;
                }
                next.insert(b);
                if next != dom[b] {
                    dom[b] = next;
                    changed = true;
                }
            }
        }

        // Back edges and natural loops.
        let mut back_edges = Vec::new();
        for b in 0..nb {
            if !reachable[b] {
                continue;
            }
            for &t in &blocks[b].succs {
                if dom[b].contains(t as usize) {
                    back_edges.push((b as u32, t));
                }
            }
        }
        let mut loops = Vec::new();
        for &(latch, header) in &back_edges {
            let mut body = BitSet::new(nb);
            body.insert(header as usize);
            let mut work = Vec::new();
            if body.insert(latch as usize) {
                work.push(latch);
            }
            while let Some(b) = work.pop() {
                for &p in &blocks[b as usize].preds {
                    if reachable[p as usize] && body.insert(p as usize) {
                        work.push(p);
                    }
                }
            }
            let body_vec: Vec<u32> = body.iter().map(|b| b as u32).collect();
            let mut exit_edges = Vec::new();
            for &b in &body_vec {
                for &t in &blocks[b as usize].succs {
                    if !body.contains(t as usize) {
                        exit_edges.push((b, t));
                    }
                }
            }
            loops.push(NaturalLoop {
                header,
                latch,
                body: body_vec,
                exit_edges,
            });
        }

        Cfg {
            blocks,
            block_of,
            reachable,
            dom,
            back_edges,
            loops,
            has_indirect,
            bad_targets,
        }
    }

    /// Whether block `a` dominates block `b` (both must be reachable for
    /// the answer to be meaningful).
    pub fn dominates(&self, a: u32, b: u32) -> bool {
        self.dom[b as usize].contains(a as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvp_isa::{ProgramBuilder, Reg};

    /// if (r1 == r2) { r3 += 1 } else { r3 += 2 }; halt
    fn diamond() -> Program {
        let mut b = ProgramBuilder::new();
        let (then_l, join) = (b.label(), b.label());
        b.beq(Reg(1), Reg(2), then_l);
        b.addi(Reg(3), Reg(3), 2);
        b.j(join);
        b.bind(then_l);
        b.addi(Reg(3), Reg(3), 1);
        b.bind(join);
        b.halt();
        b.build()
    }

    #[test]
    fn diamond_blocks_and_dominators() {
        let p = diamond();
        let cfg = Cfg::build(&p);
        // entry / else / then / join.
        assert_eq!(cfg.blocks.len(), 4);
        assert!(cfg.reachable.iter().all(|r| *r));
        assert_eq!(cfg.blocks[0].succs.len(), 2);
        let join = cfg.block_of[p.code.len() - 1] as usize;
        assert_eq!(cfg.blocks[join].preds.len(), 2);
        // Entry dominates everything; neither branch arm dominates the join.
        for b in 0..4 {
            assert!(cfg.dominates(0, b as u32));
        }
        assert!(!cfg.dominates(1, join as u32));
        assert!(!cfg.dominates(2, join as u32));
        assert!(cfg.back_edges.is_empty() && cfg.loops.is_empty());
    }

    #[test]
    fn loop_detection() {
        let mut b = ProgramBuilder::new();
        b.li(Reg(1), 0);
        b.li(Reg(2), 10);
        let top = b.here_label();
        b.addi(Reg(1), Reg(1), 1);
        b.blt(Reg(1), Reg(2), top);
        b.halt();
        let p = b.build();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.back_edges.len(), 1);
        assert_eq!(cfg.loops.len(), 1);
        let l = &cfg.loops[0];
        assert_eq!(l.latch, l.header); // single-block loop
        assert!(l.contains(l.header));
        assert_eq!(l.exit_edges.len(), 1);
    }

    #[test]
    fn unreachable_code_is_detected() {
        let mut b = ProgramBuilder::new();
        let end = b.label();
        b.j(end);
        b.addi(Reg(1), Reg(1), 1); // skipped forever
        b.bind(end);
        b.halt();
        let p = b.build();
        let cfg = Cfg::build(&p);
        let dead = cfg.block_of[1] as usize;
        assert!(!cfg.reachable[dead]);
        assert_eq!(cfg.reachable.iter().filter(|r| **r).count(), 2);
    }

    #[test]
    fn indirect_jump_is_conservative() {
        let mut b = ProgramBuilder::new();
        b.li(Reg(1), 2);
        b.jr(Reg(1));
        b.halt();
        let p = b.build();
        let cfg = Cfg::build(&p);
        assert!(cfg.has_indirect);
        let jb = cfg.block_of[1] as usize;
        assert_eq!(cfg.blocks[jb].succs.len(), cfg.blocks.len());
        assert!(cfg.reachable.iter().all(|r| *r));
    }
}
