//! Control-flow graph construction over a linear [`Program`]: basic
//! blocks, predecessor/successor edges, reachability, dominators,
//! back-edge detection and natural loops.
//!
//! PCs are instruction indices (the ISA's program counter is an index,
//! not a byte address). Indirect jumps (`Jr`/`Jalr`) have no static
//! target; the builder first constructs a fully conservative graph (an
//! indirect block edges to every block), then runs the interval analysis
//! ([`crate::ranges`]) over it and, where the jump register's interval is
//! bounded and in-range, rebuilds with edges only to the pcs inside that
//! interval (each made a block leader). Intervals computed on the
//! conservative graph over-approximate every execution, so the refined
//! edges remain sound for every may-analysis. Jumps whose interval stays
//! unbounded keep the conservative edges and set
//! [`Cfg::unresolved_indirect`].

use crate::bitset::BitSet;
use mtvp_isa::Program;

/// A maximal straight-line run of instructions `[start, end)`.
#[derive(Clone, Debug)]
pub struct BasicBlock {
    /// First instruction (inclusive).
    pub start: u32,
    /// One past the last instruction (exclusive).
    pub end: u32,
    /// Successor block ids.
    pub succs: Vec<u32>,
    /// Predecessor block ids.
    pub preds: Vec<u32>,
}

impl BasicBlock {
    /// PCs of this block, in order.
    pub fn pcs(&self) -> std::ops::Range<u32> {
        self.start..self.end
    }
}

/// One natural loop, identified by a back edge `latch -> header`.
#[derive(Clone, Debug)]
pub struct NaturalLoop {
    /// Loop header block (dominates every block in the body).
    pub header: u32,
    /// Source of the back edge.
    pub latch: u32,
    /// Body block ids (sorted; includes header and latch).
    pub body: Vec<u32>,
    /// Edges `(from, to)` leaving the loop.
    pub exit_edges: Vec<(u32, u32)>,
}

impl NaturalLoop {
    /// Whether block `b` is in the loop body.
    pub fn contains(&self, b: u32) -> bool {
        self.body.binary_search(&b).is_ok()
    }
}

/// The control-flow graph of one program.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Basic blocks in program order; block 0 is the entry.
    pub blocks: Vec<BasicBlock>,
    /// Block id of each pc.
    pub block_of: Vec<u32>,
    /// Whether each block is reachable from the entry.
    pub reachable: Vec<bool>,
    /// Dominator sets over reachable blocks (`dom[b]` contains `b`);
    /// unreachable blocks keep the full set (vacuously dominated).
    pub dom: Vec<BitSet>,
    /// Back edges `(latch, header)` among reachable blocks.
    pub back_edges: Vec<(u32, u32)>,
    /// Natural loops, one per back edge.
    pub loops: Vec<NaturalLoop>,
    /// Whether any instruction is an indirect jump (`Jr`/`Jalr`).
    pub has_indirect: bool,
    /// Whether any reachable indirect jump kept its fully conservative
    /// edges (interval unbounded or out of range). `false` means every
    /// indirect edge set is precise enough for reachability lints.
    pub unresolved_indirect: bool,
    /// Indirect jumps refined by the interval analysis: `(pc, (lo, hi))`
    /// with edges restricted to pcs in `lo..=hi`.
    pub refined_indirect: Vec<(u32, (i128, i128))>,
    /// PCs whose static branch/jump target lies outside the text segment.
    pub bad_targets: Vec<u32>,
}

/// Largest bounded interval (in targets) an indirect jump may have and
/// still be refined; wider ones keep the conservative all-block edges so
/// a nearly-unbounded range cannot shatter the program into per-pc
/// blocks.
const MAX_INDIRECT_FAN: i128 = 64;

impl Cfg {
    /// Build the CFG of `program`. Programs are non-empty in practice
    /// (the builder always emits at least a halt); an empty program
    /// yields an empty graph.
    pub fn build(program: &Program) -> Cfg {
        let conservative = Self::build_with(program, &[]);
        if !conservative.has_indirect {
            return conservative;
        }
        // Second pass: bound the jump registers with the interval
        // analysis run over the conservative graph (sound
        // over-approximation of every execution), then rebuild with
        // edges only to in-range targets.
        let n = program.code.len() as i128;
        let refined: Vec<(u32, (i128, i128))> =
            crate::ranges::indirect_targets(program, &conservative)
                .into_iter()
                .filter_map(|(pc, range)| {
                    let (lo, hi) = range?;
                    (lo >= 0 && hi < n && hi - lo < MAX_INDIRECT_FAN).then_some((pc, (lo, hi)))
                })
                .collect();
        if refined.is_empty() {
            return conservative;
        }
        Self::build_with(program, &refined)
    }

    fn build_with(program: &Program, refined: &[(u32, (i128, i128))]) -> Cfg {
        let n = program.code.len();
        if n == 0 {
            return Cfg {
                blocks: Vec::new(),
                block_of: Vec::new(),
                reachable: Vec::new(),
                dom: Vec::new(),
                back_edges: Vec::new(),
                loops: Vec::new(),
                has_indirect: false,
                unresolved_indirect: false,
                refined_indirect: Vec::new(),
                bad_targets: Vec::new(),
            };
        }
        let refined_of = |pc: u32| refined.iter().find(|r| r.0 == pc).map(|r| r.1);

        // Leaders: entry, every static target, and the instruction after
        // every control transfer or halt.
        let mut leader = vec![false; n];
        leader[0] = true;
        let mut has_indirect = false;
        let mut bad_targets = Vec::new();
        for (pc, inst) in program.code.iter().enumerate() {
            let s = inst.successors(pc as u64, n);
            if s.indirect {
                has_indirect = true;
            }
            if let Some(t) = s.target {
                if t >= 0 && (t as usize) < n {
                    leader[t as usize] = true;
                } else {
                    bad_targets.push(pc as u32);
                }
            }
            if (inst.is_control() || inst.is_halt()) && pc + 1 < n {
                leader[pc + 1] = true;
            }
        }
        // Every pc a refined indirect jump may reach becomes a leader, so
        // its edges land on block heads (never mid-block).
        for &(_, (lo, hi)) in refined {
            for t in lo..=hi {
                leader[t as usize] = true;
            }
        }

        let mut blocks = Vec::new();
        let mut block_of = vec![0u32; n];
        for pc in 0..n {
            if leader[pc] {
                blocks.push(BasicBlock {
                    start: pc as u32,
                    end: pc as u32 + 1,
                    succs: Vec::new(),
                    preds: Vec::new(),
                });
            } else {
                blocks.last_mut().expect("pc 0 is a leader").end = pc as u32 + 1;
            }
            block_of[pc] = blocks.len() as u32 - 1;
        }

        // Edges from each block's terminator.
        let nb = blocks.len();
        let mut unresolved_blocks = vec![false; nb];
        let mut refined_indirect = Vec::new();
        for b in 0..nb {
            let last = blocks[b].end - 1;
            let s = program.code[last as usize].successors(u64::from(last), n);
            let mut succs = Vec::new();
            if s.indirect {
                if let Some((lo, hi)) = refined_of(last) {
                    // The jump register is provably in [lo, hi]: edge
                    // only to the blocks holding those pcs (all leaders).
                    for t in lo..=hi {
                        let tb = block_of[t as usize];
                        if !succs.contains(&tb) {
                            succs.push(tb);
                        }
                    }
                    refined_indirect.push((last, (lo, hi)));
                } else {
                    // Conservative: the jump may reach any block.
                    succs.extend(0..nb as u32);
                    unresolved_blocks[b] = true;
                }
            } else {
                if let Some(t) = s.target {
                    if t >= 0 && (t as usize) < n {
                        succs.push(block_of[t as usize]);
                    }
                }
                if let Some(f) = s.fall_through {
                    let fb = block_of[f as usize];
                    if !succs.contains(&fb) {
                        succs.push(fb);
                    }
                }
            }
            blocks[b].succs = succs.clone();
            for t in succs {
                blocks[t as usize].preds.push(b as u32);
            }
        }

        // Reachability from the entry block.
        let mut reachable = vec![false; nb];
        let mut stack = vec![0u32];
        reachable[0] = true;
        while let Some(b) = stack.pop() {
            for &t in &blocks[b as usize].succs {
                if !reachable[t as usize] {
                    reachable[t as usize] = true;
                    stack.push(t);
                }
            }
        }
        // Only reachable conservative jumps poison reachability lints;
        // dead ones cannot influence what executes.
        let unresolved_indirect = (0..nb).any(|b| reachable[b] && unresolved_blocks[b]);

        // Iterative dominators over reachable blocks.
        let mut dom: Vec<BitSet> = (0..nb).map(|_| BitSet::full(nb)).collect();
        let mut entry_dom = BitSet::new(nb);
        entry_dom.insert(0);
        dom[0] = entry_dom;
        let mut changed = true;
        while changed {
            changed = false;
            for b in 1..nb {
                if !reachable[b] {
                    continue;
                }
                let mut next = BitSet::full(nb);
                let mut any_pred = false;
                for &p in &blocks[b].preds {
                    if reachable[p as usize] {
                        next.intersect_with(&dom[p as usize]);
                        any_pred = true;
                    }
                }
                if !any_pred {
                    // Reachable with no reachable preds only happens for
                    // the entry, handled above; keep the full set.
                    continue;
                }
                next.insert(b);
                if next != dom[b] {
                    dom[b] = next;
                    changed = true;
                }
            }
        }

        // Back edges and natural loops.
        let mut back_edges = Vec::new();
        for b in 0..nb {
            if !reachable[b] {
                continue;
            }
            for &t in &blocks[b].succs {
                if dom[b].contains(t as usize) {
                    back_edges.push((b as u32, t));
                }
            }
        }
        let mut loops = Vec::new();
        for &(latch, header) in &back_edges {
            let mut body = BitSet::new(nb);
            body.insert(header as usize);
            let mut work = Vec::new();
            if body.insert(latch as usize) {
                work.push(latch);
            }
            while let Some(b) = work.pop() {
                for &p in &blocks[b as usize].preds {
                    if reachable[p as usize] && body.insert(p as usize) {
                        work.push(p);
                    }
                }
            }
            let body_vec: Vec<u32> = body.iter().map(|b| b as u32).collect();
            let mut exit_edges = Vec::new();
            for &b in &body_vec {
                for &t in &blocks[b as usize].succs {
                    if !body.contains(t as usize) {
                        exit_edges.push((b, t));
                    }
                }
            }
            loops.push(NaturalLoop {
                header,
                latch,
                body: body_vec,
                exit_edges,
            });
        }

        Cfg {
            blocks,
            block_of,
            reachable,
            dom,
            back_edges,
            loops,
            has_indirect,
            unresolved_indirect,
            refined_indirect,
            bad_targets,
        }
    }

    /// Whether block `a` dominates block `b` (both must be reachable for
    /// the answer to be meaningful).
    pub fn dominates(&self, a: u32, b: u32) -> bool {
        self.dom[b as usize].contains(a as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvp_isa::{ProgramBuilder, Reg};

    /// if (r1 == r2) { r3 += 1 } else { r3 += 2 }; halt
    fn diamond() -> Program {
        let mut b = ProgramBuilder::new();
        let (then_l, join) = (b.label(), b.label());
        b.beq(Reg(1), Reg(2), then_l);
        b.addi(Reg(3), Reg(3), 2);
        b.j(join);
        b.bind(then_l);
        b.addi(Reg(3), Reg(3), 1);
        b.bind(join);
        b.halt();
        b.build()
    }

    #[test]
    fn diamond_blocks_and_dominators() {
        let p = diamond();
        let cfg = Cfg::build(&p);
        // entry / else / then / join.
        assert_eq!(cfg.blocks.len(), 4);
        assert!(cfg.reachable.iter().all(|r| *r));
        assert_eq!(cfg.blocks[0].succs.len(), 2);
        let join = cfg.block_of[p.code.len() - 1] as usize;
        assert_eq!(cfg.blocks[join].preds.len(), 2);
        // Entry dominates everything; neither branch arm dominates the join.
        for b in 0..4 {
            assert!(cfg.dominates(0, b as u32));
        }
        assert!(!cfg.dominates(1, join as u32));
        assert!(!cfg.dominates(2, join as u32));
        assert!(cfg.back_edges.is_empty() && cfg.loops.is_empty());
    }

    #[test]
    fn loop_detection() {
        let mut b = ProgramBuilder::new();
        b.li(Reg(1), 0);
        b.li(Reg(2), 10);
        let top = b.here_label();
        b.addi(Reg(1), Reg(1), 1);
        b.blt(Reg(1), Reg(2), top);
        b.halt();
        let p = b.build();
        let cfg = Cfg::build(&p);
        assert_eq!(cfg.back_edges.len(), 1);
        assert_eq!(cfg.loops.len(), 1);
        let l = &cfg.loops[0];
        assert_eq!(l.latch, l.header); // single-block loop
        assert!(l.contains(l.header));
        assert_eq!(l.exit_edges.len(), 1);
    }

    #[test]
    fn unreachable_code_is_detected() {
        let mut b = ProgramBuilder::new();
        let end = b.label();
        b.j(end);
        b.addi(Reg(1), Reg(1), 1); // skipped forever
        b.bind(end);
        b.halt();
        let p = b.build();
        let cfg = Cfg::build(&p);
        let dead = cfg.block_of[1] as usize;
        assert!(!cfg.reachable[dead]);
        assert_eq!(cfg.reachable.iter().filter(|r| **r).count(), 2);
    }

    #[test]
    fn bounded_indirect_jump_is_refined() {
        // The jump register holds a provable singleton: the jr gets one
        // precise edge instead of edges to every block.
        let mut b = ProgramBuilder::new();
        b.li(Reg(1), 2);
        b.jr(Reg(1));
        b.halt();
        let p = b.build();
        let cfg = Cfg::build(&p);
        assert!(cfg.has_indirect);
        assert!(!cfg.unresolved_indirect);
        assert_eq!(cfg.refined_indirect, vec![(1, (2, 2))]);
        let jb = cfg.block_of[1] as usize;
        assert_eq!(cfg.blocks[jb].succs, vec![cfg.block_of[2]]);
    }

    #[test]
    fn unbounded_indirect_jump_stays_conservative() {
        // The jump register comes from a load: the interval analysis has
        // no bound, so the jr keeps its all-block edges.
        let mut b = ProgramBuilder::new();
        let base = b.alloc_zeroed(8);
        b.li(Reg(2), base as i64);
        b.ld(Reg(1), Reg(2), 0);
        b.jr(Reg(1));
        b.halt();
        let p = b.build();
        let cfg = Cfg::build(&p);
        assert!(cfg.has_indirect);
        assert!(cfg.unresolved_indirect);
        assert!(cfg.refined_indirect.is_empty());
        let jb = cfg.block_of[2] as usize;
        assert_eq!(cfg.blocks[jb].succs.len(), cfg.blocks.len());
        assert!(cfg.reachable.iter().all(|r| *r));
    }

    #[test]
    fn jump_table_kernel_resolves_to_its_arms() {
        // Classic dispatch: mask an index to [0, 3], scale by the arm
        // size, add the table base and jr. The refined CFG must edge the
        // dispatch only into the table, keep the code after the table
        // reachable solely via the arms' jumps, and report no unresolved
        // indirect control flow.
        let mut b = ProgramBuilder::new();
        let arms = b.label();
        let done = b.label();
        b.li(Reg(9), 123456789); // opaque-ish selector input
        b.andi(Reg(2), Reg(9), 3); // index in [0, 3]
        b.li_label(Reg(1), arms); // table base (static pc)
        b.slli(Reg(3), Reg(2), 1); // two insts per arm
        b.add(Reg(4), Reg(1), Reg(3));
        b.jr(Reg(4));
        b.bind(arms);
        for k in 0..3 {
            b.li(Reg(5), 10 + k);
            b.j(done);
        }
        b.li(Reg(5), 13); // last arm falls through to done
        b.nop();
        b.bind(done);
        b.halt();
        let p = b.build();
        let cfg = Cfg::build(&p);
        assert!(cfg.has_indirect);
        assert!(!cfg.unresolved_indirect, "table dispatch fully resolved");
        assert_eq!(cfg.refined_indirect.len(), 1);
        let (jr_pc, (lo, hi)) = cfg.refined_indirect[0];
        assert_eq!(jr_pc, 5);
        assert_eq!((lo, hi), (6, 6 + 6)); // arm starts 6,8,10,12
                                          // The dispatch edges stay inside the table (no edge back to the
                                          // entry block, none past the table's end).
        let jb = cfg.block_of[jr_pc as usize] as usize;
        for &s in &cfg.blocks[jb].succs {
            let start = cfg.blocks[s as usize].start;
            assert!(
                (6..=12).contains(&start),
                "edge to pc {start} escapes the table"
            );
        }
        // Everything is reachable and no bogus loop is reported (the
        // conservative graph used to fabricate back edges here).
        assert!(cfg.reachable.iter().all(|r| *r));
        assert!(cfg.back_edges.is_empty());
        assert!(cfg.loops.is_empty());
        // The kernel lints clean: in particular no unreachable-code or
        // infinite-loop warnings from over-approximated indirect edges.
        let report = crate::lint::lint_program(&p);
        assert_eq!(report.errors(), 0, "report: {report:?}");
        assert_eq!(report.warnings(), 0, "report: {report:?}");
    }
}
