//! A generic worklist solver for gen/kill bitvector dataflow problems
//! over a [`Cfg`]. Concrete analyses (liveness, reaching definitions)
//! describe themselves as a [`GenKill`] problem; the solver iterates to
//! the unique fixpoint. Because gen/kill transfer functions are monotone
//! over a finite lattice, convergence is guaranteed in at most
//! `blocks * (bits + 1)` meet-side updates.

use crate::bitset::BitSet;
use crate::cfg::Cfg;

/// Direction of information flow.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Facts flow from predecessors to successors (e.g. reaching defs).
    Forward,
    /// Facts flow from successors to predecessors (e.g. liveness).
    Backward,
}

/// Meet operator applied when paths join.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Meet {
    /// May-analysis: a fact holds if it holds on any path.
    Union,
    /// Must-analysis: a fact holds only if it holds on all paths.
    Intersect,
}

/// One gen/kill dataflow problem: per-block transfer
/// `out = gen ∪ (in − kill)` plus a boundary value injected at the
/// entry (forward) or at every exit block (backward).
pub struct GenKill {
    /// Flow direction.
    pub direction: Direction,
    /// Join operator.
    pub meet: Meet,
    /// Domain width in bits.
    pub bits: usize,
    /// Per-block generated facts.
    pub gen: Vec<BitSet>,
    /// Per-block killed facts.
    pub kill: Vec<BitSet>,
    /// Facts holding at the program boundary (before entry for forward
    /// problems, after every exit block for backward ones).
    pub boundary: BitSet,
}

/// Fixpoint of a [`GenKill`] problem.
pub struct Solution {
    /// Meet-side set per block: IN for forward problems, OUT for backward.
    pub meet: Vec<BitSet>,
    /// Transfer-side set per block: OUT for forward problems, IN for
    /// backward.
    pub out: Vec<BitSet>,
    /// Number of block transfer evaluations until the fixpoint.
    pub iterations: usize,
}

/// Solve `problem` over `cfg` with a FIFO worklist.
pub fn solve(cfg: &Cfg, problem: &GenKill) -> Solution {
    let nb = cfg.blocks.len();
    let bits = problem.bits;
    debug_assert_eq!(problem.gen.len(), nb);
    debug_assert_eq!(problem.kill.len(), nb);

    // For a backward problem the "inputs" of a block are its successors.
    let edges_in = |b: usize| -> &[u32] {
        match problem.direction {
            Direction::Forward => &cfg.blocks[b].preds,
            Direction::Backward => &cfg.blocks[b].succs,
        }
    };
    // Blocks whose meet-side set includes the boundary value: the entry
    // block (forward) or blocks with no successors (backward). A
    // backward exit is a block ending in Halt or falling off the text.
    let at_boundary = |b: usize| -> bool {
        match problem.direction {
            Direction::Forward => b == 0,
            Direction::Backward => cfg.blocks[b].succs.is_empty(),
        }
    };

    let top = match problem.meet {
        Meet::Union => BitSet::new(bits),
        Meet::Intersect => BitSet::full(bits),
    };
    let mut meet: Vec<BitSet> = (0..nb).map(|_| top.clone()).collect();
    let mut out: Vec<BitSet> = (0..nb).map(|_| BitSet::new(bits)).collect();

    // Seed every block once; iterate until stable.
    let mut on_queue = vec![true; nb];
    let mut queue: std::collections::VecDeque<usize> = match problem.direction {
        Direction::Forward => (0..nb).collect(),
        Direction::Backward => (0..nb).rev().collect(),
    };
    let mut iterations = 0usize;

    while let Some(b) = queue.pop_front() {
        on_queue[b] = false;
        iterations += 1;

        // Meet over inputs (plus the boundary where applicable).
        let mut m = top.clone();
        let mut first = true;
        for &e in edges_in(b) {
            if first && problem.meet == Meet::Intersect {
                m = out[e as usize].clone();
                first = false;
            } else {
                match problem.meet {
                    Meet::Union => {
                        m.union_with(&out[e as usize]);
                    }
                    Meet::Intersect => {
                        m.intersect_with(&out[e as usize]);
                    }
                }
            }
        }
        if at_boundary(b) {
            match problem.meet {
                Meet::Union => {
                    m.union_with(&problem.boundary);
                }
                Meet::Intersect => {
                    if first {
                        m = problem.boundary.clone();
                    } else {
                        m.intersect_with(&problem.boundary);
                    }
                }
            }
        }

        // Transfer: out = gen ∪ (meet − kill).
        let mut o = m.clone();
        o.subtract(&problem.kill[b]);
        o.union_with(&problem.gen[b]);

        meet[b] = m;
        if o != out[b] {
            out[b] = o;
            // Requeue downstream blocks.
            let downstream: &[u32] = match problem.direction {
                Direction::Forward => &cfg.blocks[b].succs,
                Direction::Backward => &cfg.blocks[b].preds,
            };
            for &d in downstream {
                if !on_queue[d as usize] {
                    on_queue[d as usize] = true;
                    queue.push_back(d as usize);
                }
            }
        }
    }

    Solution {
        meet,
        out,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvp_isa::{ProgramBuilder, Reg};

    #[test]
    fn forward_union_reaches_through_a_loop() {
        // Domain of 2 facts: fact 0 generated in the entry, fact 1 in the
        // loop body. Both must reach the exit.
        let mut b = ProgramBuilder::new();
        b.li(Reg(1), 0);
        let top = b.here_label();
        b.addi(Reg(1), Reg(1), 1);
        b.blt(Reg(1), Reg(2), top);
        b.halt();
        let cfg = Cfg::build(&b.build());
        let nb = cfg.blocks.len();
        let mut gen: Vec<BitSet> = (0..nb).map(|_| BitSet::new(2)).collect();
        let kill: Vec<BitSet> = (0..nb).map(|_| BitSet::new(2)).collect();
        gen[0].insert(0);
        gen[1].insert(1); // loop body
        let sol = solve(
            &cfg,
            &GenKill {
                direction: Direction::Forward,
                meet: Meet::Union,
                bits: 2,
                gen,
                kill,
                boundary: BitSet::new(2),
            },
        );
        let exit = nb - 1;
        assert!(sol.meet[exit].contains(0) && sol.meet[exit].contains(1));
        // The loop header's IN must include its own body's fact (back edge).
        assert!(sol.meet[1].contains(1));
        assert!(sol.iterations <= nb * 3 + nb);
    }

    #[test]
    fn backward_union_with_boundary() {
        // Straight-line program, boundary fact 0 live-out at the exit
        // must propagate to the entry when nothing kills it.
        let mut b = ProgramBuilder::new();
        b.li(Reg(1), 1);
        b.halt();
        let cfg = Cfg::build(&b.build());
        let nb = cfg.blocks.len();
        let mut boundary = BitSet::new(1);
        boundary.insert(0);
        let sol = solve(
            &cfg,
            &GenKill {
                direction: Direction::Backward,
                meet: Meet::Union,
                bits: 1,
                gen: (0..nb).map(|_| BitSet::new(1)).collect(),
                kill: (0..nb).map(|_| BitSet::new(1)).collect(),
                boundary,
            },
        );
        assert!(sol.out[0].contains(0), "boundary fact reaches entry IN");
    }
}
