//! Differential validation: run the reference interpreter step by step
//! and check each dynamic event against the static analyses.
//!
//! Two soundness obligations are checked:
//!
//! 1. **Uninitialized reads.** Every dynamic read-before-write of a
//!    register must be at a `(pc, loc)` the reaching-definitions
//!    analysis flagged as a potential uninitialized use — the static set
//!    over-approximates the dynamic one.
//! 2. **Liveness.** Every upward-exposed read observed inside a dynamic
//!    basic-block visit must be in the static `live_in` of that block —
//!    observed live sets are a subset of static liveness.
//!
//! A violation of either means an analysis bug (unsoundness), so the
//! validator returns `Err` with a description; the lint and proptest
//! suites treat that as a hard failure.

use crate::cfg::Cfg;
use crate::liveness;
use crate::loc::{def_loc, use_locs, Loc, NUM_LOCS};
use crate::reaching;
use mtvp_isa::interp::{Interp, SimpleBus, Step};
use mtvp_isa::Program;

/// Summary of one differential run.
#[derive(Clone, Debug)]
pub struct DiffReport {
    /// Interpreter steps executed.
    pub steps: u64,
    /// Dynamic read-before-write events observed (all proven covered).
    pub dynamic_uninit_reads: usize,
    /// Dynamic basic-block visits checked against static liveness.
    pub blocks_entered: u64,
    /// Whether the program reached `Halt` within the step budget.
    pub halted: bool,
}

/// Run `program` for at most `max_steps` and validate the dynamic
/// behaviour against the static analyses. `Err` means an analysis is
/// unsound for this program.
pub fn validate_against_interp(program: &Program, max_steps: u64) -> Result<DiffReport, String> {
    let cfg = Cfg::build(program);
    let live = liveness::compute(program, &cfg);
    let reach = reaching::compute(program, &cfg);
    let static_uninit: std::collections::BTreeSet<(u32, usize)> =
        reaching::uninit_uses(program, &cfg, &reach)
            .into_iter()
            .map(|u| (u.pc, u.loc.index()))
            .collect();

    let mut bus = SimpleBus::new();
    program.init_memory(&mut bus);
    let mut interp = Interp::new(program);

    // Global written-set for obligation 1; per-block-visit written-set
    // for obligation 2.
    let mut written = [false; NUM_LOCS];
    let mut visit_written = [false; NUM_LOCS];
    let mut cur_block = u32::MAX;

    let mut steps = 0u64;
    let mut dynamic_uninit_reads = 0usize;
    let mut blocks_entered = 0u64;
    let mut halted = false;

    for _ in 0..max_steps {
        let pc = interp.pc;
        if pc as usize >= program.code.len() {
            break; // fell off the text segment
        }
        let block = cfg.block_of[pc as usize];
        if block != cur_block || pc == u64::from(cfg.blocks[block as usize].start) {
            // Entered a (possibly the same) block at its head, or jumped
            // into the middle of another block: start a fresh visit.
            cur_block = block;
            visit_written = [false; NUM_LOCS];
            blocks_entered += 1;
        }
        let inst = &program.code[pc as usize];

        for u in use_locs(inst) {
            let l = u.index();
            if !written[l] {
                dynamic_uninit_reads += 1;
                if !static_uninit.contains(&(pc as u32, l)) {
                    return Err(format!(
                        "unsound: pc {pc} dynamically reads {u} before any \
                         write, but the static analysis did not flag it"
                    ));
                }
            }
            if !visit_written[l] && !live.live_in[block as usize].contains(l) {
                return Err(format!(
                    "unsound: pc {pc} reads {u} upward-exposed in block \
                     {block}, but {u} is not in the block's static live_in"
                ));
            }
        }
        if let Some(d) = def_loc(inst) {
            written[d.index()] = true;
            visit_written[d.index()] = true;
        }

        steps += 1;
        match interp.step(&mut bus, None) {
            Step::Continue => {}
            Step::Halted => {
                halted = true;
                break;
            }
            Step::OutOfText => break,
        }
    }

    // Sanity: r0 must never appear as a location in any dynamic event.
    debug_assert!(!written[Loc::Int(0).index()]);

    Ok(DiffReport {
        steps,
        dynamic_uninit_reads,
        blocks_entered,
        halted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvp_isa::{ProgramBuilder, Reg};

    #[test]
    fn clean_program_validates() {
        let mut b = ProgramBuilder::new();
        let (i, n, acc) = (Reg(1), Reg(2), Reg(3));
        b.li(i, 0);
        b.li(n, 10);
        b.li(acc, 0);
        let top = b.here_label();
        b.add(acc, acc, i);
        b.addi(i, i, 1);
        b.blt(i, n, top);
        b.halt();
        let p = b.build();
        let r = validate_against_interp(&p, 1_000_000).expect("sound");
        assert!(r.halted);
        assert_eq!(r.dynamic_uninit_reads, 0);
        assert!(r.blocks_entered >= 10);
    }

    #[test]
    fn buggy_program_stays_within_the_static_flag_set() {
        // Dynamically reads uninitialized r5 — the static analysis must
        // have flagged exactly that (pc, reg), so validation still passes.
        let mut b = ProgramBuilder::new();
        b.addi(Reg(1), Reg(5), 1);
        b.halt();
        let p = b.build();
        let r = validate_against_interp(&p, 100).expect("static set covers dynamic");
        assert_eq!(r.dynamic_uninit_reads, 1);
        assert!(r.halted);
    }
}
