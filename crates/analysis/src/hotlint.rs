//! Source-level hot-path lint for the pipeline crate.
//!
//! The simulator's inner loop must stay allocation-free and hash-free:
//! per-cycle work that touches the heap or a `HashMap` is exactly the
//! kind of regression that erased an earlier 3x speedup. This lint is a
//! deliberately simple, dependency-free line scanner:
//!
//! * Hash-based collections (`HashMap`, `HashSet`, `BTreeMap`,
//!   `BTreeSet`, `IndexMap`) are denied **anywhere** in
//!   `crates/pipeline/src` — the crate currently has none and should
//!   stay that way.
//! * Allocation patterns (`Vec::new(`, `vec![`, `format!(`, …) are
//!   denied only **inside the per-cycle hot functions** listed in
//!   [`HOT_FUNCTIONS`]; squash paths, constructors and debug helpers
//!   allocate legitimately.
//!
//! A line containing `hotlint: allow` is exempt (use sparingly, with a
//! justification comment).

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Collection types denied anywhere in the pipeline crate.
pub const DENIED_COLLECTIONS: &[&str] = &["HashMap", "HashSet", "BTreeMap", "BTreeSet", "IndexMap"];

/// Allocation tokens denied inside hot functions.
pub const DENIED_ALLOC: &[&str] = &[
    "Vec::new(",
    "vec![",
    "String::new(",
    "String::from(",
    "format!(",
    ".to_string(",
    ".to_vec(",
    "Box::new(",
    ".collect(",
];

/// Per-cycle functions whose bodies must not allocate: the pipeline
/// stages and their per-context helpers, the value-prediction hook, and
/// the microarchitecture-framework dispatch surface (`Stage::tick` /
/// `SpawnPolicy::consider` impls plus the staged cycle loop itself).
pub const HOT_FUNCTIONS: &[&str] = &[
    "cycle",
    "cycle_hand_wired",
    "cycle_tail",
    "tick",
    "consider",
    "fetch_stage",
    "fetch_thread",
    "rename_stage",
    "rename_one",
    "issue_stage",
    "in_order_issue_stage",
    "issue_one",
    "store_forwards",
    "writeback_stage",
    "complete_one",
    "compute_result",
    "commit_stage",
    "commit_one",
    "maybe_value_predict",
    "spawn_child",
    "reconcile_freed_slot",
    "cmp_step",
    "cmp_fast_forward_to",
];

/// One source-lint finding.
#[derive(Clone, Debug)]
pub struct SourceDiag {
    /// File the finding is in.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The denied token that matched.
    pub pattern: String,
    /// Explanation, including the enclosing hot function when relevant.
    pub message: String,
}

/// Result of a source scan: live findings plus the findings a
/// `// hotlint: allow` escape silenced. Reporting the suppressed set
/// lets CI artifacts distinguish genuinely clean code from silenced
/// code.
#[derive(Clone, Debug, Default)]
pub struct ScanOutcome {
    /// Findings that count against the lint.
    pub diags: Vec<SourceDiag>,
    /// Findings on `hotlint: allow` lines (reported, not counted).
    pub suppressed: Vec<SourceDiag>,
}

/// Scan one file's text. `file` is used only for reporting.
pub fn scan_source(file: &Path, text: &str) -> ScanOutcome {
    let mut out = ScanOutcome::default();
    // Track which hot function (if any) encloses each line by brace
    // depth. rustfmt wraps long signatures across lines, so the region
    // stays open through the parameter list until the body's `{` lifts
    // the depth (`body_opened`); a trait *declaration* (`);` with no
    // body) instead closes when the enclosing scope's depth drops.
    let mut hot: Option<HotRegion> = None;
    let mut depth: i64 = 0;

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let allow = raw.contains("hotlint: allow");
        // Strip line comments so commented-out code never fires (the
        // allow marker itself normally lives in the stripped comment).
        let line = match raw.find("//") {
            Some(p) => &raw[..p],
            None => raw,
        };
        let sink = if allow {
            &mut out.suppressed
        } else {
            &mut out.diags
        };

        for &tok in DENIED_COLLECTIONS {
            if line.contains(tok) {
                sink.push(SourceDiag {
                    file: file.to_path_buf(),
                    line: lineno,
                    pattern: tok.to_string(),
                    message: format!(
                        "{tok} is banned in the pipeline crate (hash/tree \
                         lookups in or near the cycle loop)"
                    ),
                });
            }
        }

        // Enter a hot function?
        if hot.is_none() {
            if let Some(name) = hot_fn_on_line(line) {
                hot = Some(HotRegion {
                    name: name.to_string(),
                    entry: depth,
                    body_opened: false,
                });
            }
        }
        if let Some(HotRegion { name, .. }) = &hot {
            let sink = if allow {
                &mut out.suppressed
            } else {
                &mut out.diags
            };
            for &tok in DENIED_ALLOC {
                if line.contains(tok) {
                    sink.push(SourceDiag {
                        file: file.to_path_buf(),
                        line: lineno,
                        pattern: tok.to_string(),
                        message: format!(
                            "allocation `{tok}` inside per-cycle hot \
                             function `{name}`"
                        ),
                    });
                }
            }
        }

        depth += brace_delta(line);
        close_hot(&mut hot, depth);
    }
    out
}

struct HotRegion {
    name: String,
    /// Brace depth on the `fn` line; the body lives strictly above it.
    entry: i64,
    /// Whether the body's `{` has been seen yet.
    body_opened: bool,
}

fn close_hot(hot: &mut Option<HotRegion>, depth: i64) {
    if let Some(r) = hot {
        if depth > r.entry {
            r.body_opened = true;
        } else if r.body_opened || depth < r.entry {
            // Body closed — or the enclosing scope ended before any body
            // opened (a bodiless trait-method declaration).
            *hot = None;
        }
    }
}

fn hot_fn_on_line(line: &str) -> Option<&'static str> {
    // A hot function may be generic (`fn tick<T: Tracer, S: StageSet>(…)`),
    // so accept `name(` and `name<` after `fn `.
    HOT_FUNCTIONS.iter().copied().find(|name| {
        line.find("fn ")
            .map(|p| {
                let rest = line[p + 3..].trim_start();
                rest.strip_prefix(name)
                    .is_some_and(|after| after.starts_with('(') || after.starts_with('<'))
            })
            .unwrap_or(false)
    })
}

fn brace_delta(line: &str) -> i64 {
    // Good enough for rustfmt-formatted code: braces in string literals
    // are rare in this codebase and none occur in the pipeline crate's
    // hot modules.
    line.chars().fold(0i64, |d, c| match c {
        '{' => d + 1,
        '}' => d - 1,
        _ => d,
    })
}

/// Scan every `.rs` file under `<repo_root>/crates/pipeline/src`.
/// Returns the number of files scanned and all findings (live and
/// suppressed).
pub fn scan_pipeline(repo_root: &Path) -> io::Result<(usize, ScanOutcome)> {
    let root = repo_root.join("crates/pipeline/src");
    let mut files = Vec::new();
    collect_rs(&root, &mut files)?;
    files.sort();
    let mut out = ScanOutcome::default();
    for f in &files {
        let text = fs::read_to_string(f)?;
        let one = scan_source(f, &text);
        out.diags.extend(one.diags);
        out.suppressed.extend(one.suppressed);
    }
    Ok((files.len(), out))
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashmap_is_denied_anywhere() {
        let src = "use std::collections::HashMap;\nfn helper() {\n    let m: HashMap<u32, u32> = HashMap::new();\n}\n";
        let d = scan_source(Path::new("x.rs"), src).diags;
        assert!(d.len() >= 2);
        assert!(d.iter().all(|d| d.pattern == "HashMap"));
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn allocation_in_hot_function_is_denied() {
        let src = "\
impl M {
    fn cycle(&mut self) {
        let v = Vec::new();
        if x {
            let s = format!(\"{}\", 1);
        }
    }
    fn cold(&mut self) {
        let v = Vec::new();
    }
}
";
        let d = scan_source(Path::new("m.rs"), src).diags;
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().any(|d| d.pattern == "Vec::new(" && d.line == 3));
        assert!(d.iter().any(|d| d.pattern == "format!(" && d.line == 5));
    }

    #[test]
    fn allow_escape_and_comments_are_skipped_but_counted() {
        let src = "\
fn commit_stage(&mut self) {
    let v = Vec::new(); // hotlint: allow — one-time warmup buffer
    // let dead = vec![commented out];
    let w = 1;
}
";
        let out = scan_source(Path::new("c.rs"), src);
        assert!(out.diags.is_empty(), "{:?}", out.diags);
        // The silenced finding is still reported on the side channel.
        assert_eq!(out.suppressed.len(), 1, "{:?}", out.suppressed);
        assert_eq!(out.suppressed[0].pattern, "Vec::new(");
        assert_eq!(out.suppressed[0].line, 2);
    }

    #[test]
    fn generic_stage_tick_is_tracked() {
        // Framework stage impls are generic; the matcher must see through
        // the type-parameter list, and stay quiet on clean delegation.
        let src = "\
impl Stage for OooIssue {
    fn tick<T: Tracer, S: StageSet>(m: &mut StagedCore<'_, T, S>) {
        let scratch = vec![0u8; 64];
        m.issue_stage();
    }
}
";
        let d = scan_source(Path::new("framework.rs"), src).diags;
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].pattern, "vec![");
        assert!(d[0].message.contains("`tick`"), "{}", d[0].message);

        let clean = "\
impl Stage for OooIssue {
    fn tick<T: Tracer, S: StageSet>(m: &mut StagedCore<'_, T, S>) {
        m.issue_stage();
    }
}
fn in_order_issue_stage(&mut self) {
    let x = 1;
}
fn ticker(&mut self) {
    let v = Vec::new(); // not a hot function: `ticker` != `tick`
}
";
        let out = scan_source(Path::new("f.rs"), clean);
        assert!(out.diags.is_empty() && out.suppressed.is_empty());
    }

    #[test]
    fn static_hint_spawn_consider_is_covered() {
        // The hint-gated spawn policy's per-cycle decision point, in the
        // rustfmt shape it actually has: a wrapped multi-line signature.
        // A seeded allocation inside `consider` must fire, and the real
        // shape — a mask probe plus delegation — must stay quiet.
        let seeded = "\
impl SpawnPolicy for StaticHintSpawn {
    fn consider<T: Tracer, S: StageSet>(
        m: &mut StagedCore<'_, T, S>,
        ctx: CtxId,
        load: UopId,
        fi: &FetchedInst,
    ) {
        let lookup = m.hint_mask.to_vec();
        let set: std::collections::HashSet<u64> = m.hints.iter().collect();
        if m.hinted(fi.pc) {
            m.maybe_value_predict(ctx, load, fi);
        }
    }
}
";
        let d = scan_source(Path::new("framework.rs"), seeded).diags;
        assert_eq!(d.len(), 3, "{d:?}");
        assert!(d.iter().any(|d| d.pattern == ".to_vec(" && d.line == 8));
        assert!(d.iter().any(|d| d.pattern == "HashSet" && d.line == 9));
        assert!(d.iter().any(|d| d.pattern == ".collect(" && d.line == 9));

        let clean = "\
impl SpawnPolicy for StaticHintSpawn {
    fn consider<T: Tracer, S: StageSet>(
        m: &mut StagedCore<'_, T, S>,
        ctx: CtxId,
        load: UopId,
        fi: &FetchedInst,
    ) {
        if m.hinted(fi.pc) {
            m.maybe_value_predict(ctx, load, fi);
        }
    }
}
";
        let out = scan_source(Path::new("framework.rs"), clean);
        assert!(out.diags.is_empty() && out.suppressed.is_empty());
    }

    #[test]
    fn bodiless_trait_declaration_does_not_leak_hot_tracking() {
        // The `SpawnPolicy` trait declares `consider` with `);` and no
        // body; the hot region must end with the trait's scope rather
        // than swallowing whatever function follows.
        let src = "\
pub trait SpawnPolicy {
    fn consider<T: Tracer, S: StageSet>(
        m: &mut StagedCore<'_, T, S>,
        ctx: CtxId,
    );
}
fn build_tables() -> Vec<u64> {
    let v = vec![0u64; 64];
    v
}
";
        let out = scan_source(Path::new("framework.rs"), src);
        assert!(
            out.diags.is_empty() && out.suppressed.is_empty(),
            "{:?}",
            out.diags
        );
    }

    #[test]
    fn nested_fn_tracking_closes_at_brace() {
        // Allocation after the hot function's closing brace is fine.
        let src = "\
fn issue_stage(&mut self) {
    let x = 1;
}
fn other(&mut self) {
    let v = vec![1, 2];
}
";
        let d = scan_source(Path::new("i.rs"), src).diags;
        assert!(d.is_empty(), "{d:?}");
    }
}
