//! # mtvp-analysis
//!
//! Static analysis over MTVP ISA programs, plus a source-level hot-path
//! lint for the pipeline crate.
//!
//! The crate builds a control-flow graph ([`Cfg`]) from an
//! [`mtvp_isa::Program`], runs gen/kill dataflow analyses over it with a
//! generic worklist solver ([`dataflow`]), and folds the results into a
//! severity-tagged [`LintReport`]:
//!
//! * [`reaching`] — reaching definitions with "uninitialized"
//!   pseudo-defs; proves every read is preceded by a write (errors
//!   otherwise).
//! * [`liveness`] — register liveness; finds dead stores.
//! * [`ranges`] — interval-domain address analysis for loads/stores.
//! * [`cfg`] — reachability, dominators, back edges, natural loops, and
//!   loop-termination heuristics consumed by the lint.
//!
//! Soundness is checked **differentially**: [`validate_against_interp`]
//! replays a program on the reference interpreter and verifies that the
//! static uninitialized-use set covers every dynamic read-before-write
//! and that observed live sets are a subset of static liveness. The
//! workload test-suite and a proptest harness run this over every shipped
//! kernel and thousands of generated programs.
//!
//! # Example
//!
//! ```
//! use mtvp_isa::{ProgramBuilder, Reg};
//! use mtvp_analysis::{lint_program, validate_against_interp};
//!
//! let mut b = ProgramBuilder::new();
//! b.li(Reg(1), 0);
//! b.li(Reg(2), 10);
//! let top = b.here_label();
//! b.addi(Reg(1), Reg(1), 1);
//! b.blt(Reg(1), Reg(2), top);
//! b.halt();
//! let p = b.build();
//!
//! let report = lint_program(&p);
//! assert_eq!(report.errors(), 0);
//! assert_eq!(report.loops, 1);
//! validate_against_interp(&p, 10_000).expect("analyses are sound");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod cfg;
pub mod dataflow;
pub mod diff;
pub mod hotlint;
pub mod induction;
pub mod lint;
pub mod liveness;
pub mod loc;
pub mod ranges;
pub mod reaching;
pub mod spawnsite;

pub use bitset::BitSet;
pub use cfg::{BasicBlock, Cfg, NaturalLoop};
pub use diff::{validate_against_interp, DiffReport};
pub use hotlint::{scan_pipeline, scan_source, ScanOutcome, SourceDiag};
pub use induction::InductionClass;
pub use lint::{lint_program, Diag, LintReport, Severity};
pub use loc::{Loc, NUM_LOCS};
pub use spawnsite::{
    analyze_spawn_sites, validate_spawn_hints, HintCheckStats, SiteKind, SpawnHints, SpawnSite,
};

/// Version tag folded into experiment-cache lint descriptors; bump when
/// any analysis or lint rule changes meaningfully.
pub const ANALYSIS_VERSION: &str = "mtvp-analysis-v2";
