//! The lint driver: runs every analysis over a program and folds the
//! results into a [`LintReport`] of severity-tagged diagnostics.
//!
//! Severity policy (enforced by the CLI exit code and the CI gate):
//!
//! * **Error** — the program is malformed or depends on unspecified
//!   state: `uninit-read`, `bad-branch-target`, `no-reachable-halt`.
//! * **Warning** — legal but suspicious: `unreachable-code`,
//!   `dead-store`, `redundant-jump`, `fall-off-text`, `infinite-loop`,
//!   `loop-invariant-exit`, `addr-below-data`, `unaligned-access`.
//! * **Info** — noteworthy structure: `indirect-jump` (forces fully
//!   conservative CFG edges).

use crate::cfg::Cfg;
use crate::liveness::{self, Liveness};
use crate::loc::use_locs;
use crate::ranges::{self, AddrRanges};
use crate::reaching::{self, Reaching};
use mtvp_isa::Program;
use serde_json::{json, Value};

/// Diagnostic severity, ordered least to most severe.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Structural observation, never gates anything.
    Info,
    /// Suspicious but legal.
    Warning,
    /// Program defect; fails `mtvp-sim lint` and the CI gate.
    Error,
}

impl Severity {
    /// Lower-case name used in JSON and text output.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One diagnostic.
#[derive(Clone, Debug)]
pub struct Diag {
    /// Severity class.
    pub severity: Severity,
    /// Stable kebab-case rule name (e.g. `uninit-read`).
    pub rule: &'static str,
    /// Offending instruction, when the diagnostic has a single site.
    pub pc: Option<u32>,
    /// Human-readable explanation.
    pub message: String,
}

/// Everything the linter learned about one program.
#[derive(Clone, Debug)]
pub struct LintReport {
    /// Program name (from the builder).
    pub name: String,
    /// Instruction count.
    pub insts: usize,
    /// Basic-block count.
    pub blocks: usize,
    /// Blocks reachable from the entry.
    pub reachable_blocks: usize,
    /// Natural-loop count.
    pub loops: usize,
    /// Back-edge count.
    pub back_edges: usize,
    /// Load/store count in reachable code.
    pub mem_ops: usize,
    /// Memory operations with a statically bounded address interval.
    pub bounded_mem: usize,
    /// Total solver transfer evaluations (liveness + reaching).
    pub solver_iterations: usize,
    /// All diagnostics, sorted by severity (most severe first) then pc.
    pub diags: Vec<Diag>,
}

impl LintReport {
    /// Number of error-severity diagnostics.
    pub fn errors(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warnings(&self) -> usize {
        self.diags
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// JSON form: summary counters plus the full diagnostic list.
    pub fn to_value(&self) -> Value {
        json!({
            "name": self.name,
            "insts": self.insts,
            "blocks": self.blocks,
            "reachable_blocks": self.reachable_blocks,
            "loops": self.loops,
            "back_edges": self.back_edges,
            "mem_ops": self.mem_ops,
            "bounded_mem": self.bounded_mem,
            "solver_iterations": self.solver_iterations,
            "errors": self.errors(),
            "warnings": self.warnings(),
            "diags": self.diags.iter().map(|d| json!({
                "severity": d.severity.name(),
                "rule": d.rule,
                "pc": d.pc,
                "message": d.message,
            })).collect::<Vec<_>>(),
        })
    }

    /// Export summary counters into an observability registry under the
    /// `lint.` namespace (absolute values, not increments).
    pub fn registry(&self) -> mtvp_obs::Registry {
        let mut r = mtvp_obs::Registry::new();
        r.set("lint.errors", self.errors() as u64);
        r.set("lint.warnings", self.warnings() as u64);
        r.set(
            "lint.infos",
            self.diags
                .iter()
                .filter(|d| d.severity == Severity::Info)
                .count() as u64,
        );
        r.set("lint.blocks", self.blocks as u64);
        r.set("lint.loops", self.loops as u64);
        r.set("lint.back_edges", self.back_edges as u64);
        r.set("lint.mem_ops", self.mem_ops as u64);
        r.set("lint.mem_bounded", self.bounded_mem as u64);
        for d in &self.diags {
            r.bump(&format!("lint.rule.{}", d.rule));
        }
        r
    }
}

/// Run every analysis over `program` and collect diagnostics.
pub fn lint_program(program: &Program) -> LintReport {
    let cfg = Cfg::build(program);
    let live = liveness::compute(program, &cfg);
    let reach = reaching::compute(program, &cfg);
    let ranges = ranges::analyze(program, &cfg);
    lint_with(program, &cfg, &live, &reach, &ranges)
}

fn lint_with(
    program: &Program,
    cfg: &Cfg,
    live: &Liveness,
    reach: &Reaching,
    ranges: &AddrRanges,
) -> LintReport {
    let mut diags = Vec::new();
    let n = program.code.len();

    // -- errors ----------------------------------------------------------
    for u in reaching::uninit_uses(program, cfg, reach) {
        diags.push(Diag {
            severity: Severity::Error,
            rule: "uninit-read",
            pc: Some(u.pc),
            message: format!(
                "pc {}: reads {} which may be uninitialized on some path",
                u.pc, u.loc
            ),
        });
    }
    for &pc in &cfg.bad_targets {
        diags.push(Diag {
            severity: Severity::Error,
            rule: "bad-branch-target",
            pc: Some(pc),
            message: format!(
                "pc {}: branch/jump target {} is outside the text segment (0..{})",
                pc, program.code[pc as usize].imm, n
            ),
        });
    }
    let any_reachable_halt = cfg
        .blocks
        .iter()
        .enumerate()
        .filter(|(b, _)| cfg.reachable[*b])
        .flat_map(|(_, blk)| blk.pcs())
        .any(|pc| program.code[pc as usize].is_halt());
    if !any_reachable_halt && !cfg.unresolved_indirect && n > 0 {
        diags.push(Diag {
            severity: Severity::Error,
            rule: "no-reachable-halt",
            pc: None,
            message: "no halt instruction is reachable from the entry".to_string(),
        });
    }

    // -- warnings --------------------------------------------------------
    for (b, blk) in cfg.blocks.iter().enumerate() {
        if cfg.reachable[b] {
            continue;
        }
        // All-nop padding blocks are not worth reporting.
        let all_nop = blk
            .pcs()
            .all(|pc| matches!(program.code[pc as usize].op, mtvp_isa::Op::Nop));
        if !all_nop {
            diags.push(Diag {
                severity: Severity::Warning,
                rule: "unreachable-code",
                pc: Some(blk.start),
                message: format!("pcs {}..{} can never execute", blk.start, blk.end),
            });
        }
    }
    for pc in liveness::dead_defs(program, cfg, live) {
        diags.push(Diag {
            severity: Severity::Warning,
            rule: "dead-store",
            pc: Some(pc),
            message: format!(
                "pc {}: value written to {} is overwritten before any read",
                pc,
                crate::loc::def_loc(&program.code[pc as usize])
                    .map(|l| l.to_string())
                    .unwrap_or_default()
            ),
        });
    }
    for (pc, inst) in program.code.iter().enumerate() {
        if matches!(inst.op, mtvp_isa::Op::J) && inst.imm == pc as i64 + 1 {
            diags.push(Diag {
                severity: Severity::Warning,
                rule: "redundant-jump",
                pc: Some(pc as u32),
                message: format!("pc {pc}: jump to the next instruction"),
            });
        }
    }
    if n > 0 {
        let last_block = cfg.blocks.len() - 1;
        let last = &program.code[n - 1];
        if cfg.reachable[last_block]
            && !last.is_halt()
            && !matches!(
                last.op,
                mtvp_isa::Op::J | mtvp_isa::Op::Jal | mtvp_isa::Op::Jr | mtvp_isa::Op::Jalr
            )
        {
            diags.push(Diag {
                severity: Severity::Warning,
                rule: "fall-off-text",
                pc: Some(n as u32 - 1),
                message: format!(
                    "pc {}: execution can fall off the end of the text segment",
                    n - 1
                ),
            });
        }
    }
    for l in &cfg.loops {
        if l.exit_edges.is_empty() {
            diags.push(Diag {
                severity: Severity::Warning,
                rule: "infinite-loop",
                pc: Some(cfg.blocks[l.header as usize].start),
                message: format!(
                    "loop headed at pc {} has no exit edge",
                    cfg.blocks[l.header as usize].start
                ),
            });
            continue;
        }
        // Termination heuristic: some register tested by an exit branch
        // must be redefined inside the loop, otherwise the exit decision
        // never changes. (Memory-dependent exits read a register loaded
        // in the loop, so the loaded register counts as redefined.)
        let mut defined_in_loop = [false; crate::loc::NUM_LOCS];
        for &b in &l.body {
            for pc in cfg.blocks[b as usize].pcs() {
                if let Some(d) = crate::loc::def_loc(&program.code[pc as usize]) {
                    defined_in_loop[d.index()] = true;
                }
            }
        }
        let some_exit_varies = l.exit_edges.iter().any(|&(from, _)| {
            let term = cfg.blocks[from as usize].end - 1;
            use_locs(&program.code[term as usize]).any(|u| defined_in_loop[u.index()])
        });
        if !some_exit_varies {
            diags.push(Diag {
                severity: Severity::Warning,
                rule: "loop-invariant-exit",
                pc: Some(cfg.blocks[l.header as usize].start),
                message: format!(
                    "loop headed at pc {}: no exit condition register is \
                     modified inside the loop",
                    cfg.blocks[l.header as usize].start
                ),
            });
        }
    }
    for a in ranges.below_data_base() {
        diags.push(Diag {
            severity: Severity::Warning,
            rule: "addr-below-data",
            pc: Some(a.pc),
            message: format!(
                "pc {}: {} address is provably below the data segment base",
                a.pc,
                if a.store { "store" } else { "load" }
            ),
        });
    }
    for a in ranges.unaligned() {
        diags.push(Diag {
            severity: Severity::Warning,
            rule: "unaligned-access",
            pc: Some(a.pc),
            message: format!("pc {}: access to a provably unaligned address", a.pc),
        });
    }

    // -- info ------------------------------------------------------------
    if cfg.has_indirect {
        let message = if cfg.unresolved_indirect {
            "program contains indirect jumps; CFG edges are fully \
             conservative"
                .to_string()
        } else {
            format!(
                "program contains indirect jumps; all {} resolved to \
                 bounded target ranges by the interval analysis",
                cfg.refined_indirect.len()
            )
        };
        diags.push(Diag {
            severity: Severity::Info,
            rule: "indirect-jump",
            pc: None,
            message,
        });
    }

    diags.sort_by(|a, b| b.severity.cmp(&a.severity).then(a.pc.cmp(&b.pc)));
    LintReport {
        name: program.name.clone(),
        insts: n,
        blocks: cfg.blocks.len(),
        reachable_blocks: cfg.reachable.iter().filter(|r| **r).count(),
        loops: cfg.loops.len(),
        back_edges: cfg.back_edges.len(),
        mem_ops: ranges.accesses.len(),
        bounded_mem: ranges.bounded(),
        solver_iterations: live.iterations + reach.iterations,
        diags,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvp_isa::{ProgramBuilder, Reg};

    #[test]
    fn clean_loop_kernel_lints_clean() {
        let mut b = ProgramBuilder::new();
        b.name("clean");
        let (i, n, acc) = (Reg(1), Reg(2), Reg(3));
        b.li(i, 0);
        b.li(n, 10);
        b.li(acc, 0);
        let top = b.here_label();
        b.add(acc, acc, i);
        b.addi(i, i, 1);
        b.blt(i, n, top);
        b.halt();
        let r = lint_program(&b.build());
        assert_eq!(r.errors(), 0, "{:?}", r.diags);
        assert_eq!(r.warnings(), 0, "{:?}", r.diags);
        assert_eq!(r.loops, 1);
        assert_eq!(r.name, "clean");
    }

    #[test]
    fn uninit_read_is_an_error() {
        let mut b = ProgramBuilder::new();
        b.addi(Reg(2), Reg(1), 1); // r1 never written
        b.halt();
        let r = lint_program(&b.build());
        assert_eq!(r.errors(), 1);
        assert_eq!(r.diags[0].rule, "uninit-read");
        assert_eq!(r.to_value()["diags"][0]["severity"], json!("error"));
    }

    #[test]
    fn infinite_loop_and_missing_halt_are_flagged() {
        let mut b = ProgramBuilder::new();
        let top = b.here_label();
        b.j(top); // spin forever; halt below is unreachable
        b.halt();
        let r = lint_program(&b.build());
        assert!(r.diags.iter().any(|d| d.rule == "infinite-loop"));
        assert!(r.diags.iter().any(|d| d.rule == "no-reachable-halt"));
    }

    #[test]
    fn redundant_jump_and_dead_store_are_warnings() {
        let mut b = ProgramBuilder::new();
        b.li(Reg(1), 1); // dead store: overwritten below
        b.li(Reg(1), 2);
        let next = b.label();
        b.j(next);
        b.bind(next);
        b.addi(Reg(2), Reg(1), 0);
        b.halt();
        let r = lint_program(&b.build());
        assert_eq!(r.errors(), 0);
        let rules: Vec<_> = r.diags.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&"redundant-jump"));
        assert!(rules.contains(&"dead-store"));
    }

    #[test]
    fn loop_invariant_exit_is_flagged() {
        let mut b = ProgramBuilder::new();
        b.li(Reg(1), 0);
        b.li(Reg(2), 5);
        b.li(Reg(3), 0);
        let top = b.here_label();
        b.addi(Reg(3), Reg(3), 1); // loop modifies only r3
        b.blt(Reg(1), Reg(2), top); // exit tests r1, r2: never changes
        b.halt();
        let r = lint_program(&b.build());
        assert!(r.diags.iter().any(|d| d.rule == "loop-invariant-exit"));
    }

    #[test]
    fn registry_export_has_lint_counters() {
        let mut b = ProgramBuilder::new();
        b.li(Reg(1), 1);
        b.halt();
        let r = lint_program(&b.build());
        let reg = r.registry();
        assert_eq!(reg.counter("lint.errors"), 0);
        assert_eq!(reg.counter("lint.blocks"), r.blocks as u64);
    }
}
