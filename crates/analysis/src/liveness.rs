//! Register liveness over the 64-location register domain.
//!
//! Backward may-analysis: a register is live at a point if some path from
//! that point reads it before writing it. The boundary set is FULL — every
//! architectural register is considered live at thread end, because the
//! harness (and tests such as the kernel self-checks) observe final
//! register state after halt. This deliberately suppresses "dead store"
//! reports for result registers written just before halting.

use crate::bitset::BitSet;
use crate::cfg::Cfg;
use crate::dataflow::{solve, Direction, GenKill, Meet};
use crate::loc::{def_loc, use_locs, NUM_LOCS};
use mtvp_isa::Program;

/// Liveness fixpoint: one set of live locations per block boundary.
pub struct Liveness {
    /// Locations live on entry to each block.
    pub live_in: Vec<BitSet>,
    /// Locations live on exit from each block.
    pub live_out: Vec<BitSet>,
    /// Solver transfer evaluations until the fixpoint.
    pub iterations: usize,
}

/// Compute register liveness for `program` over its `cfg`.
pub fn compute(program: &Program, cfg: &Cfg) -> Liveness {
    let nb = cfg.blocks.len();
    let mut gen: Vec<BitSet> = (0..nb).map(|_| BitSet::new(NUM_LOCS)).collect();
    let mut kill: Vec<BitSet> = (0..nb).map(|_| BitSet::new(NUM_LOCS)).collect();

    for (b, (g, k)) in gen.iter_mut().zip(kill.iter_mut()).enumerate() {
        // Upward-exposed uses: reads not preceded by a def in this block.
        for pc in cfg.blocks[b].pcs() {
            let inst = &program.code[pc as usize];
            for u in use_locs(inst) {
                if !k.contains(u.index()) {
                    g.insert(u.index());
                }
            }
            if let Some(d) = def_loc(inst) {
                k.insert(d.index());
            }
        }
    }

    let sol = solve(
        cfg,
        &GenKill {
            direction: Direction::Backward,
            meet: Meet::Union,
            bits: NUM_LOCS,
            gen,
            kill,
            boundary: BitSet::full(NUM_LOCS),
        },
    );
    Liveness {
        live_in: sol.out,
        live_out: sol.meet,
        iterations: sol.iterations,
    }
}

/// Dead pure stores: instructions whose defined register is overwritten
/// before any read on every path. Loads, stores, and control instructions
/// are never reported (they have side effects beyond the register write).
pub fn dead_defs(program: &Program, cfg: &Cfg, live: &Liveness) -> Vec<u32> {
    let mut dead = Vec::new();
    for (b, block) in cfg.blocks.iter().enumerate() {
        if !cfg.reachable[b] {
            continue;
        }
        let mut live_now = live.live_out[b].clone();
        for pc in block.pcs().rev() {
            let inst = &program.code[pc as usize];
            if let Some(d) = def_loc(inst) {
                let was_live = live_now.contains(d.index());
                live_now.remove(d.index());
                if !was_live && !inst.is_load() && !inst.is_store() && !inst.is_control() {
                    dead.push(pc);
                }
            }
            for u in use_locs(inst) {
                live_now.insert(u.index());
            }
        }
    }
    dead.sort_unstable();
    dead
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loc::Loc;
    use mtvp_isa::{ProgramBuilder, Reg};

    #[test]
    fn loop_carried_register_is_live_at_header() {
        let mut b = ProgramBuilder::new();
        let (i, n) = (Reg(1), Reg(2));
        b.li(i, 0);
        b.li(n, 8);
        let top = b.here_label();
        b.addi(i, i, 1);
        b.blt(i, n, top);
        b.halt();
        let p = b.build();
        let cfg = Cfg::build(&p);
        let live = compute(&p, &cfg);
        let header = cfg.block_of[2] as usize;
        assert!(live.live_in[header].contains(Loc::Int(1).index()));
        assert!(live.live_in[header].contains(Loc::Int(2).index()));
        // Boundary is full: everything is live out of the exit block.
        let exit = cfg.block_of[p.code.len() - 1] as usize;
        assert_eq!(live.live_out[exit].count(), NUM_LOCS);
    }

    #[test]
    fn overwritten_store_is_dead_but_final_write_is_not() {
        let mut b = ProgramBuilder::new();
        b.li(Reg(1), 1); // dead: overwritten before any read
        b.li(Reg(1), 2);
        b.addi(Reg(2), Reg(1), 0);
        b.halt();
        let p = b.build();
        let cfg = Cfg::build(&p);
        let live = compute(&p, &cfg);
        let dead = dead_defs(&p, &cfg, &live);
        assert_eq!(dead, vec![0]);
    }
}
