//! Register locations: the 64-element domain (32 integer + 32 fp
//! architectural registers) shared by liveness, reaching definitions and
//! the uninitialized-use check.
//!
//! `r0` is hardwired to zero: [`mtvp_isa::Inst::def`] never reports it as
//! a destination and [`mtvp_isa::Inst::uses`] elides it as a source, so
//! its location index simply never appears in def/use sets.

use mtvp_isa::{Def, Inst};

/// Size of the location domain: 32 integer + 32 floating-point registers.
pub const NUM_LOCS: usize = 64;

/// One architectural register, as a dataflow location.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Loc {
    /// Integer register `r<n>`.
    Int(u8),
    /// Floating-point register `f<n>`.
    Fp(u8),
}

impl Loc {
    /// Dense index in `0..NUM_LOCS`: integer registers first, then fp.
    pub fn index(self) -> usize {
        match self {
            Loc::Int(r) => r as usize,
            Loc::Fp(f) => 32 + f as usize,
        }
    }

    /// Inverse of [`Loc::index`].
    pub fn from_index(i: usize) -> Loc {
        debug_assert!(i < NUM_LOCS);
        if i < 32 {
            Loc::Int(i as u8)
        } else {
            Loc::Fp((i - 32) as u8)
        }
    }
}

impl std::fmt::Display for Loc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Loc::Int(r) => write!(f, "r{r}"),
            Loc::Fp(r) => write!(f, "f{r}"),
        }
    }
}

/// The location an instruction defines, if any.
pub fn def_loc(inst: &Inst) -> Option<Loc> {
    match inst.def() {
        Def::None => None,
        Def::Int(r) => Some(Loc::Int(r.0)),
        Def::Fp(f) => Some(Loc::Fp(f.0)),
    }
}

/// The locations an instruction reads (source registers; `Fmadd` includes
/// its destination, which it reads as an accumulator).
pub fn use_locs(inst: &Inst) -> impl Iterator<Item = Loc> {
    let u = inst.uses();
    u.int
        .into_iter()
        .flatten()
        .map(|r| Loc::Int(r.0))
        .chain(u.fp.into_iter().flatten().map(|f| Loc::Fp(f.0)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvp_isa::Op;

    fn inst(op: Op, rd: u8, rs1: u8, rs2: u8) -> Inst {
        Inst {
            op,
            rd,
            rs1,
            rs2,
            imm: 0,
        }
    }

    #[test]
    fn index_round_trips() {
        for i in 0..NUM_LOCS {
            assert_eq!(Loc::from_index(i).index(), i);
        }
        assert_eq!(Loc::Int(5).to_string(), "r5");
        assert_eq!(Loc::Fp(3).to_string(), "f3");
        assert_eq!(Loc::Fp(0).index(), 32);
    }

    #[test]
    fn defs_and_uses_map_to_locs() {
        let add = inst(Op::Add, 3, 1, 2);
        assert_eq!(def_loc(&add), Some(Loc::Int(3)));
        assert_eq!(
            use_locs(&add).collect::<Vec<_>>(),
            vec![Loc::Int(1), Loc::Int(2)]
        );
        // r0 never appears as a location.
        let zd = inst(Op::Add, 0, 0, 2);
        assert_eq!(def_loc(&zd), None);
        assert_eq!(use_locs(&zd).collect::<Vec<_>>(), vec![Loc::Int(2)]);
        // Fmadd reads its fp destination.
        let fma = inst(Op::Fmadd, 4, 1, 2);
        assert_eq!(def_loc(&fma), Some(Loc::Fp(4)));
        assert!(use_locs(&fma).any(|l| l == Loc::Fp(4)));
    }
}
