//! Best-effort static address-range analysis for loads and stores.
//!
//! An abstract interpretation over the 32 integer registers with an
//! interval domain. The transfer functions cover the arithmetic the
//! workload builders actually use to form addresses (`li`, `addi`, `add`,
//! `sub`, shifts, `andi` masking); everything else conservatively goes to
//! `Top`. Intervals are widened to `Top` once a register keeps changing
//! at a join, so the fixpoint terminates quickly regardless of loop
//! structure.
//!
//! The program builder's `reserve()` allocates arena space without
//! creating a data segment, so the analysis cannot know the true top of
//! data memory. It therefore only reports accesses **provably below**
//! [`DATA_BASE`] (where no data ever lives) and provably unaligned
//! accesses — both as warnings — and counts how many memory operations
//! have a bounded address interval at all.

use crate::cfg::Cfg;
use mtvp_isa::{Op, Program, DATA_BASE};

/// Abstract value of one integer register.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum AbsVal {
    /// Unreached (bottom).
    Bot,
    /// All concrete values in `[lo, hi]` (i128 to make arithmetic safe).
    Range(i128, i128),
    /// Unknown (top).
    Top,
}

impl AbsVal {
    fn join(self, other: AbsVal) -> AbsVal {
        match (self, other) {
            (AbsVal::Bot, x) | (x, AbsVal::Bot) => x,
            (AbsVal::Top, _) | (_, AbsVal::Top) => AbsVal::Top,
            (AbsVal::Range(a, b), AbsVal::Range(c, d)) => AbsVal::Range(a.min(c), b.max(d)),
        }
    }

    fn add(self, other: AbsVal) -> AbsVal {
        match (self, other) {
            (AbsVal::Range(a, b), AbsVal::Range(c, d)) => AbsVal::Range(a + c, b + d),
            _ => AbsVal::Top,
        }
    }

    fn sub(self, other: AbsVal) -> AbsVal {
        match (self, other) {
            (AbsVal::Range(a, b), AbsVal::Range(c, d)) => AbsVal::Range(a - d, b - c),
            _ => AbsVal::Top,
        }
    }

    fn const_(v: i128) -> AbsVal {
        AbsVal::Range(v, v)
    }
}

/// One load or store with the statically inferred address interval.
#[derive(Clone, Debug)]
pub struct MemAccess {
    /// The memory instruction.
    pub pc: u32,
    /// Whether it writes memory.
    pub store: bool,
    /// Inferred address interval, if bounded.
    pub range: Option<(i128, i128)>,
}

/// Per-program summary of the address analysis.
pub struct AddrRanges {
    /// One entry per reachable load/store, in pc order.
    pub accesses: Vec<MemAccess>,
}

impl AddrRanges {
    /// Memory operations with a bounded (non-Top) address interval.
    pub fn bounded(&self) -> usize {
        self.accesses.iter().filter(|a| a.range.is_some()).count()
    }

    /// Accesses provably entirely below the data segment base.
    pub fn below_data_base(&self) -> impl Iterator<Item = &MemAccess> {
        self.accesses
            .iter()
            .filter(|a| matches!(a.range, Some((lo, hi)) if lo >= 0 && hi < DATA_BASE as i128))
    }

    /// Accesses with a provably unaligned singleton address.
    pub fn unaligned(&self) -> impl Iterator<Item = &MemAccess> {
        self.accesses
            .iter()
            .filter(|a| matches!(a.range, Some((lo, hi)) if lo == hi && lo % 8 != 0))
    }
}

const NUM_INT: usize = 32;
/// Block visits before changing registers are widened to Top at joins.
const WIDEN_AFTER: u32 = 2;

fn transfer(inst: &mtvp_isa::Inst, regs: &mut [AbsVal; NUM_INT]) {
    let rs1 = regs[inst.rs1 as usize];
    let rs2 = regs[inst.rs2 as usize];
    let imm = inst.imm as i128;
    let v = match inst.op {
        Op::Li => AbsVal::const_(imm),
        Op::Addi => rs1.add(AbsVal::const_(imm)),
        Op::Add => rs1.add(rs2),
        Op::Sub => rs1.sub(rs2),
        Op::Andi if inst.imm >= 0 => {
            // Masking with a non-negative imm bounds the result to
            // [0, imm] regardless of the input (sound even for Top).
            AbsVal::Range(0, imm)
        }
        Op::Slli => match rs1 {
            AbsVal::Range(lo, hi) if lo >= 0 && (0..64).contains(&inst.imm) => {
                AbsVal::Range(lo << inst.imm, hi << inst.imm)
            }
            _ => AbsVal::Top,
        },
        Op::Srli | Op::Srai => match rs1 {
            AbsVal::Range(lo, hi) if lo >= 0 && (0..64).contains(&inst.imm) => {
                AbsVal::Range(lo >> inst.imm, hi >> inst.imm)
            }
            _ => AbsVal::Top,
        },
        Op::Slt | Op::Sltu | Op::Slti | Op::Fclt | Op::Fcle | Op::Fceq => AbsVal::Range(0, 1),
        _ => AbsVal::Top,
    };
    // Only update when the op actually defines an integer register.
    if let mtvp_isa::Def::Int(r) = inst.def() {
        regs[r.0 as usize] = v;
    }
}

/// Fixpoint of the interval analysis: abstract register state at each
/// block entry (`None` = unreachable). Shared by the memory-access
/// classifier below and the CFG's indirect-jump refinement.
pub(crate) fn block_entry_states(program: &Program, cfg: &Cfg) -> Vec<Option<[AbsVal; NUM_INT]>> {
    let nb = cfg.blocks.len();
    // Entry state: the interpreter zeroes all registers at thread start.
    let zeroed = [AbsVal::const_(0); NUM_INT];
    let mut state_in: Vec<Option<[AbsVal; NUM_INT]>> = vec![None; nb];
    let mut visits = vec![0u32; nb];
    state_in[0] = Some(zeroed);

    let mut on_queue = vec![false; nb];
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(0usize);
    on_queue[0] = true;

    while let Some(b) = queue.pop_front() {
        on_queue[b] = false;
        let mut regs = state_in[b].expect("queued blocks have a state");
        visits[b] += 1;
        for pc in cfg.blocks[b].pcs() {
            transfer(&program.code[pc as usize], &mut regs);
        }
        for &s in &cfg.blocks[b].succs {
            let s = s as usize;
            let next = match state_in[s] {
                None => regs,
                Some(prev) => {
                    let mut joined = prev;
                    for (j, r) in joined.iter_mut().zip(regs.iter()) {
                        let merged = j.join(*r);
                        // Widen: once this block keeps being revisited,
                        // any register still changing at the join goes
                        // straight to Top so the fixpoint terminates.
                        *j = if merged != *j && visits[s] > WIDEN_AFTER {
                            AbsVal::Top
                        } else {
                            merged
                        };
                    }
                    joined
                }
            };
            if state_in[s] != Some(next) {
                state_in[s] = Some(next);
                if !on_queue[s] {
                    on_queue[s] = true;
                    queue.push_back(s);
                }
            }
        }
    }
    state_in
}

/// Inferred value interval of the jump register at every reachable
/// indirect jump (`jr` / `jalr`), as `(pc, Some((lo, hi)) | None)`.
/// Computed over `cfg` as given — running it on the fully conservative
/// CFG yields sound bounds the builder can then use to refine edges.
pub(crate) fn indirect_targets(program: &Program, cfg: &Cfg) -> Vec<(u32, Option<(i128, i128)>)> {
    let state_in = block_entry_states(program, cfg);
    let mut out = Vec::new();
    for (b, block) in cfg.blocks.iter().enumerate() {
        let Some(mut regs) = state_in[b] else {
            continue; // unreachable
        };
        for pc in block.pcs() {
            let inst = &program.code[pc as usize];
            if matches!(inst.op, Op::Jr | Op::Jalr) {
                out.push((
                    pc,
                    match regs[inst.rs1 as usize] {
                        AbsVal::Range(lo, hi) => Some((lo, hi)),
                        _ => None,
                    },
                ));
            }
            transfer(inst, &mut regs);
        }
    }
    out
}

/// Run the interval analysis and classify every reachable memory access.
pub fn analyze(program: &Program, cfg: &Cfg) -> AddrRanges {
    let state_in = block_entry_states(program, cfg);

    // Classify memory accesses with the final block-entry states.
    let mut accesses = Vec::new();
    for (b, block) in cfg.blocks.iter().enumerate() {
        let Some(mut regs) = state_in[b] else {
            continue; // unreachable
        };
        for pc in block.pcs() {
            let inst = &program.code[pc as usize];
            if inst.is_load() || inst.is_store() {
                let addr = regs[inst.rs1 as usize].add(AbsVal::const_(inst.imm as i128));
                accesses.push(MemAccess {
                    pc,
                    store: inst.is_store(),
                    range: match addr {
                        AbsVal::Range(lo, hi) => Some((lo, hi)),
                        _ => None,
                    },
                });
            }
            transfer(inst, &mut regs);
        }
    }
    AddrRanges { accesses }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvp_isa::{ProgramBuilder, Reg};

    #[test]
    fn arena_masked_access_is_bounded() {
        let mut b = ProgramBuilder::new();
        let base = b.alloc_zeroed(64);
        b.li(Reg(1), base as i64);
        b.li(Reg(2), 123456789);
        b.andi(Reg(3), Reg(2), 0x1f8); // mask to [0, 0x1f8]
        b.add(Reg(4), Reg(1), Reg(3));
        b.ld(Reg(5), Reg(4), 0);
        b.halt();
        let p = b.build();
        let cfg = Cfg::build(&p);
        let ar = analyze(&p, &cfg);
        assert_eq!(ar.accesses.len(), 1);
        let (lo, hi) = ar.accesses[0].range.expect("bounded");
        assert_eq!(lo, base as i128);
        assert_eq!(hi, base as i128 + 0x1f8);
        assert_eq!(ar.below_data_base().count(), 0);
        assert_eq!(ar.unaligned().count(), 0);
    }

    #[test]
    fn below_data_base_store_is_flagged() {
        let mut b = ProgramBuilder::new();
        b.li(Reg(1), 64);
        b.st(Reg(0), Reg(1), 0); // address 64, far below DATA_BASE
        b.halt();
        let p = b.build();
        let cfg = Cfg::build(&p);
        let ar = analyze(&p, &cfg);
        assert_eq!(ar.below_data_base().count(), 1);
        assert!(ar.below_data_base().next().unwrap().store);
    }

    #[test]
    fn unaligned_singleton_is_flagged() {
        let mut b = ProgramBuilder::new();
        let base = b.alloc_zeroed(16);
        b.li(Reg(1), base as i64 + 4);
        b.ld(Reg(2), Reg(1), 0);
        b.halt();
        let p = b.build();
        let cfg = Cfg::build(&p);
        let ar = analyze(&p, &cfg);
        assert_eq!(ar.unaligned().count(), 1);
    }

    #[test]
    fn loop_induction_address_widens_to_top() {
        let mut b = ProgramBuilder::new();
        let base = b.alloc_zeroed(1024);
        b.li(Reg(1), base as i64);
        b.li(Reg(2), 0);
        b.li(Reg(3), 100);
        let top = b.here_label();
        b.ld(Reg(4), Reg(1), 0);
        b.addi(Reg(1), Reg(1), 8);
        b.addi(Reg(2), Reg(2), 1);
        b.blt(Reg(2), Reg(3), top);
        b.halt();
        let p = b.build();
        let cfg = Cfg::build(&p);
        let ar = analyze(&p, &cfg);
        // The unmasked induction address widens to Top: unbounded, but
        // crucially never reported as below the data base.
        assert_eq!(ar.accesses.len(), 1);
        assert_eq!(ar.below_data_base().count(), 0);
    }
}
