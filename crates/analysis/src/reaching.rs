//! Reaching definitions with explicit "uninitialized" pseudo-definitions,
//! used to prove (or refute) that every register read is preceded by a
//! write on every path.
//!
//! The bit domain is `NUM_LOCS` entry bits (bit `l` = "location `l` is
//! still uninitialized") followed by one bit per real definition site in
//! pc order. The boundary injects all 64 entry bits at the program entry;
//! a read at `pc` of location `l` is an uninitialized use iff bit `l`
//! still reaches `pc`.
//!
//! Note the interpreter zeroes all registers at thread start, so an
//! "uninitialized read" cannot crash — but it makes the program depend on
//! that implicit zero, which every shipped kernel is expected to avoid
//! (and the lint enforces).

use crate::bitset::BitSet;
use crate::cfg::Cfg;
use crate::dataflow::{solve, Direction, GenKill, Meet};
use crate::loc::{def_loc, use_locs, Loc, NUM_LOCS};
use mtvp_isa::Program;

/// Reaching-definitions fixpoint plus the def-site table.
pub struct Reaching {
    /// Definition sites (pcs that define a register), in pc order.
    /// Bit `NUM_LOCS + i` of the domain corresponds to `sites[i]`.
    pub sites: Vec<u32>,
    /// Defs reaching the entry of each block.
    pub reach_in: Vec<BitSet>,
    /// Defs reaching the exit of each block.
    pub reach_out: Vec<BitSet>,
    /// For each location, the set of all its def bits (entry bit + sites).
    pub defs_of: Vec<BitSet>,
    /// Solver transfer evaluations until the fixpoint.
    pub iterations: usize,
}

/// One read of a register the analysis could not prove initialized.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UninitUse {
    /// The reading instruction.
    pub pc: u32,
    /// The register read.
    pub loc: Loc,
}

/// Compute reaching definitions for `program` over its `cfg`.
pub fn compute(program: &Program, cfg: &Cfg) -> Reaching {
    let nb = cfg.blocks.len();
    let sites: Vec<u32> = (0..program.code.len() as u32)
        .filter(|&pc| def_loc(&program.code[pc as usize]).is_some())
        .collect();
    let bits = NUM_LOCS + sites.len();

    // Map each def site pc to its bit, and collect per-location def sets.
    let mut bit_of_site = vec![usize::MAX; program.code.len()];
    let mut defs_of: Vec<BitSet> = (0..NUM_LOCS).map(|_| BitSet::new(bits)).collect();
    for (l, d) in defs_of.iter_mut().enumerate() {
        d.insert(l); // the "uninitialized" pseudo-def
    }
    for (i, &pc) in sites.iter().enumerate() {
        bit_of_site[pc as usize] = NUM_LOCS + i;
        let loc = def_loc(&program.code[pc as usize]).expect("site defines");
        defs_of[loc.index()].insert(NUM_LOCS + i);
    }

    let mut gen: Vec<BitSet> = (0..nb).map(|_| BitSet::new(bits)).collect();
    let mut kill: Vec<BitSet> = (0..nb).map(|_| BitSet::new(bits)).collect();
    for (b, (g, k)) in gen.iter_mut().zip(kill.iter_mut()).enumerate() {
        for pc in cfg.blocks[b].pcs() {
            if let Some(loc) = def_loc(&program.code[pc as usize]) {
                // A later def in the block kills earlier gens of the same loc.
                g.subtract(&defs_of[loc.index()]);
                k.union_with(&defs_of[loc.index()]);
                g.insert(bit_of_site[pc as usize]);
            }
        }
    }

    let mut boundary = BitSet::new(bits);
    for l in 0..NUM_LOCS {
        boundary.insert(l);
    }
    let sol = solve(
        cfg,
        &GenKill {
            direction: Direction::Forward,
            meet: Meet::Union,
            bits,
            gen,
            kill,
            boundary,
        },
    );
    Reaching {
        sites,
        reach_in: sol.meet,
        reach_out: sol.out,
        defs_of,
        iterations: sol.iterations,
    }
}

/// All reads in reachable code where the "uninitialized" pseudo-def of
/// the read location still reaches the reading instruction.
pub fn uninit_uses(program: &Program, cfg: &Cfg, reach: &Reaching) -> Vec<UninitUse> {
    let mut found = Vec::new();
    for (b, block) in cfg.blocks.iter().enumerate() {
        if !cfg.reachable[b] {
            continue;
        }
        // Walk the block forward, tracking which locations have been
        // defined locally; a local def clears the entry bit.
        let mut uninit: Vec<bool> = (0..NUM_LOCS)
            .map(|l| reach.reach_in[b].contains(l))
            .collect();
        for pc in block.pcs() {
            let inst = &program.code[pc as usize];
            for u in use_locs(inst) {
                if uninit[u.index()] {
                    found.push(UninitUse { pc, loc: u });
                }
            }
            if let Some(d) = def_loc(inst) {
                uninit[d.index()] = false;
            }
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvp_isa::{FReg, ProgramBuilder, Reg};

    #[test]
    fn detects_one_path_uninitialized_read() {
        // r2 is set only on the taken path; the join reads it regardless.
        let mut b = ProgramBuilder::new();
        let (skip, join) = (b.label(), b.label());
        b.beq(Reg(1), Reg(0), skip);
        b.li(Reg(2), 7);
        b.j(join);
        b.bind(skip);
        b.bind(join);
        b.addi(Reg(3), Reg(2), 0); // may read uninitialized r2
        b.halt();
        let p = b.build();
        let cfg = Cfg::build(&p);
        let reach = compute(&p, &cfg);
        let uses = uninit_uses(&p, &cfg, &reach);
        assert_eq!(uses.len(), 2, "r1 at the branch and r2 at the join");
        assert!(uses.iter().any(|u| u.loc == Loc::Int(2)));
        assert!(uses.iter().any(|u| u.loc == Loc::Int(1)));
    }

    #[test]
    fn fully_initialized_program_is_clean() {
        let mut b = ProgramBuilder::new();
        b.li(Reg(1), 3);
        b.li(Reg(2), 4);
        b.add(Reg(3), Reg(1), Reg(2));
        b.icvtf(FReg(1), Reg(3));
        b.fadd(FReg(2), FReg(1), FReg(1));
        b.halt();
        let p = b.build();
        let cfg = Cfg::build(&p);
        let reach = compute(&p, &cfg);
        assert!(uninit_uses(&p, &cfg, &reach).is_empty());
        // All four defs are sites plus the icvtf/fadd ones.
        assert_eq!(reach.sites.len(), 5);
    }

    #[test]
    fn loop_carried_def_reaches_header() {
        let mut b = ProgramBuilder::new();
        b.li(Reg(1), 0);
        b.li(Reg(2), 4);
        let top = b.here_label();
        b.addi(Reg(1), Reg(1), 1);
        b.blt(Reg(1), Reg(2), top);
        b.halt();
        let p = b.build();
        let cfg = Cfg::build(&p);
        let reach = compute(&p, &cfg);
        assert!(uninit_uses(&p, &cfg, &reach).is_empty());
        let header = cfg.block_of[2] as usize;
        // Both the preamble li and the loop addi of r1 reach the header.
        let r1_defs: Vec<usize> = reach.defs_of[1]
            .iter()
            .filter(|&bit| bit >= NUM_LOCS && reach.reach_in[header].contains(bit))
            .collect();
        assert_eq!(r1_defs.len(), 2);
    }
}
