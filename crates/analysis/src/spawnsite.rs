//! Spawn-site enumeration, scoring and the `SpawnHints` artifact.
//!
//! For each natural loop (back edges merged by header) and each call
//! (`jal` / `jalr`) the pass computes the fork-point live-in set from the
//! liveness solver, classifies every live-in with the induction analysis
//! in [`crate::induction`], and scores the site:
//!
//! ```text
//! score    = coverage × (predictable − 4 × risky)
//! selected = score > 0  &&  coverage ≥ 4
//! ```
//!
//! where `coverage` is the instruction count of the region (loop body /
//! call continuation block), `predictable` counts live-ins classified
//! `Constant` or `Affine`, and `risky` counts the rest. The factor 4 is
//! the misspeculation penalty: one unpredictable live-in costs as much
//! expected work as four predictable ones buy, mirroring the paper's
//! observation that a single mispredicted live-in squashes the whole
//! speculative thread. Real kernels always carry an accumulator or a
//! memory-carried value in their loops, so selection demands that the
//! predictable live-ins *outweigh* the penalized risk, not that risk be
//! zero — a region is worth spawning into when run-ahead execution is
//! expected to stay profitable despite it.
//!
//! The pass emits a serde [`SpawnHints`] artifact whose `hinted_loads`
//! are the load pcs inside selected regions — the set the
//! `StaticHintSpawn` pipeline policy admits for spawn consideration.
//!
//! [`validate_spawn_hints`] is the differential soundness check: it
//! replays the program in the reference interpreter and holds every
//! `Constant` / `Affine` verdict to a 100% last-value / last-plus-stride
//! hit rate *within a loop activation* (the documented threshold —
//! activations are delimited by leaving the static loop body), and every
//! call-site constant to its exact static value at every continuation
//! visit. Any miss is an analysis bug and returns `Err`.

use crate::bitset::BitSet;
use crate::cfg::Cfg;
use crate::induction::{classify_call_live_in, classify_loop_live_in, InductionClass, Verdict};
use crate::liveness;
use crate::loc::{Loc, NUM_LOCS};
use crate::reaching;
use crate::ANALYSIS_VERSION;
use mtvp_isa::interp::{Interp, SimpleBus, Step};
use mtvp_isa::{Op, Program};
use serde::{Deserialize, Serialize};

/// Minimum region size (instructions) for a site to be selected.
pub const MIN_COVERAGE: u64 = 4;
/// Score penalty multiplier for each unpredictable live-in.
pub const MISSPEC_PENALTY: i64 = 4;

/// What kind of region a spawn site covers.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SiteKind {
    /// A natural loop; the fork point is the loop header.
    Loop,
    /// A call; the fork point is the post-call continuation.
    Call,
}

/// One classified live-in as recorded in the artifact.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LiveInInfo {
    /// Register name (`r5`, `f3`).
    pub reg: String,
    /// Predictability class.
    pub class: InductionClass,
    /// `Affine` stride or call-site `Constant` value; 0 otherwise.
    pub payload: i64,
}

/// One scored candidate spawn site.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpawnSite {
    /// Region kind.
    pub kind: SiteKind,
    /// Loop: header pc. Call: the `jal`/`jalr` pc.
    pub fork_pc: u64,
    /// Loop: header pc. Call: continuation pc (`fork_pc + 1`).
    pub target_pc: u64,
    /// Instruction count of the covered region.
    pub coverage: u64,
    /// Total fork-point live-ins classified.
    pub live_ins_total: u32,
    /// Live-ins classified `Constant` or `Affine`.
    pub predictable: u32,
    /// Live-ins in the remaining (risk) classes.
    pub risky: u32,
    /// `coverage × (predictable − 4 × risky)`.
    pub score: i64,
    /// Whether the hint policy admits loads in this region.
    pub selected: bool,
    /// The informative verdicts: for loops, live-ins that change inside
    /// the body (class ≠ `Constant`); for calls, the proven constants.
    pub live_ins: Vec<LiveInInfo>,
}

/// The cached spawn-hint artifact for one program.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpawnHints {
    /// Analysis version that produced the artifact.
    pub version: String,
    /// Program name.
    pub bench: String,
    /// All candidate sites, loops first, each group sorted by `fork_pc`.
    pub sites: Vec<SpawnSite>,
    /// Number of selected sites.
    pub selected_sites: u32,
    /// Load pcs inside selected regions (sorted, deduplicated) — the
    /// spawn filter consumed by the `StaticHintSpawn` policy.
    pub hinted_loads: Vec<u64>,
}

/// Internal site representation carrying the full verdict list (the
/// artifact keeps only the informative subset; the validator checks all).
struct SiteInfo {
    kind: SiteKind,
    fork_pc: u32,
    /// Pc the validator hooks: loop header pc / continuation pc.
    check_pc: u32,
    /// Loop body as a block set (`None` for calls).
    body: Option<BitSet>,
    coverage: u64,
    verdicts: Vec<Verdict>,
}

/// Natural loops merged by header: `(header, body_blocks, latches)`.
fn merged_loops(cfg: &Cfg) -> Vec<(u32, BitSet, Vec<u32>)> {
    let mut merged: Vec<(u32, BitSet, Vec<u32>)> = Vec::new();
    for l in &cfg.loops {
        if let Some(m) = merged.iter_mut().find(|m| m.0 == l.header) {
            for &blk in &l.body {
                m.1.insert(blk as usize);
            }
            m.2.push(l.latch);
        } else {
            let mut body = BitSet::new(cfg.blocks.len());
            for &blk in &l.body {
                body.insert(blk as usize);
            }
            merged.push((l.header, body, vec![l.latch]));
        }
    }
    merged.sort_by_key(|m| cfg.blocks[m.0 as usize].start);
    merged
}

fn enumerate_sites(program: &Program, cfg: &Cfg) -> Vec<SiteInfo> {
    let live = liveness::compute(program, cfg);
    let reach = reaching::compute(program, cfg);
    let mut sites = Vec::new();

    for (header, body, latches) in merged_loops(cfg) {
        let coverage: u64 = body
            .iter()
            .map(|b| u64::from(cfg.blocks[b].end - cfg.blocks[b].start))
            .sum();
        let verdicts: Vec<Verdict> = (0..NUM_LOCS)
            .filter(|&i| live.live_in[header as usize].contains(i))
            .map(|i| {
                let loc = Loc::from_index(i);
                classify_loop_live_in(program, cfg, &reach, header, &body, &latches, loc)
            })
            .collect();
        sites.push(SiteInfo {
            kind: SiteKind::Loop,
            fork_pc: cfg.blocks[header as usize].start,
            check_pc: cfg.blocks[header as usize].start,
            body: Some(body),
            coverage,
            verdicts,
        });
    }

    for (pc, inst) in program.code.iter().enumerate() {
        if !matches!(inst.op, Op::Jal | Op::Jalr) {
            continue;
        }
        let cont = pc as u32 + 1;
        if cont as usize >= program.code.len() {
            continue;
        }
        let cont_block = cfg.block_of[cont as usize];
        if !cfg.reachable[cont_block as usize] || cfg.blocks[cont_block as usize].start != cont {
            continue; // continuation is dead or not a block head
        }
        let coverage =
            u64::from(cfg.blocks[cont_block as usize].end - cfg.blocks[cont_block as usize].start);
        let verdicts: Vec<Verdict> = (0..NUM_LOCS)
            .filter(|&i| live.live_in[cont_block as usize].contains(i))
            .map(|i| {
                classify_call_live_in(program, &reach, pc as u32, cont_block, Loc::from_index(i))
            })
            .collect();
        sites.push(SiteInfo {
            kind: SiteKind::Call,
            fork_pc: pc as u32,
            check_pc: cont,
            body: None,
            coverage,
            verdicts,
        });
    }
    sites
}

/// Run the full spawn-site analysis and build the artifact.
pub fn analyze_spawn_sites(program: &Program) -> SpawnHints {
    let cfg = Cfg::build(program);
    let infos = enumerate_sites(program, &cfg);
    let mut sites = Vec::with_capacity(infos.len());
    let mut hinted_loads: Vec<u64> = Vec::new();
    let mut selected_sites = 0u32;

    for info in &infos {
        let predictable = info
            .verdicts
            .iter()
            .filter(|v| v.class.predictable())
            .count() as u32;
        let total = info.verdicts.len() as u32;
        let risky = total - predictable;
        let score =
            info.coverage as i64 * (i64::from(predictable) - MISSPEC_PENALTY * i64::from(risky));
        let selected = score > 0 && info.coverage >= MIN_COVERAGE;
        if selected {
            selected_sites += 1;
            match (&info.body, info.kind) {
                (Some(body), _) => {
                    for b in body.iter() {
                        for pc in cfg.blocks[b].pcs() {
                            if program.code[pc as usize].is_load() {
                                hinted_loads.push(u64::from(pc));
                            }
                        }
                    }
                }
                (None, _) => {
                    let blk = &cfg.blocks[cfg.block_of[info.check_pc as usize] as usize];
                    for pc in blk.pcs() {
                        if program.code[pc as usize].is_load() {
                            hinted_loads.push(u64::from(pc));
                        }
                    }
                }
            }
        }
        let live_ins = info
            .verdicts
            .iter()
            .filter(|v| match info.kind {
                SiteKind::Loop => v.class != InductionClass::Constant,
                SiteKind::Call => v.class == InductionClass::Constant,
            })
            .map(|v| LiveInInfo {
                reg: v.loc.to_string(),
                class: v.class,
                payload: v.payload,
            })
            .collect();
        sites.push(SpawnSite {
            kind: info.kind,
            fork_pc: u64::from(info.fork_pc),
            target_pc: u64::from(info.check_pc),
            coverage: info.coverage,
            live_ins_total: total,
            predictable,
            risky,
            score,
            selected,
            live_ins,
        });
    }
    hinted_loads.sort_unstable();
    hinted_loads.dedup();
    SpawnHints {
        version: ANALYSIS_VERSION.to_string(),
        bench: program.name.clone(),
        sites,
        selected_sites,
        hinted_loads,
    }
}

/// Summary of one differential hint-validation run.
#[derive(Clone, Debug)]
pub struct HintCheckStats {
    /// Candidate sites enumerated (loops + calls).
    pub sites: usize,
    /// Fork-point visits observed dynamically.
    pub fork_visits: u64,
    /// Individual predictable-verdict checks performed.
    pub checks: u64,
    /// Interpreter steps executed.
    pub steps: u64,
    /// Whether the program halted within the budget.
    pub halted: bool,
}

/// Per-loop-site dynamic state for the validator.
struct LoopState {
    /// Whether the previous step executed inside the static body.
    active: bool,
    /// Last observed value per checked verdict (by position).
    last: Vec<Option<u64>>,
}

fn loc_value(interp: &Interp, loc: Loc) -> u64 {
    match loc {
        Loc::Int(r) => interp.int_regs[r as usize],
        Loc::Fp(r) => interp.fp_regs[r as usize].to_bits(),
    }
}

/// Replay `program` for at most `max_steps` and check every predictable
/// verdict of the spawn-site analysis against dynamic behaviour. `Err`
/// means the analysis produced an unsound verdict for this program.
pub fn validate_spawn_hints(program: &Program, max_steps: u64) -> Result<HintCheckStats, String> {
    let cfg = Cfg::build(program);
    let infos = enumerate_sites(program, &cfg);
    let n = program.code.len();

    // Loop sites: body pc mask + predictable verdict list. Call sites:
    // constant verdict list checked at every continuation visit.
    struct LoopCheck {
        site: usize,
        body_pcs: Vec<bool>,
        verdicts: Vec<Verdict>,
        state: LoopState,
    }
    let mut loop_checks: Vec<LoopCheck> = Vec::new();
    let mut call_checks: Vec<(usize, u32, Vec<Verdict>)> = Vec::new();
    for (idx, info) in infos.iter().enumerate() {
        let preds: Vec<Verdict> = info
            .verdicts
            .iter()
            .filter(|v| v.class.predictable())
            .copied()
            .collect();
        match &info.body {
            Some(body) => {
                let mut body_pcs = vec![false; n];
                for b in body.iter() {
                    for pc in cfg.blocks[b].pcs() {
                        body_pcs[pc as usize] = true;
                    }
                }
                let nv = preds.len();
                loop_checks.push(LoopCheck {
                    site: idx,
                    body_pcs,
                    verdicts: preds,
                    state: LoopState {
                        active: false,
                        last: vec![None; nv],
                    },
                });
            }
            None => call_checks.push((idx, info.check_pc, preds)),
        }
    }

    let mut bus = SimpleBus::new();
    program.init_memory(&mut bus);
    let mut interp = Interp::new(program);

    let mut steps = 0u64;
    let mut fork_visits = 0u64;
    let mut checks = 0u64;
    let mut halted = false;

    for _ in 0..max_steps {
        let pc = interp.pc;
        if pc as usize >= n {
            break;
        }
        let pc32 = pc as u32;

        for lc in &mut loop_checks {
            let info = &infos[lc.site];
            if pc32 == info.check_pc {
                fork_visits += 1;
                if lc.state.active {
                    for (vi, v) in lc.verdicts.iter().enumerate() {
                        let cur = loc_value(&interp, v.loc);
                        if let Some(prev) = lc.state.last[vi] {
                            let expect = match v.class {
                                InductionClass::Constant => prev,
                                InductionClass::Affine => prev.wrapping_add(v.payload as u64),
                                _ => unreachable!("only predictable verdicts checked"),
                            };
                            checks += 1;
                            if cur != expect {
                                return Err(format!(
                                    "unsound: loop site at pc {} classified {} as {:?} \
                                     but header visit saw {:#x}, expected {:#x}",
                                    info.fork_pc, v.loc, v.class, cur, expect
                                ));
                            }
                        }
                        lc.state.last[vi] = Some(cur);
                    }
                } else {
                    for (vi, v) in lc.verdicts.iter().enumerate() {
                        lc.state.last[vi] = Some(loc_value(&interp, v.loc));
                    }
                }
            }
            // Activation boundary: stepping outside the static body ends
            // the activation and resets the observation window.
            let in_body = lc.body_pcs[pc as usize];
            if !in_body && lc.state.active {
                for slot in &mut lc.state.last {
                    *slot = None;
                }
            }
            lc.state.active = in_body;
        }

        for (idx, cont_pc, preds) in &call_checks {
            if pc32 == *cont_pc {
                fork_visits += 1;
                for v in preds {
                    let cur = loc_value(&interp, v.loc);
                    let expect = v.payload as u64;
                    checks += 1;
                    if cur != expect {
                        return Err(format!(
                            "unsound: call site at pc {} classified {} as constant \
                             {:#x} but continuation visit saw {:#x}",
                            infos[*idx].fork_pc, v.loc, expect, cur
                        ));
                    }
                }
            }
        }

        steps += 1;
        match interp.step(&mut bus, None) {
            Step::Continue => {}
            Step::Halted => {
                halted = true;
                break;
            }
            Step::OutOfText => break,
        }
    }

    Ok(HintCheckStats {
        sites: infos.len(),
        fork_visits,
        checks,
        steps,
        halted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvp_isa::{ProgramBuilder, Reg};

    fn stream_kernel() -> Program {
        // for (i = 0; i < 32; i++) acc += a[i]; — a clean affine loop
        // over a loaded array: i affine, base constant, acc memory-free
        // accumulator, loaded value memory-carried.
        let mut b = ProgramBuilder::new();
        b.name("stream-kernel");
        let base = b.alloc_u64(&(0..32).map(|x| x * 3).collect::<Vec<u64>>());
        let (i, n, acc, a, v) = (Reg(1), Reg(2), Reg(3), Reg(4), Reg(5));
        b.li(i, 0);
        b.li(n, 32);
        b.li(acc, 0);
        b.li(a, base as i64);
        let top = b.here_label();
        b.slli(v, i, 3);
        b.add(v, a, v);
        b.ld(v, v, 0);
        b.add(acc, acc, v);
        b.addi(i, i, 1);
        b.blt(i, n, top);
        b.halt();
        b.build()
    }

    #[test]
    fn loop_site_is_scored_and_selected() {
        let p = stream_kernel();
        let hints = analyze_spawn_sites(&p);
        assert_eq!(hints.version, crate::ANALYSIS_VERSION);
        assert_eq!(hints.bench, "stream-kernel");
        let loops: Vec<&SpawnSite> = hints
            .sites
            .iter()
            .filter(|s| s.kind == SiteKind::Loop)
            .collect();
        assert_eq!(loops.len(), 1);
        let site = loops[0];
        assert_eq!(site.coverage, 6);
        // i is affine with stride 1; v is rewritten from scratch every
        // iteration (not a self-update) so it lands in a risk class and
        // the site must not be selected blindly... unless v's first
        // in-body def makes it unpredictable — the counts tell the truth:
        assert_eq!(
            site.predictable + site.risky,
            site.live_ins_total,
            "counts partition the live-in set"
        );
        let affine = site
            .live_ins
            .iter()
            .find(|l| l.reg == "r1")
            .expect("induction variable reported");
        assert_eq!(affine.class, InductionClass::Affine);
        assert_eq!(affine.payload, 1);
    }

    #[test]
    fn fully_predictable_loop_hints_its_loads() {
        // i affine, everything else loop-invariant: site selected, and
        // the body's single load is hinted.
        let mut b = ProgramBuilder::new();
        b.name("hinted");
        let base = b.alloc_zeroed(256);
        let (i, n, a) = (Reg(1), Reg(2), Reg(3));
        b.li(i, 0);
        b.li(n, 8);
        b.li(a, base as i64);
        let top = b.here_label();
        b.ld(Reg(0), a, 0); // load to r0: no def, pure touch
        b.addi(i, i, 1);
        b.nop();
        b.blt(i, n, top);
        b.halt();
        let p = b.build();
        let hints = analyze_spawn_sites(&p);
        let site = hints
            .sites
            .iter()
            .find(|s| s.kind == SiteKind::Loop)
            .expect("loop site");
        assert_eq!(site.risky, 0, "all live-ins predictable: {:?}", site);
        assert!(site.selected);
        assert_eq!(hints.selected_sites, 1);
        assert_eq!(hints.hinted_loads, vec![3]);
        assert!(site.score > 0);
    }

    #[test]
    fn validator_accepts_registry_style_kernel() {
        let p = stream_kernel();
        let stats = validate_spawn_hints(&p, 10_000).expect("sound hints");
        assert!(stats.halted);
        assert!(stats.sites >= 1);
        assert!(stats.fork_visits >= 32);
        assert!(stats.checks > 0);
    }

    #[test]
    fn validator_rejects_a_forged_affine_verdict() {
        // Sanity that the checker actually bites: hand it a program where
        // the "stride" it would check is wrong by construction. We forge
        // this by running the real validator on a program whose induction
        // variable the classifier must NOT call affine — then assert the
        // classifier indeed refused (the negative path is exercised at
        // the classifier level; the dynamic check is covered by proptest
        // with random strides).
        let mut b = ProgramBuilder::new();
        let (i, n) = (Reg(1), Reg(2));
        b.li(i, 0);
        b.li(n, 16);
        let top = b.here_label();
        b.addi(i, i, 1);
        b.addi(i, i, 1);
        b.blt(i, n, top);
        b.halt();
        let p = b.build();
        let hints = analyze_spawn_sites(&p);
        let site = hints
            .sites
            .iter()
            .find(|s| s.kind == SiteKind::Loop)
            .expect("loop site");
        assert!(site
            .live_ins
            .iter()
            .all(|l| !(l.reg == "r1" && l.class == InductionClass::Affine)));
        validate_spawn_hints(&p, 10_000).expect("remaining verdicts sound");
    }

    #[test]
    fn hints_round_trip_through_json() {
        let p = stream_kernel();
        let hints = analyze_spawn_sites(&p);
        let text = serde_json::to_string(&serde_json::to_value(&hints)).expect("stringify");
        let back: SpawnHints = serde_json::from_str(&text).expect("deserialize");
        assert_eq!(back, hints);
        let again = serde_json::to_string(&serde_json::to_value(&back)).expect("re-stringify");
        assert_eq!(again, text, "byte-identical round trip");
    }
}
