//! Differential validation of the static analyses against the reference
//! interpreter: a traced execution must never read a register the
//! analysis proved initialized-on-all-paths as uninitialized, and every
//! upward-exposed read observed at runtime must lie inside the static
//! live-in set of its basic block. `validate_against_interp` checks both
//! obligations step by step; an `Err` here means an analysis is unsound.

use mtvp_analysis::validate_against_interp;
use mtvp_workloads::kernels;
use mtvp_workloads::synth::{random_program, SynthParams};
use mtvp_workloads::{suite, Scale};

const MAX_STEPS: u64 = 2_000_000;

#[test]
fn registry_workloads_validate_against_the_interpreter() {
    let mut checked = 0;
    for wl in suite() {
        let program = wl.build(Scale::Tiny);
        let report = validate_against_interp(&program, MAX_STEPS)
            .unwrap_or_else(|e| panic!("{}: {e}", wl.name));
        assert!(
            report.halted,
            "{} did not halt in {MAX_STEPS} steps",
            wl.name
        );
        assert!(report.steps > 0 && report.blocks_entered > 0, "{}", wl.name);
        // The shipped generators initialize everything they read.
        assert_eq!(report.dynamic_uninit_reads, 0, "{}", wl.name);
        checked += 1;
    }
    // The acceptance gate asks for at least five benchmarks.
    assert!(checked >= 5, "only {checked} workloads in the registry");
}

#[test]
fn kernels_validate_against_the_interpreter() {
    let bytes: Vec<u8> = (0..256u32).map(|i| (i * 7 % 251) as u8).collect();
    for p in [
        kernels::matmul(5),
        kernels::histogram(&bytes),
        kernels::string_search(b"abababcababc", b"ababc"),
    ] {
        let report =
            validate_against_interp(&p, MAX_STEPS).unwrap_or_else(|e| panic!("{}: {e}", p.name));
        assert!(report.halted, "{}", p.name);
        assert_eq!(report.dynamic_uninit_reads, 0, "{}", p.name);
    }
}

#[test]
fn synth_programs_validate_against_the_interpreter() {
    for seed in 0..12u64 {
        let p = random_program(seed, SynthParams::default());
        let report =
            validate_against_interp(&p, MAX_STEPS).unwrap_or_else(|e| panic!("synth-{seed}: {e}"));
        assert!(report.halted, "synth-{seed}");
    }
}
