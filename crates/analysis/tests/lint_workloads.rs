//! The lint gate: every shipped workload program must analyze with zero
//! error-severity diagnostics. This is the same set `mtvp-sim lint --all`
//! covers in CI; a regression in a kernel builder (uninitialized register,
//! bad branch target, missing halt) fails here first.

use mtvp_analysis::{lint_program, Severity};
use mtvp_workloads::kernels;
use mtvp_workloads::synth::{random_program, SynthParams};
use mtvp_workloads::{suite, Scale};

#[test]
fn every_registry_workload_lints_without_errors() {
    for wl in suite() {
        for scale in [Scale::Tiny, Scale::Small] {
            let program = wl.build(scale);
            let report = lint_program(&program);
            let errors: Vec<_> = report
                .diags
                .iter()
                .filter(|d| d.severity == Severity::Error)
                .collect();
            assert!(errors.is_empty(), "{} at {scale:?}: {errors:?}", wl.name);
            // Every workload is loop-structured code with a halt.
            assert!(report.loops > 0, "{}: no loops detected", wl.name);
            assert!(report.insts > 0 && report.blocks > 1, "{}", wl.name);
        }
    }
}

#[test]
fn registry_workloads_have_no_warnings_either() {
    // The shipped generators were cleaned against the linter: no dead
    // stores, redundant jumps, or unreachable code remain.
    for wl in suite() {
        let report = lint_program(&wl.build(Scale::Tiny));
        let warnings: Vec<_> = report
            .diags
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .collect();
        assert!(warnings.is_empty(), "{}: {warnings:?}", wl.name);
    }
}

#[test]
fn standalone_kernels_lint_clean() {
    let bytes: Vec<u8> = (0..512u32).map(|i| (i * 17 % 256) as u8).collect();
    let programs = [
        kernels::matmul(6),
        kernels::histogram(&bytes),
        kernels::string_search(b"needle in a haystack with a needle", b"needle"),
    ];
    for p in &programs {
        let report = lint_program(p);
        assert_eq!(report.errors(), 0, "{}: {:?}", p.name, report.diags);
        // The kernel fixes (fsub-self accumulator init, redundant jumps
        // in string-search) hold: no warnings at all.
        assert_eq!(report.warnings(), 0, "{}: {:?}", p.name, report.diags);
    }
}

#[test]
fn synth_programs_never_produce_errors() {
    // Random programs may contain dead stores (warnings) but must never
    // read an uninitialized register or branch out of the text segment.
    for seed in 0..20u64 {
        let p = random_program(seed, SynthParams::default());
        let report = lint_program(&p);
        assert_eq!(report.errors(), 0, "synth-{seed}: {:?}", report.diags);
        assert!(report.loops >= 1, "synth-{seed} lost its loop");
    }
}

#[test]
fn address_analysis_bounds_most_workload_memory_ops() {
    // The generators mask or bound their addresses, so the interval
    // analysis should prove a healthy fraction of accesses in-range for
    // at least some workloads (pointer-chase kernels legitimately widen).
    let mut any_bounded = false;
    for wl in suite() {
        let report = lint_program(&wl.build(Scale::Tiny));
        if report.mem_ops > 0 && report.bounded_mem > 0 {
            any_bounded = true;
        }
    }
    assert!(any_bounded, "no workload had any statically bounded access");
}
