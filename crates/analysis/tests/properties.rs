//! Property-based tests of the dataflow solver over the random-program
//! generator: convergence in bounded work, soundness of the uninitialized
//! -read analysis, and liveness over-approximation of observed reads.

use mtvp_analysis::{
    analyze_spawn_sites, lint_program, validate_against_interp, validate_spawn_hints, Cfg,
};
use mtvp_isa::interp::{Interp, SimpleBus};
use mtvp_workloads::synth::{build_co_workload, random_program, SynthParams};
use mtvp_workloads::Scale;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn solver_converges_in_bounded_work(seed: u64, iters in 1u64..50, ops in 5usize..50) {
        let p = random_program(seed, SynthParams {
            iterations: iters,
            body_ops: ops,
            arena_words_log2: 8,
        });
        let report = lint_program(&p);
        // A worklist pass over a reducible CFG converges in O(blocks^2)
        // transfer evaluations per analysis; allow generous slack but
        // fail on divergence-shaped blowups.
        let cfg = Cfg::build(&p);
        let bound = 8 * (cfg.blocks.len() + 1) * (cfg.blocks.len() + 1) + 64;
        prop_assert!(
            report.solver_iterations <= bound,
            "synth-{}: {} transfer evaluations for {} blocks",
            seed, report.solver_iterations, cfg.blocks.len()
        );
    }

    #[test]
    fn generated_programs_are_statically_clean(seed: u64, ops in 5usize..45) {
        let p = random_program(seed, SynthParams {
            iterations: 20,
            body_ops: ops,
            arena_words_log2: 9,
        });
        let report = lint_program(&p);
        prop_assert!(report.errors() == 0, "synth-{}: {:?}", seed, report.diags);
    }

    #[test]
    fn static_analyses_cover_dynamic_behaviour(seed: u64, iters in 1u64..30) {
        // The core soundness property: run the interpreter and check that
        // every dynamic read-before-write was statically flagged and every
        // observed upward-exposed read is in the static live-in set.
        let p = random_program(seed, SynthParams {
            iterations: iters,
            body_ops: 25,
            arena_words_log2: 9,
        });
        let report = validate_against_interp(&p, 1_000_000);
        prop_assert!(report.is_ok(), "synth-{}: {}", seed, report.unwrap_err());
        prop_assert!(report.unwrap().halted, "synth-{} did not halt", seed);
    }

    #[test]
    fn induction_classification_is_dynamically_sound(seed: u64, iters in 1u64..30, ops in 5usize..40) {
        // The spawn-hint soundness property: every `Constant` loop live-in
        // must hold its value across an activation, and every `Affine`
        // live-in must advance by exactly its static stride at each header
        // visit — checked against the tracing interpreter by the
        // differential validator on random synthetic loops.
        let p = random_program(seed, SynthParams {
            iterations: iters,
            body_ops: ops,
            arena_words_log2: 9,
        });
        let stats = validate_spawn_hints(&p, 1_000_000);
        prop_assert!(stats.is_ok(), "synth-{}: {}", seed, stats.unwrap_err());
        prop_assert!(stats.unwrap().halted, "synth-{} did not halt", seed);
    }

    #[test]
    fn spawn_hints_round_trip_byte_identically(seed: u64, ops in 5usize..40) {
        // The artifact is cached and served between processes: the JSON
        // encoding must be deterministic and lossless.
        let p = random_program(seed, SynthParams {
            iterations: 8,
            body_ops: ops,
            arena_words_log2: 9,
        });
        let hints = analyze_spawn_sites(&p);
        let text = serde_json::to_string(&serde_json::to_value(&hints)).expect("stringify");
        let back: mtvp_analysis::SpawnHints = serde_json::from_str(&text).expect("parse");
        prop_assert_eq!(&back, &hints);
        let text2 = serde_json::to_string(&serde_json::to_value(&back)).expect("stringify");
        prop_assert!(text == text2, "synth-{}: re-encoding changed bytes", seed);
    }
}

// Co-workload specs (`synth:<seed>` / `phases:<seed>`) are the programs
// the CMP engine schedules onto sibling cores sight unseen: every seed
// must lint clean at error severity, halt in the reference interpreter,
// and regenerate byte-identically from its spec.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn co_workload_specs_are_clean_halting_and_reproducible(seed in 0u64..10_000, phased: bool) {
        let spec = if phased {
            format!("phases:{seed}")
        } else {
            format!("synth:{seed}")
        };
        let p = build_co_workload(&spec, Scale::Tiny).unwrap();
        let report = lint_program(&p);
        prop_assert!(report.errors() == 0, "{}: {:?}", spec, report.diags);
        let mut bus = SimpleBus::new();
        let res = Interp::new(&p).run(&mut bus, 50_000_000);
        prop_assert!(res.halted, "{} did not halt", spec);
        prop_assert_eq!(&build_co_workload(&spec, Scale::Tiny).unwrap(), &p);
    }
}
