//! The spawn-hint soundness gate: the static spawn-site analysis must
//! produce verdicts the differential validator confirms against the
//! tracing interpreter on every shipped program — the same 39-target set
//! `mtvp-sim lint --spawn-hints --all` covers in CI (32 registry
//! workloads, 3 standalone kernels, 4 synth seeds).

use mtvp_analysis::{analyze_spawn_sites, validate_spawn_hints, SiteKind};
use mtvp_workloads::kernels;
use mtvp_workloads::synth::{random_program, SynthParams};
use mtvp_workloads::{suite, Scale};

fn kernel_set() -> Vec<mtvp_isa::Program> {
    let bytes: Vec<u8> = (0..256u32)
        .map(|i| (i.wrapping_mul(31) % 251) as u8)
        .collect();
    vec![
        kernels::matmul(6),
        kernels::histogram(&bytes),
        kernels::string_search(
            b"the quick brown fox jumps over the lazy dog; the fox won",
            b"fox",
        ),
    ]
}

#[test]
fn hints_validate_on_every_registry_workload() {
    let mut programs: Vec<mtvp_isa::Program> =
        suite().into_iter().map(|w| w.build(Scale::Tiny)).collect();
    programs.extend(kernel_set());
    programs.extend((1..=4).map(|s| random_program(s, SynthParams::default())));
    assert_eq!(programs.len(), 39, "the CI hint-gate target set changed");

    let mut total_sites = 0usize;
    let mut total_checks = 0u64;
    for p in &programs {
        let hints = analyze_spawn_sites(p);
        assert_eq!(hints.bench, p.name, "artifact names its program");
        total_sites += hints.sites.len();
        let stats = validate_spawn_hints(p, 50_000_000)
            .unwrap_or_else(|e| panic!("{}: unsound spawn hints: {e}", p.name));
        assert!(stats.halted, "{} did not halt under validation", p.name);
        total_checks += stats.checks;
    }
    // Loop-structured workloads must actually produce sites and dynamic
    // checks — an accidentally empty analysis would "validate" trivially.
    assert!(total_sites > programs.len(), "suspiciously few spawn sites");
    assert!(total_checks > 1_000, "suspiciously few dynamic checks");
}

#[test]
fn some_workload_selects_a_spawn_site() {
    // The scoring threshold is meaningful only if real workloads clear
    // it: at least one registry program must select a site and hint at
    // least one load.
    let mut selected = 0u32;
    let mut hinted = 0usize;
    for wl in suite() {
        let hints = analyze_spawn_sites(&wl.build(Scale::Tiny));
        selected += hints.selected_sites;
        hinted += hints.hinted_loads.len();
    }
    assert!(selected > 0, "no registry workload selected any spawn site");
    assert!(hinted > 0, "no registry workload hinted any load");
}

#[test]
fn loop_sites_appear_across_the_suite() {
    let mut loops = 0usize;
    for wl in suite() {
        let hints = analyze_spawn_sites(&wl.build(Scale::Tiny));
        loops += hints
            .sites
            .iter()
            .filter(|s| s.kind == SiteKind::Loop)
            .count();
    }
    assert!(loops > 0, "no loop sites across the whole suite");
}

#[test]
fn call_sites_are_enumerated_and_validated() {
    // No shipped workload uses jal/jalr, so the call-site path gets its
    // workout from a purpose-built caller: a loop invoking a leaf
    // function whose continuation live-ins are statically known.
    use mtvp_isa::{ProgramBuilder, Reg};
    let mut b = ProgramBuilder::new();
    b.name("call-kernel");
    let (i, n, lr, x) = (Reg(1), Reg(2), Reg(31), Reg(5));
    let fun = b.label();
    b.li(i, 0);
    b.li(n, 6);
    let top = b.here_label();
    b.jal(lr, fun);
    b.addi(i, i, 1);
    b.blt(i, n, top);
    b.halt();
    b.bind(fun);
    b.li(x, 42);
    b.jr(lr);
    let p = b.build();

    let hints = analyze_spawn_sites(&p);
    let calls: Vec<_> = hints
        .sites
        .iter()
        .filter(|s| s.kind == SiteKind::Call)
        .collect();
    assert!(!calls.is_empty(), "call site not enumerated: {hints:?}");
    let stats = validate_spawn_hints(&p, 10_000).expect("sound call-site hints");
    assert!(stats.halted);
}
