//! Microbenchmarks of the simulator's substrates: predictor and cache
//! throughput bound how fast the cycle loop can run.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mtvp_engine::{Mode, SimConfig};
use mtvp_isa::interp::{Interp, SimpleBus};
use mtvp_workloads::{suite, Scale};

fn bench_wang_franklin(c: &mut Criterion) {
    use mtvp_vp::{ValuePredictor, WangFranklinConfig, WangFranklinPredictor};
    let mut p = WangFranklinPredictor::new(WangFranklinConfig::hpca2005());
    for i in 0..1000u64 {
        p.train(i % 64, i * 8);
    }
    c.bench_function("wang_franklin_predict_train", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let pred = p.predict(black_box(i % 64));
            p.train(i % 64, i * 8);
            pred
        })
    });
}

fn bench_cache_hierarchy(c: &mut Criterion) {
    use mtvp_mem::{AccessKind, MemConfig, MemSystem};
    let mut m = MemSystem::new(MemConfig::hpca2005());
    c.bench_function("mem_hierarchy_access", |b| {
        let mut now = 0u64;
        let mut addr = 0u64;
        b.iter(|| {
            now += 1;
            addr = addr.wrapping_add(64) & 0xF_FFFF;
            m.access_data(now, 4, black_box(addr), AccessKind::Read)
        })
    });
}

fn bench_direction_predictor(c: &mut Criterion) {
    use mtvp_branch::{DirectionPredictor, GskewConfig};
    let mut p = DirectionPredictor::new(GskewConfig::hpca2005());
    c.bench_function("gskew_predict_update", |b| {
        let mut ghist = 0u64;
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let taken = !i.is_multiple_of(3);
            let pred = p.predict(i % 512, ghist);
            p.update(i % 512, ghist, taken);
            ghist = (ghist << 1) | taken as u64;
            pred
        })
    });
}

fn bench_interpreter(c: &mut Criterion) {
    let wl = suite().into_iter().find(|w| w.name == "crafty").unwrap();
    let program = wl.build(Scale::Tiny);
    c.bench_function("interp_crafty_tiny", |b| {
        b.iter(|| {
            let mut bus = SimpleBus::new();
            Interp::new(&program).run(&mut bus, 10_000_000).dyn_instrs
        })
    });
}

fn bench_full_machine(c: &mut Criterion) {
    let wl = suite().into_iter().find(|w| w.name == "crafty").unwrap();
    let program = wl.build(Scale::Tiny);
    let cfg = SimConfig::new(Mode::Baseline);
    c.bench_function("machine_crafty_tiny_baseline", |b| {
        b.iter(|| mtvp_engine::run_program(&cfg, &program).stats.cycles)
    });
}

criterion_group! {
    name = components;
    config = Criterion::default().sample_size(10);
    targets =
        bench_wang_franklin,
        bench_cache_hierarchy,
        bench_direction_predictor,
        bench_interpreter,
        bench_full_machine,
}
criterion_main!(components);
