//! One criterion bench per table/figure of the paper, each running a
//! scaled-down (Tiny) version of the corresponding sweep so `cargo bench`
//! exercises every experiment end to end. The full-size numbers come from
//! the `fig1`..`fig6`, `table1`, `storebuf` and `multivalue` binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use mtvp_engine::Sweep;
use mtvp_engine::{Mode, Scale, SimConfig};

/// A small, fixed benchmark subset keeps criterion iterations affordable.
fn keep(name: &str) -> bool {
    matches!(name, "mcf" | "crafty" | "mgrid" | "swim")
}

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_config_construction", |b| {
        b.iter(|| {
            let p = SimConfig::new(Mode::Baseline).to_pipeline_config();
            assert_eq!(p.rob_entries, 256);
            p
        })
    });
}

fn bench_fig1_oracle_potential(c: &mut Criterion) {
    let configs = vec![
        ("base".to_string(), SimConfig::new(Mode::Baseline)),
        ("mtvp4".to_string(), {
            let mut c = SimConfig::oracle(Mode::Mtvp);
            c.contexts = 4;
            c
        }),
    ];
    c.bench_function("fig1_oracle_potential", |b| {
        b.iter(|| Sweep::run_filtered(&configs, Scale::Tiny, |w| keep(w.name)))
    });
}

fn bench_fig2_spawn_latency(c: &mut Criterion) {
    let configs: Vec<(String, SimConfig)> = [1u64, 16]
        .iter()
        .map(|&lat| {
            let mut cfg = SimConfig::oracle(Mode::Mtvp);
            cfg.contexts = 4;
            cfg.spawn_latency = lat;
            (format!("mtvp4@{lat}"), cfg)
        })
        .collect();
    c.bench_function("fig2_spawn_latency", |b| {
        b.iter(|| Sweep::run_filtered(&configs, Scale::Tiny, |w| keep(w.name)))
    });
}

fn bench_fig3_realistic(c: &mut Criterion) {
    let configs = vec![
        ("stvp".to_string(), SimConfig::new(Mode::Stvp)),
        ("mtvp8".to_string(), SimConfig::new(Mode::Mtvp)),
    ];
    c.bench_function("fig3_realistic_wang_franklin", |b| {
        b.iter(|| Sweep::run_filtered(&configs, Scale::Tiny, |w| keep(w.name)))
    });
}

fn bench_fig4_fetch_policy(c: &mut Criterion) {
    let configs = vec![
        ("sfp".to_string(), SimConfig::new(Mode::Mtvp)),
        ("nostall".to_string(), SimConfig::new(Mode::MtvpNoStall)),
    ];
    c.bench_function("fig4_fetch_policy", |b| {
        b.iter(|| Sweep::run_filtered(&configs, Scale::Tiny, |w| keep(w.name)))
    });
}

fn bench_fig5_multivalue_potential(c: &mut Criterion) {
    let configs = vec![("mtvp8".to_string(), SimConfig::new(Mode::Mtvp))];
    c.bench_function("fig5_multivalue_potential", |b| {
        b.iter(|| {
            let sweep = Sweep::run_filtered(&configs, Scale::Tiny, |w| keep(w.name));
            let s = &sweep.cells[0].stats.vp;
            s.wrong_but_alternate_held
        })
    });
}

fn bench_fig6_checkpoint_compare(c: &mut Criterion) {
    let configs = vec![
        ("wide".to_string(), SimConfig::new(Mode::WideWindow)),
        ("spawn-only".to_string(), SimConfig::new(Mode::SpawnOnly)),
    ];
    c.bench_function("fig6_checkpoint_compare", |b| {
        b.iter(|| Sweep::run_filtered(&configs, Scale::Tiny, |w| keep(w.name)))
    });
}

fn bench_storebuf_sweep(c: &mut Criterion) {
    let configs: Vec<(String, SimConfig)> = [32usize, 256]
        .iter()
        .map(|&size| {
            let mut cfg = SimConfig::new(Mode::Mtvp);
            cfg.store_buffer = size;
            (format!("sb{size}"), cfg)
        })
        .collect();
    c.bench_function("storebuf_sweep", |b| {
        b.iter(|| Sweep::run_filtered(&configs, Scale::Tiny, |w| keep(w.name)))
    });
}

fn bench_multivalue(c: &mut Criterion) {
    let configs = vec![("multi".to_string(), SimConfig::new(Mode::MultiValue))];
    c.bench_function("multivalue_mtvp", |b| {
        b.iter(|| Sweep::run_filtered(&configs, Scale::Tiny, |w| w.name == "swim"))
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets =
        bench_table1,
        bench_fig1_oracle_potential,
        bench_fig2_spawn_latency,
        bench_fig3_realistic,
        bench_fig4_fetch_policy,
        bench_fig5_multivalue_potential,
        bench_fig6_checkpoint_compare,
        bench_storebuf_sweep,
        bench_multivalue,
}
criterion_main!(figures);
