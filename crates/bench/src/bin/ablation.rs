//! Ablations of this reproduction's design choices (DESIGN.md §6), plus
//! the paper's §4 claim that MTVP's effect is "greater and more
//! consistent" without the stride prefetcher.

use mtvp_bench::scale_from_args;
use mtvp_core::sweep::Sweep;
use mtvp_core::{Mode, SimConfig, Suite};

fn main() {
    let scale = scale_from_args();

    let mut configs = Vec::new();
    // Paired baselines and mtvp8 machines under each ablation.
    for (tag, prefetch, mshrs, warm) in [
        ("default", true, 16usize, true),
        ("no-prefetch", false, 16, true),
        ("mshr4", true, 4, true),
        ("mshr64", true, 64, true),
        ("cold-start", true, 16, false),
    ] {
        let mut base = SimConfig::new(Mode::Baseline);
        base.prefetcher = prefetch;
        base.mshrs = mshrs;
        base.warm_start = warm;
        configs.push((format!("base/{tag}"), base));
        let mut mtvp = SimConfig::new(Mode::Mtvp);
        mtvp.prefetcher = prefetch;
        mtvp.mshrs = mshrs;
        mtvp.warm_start = warm;
        configs.push((format!("mtvp/{tag}"), mtvp));
    }

    // A representative subset keeps the ablation affordable.
    let names = [
        "mcf", "vpr r", "gcc 1", "crafty", "mgrid", "applu", "art 1", "mesa",
    ];
    let sweep = Sweep::run_filtered(&configs, scale, |w| names.contains(&w.name));

    println!("\n=== Ablations: mtvp8 speedup vs its own matched baseline ===\n");
    println!(
        "{:<12}{:>10}{:>13}{:>9}{:>9}{:>12}",
        "suite", "default", "no-prefetch", "mshr4", "mshr64", "cold-start"
    );
    for (suite, label) in [(Suite::Int, "INT"), (Suite::Fp, "FP")] {
        print!("{label:<12}");
        for tag in ["default", "no-prefetch", "mshr4", "mshr64", "cold-start"] {
            let s =
                sweep.geomean_speedup(Some(suite), &format!("mtvp/{tag}"), &format!("base/{tag}"));
            print!(
                "{s:>width$.1}",
                width = match tag {
                    "default" => 10,
                    "no-prefetch" => 13,
                    "mshr4" | "mshr64" => 9,
                    _ => 12,
                }
            );
        }
        println!();
    }
    println!("\nPer-benchmark (default vs no-prefetch):");
    println!("{:<12}{:>10}{:>13}", "benchmark", "default", "no-prefetch");
    for (bench, _) in sweep.benches() {
        println!(
            "{bench:<12}{:>10.1}{:>13.1}",
            sweep
                .speedup(&bench, "mtvp/default", "base/default")
                .unwrap_or(0.0),
            sweep
                .speedup(&bench, "mtvp/no-prefetch", "base/no-prefetch")
                .unwrap_or(0.0),
        );
    }
}
