//! Ablations of this reproduction's design choices (DESIGN.md §6), plus
//! the paper's §4 claim that MTVP's effect is "greater and more
//! consistent" without the stride prefetcher.
//!
//! Thin wrapper over the `ablation` built-in scenario
//! (`mtvp-sim exp run ablation`).

use mtvp_bench::run_builtin;
use mtvp_engine::Suite;

fn main() {
    let (_, sweep) = run_builtin("ablation");

    println!("\n=== Ablations: mtvp8 speedup vs its own matched baseline ===\n");
    println!(
        "{:<12}{:>10}{:>13}{:>9}{:>9}{:>12}",
        "suite", "default", "no-prefetch", "mshr4", "mshr64", "cold-start"
    );
    for (suite, label) in [(Suite::Int, "INT"), (Suite::Fp, "FP")] {
        print!("{label:<12}");
        for tag in ["default", "no-prefetch", "mshr4", "mshr64", "cold-start"] {
            let s =
                sweep.geomean_speedup(Some(suite), &format!("mtvp/{tag}"), &format!("base/{tag}"));
            print!(
                "{s:>width$.1}",
                width = match tag {
                    "default" => 10,
                    "no-prefetch" => 13,
                    "mshr4" | "mshr64" => 9,
                    _ => 12,
                }
            );
        }
        println!();
    }
    println!("\nPer-benchmark (default vs no-prefetch):");
    println!("{:<12}{:>10}{:>13}", "benchmark", "default", "no-prefetch");
    for (bench, _) in sweep.benches() {
        println!(
            "{bench:<12}{:>10.1}{:>13.1}",
            sweep
                .speedup(&bench, "mtvp/default", "base/default")
                .unwrap_or(0.0),
            sweep
                .speedup(&bench, "mtvp/no-prefetch", "base/no-prefetch")
                .unwrap_or(0.0),
        );
    }
}
