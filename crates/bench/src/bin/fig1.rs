//! Figure 1: potential of multithreaded value prediction with an oracle
//! value predictor — percent change in useful IPC for STVP and MTVP with
//! 2/4/8 threads (ILP-pred load selection) over a no-VP baseline, under
//! the idealized §5.1 assumptions (1-cycle spawn, unbounded store buffer).

use mtvp_bench::{dump_json, print_speedup_table, scale_from_args};
use mtvp_core::sweep::Sweep;
use mtvp_core::{Mode, SimConfig};

fn main() {
    let scale = scale_from_args();
    let mut configs = vec![
        ("base".to_string(), SimConfig::new(Mode::Baseline)),
        ("stvp".to_string(), SimConfig::oracle(Mode::Stvp)),
    ];
    for n in [2usize, 4, 8] {
        let mut c = SimConfig::oracle(Mode::Mtvp);
        c.contexts = n;
        configs.push((format!("mtvp{n}"), c));
    }
    let sweep = Sweep::run(&configs, scale);
    print_speedup_table(
        "Figure 1: Change in Useful IPC with Oracle Value Prediction (ILP-pred)",
        &sweep,
        &["stvp", "mtvp2", "mtvp4", "mtvp8"],
        "base",
    );
    dump_json("fig1", &sweep);
}
