//! Figure 1: potential of multithreaded value prediction with an oracle
//! value predictor — percent change in useful IPC for STVP and MTVP with
//! 2/4/8 threads (ILP-pred load selection) over a no-VP baseline, under
//! the idealized §5.1 assumptions (1-cycle spawn, unbounded store buffer).
//!
//! Thin wrapper over the `fig1` built-in scenario (`mtvp-sim exp run fig1`).

use mtvp_bench::{dump_json, print_speedup_table, run_builtin};

fn main() {
    let (_, sweep) = run_builtin("fig1");
    print_speedup_table(
        "Figure 1: Change in Useful IPC with Oracle Value Prediction (ILP-pred)",
        &sweep,
        &["stvp", "mtvp2", "mtvp4", "mtvp8"],
        "base",
    );
    dump_json("fig1", &sweep);
}
