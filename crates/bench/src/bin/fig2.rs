//! Figure 2: sensitivity to thread-spawn latency — suite-average speedups
//! for STVP and MTVP×{2,4,8} at 1-, 8- and 16-cycle spawn latencies
//! (oracle predictor, ILP-pred).
//!
//! Thin wrapper over the `fig2` built-in scenario (`mtvp-sim exp run fig2`).

use mtvp_bench::{dump_json, run_builtin};
use mtvp_engine::Suite;

fn main() {
    let (_, sweep) = run_builtin("fig2");

    println!("\n=== Figure 2: Speedups vs thread-spawn latency (oracle, ILP-pred) ===");
    println!("(geomean percent change in useful IPC vs baseline)\n");
    for (suite, name) in [(Suite::Int, "SPEC INT"), (Suite::Fp, "SPEC FP")] {
        println!("--- {name} ---");
        println!(
            "{:<10}{:>10}{:>10}{:>10}",
            "config", "avg 1", "avg 8", "avg 16"
        );
        println!(
            "{:<10}{:>10.1}{:>10.1}{:>10.1}",
            "stvp",
            sweep.geomean_speedup(Some(suite), "stvp", "base"),
            sweep.geomean_speedup(Some(suite), "stvp", "base"),
            sweep.geomean_speedup(Some(suite), "stvp", "base"),
        );
        for n in [2usize, 4, 8] {
            print!("{:<10}", format!("mtvp{n}"));
            for lat in [1u64, 8, 16] {
                print!(
                    "{:>10.1}",
                    sweep.geomean_speedup(Some(suite), &format!("mtvp{n}@{lat}"), "base")
                );
            }
            println!();
        }
    }
    dump_json("fig2", &sweep);
}
