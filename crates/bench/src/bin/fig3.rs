//! Figure 3: change in useful IPC with the realistic Wang–Franklin value
//! predictor (8-cycle spawn latency, 128-entry store buffer, ILP-pred).
//!
//! Thin wrapper over the `fig3` built-in scenario (`mtvp-sim exp run fig3`).

use mtvp_bench::{dump_json, print_speedup_table, run_builtin};

fn main() {
    let (_, sweep) = run_builtin("fig3");
    print_speedup_table(
        "Figure 3: Change in Useful IPC with a realistic Wang-Franklin predictor",
        &sweep,
        &["stvp", "mtvp2", "mtvp4", "mtvp8"],
        "base",
    );
    dump_json("fig3", &sweep);
}
