//! Figure 3: change in useful IPC with the realistic Wang–Franklin value
//! predictor (8-cycle spawn latency, 128-entry store buffer, ILP-pred).

use mtvp_bench::{dump_json, print_speedup_table, scale_from_args};
use mtvp_core::sweep::Sweep;
use mtvp_core::{Mode, SimConfig};

fn main() {
    let scale = scale_from_args();
    let mut configs = vec![
        ("base".to_string(), SimConfig::new(Mode::Baseline)),
        ("stvp".to_string(), SimConfig::new(Mode::Stvp)),
    ];
    for n in [2usize, 4, 8] {
        let mut c = SimConfig::new(Mode::Mtvp);
        c.contexts = n;
        configs.push((format!("mtvp{n}"), c));
    }
    let sweep = Sweep::run(&configs, scale);
    print_speedup_table(
        "Figure 3: Change in Useful IPC with a realistic Wang-Franklin predictor",
        &sweep,
        &["stvp", "mtvp2", "mtvp4", "mtvp8"],
        "base",
    );
    dump_json("fig3", &sweep);
}
