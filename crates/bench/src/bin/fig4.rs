//! Figure 4: fetch policy after a spawn — single fetch path (the default)
//! vs letting the parent keep fetching ("no stall", §5.5), with the
//! realistic Wang–Franklin predictor, 8 threads.
//!
//! Thin wrapper over the `fig4` built-in scenario (`mtvp-sim exp run fig4`).

use mtvp_bench::{dump_json, print_speedup_table, run_builtin};

fn main() {
    let (_, sweep) = run_builtin("fig4");
    print_speedup_table(
        "Figure 4: fetch continuing in the parent after a spawn (vs single fetch path)",
        &sweep,
        &["stvp", "mtvp sfp", "no stall"],
        "base",
    );
    dump_json("fig4", &sweep);
}
