//! Figure 4: fetch policy after a spawn — single fetch path (the default)
//! vs letting the parent keep fetching ("no stall", §5.5), with the
//! realistic Wang–Franklin predictor, 8 threads.

use mtvp_bench::{dump_json, print_speedup_table, scale_from_args};
use mtvp_core::sweep::Sweep;
use mtvp_core::{Mode, SimConfig};

fn main() {
    let scale = scale_from_args();
    let mut mtvp = SimConfig::new(Mode::Mtvp);
    mtvp.contexts = 8;
    let mut nostall = SimConfig::new(Mode::MtvpNoStall);
    nostall.contexts = 8;
    let configs = vec![
        ("base".to_string(), SimConfig::new(Mode::Baseline)),
        ("stvp".to_string(), SimConfig::new(Mode::Stvp)),
        ("mtvp sfp".to_string(), mtvp),
        ("no stall".to_string(), nostall),
    ];
    let sweep = Sweep::run(&configs, scale);
    print_speedup_table(
        "Figure 4: fetch continuing in the parent after a spawn (vs single fetch path)",
        &sweep,
        &["stvp", "mtvp sfp", "no stall"],
        "base",
    );
    dump_json("fig4", &sweep);
}
