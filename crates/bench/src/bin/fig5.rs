//! Figure 5: fraction of followed value predictions whose primary value
//! was wrong but whose correct value *was* present in the predictor and
//! over the confidence threshold — the headroom for multiple-value
//! prediction (§5.6). Measured on the mtvp8 Wang–Franklin configuration.
//!
//! Thin wrapper over the `fig5` built-in scenario (`mtvp-sim exp run fig5`).

use mtvp_bench::{dump_json, run_builtin};

fn main() {
    let (_, sweep) = run_builtin("fig5");

    println!("\n=== Figure 5: wrong primary prediction, correct value over threshold ===\n");
    println!(
        "{:<12}{:>10}{:>10}{:>12}",
        "benchmark", "followed", "alt-held", "fraction"
    );
    for &int_suite in &[true, false] {
        println!("--- SPEC {} ---", if int_suite { "INT" } else { "FP" });
        for (bench, is_int) in sweep.benches() {
            if is_int != int_suite {
                continue;
            }
            let s = &sweep.cell(&bench, "mtvp8").unwrap().stats.vp;
            let followed = s.stvp_used + s.mtvp_spawns;
            let frac = if followed == 0 {
                0.0
            } else {
                s.wrong_but_alternate_held as f64 / followed as f64
            };
            println!(
                "{bench:<12}{:>10}{:>10}{:>12.3}",
                followed, s.wrong_but_alternate_held, frac
            );
        }
    }
    dump_json("fig5", &sweep);
}
