//! Figure 6: comparison with checkpoint-style architectures (§5.7) — the
//! idealized wide-window machine (8K ROB, unlimited registers), the best
//! MTVP configuration, and "spawn only" (thread spawning without value
//! prediction). Suite averages, as in the paper.
//!
//! Thin wrapper over the `fig6` built-in scenario (`mtvp-sim exp run fig6`).

use mtvp_bench::{dump_json, run_builtin};
use mtvp_engine::Suite;

fn main() {
    let (_, sweep) = run_builtin("fig6");

    println!("\n=== Figure 6: wide-window machine vs MTVP vs spawn-only ===");
    println!("(geomean percent change in useful IPC vs baseline; 8-cycle spawns)\n");
    println!("{:<14}{:>10}{:>10}", "config", "AVG INT", "AVG FP");
    for label in ["wide window", "best mtvp", "spawn only"] {
        println!(
            "{label:<14}{:>10.1}{:>10.1}",
            sweep.geomean_speedup(Some(Suite::Int), label, "base"),
            sweep.geomean_speedup(Some(Suite::Fp), label, "base"),
        );
    }
    println!("\nPer-benchmark detail:");
    mtvp_bench::print_speedup_table(
        "Figure 6 detail",
        &sweep,
        &["wide window", "best mtvp", "spawn only"],
        "base",
    );
    dump_json("fig6", &sweep);
}
