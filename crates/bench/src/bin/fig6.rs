//! Figure 6: comparison with checkpoint-style architectures (§5.7) — the
//! idealized wide-window machine (8K ROB, unlimited registers), the best
//! MTVP configuration, and "spawn only" (thread spawning without value
//! prediction). Suite averages, as in the paper.

use mtvp_bench::{dump_json, scale_from_args};
use mtvp_core::sweep::Sweep;
use mtvp_core::{Mode, SimConfig, Suite};

fn main() {
    let scale = scale_from_args();
    let mut mtvp = SimConfig::new(Mode::Mtvp);
    mtvp.contexts = 8;
    let mut spawn_only = SimConfig::new(Mode::SpawnOnly);
    spawn_only.contexts = 8;
    let configs = vec![
        ("base".to_string(), SimConfig::new(Mode::Baseline)),
        ("wide window".to_string(), SimConfig::new(Mode::WideWindow)),
        ("best mtvp".to_string(), mtvp),
        ("spawn only".to_string(), spawn_only),
    ];
    let sweep = Sweep::run(&configs, scale);

    println!("\n=== Figure 6: wide-window machine vs MTVP vs spawn-only ===");
    println!("(geomean percent change in useful IPC vs baseline; 8-cycle spawns)\n");
    println!("{:<14}{:>10}{:>10}", "config", "AVG INT", "AVG FP");
    for label in ["wide window", "best mtvp", "spawn only"] {
        println!(
            "{label:<14}{:>10.1}{:>10.1}",
            sweep.geomean_speedup(Some(Suite::Int), label, "base"),
            sweep.geomean_speedup(Some(Suite::Fp), label, "base"),
        );
    }
    println!("\nPer-benchmark detail:");
    mtvp_bench::print_speedup_table(
        "Figure 6 detail",
        &sweep,
        &["wide window", "best mtvp", "spawn only"],
        "base",
    );
    dump_json("fig6", &sweep);
}
