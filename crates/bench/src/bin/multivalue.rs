//! §5.6: multiple-value multithreaded value prediction on its candidate
//! benchmarks. With the paper's best single-value parameterization, swim
//! and parser gain almost nothing (their loads carry two values in biased
//! random order, so a conservative predictor cannot stay confident); a
//! more liberal predictor plus the L3-miss-oracle selector and multiple
//! spawned values recovers large speedups (paper: swim ≈ +70%,
//! parser ≈ +40%).
//!
//! Thin wrapper over the `multivalue` built-in scenario
//! (`mtvp-sim exp run multivalue`).

use mtvp_bench::{dump_json, run_builtin};

fn main() {
    let (_, sweep) = run_builtin("multivalue");

    println!("\n=== Multiple-value MTVP (mtvp8) on the Section 5.6 benchmarks ===\n");
    println!(
        "{:<12}{:>14}{:>14}",
        "benchmark", "single-value", "multi-value"
    );
    for (bench, _) in sweep.benches() {
        println!(
            "{bench:<12}{:>13.1}%{:>13.1}%",
            sweep.speedup(&bench, "single-value", "base").unwrap(),
            sweep.speedup(&bench, "multi-value", "base").unwrap(),
        );
        let s = &sweep.cell(&bench, "multi-value").unwrap().stats.vp;
        println!(
            "{:<12}  (spawns={}, extra-value spawns={}, correct={}, wrong={})",
            "", s.mtvp_spawns, s.multi_value_spawns, s.mtvp_correct, s.mtvp_wrong
        );
    }
    dump_json("multivalue", &sweep);
}
