//! §5.4's predictor comparison: the Wang–Franklin hybrid against the
//! order-3 DFCM (and the classic stride/last-value baselines), each
//! driving mtvp8. The paper found DFCM "in general a more aggressive
//! predictor — making more correct predictions and more incorrect
//! predictions", and slightly worse overall.
//!
//! Thin wrapper over the `predictors` built-in scenario
//! (`mtvp-sim exp run predictors`).

use mtvp_bench::{print_speedup_table, run_builtin};

fn main() {
    let (_, sweep) = run_builtin("predictors");
    print_speedup_table(
        "Predictor comparison (mtvp8): Wang-Franklin vs DFCM vs classic baselines",
        &sweep,
        &["wang-franklin", "dfcm", "stride", "last-value"],
        "base",
    );
    // Aggressiveness comparison (the paper's qualitative point).
    println!("\npredictions followed (stvp+mtvp) and wrong, per predictor:");
    for label in ["wang-franklin", "dfcm", "stride", "last-value"] {
        let (mut followed, mut wrong) = (0u64, 0u64);
        for c in sweep.cells.iter().filter(|c| c.config == label) {
            followed += c.stats.vp.stvp_used + c.stats.vp.mtvp_spawns;
            wrong += c.stats.vp.stvp_wrong + c.stats.vp.mtvp_wrong;
        }
        println!("  {label:<14} followed={followed:<8} wrong={wrong}");
    }
}
