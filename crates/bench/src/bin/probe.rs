//! Calibration probe: quick look at the core result shapes on a handful
//! of benchmarks (not one of the paper's figures; a development tool).

use mtvp_bench::{mtvp_config, print_speedup_table, scale_from_args};
use mtvp_engine::Sweep;
use mtvp_engine::{Mode, SimConfig};

fn main() {
    let scale = scale_from_args();
    let mut configs = vec![("base".to_string(), SimConfig::new(Mode::Baseline))];
    configs.push(("stvp".to_string(), SimConfig::new(Mode::Stvp)));
    for n in [2usize, 4, 8] {
        configs.push((format!("mtvp{n}"), mtvp_config(n)));
    }
    let mut ww = SimConfig::new(Mode::WideWindow);
    ww.contexts = 1;
    configs.push(("wide".to_string(), ww));

    let names = [
        "mcf", "vpr r", "gcc 1", "crafty", "gzip g", "swim", "mgrid", "art 1", "mesa",
    ];
    let sweep = Sweep::run_filtered(&configs, scale, |w| names.contains(&w.name));
    print_speedup_table(
        "probe: Wang-Franklin + ILP-pred",
        &sweep,
        &["stvp", "mtvp2", "mtvp4", "mtvp8", "wide"],
        "base",
    );
    for (bench, _) in sweep.benches() {
        let c = sweep.cell(&bench, "mtvp8").unwrap();
        let b = sweep.cell(&bench, "base").unwrap();
        println!(
            "{bench:<10} base_ipc={:.3} mtvp8_ipc={:.3} spawns={} correct={} wrong={} stvp_used={} sb_stalls={} l3miss={} strh={}",
            b.stats.ipc(),
            c.stats.ipc(),
            c.stats.vp.mtvp_spawns,
            c.stats.vp.mtvp_correct,
            c.stats.vp.mtvp_wrong,
            c.stats.vp.stvp_used,
            c.stats.vp.store_buffer_stalls,
            b.stats.mem.mem_accesses,
            b.stats.mem.stream_hits,
        );
    }
}
