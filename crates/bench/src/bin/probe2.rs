//! Deeper calibration probe on a single benchmark (development tool).

use mtvp_bench::{bench_from_args, mtvp_config, scale_from_args};
use mtvp_engine::Sweep;
use mtvp_engine::{Mode, SelectorKind, SimConfig};

fn main() {
    let bench = bench_from_args("mcf");
    let scale = scale_from_args();
    let mut configs = vec![("base".to_string(), SimConfig::new(Mode::Baseline))];
    for (label, selector) in [
        ("ilp", SelectorKind::IlpPred),
        ("alw", SelectorKind::Always),
    ] {
        let mut c = SimConfig::new(Mode::Stvp);
        c.selector = selector;
        configs.push((format!("stvp-{label}"), c));
        let mut c = mtvp_config(8);
        c.selector = selector;
        configs.push((format!("mtvp8-{label}"), c));
    }
    configs.push(("wide".to_string(), SimConfig::new(Mode::WideWindow)));
    let sweep = Sweep::run_filtered(&configs, scale, |w| w.name == bench);
    let base = sweep.cell(&bench, "base").unwrap();
    println!(
        "{bench}: base ipc={:.4} cycles={} committed={} memacc={} l2={} l3={} strh={} squash={} mshr_rej={}",
        base.stats.ipc(),
        base.stats.cycles,
        base.stats.committed,
        base.stats.mem.mem_accesses,
        base.stats.mem.l2_hits,
        base.stats.mem.l3_hits,
        base.stats.mem.stream_hits,
        base.stats.squashed,
        base.stats.mem.mshr_rejections,
    );
    for (label, _) in &configs {
        if label == "base" {
            continue;
        }
        let c = sweep.cell(&bench, label).unwrap();
        println!(
            "{label:<12} spd={:>7.1}% ipc={:.4} conf={} stvp={}/{}ok/{}bad mtvp={}/{}ok/{}bad noctx={} reissue={} sbstall={} squash={}",
            sweep.speedup(&bench, label, "base").unwrap(),
            c.stats.ipc(),
            c.stats.vp.confident_loads,
            c.stats.vp.stvp_used,
            c.stats.vp.stvp_correct,
            c.stats.vp.stvp_wrong,
            c.stats.vp.mtvp_spawns,
            c.stats.vp.mtvp_correct,
            c.stats.vp.mtvp_wrong,
            c.stats.vp.spawn_no_context,
            c.stats.vp.reissued_uops,
            c.stats.vp.store_buffer_stalls,
            c.stats.squashed,
        );
    }
}
