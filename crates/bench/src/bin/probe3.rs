//! Development probe: oracle spawn-latency behaviour on one benchmark.

use mtvp_bench::{bench_from_args, oracle_mtvp_config, scale_from_args};
use mtvp_engine::Sweep;
use mtvp_engine::{Mode, SelectorKind, SimConfig};

fn main() {
    let bench = bench_from_args("applu");
    let scale = scale_from_args();
    let mut configs = vec![("base".to_string(), SimConfig::new(Mode::Baseline))];
    for lat in [1u64, 8, 16] {
        for (sel, sname) in [
            (SelectorKind::IlpPred, "ilp"),
            (SelectorKind::L3MissOracle, "l3"),
        ] {
            for n in [2usize, 8] {
                let mut c = oracle_mtvp_config(n, lat);
                c.selector = sel;
                configs.push((format!("m{n}-{sname}@{lat}"), c));
            }
        }
    }
    let sweep = Sweep::run_filtered(&configs, scale, |w| w.name == bench);
    for (label, _) in &configs {
        if label == "base" {
            continue;
        }
        let c = sweep.cell(&bench, label).unwrap();
        println!(
            "{label:<12} spd={:>7.1}% spawns={:<6} ok={:<6} bad={:<5} stvp={:<6} noctx={:<6} squash={}",
            sweep.speedup(&bench, label, "base").unwrap(),
            c.stats.vp.mtvp_spawns,
            c.stats.vp.mtvp_correct,
            c.stats.vp.mtvp_wrong,
            c.stats.vp.stvp_used,
            c.stats.vp.spawn_no_context,
            c.stats.squashed,
        );
    }
}
