//! Simulator-throughput benchmark: how fast does the simulator itself run?
//!
//! For a representative set of workloads and machine configurations this
//! measures wall-clock simulation speed — simulated kilocycles per second
//! and committed millions-of-instructions per second — with idle-cycle
//! fast-forwarding off and on, and writes the results to
//! `BENCH_throughput.json`. The simulated statistics are bit-identical
//! between the two runs (asserted here; see `tests/fast_forward.rs`), so
//! any difference is pure simulator speed.
//!
//! With `--sampling`, it instead benchmarks two-tier sampled simulation
//! against the full-detailed run — wall time, committed MIPS, speedup,
//! IPC and per-statistic relative error, cold vs checkpoint-warm — and
//! writes `BENCH_sampling.json`. It also measures the functional
//! interpreter's throughput and asserts it clears 4x the detailed
//! simulator's (the fast-forward tier must be fast for sampling to pay;
//! pointer-chasing workloads are load-latency-bound in the interpreter
//! too, so their margin is the thinnest).
//!
//! With `--check BASELINE.json [--tolerance F]`, it additionally guards
//! against simulator-speed regressions: the geometric-mean simulated
//! kilocycles per second (fast-forward on) of this run must be within
//! `F` (default 0.02) of the baseline file's — the gate that proved the
//! statically-dispatched stage framework kept the hand-wired loop's
//! speed. The baseline may be a `BENCH_throughput.json` written by any
//! earlier binary (the geomean is recomputed from its cells if the file
//! predates the `geomean_kcycles_per_s` field).
//!
//! Usage: `sim_bench [--sampling] [--scale tiny|small|full] [--out PATH]
//!                   [--sample W:I:U] [--check BASELINE.json] [--tolerance F]`

use mtvp_bench::scale_from_args;
use mtvp_engine::{
    ipc_error, reference_trace, relative_errors, run_sampled, run_with_trace, Cache, CkptStore,
    SampledRun, SamplingParams,
};
use mtvp_engine::{Mode, Scale, SimConfig};
use mtvp_isa::interp::{Interp, SimpleBus};
use mtvp_workloads::suite;
use std::time::Instant;

/// Workloads spanning the interesting regimes: pointer-chasing and
/// cache-resident integer codes plus a floating-point kernel.
const BENCHES: &[&str] = &["mcf", "gzip g", "vpr r", "mesa", "equake"];

fn configs() -> Vec<(String, SimConfig)> {
    let mut v = vec![("base".to_string(), SimConfig::new(Mode::Baseline))];
    for n in [4usize, 8] {
        let mut c = SimConfig::new(Mode::Mtvp);
        c.contexts = n;
        v.push((format!("mtvp{n}"), c));
    }
    v
}

struct Measure {
    wall_s: f64,
    kcycles_per_s: f64,
    mips: f64,
}

/// Geometric mean — the right average for throughput ratios.
fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of an empty set");
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// The geomean fast-forward-on throughput of a `BENCH_throughput.json`
/// document: the recorded summary field when present, else recomputed
/// from the cells (files written before the field existed).
fn geomean_of_doc(doc: &serde_json::Value) -> f64 {
    if let Some(g) = doc.get("geomean_kcycles_per_s").and_then(|v| v.as_f64()) {
        return g;
    }
    let cells = doc
        .get("cells")
        .and_then(|c| c.as_array())
        .expect("baseline document has no `cells`");
    let rates: Vec<f64> = cells
        .iter()
        .map(|c| {
            c.get("ff_on")
                .and_then(|f| f.get("kcycles_per_s"))
                .and_then(|v| v.as_f64())
                .expect("baseline cell has no ff_on.kcycles_per_s")
        })
        .collect();
    geomean(&rates)
}

fn measure(
    cfg: &SimConfig,
    program: &mtvp_isa::Program,
    n: u64,
    trace: &std::sync::Arc<mtvp_isa::trace::Trace>,
) -> (mtvp_engine::PipeStats, Measure) {
    // Best of three runs: the simulator is deterministic, so the fastest
    // wall-clock is the least noise-polluted estimate.
    let mut best: Option<(mtvp_engine::PipeStats, f64)> = None;
    for _ in 0..3 {
        let t0 = Instant::now();
        let r = run_with_trace(cfg, program, n, trace.clone());
        let wall = t0.elapsed().as_secs_f64().max(1e-9);
        match &best {
            Some((stats, best_wall)) => {
                assert_eq!(*stats, r.stats, "simulator must be deterministic");
                if wall < *best_wall {
                    best = Some((r.stats, wall));
                }
            }
            None => best = Some((r.stats, wall)),
        }
    }
    let (stats, wall) = best.expect("at least one run");
    let m = Measure {
        wall_s: wall,
        kcycles_per_s: stats.cycles as f64 / wall / 1e3,
        mips: stats.committed as f64 / wall / 1e6,
    };
    (stats, m)
}

/// Wall-clock of one functional-interpreter run (the fast-forward tier),
/// best of three.
fn interp_mips(program: &mtvp_isa::Program, n: u64) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let mut bus = SimpleBus::new();
        let mut interp = Interp::new(program);
        let t0 = Instant::now();
        let res = interp.run(&mut bus, 200_000_000);
        let wall = t0.elapsed().as_secs_f64().max(1e-9);
        assert!(res.halted && res.dyn_instrs == n, "interpreter diverged");
        best = best.min(wall);
    }
    n as f64 / best / 1e6
}

struct SampledMeasure {
    run: SampledRun,
    wall_s: f64,
    mips: f64,
}

/// One sampled run against `store`, timed. `mips` counts the *represented*
/// instructions (the whole program) against the wall clock — the number
/// comparable with a full run's committed MIPS at equal coverage.
fn measure_sampled(
    cfg: &SimConfig,
    program: &mtvp_isa::Program,
    n: u64,
    trace: &std::sync::Arc<mtvp_isa::trace::Trace>,
    store: Option<CkptStore<'_>>,
) -> SampledMeasure {
    let t0 = Instant::now();
    let run = run_sampled(cfg, program, n, trace, store);
    let wall_s = t0.elapsed().as_secs_f64().max(1e-9);
    let mips = n as f64 / wall_s / 1e6;
    SampledMeasure { run, wall_s, mips }
}

fn sampling_main(scale: Scale, scale_name: &str, out_path: &str, sp: SamplingParams) {
    let ckpt_dir = std::env::temp_dir().join(format!("mtvp-sim-bench-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let cache = Cache::new(&ckpt_dir);

    let mut cfg = SimConfig::new(Mode::Mtvp);
    cfg.contexts = 4;
    let mut sampled_cfg = cfg.clone();
    sampled_cfg.sampling = Some(sp);
    sampled_cfg.validate().expect("sampling schedule is valid");

    let mut cells: Vec<serde_json::Value> = Vec::new();
    println!(
        "{:<10} {:>10} {:>8} | {:>9} {:>8} | {:>9} {:>9} {:>8} | {:>8} {:>9}",
        "bench",
        "instrs",
        "interp",
        "full s",
        "MIPS",
        "cold s",
        "warm s",
        "MIPS",
        "speedup",
        "ipc err"
    );
    for bench in BENCHES {
        let wl = suite()
            .into_iter()
            .find(|w| w.name == *bench)
            .unwrap_or_else(|| panic!("workload {bench} not in suite"));
        let program = wl.build(scale);
        let (n, trace) = reference_trace(&program);

        let ff_mips = interp_mips(&program, n);
        let (full_stats, full) = measure(&cfg, &program, n, &trace);
        // The whole point of the two-tier split: the functional tier must
        // be far faster than the detailed tier (SimpleBus/MainMemory are
        // arena-backed flat arrays, not hash maps). Pointer chases (mcf,
        // vpr) hold the interpreter to ~6-7x the detailed tier, so the
        // bound leaves headroom for machine-load noise.
        assert!(
            ff_mips > 4.0 * full.mips,
            "{bench}: interpreter ({ff_mips:.1} MIPS) must outrun the detailed \
             simulator ({:.2} MIPS) by >4x for fast-forward to pay",
            full.mips
        );

        let store = CkptStore {
            cache: &cache,
            bench: wl.name,
            scale,
        };
        // Cold: builds and persists every checkpoint.
        let cold = measure_sampled(&sampled_cfg, &program, n, &trace, Some(store));
        assert!(cold.run.ckpt_hits == 0, "{bench}: cold run hit checkpoints");
        // Warm: best of three, every fast-forward served from checkpoints.
        let mut warm = measure_sampled(&sampled_cfg, &program, n, &trace, Some(store));
        for _ in 0..2 {
            let again = measure_sampled(&sampled_cfg, &program, n, &trace, Some(store));
            assert_eq!(
                again.run.stats, warm.run.stats,
                "{bench}: sampled simulation must be deterministic"
            );
            if again.wall_s < warm.wall_s {
                warm = again;
            }
        }
        assert_eq!(
            cold.run.stats, warm.run.stats,
            "{bench}: cold and checkpoint-warm estimates must be bit-identical"
        );
        assert_eq!(
            warm.run.ckpt_misses, 0,
            "{bench}: warm run rebuilt checkpoints"
        );

        let est_ipc = warm.run.stats.ipc();
        let ipc_err = ipc_error(&full_stats, &warm.run.stats);
        let errs = relative_errors(&full_stats, &warm.run.stats);
        let speedup_cold = full.wall_s / cold.wall_s;
        let speedup_warm = full.wall_s / warm.wall_s;
        println!(
            "{:<10} {:>10} {:>7.1}M | {:>9.3} {:>8.2} | {:>9.3} {:>9.3} {:>8.2} | {:>7.2}x {:>8.4}",
            bench,
            n,
            ff_mips,
            full.wall_s,
            full.mips,
            cold.wall_s,
            warm.wall_s,
            warm.mips,
            speedup_warm,
            ipc_err
        );
        let errs_obj: Vec<(String, serde_json::Value)> = errs
            .iter()
            .map(|(k, e)| (k.clone(), serde_json::json!(*e)))
            .collect();
        cells.push(serde_json::json!({
            "bench": *bench,
            "total_instrs": n,
            "windows": warm.run.meta.windows,
            "measured_instrs": warm.run.meta.measured_instrs,
            "detailed_fraction": warm.run.detailed_fraction(n),
            "interp_mips": ff_mips,
            "full": serde_json::json!({
                "wall_s": full.wall_s,
                "committed_mips": full.mips,
                "ipc": full_stats.ipc(),
            }),
            "sampled_cold": serde_json::json!({
                "wall_s": cold.wall_s,
                "committed_mips": cold.mips,
                "ckpt_hits": cold.run.ckpt_hits,
                "ckpt_misses": cold.run.ckpt_misses,
            }),
            "sampled_warm": serde_json::json!({
                "wall_s": warm.wall_s,
                "committed_mips": warm.mips,
                "ckpt_hits": warm.run.ckpt_hits,
                "ckpt_misses": warm.run.ckpt_misses,
            }),
            "est_ipc": est_ipc,
            "ipc_rel_err": ipc_err,
            "speedup_cold": speedup_cold,
            "speedup_warm": speedup_warm,
            "stat_rel_errs": serde_json::Value::Map(errs_obj),
        }));
    }
    let doc = serde_json::json!({
        "scale": scale_name,
        "config": "mtvp4",
        "sample": format!("{}:{}:{}", sp.window, sp.interval, sp.warmup),
        "note": "two-tier sampled simulation vs full detailed run; estimates are \
                 bit-identical cold vs checkpoint-warm (asserted); speedup is \
                 full wall / sampled wall at equal instruction coverage",
        "cells": cells
    });
    std::fs::write(
        out_path,
        serde_json::to_string_pretty(&doc).expect("serializes"),
    )
    .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("\nwrote {out_path}");
    let _ = std::fs::remove_dir_all(&ckpt_dir);
}

fn main() {
    let scale = scale_from_args();
    let args: Vec<String> = std::env::args().collect();
    let sampling = args.iter().any(|a| a == "--sampling");
    let out_path = match args.iter().position(|a| a == "--out") {
        Some(i) => args.get(i + 1).expect("--out needs a path").clone(),
        None if sampling => "BENCH_sampling.json".to_string(),
        None => "BENCH_throughput.json".to_string(),
    };
    let scale_name = match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Full => "full",
    };
    if sampling {
        let sp = match args.iter().position(|a| a == "--sample") {
            Some(i) => SamplingParams::parse(args.get(i + 1).expect("--sample needs W:I:U"))
                .expect("valid --sample"),
            // The shipped BENCH_sampling.json schedule: a 4k-instruction
            // detailed warm-up ahead of each 2k window keeps IPC error
            // under 1% on the well-sampled benches while the detailed
            // tier executes only 5% of the program.
            None => SamplingParams {
                window: 2_000,
                interval: 120_000,
                warmup: 4_000,
            },
        };
        sampling_main(scale, scale_name, &out_path, sp);
        return;
    }

    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .map(|i| args.get(i + 1).expect("--check needs a path").clone());
    let tolerance = match args.iter().position(|a| a == "--tolerance") {
        Some(i) => args
            .get(i + 1)
            .expect("--tolerance needs a value")
            .parse::<f64>()
            .expect("numeric --tolerance"),
        None => 0.02,
    };

    let configs = configs();
    let mut cells: Vec<serde_json::Value> = Vec::new();
    let mut on_rates: Vec<f64> = Vec::new();
    println!(
        "{:<10} {:<8} {:>12} {:>10} | {:>12} {:>8} | {:>12} {:>8} | {:>7}",
        "bench",
        "config",
        "sim cycles",
        "committed",
        "kcyc/s (off)",
        "MIPS",
        "kcyc/s (on)",
        "MIPS",
        "speedup"
    );
    for bench in BENCHES {
        let wl = suite()
            .into_iter()
            .find(|w| w.name == *bench)
            .unwrap_or_else(|| panic!("workload {bench} not in suite"));
        let program = wl.build(scale);
        let (n, trace) = reference_trace(&program);
        for (label, cfg) in &configs {
            let mut off_cfg = cfg.clone();
            off_cfg.fast_forward = false;
            let (off_stats, off) = measure(&off_cfg, &program, n, &trace);
            let mut on_cfg = cfg.clone();
            on_cfg.fast_forward = true;
            let (on_stats, on) = measure(&on_cfg, &program, n, &trace);
            assert_eq!(
                off_stats, on_stats,
                "fast-forward changed statistics on {bench}/{label}"
            );
            let speedup = on.kcycles_per_s / off.kcycles_per_s;
            on_rates.push(on.kcycles_per_s);
            println!(
                "{:<10} {:<8} {:>12} {:>10} | {:>12.0} {:>8.2} | {:>12.0} {:>8.2} | {:>6.2}x",
                bench,
                label,
                on_stats.cycles,
                on_stats.committed,
                off.kcycles_per_s,
                off.mips,
                on.kcycles_per_s,
                on.mips,
                speedup
            );
            cells.push(serde_json::json!({
                "bench": *bench,
                "config": label.as_str(),
                "sim_cycles": on_stats.cycles,
                "committed": on_stats.committed,
                "idle_cycles": on_stats.idle_cycles,
                "ff_off": serde_json::json!({
                    "wall_s": off.wall_s,
                    "kcycles_per_s": off.kcycles_per_s,
                    "committed_mips": off.mips
                }),
                "ff_on": serde_json::json!({
                    "wall_s": on.wall_s,
                    "kcycles_per_s": on.kcycles_per_s,
                    "committed_mips": on.mips
                }),
                "speedup": speedup
            }));
        }
    }
    let geomean_on = geomean(&on_rates);
    let perf_guard = match &check_path {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
            let base_doc: serde_json::Value = serde_json::from_str(&text)
                .unwrap_or_else(|e| panic!("baseline {path} is not JSON: {e}"));
            let baseline = geomean_of_doc(&base_doc);
            let ratio = geomean_on / baseline;
            println!(
                "\nperf guard: geomean {geomean_on:.0} kcyc/s vs baseline {baseline:.0} \
                 ({:+.2}%, tolerance -{:.1}%)",
                (ratio - 1.0) * 100.0,
                tolerance * 100.0
            );
            serde_json::json!({
                "baseline_path": path.as_str(),
                "baseline_geomean_kcycles_per_s": baseline,
                "ratio": ratio,
                "tolerance": tolerance,
            })
        }
        None => serde_json::Value::Null,
    };
    let guard_ratio = perf_guard.get("ratio").and_then(|v| v.as_f64());
    let doc = serde_json::json!({
        "scale": scale_name,
        "note": "simulator throughput with idle-cycle fast-forward off/on; simulated stats are bit-identical",
        "geomean_kcycles_per_s": geomean_on,
        "perf_guard": perf_guard,
        "cells": cells
    });
    std::fs::write(
        &out_path,
        serde_json::to_string_pretty(&doc).expect("serializes"),
    )
    .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("\nwrote {out_path}");
    if let Some(r) = guard_ratio {
        assert!(
            r >= 1.0 - tolerance,
            "simulator throughput regressed: geomean kcycles/s is {:.2}% below the baseline \
             (tolerance {:.1}%)",
            (1.0 - r) * 100.0,
            tolerance * 100.0
        );
    }
}
