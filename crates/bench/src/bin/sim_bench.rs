//! Simulator-throughput benchmark: how fast does the simulator itself run?
//!
//! For a representative set of workloads and machine configurations this
//! measures wall-clock simulation speed — simulated kilocycles per second
//! and committed millions-of-instructions per second — with idle-cycle
//! fast-forwarding off and on, and writes the results to
//! `BENCH_throughput.json`. The simulated statistics are bit-identical
//! between the two runs (asserted here; see `tests/fast_forward.rs`), so
//! any difference is pure simulator speed.
//!
//! Usage: `sim_bench [--scale tiny|small|full] [--out PATH]`

use mtvp_bench::scale_from_args;
use mtvp_engine::{reference_trace, run_with_trace};
use mtvp_engine::{Mode, Scale, SimConfig};
use mtvp_workloads::suite;
use std::time::Instant;

/// Workloads spanning the interesting regimes: pointer-chasing and
/// cache-resident integer codes plus a floating-point kernel.
const BENCHES: &[&str] = &["mcf", "gzip g", "vpr r", "mesa", "equake"];

fn configs() -> Vec<(String, SimConfig)> {
    let mut v = vec![("base".to_string(), SimConfig::new(Mode::Baseline))];
    for n in [4usize, 8] {
        let mut c = SimConfig::new(Mode::Mtvp);
        c.contexts = n;
        v.push((format!("mtvp{n}"), c));
    }
    v
}

struct Measure {
    wall_s: f64,
    kcycles_per_s: f64,
    mips: f64,
}

fn measure(
    cfg: &SimConfig,
    program: &mtvp_isa::Program,
    n: u64,
    trace: &std::sync::Arc<mtvp_isa::trace::Trace>,
) -> (mtvp_engine::PipeStats, Measure) {
    // Best of three runs: the simulator is deterministic, so the fastest
    // wall-clock is the least noise-polluted estimate.
    let mut best: Option<(mtvp_engine::PipeStats, f64)> = None;
    for _ in 0..3 {
        let t0 = Instant::now();
        let r = run_with_trace(cfg, program, n, trace.clone());
        let wall = t0.elapsed().as_secs_f64().max(1e-9);
        match &best {
            Some((stats, best_wall)) => {
                assert_eq!(*stats, r.stats, "simulator must be deterministic");
                if wall < *best_wall {
                    best = Some((r.stats, wall));
                }
            }
            None => best = Some((r.stats, wall)),
        }
    }
    let (stats, wall) = best.expect("at least one run");
    let m = Measure {
        wall_s: wall,
        kcycles_per_s: stats.cycles as f64 / wall / 1e3,
        mips: stats.committed as f64 / wall / 1e6,
    };
    (stats, m)
}

fn main() {
    let scale = scale_from_args();
    let args: Vec<String> = std::env::args().collect();
    let out_path = match args.iter().position(|a| a == "--out") {
        Some(i) => args.get(i + 1).expect("--out needs a path").clone(),
        None => "BENCH_throughput.json".to_string(),
    };
    let scale_name = match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Full => "full",
    };

    let configs = configs();
    let mut cells: Vec<serde_json::Value> = Vec::new();
    println!(
        "{:<10} {:<8} {:>12} {:>10} | {:>12} {:>8} | {:>12} {:>8} | {:>7}",
        "bench",
        "config",
        "sim cycles",
        "committed",
        "kcyc/s (off)",
        "MIPS",
        "kcyc/s (on)",
        "MIPS",
        "speedup"
    );
    for bench in BENCHES {
        let wl = suite()
            .into_iter()
            .find(|w| w.name == *bench)
            .unwrap_or_else(|| panic!("workload {bench} not in suite"));
        let program = wl.build(scale);
        let (n, trace) = reference_trace(&program);
        for (label, cfg) in &configs {
            let mut off_cfg = cfg.clone();
            off_cfg.fast_forward = false;
            let (off_stats, off) = measure(&off_cfg, &program, n, &trace);
            let mut on_cfg = cfg.clone();
            on_cfg.fast_forward = true;
            let (on_stats, on) = measure(&on_cfg, &program, n, &trace);
            assert_eq!(
                off_stats, on_stats,
                "fast-forward changed statistics on {bench}/{label}"
            );
            let speedup = on.kcycles_per_s / off.kcycles_per_s;
            println!(
                "{:<10} {:<8} {:>12} {:>10} | {:>12.0} {:>8.2} | {:>12.0} {:>8.2} | {:>6.2}x",
                bench,
                label,
                on_stats.cycles,
                on_stats.committed,
                off.kcycles_per_s,
                off.mips,
                on.kcycles_per_s,
                on.mips,
                speedup
            );
            cells.push(serde_json::json!({
                "bench": *bench,
                "config": label.as_str(),
                "sim_cycles": on_stats.cycles,
                "committed": on_stats.committed,
                "idle_cycles": on_stats.idle_cycles,
                "ff_off": serde_json::json!({
                    "wall_s": off.wall_s,
                    "kcycles_per_s": off.kcycles_per_s,
                    "committed_mips": off.mips
                }),
                "ff_on": serde_json::json!({
                    "wall_s": on.wall_s,
                    "kcycles_per_s": on.kcycles_per_s,
                    "committed_mips": on.mips
                }),
                "speedup": speedup
            }));
        }
    }
    let doc = serde_json::json!({
        "scale": scale_name,
        "note": "simulator throughput with idle-cycle fast-forward off/on; simulated stats are bit-identical",
        "cells": cells
    });
    std::fs::write(
        &out_path,
        serde_json::to_string_pretty(&doc).expect("serializes"),
    )
    .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("\nwrote {out_path}");
}
