//! §5.3: sensitivity to the speculative store buffer size. The paper
//! reports performance tails off at 64 entries and below while 128 gets
//! nearly the performance of the largest buffer; this binary produces the
//! actual curve.
//!
//! Thin wrapper over the `storebuf` built-in scenario
//! (`mtvp-sim exp run storebuf`).

use mtvp_bench::{dump_json, run_builtin};
use mtvp_engine::Suite;

fn main() {
    let (_, sweep) = run_builtin("storebuf");

    println!("\n=== Store buffer size sweep (mtvp8, Wang-Franklin) ===");
    println!("(geomean percent change in useful IPC vs baseline)\n");
    println!("{:<10}{:>10}{:>10}", "entries", "INT", "FP");
    for size in [4usize, 8, 16, 32, 64, 128, 256, 512] {
        println!(
            "{size:<10}{:>10.1}{:>10.1}",
            sweep.geomean_speedup(Some(Suite::Int), &format!("sb{size}"), "base"),
            sweep.geomean_speedup(Some(Suite::Fp), &format!("sb{size}"), "base"),
        );
    }
    dump_json("storebuf", &sweep);
}
