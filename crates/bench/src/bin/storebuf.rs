//! §5.3: sensitivity to the speculative store buffer size. The paper
//! reports performance tails off at 64 entries and below while 128 gets
//! nearly the performance of the largest buffer; this binary produces the
//! actual curve.

use mtvp_bench::{dump_json, scale_from_args};
use mtvp_core::sweep::Sweep;
use mtvp_core::{Mode, SimConfig, Suite};

fn main() {
    let scale = scale_from_args();
    let mut configs = vec![("base".to_string(), SimConfig::new(Mode::Baseline))];
    for size in [4usize, 8, 16, 32, 64, 128, 256, 512] {
        let mut c = SimConfig::new(Mode::Mtvp);
        c.contexts = 8;
        c.store_buffer = size;
        configs.push((format!("sb{size}"), c));
    }
    let sweep = Sweep::run(&configs, scale);

    println!("\n=== Store buffer size sweep (mtvp8, Wang-Franklin) ===");
    println!("(geomean percent change in useful IPC vs baseline)\n");
    println!("{:<10}{:>10}{:>10}", "entries", "INT", "FP");
    for size in [4usize, 8, 16, 32, 64, 128, 256, 512] {
        println!(
            "{size:<10}{:>10.1}{:>10.1}",
            sweep.geomean_speedup(Some(Suite::Int), &format!("sb{size}"), "base"),
            sweep.geomean_speedup(Some(Suite::Fp), &format!("sb{size}"), "base"),
        );
    }
    dump_json("storebuf", &sweep);
}
