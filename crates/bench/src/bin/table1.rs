//! Table 1: simulator architectural parameters. Prints the configured
//! machine and asserts every value matches the paper.

use mtvp_engine::{Mode, SimConfig};

fn main() {
    let p = SimConfig::new(Mode::Baseline).to_pipeline_config();
    let m = mtvp_mem::MemConfig::hpca2005();

    let rows: Vec<(&str, String, &str)> = vec![
        (
            "Pipeline depth",
            format!(
                "{} front-end stages (30-stage pipe model)",
                p.front_end_latency
            ),
            "30 stages",
        ),
        (
            "Fetch Bandwidth",
            format!(
                "{} total instructions from {} threads/cachelines",
                p.fetch_width, p.fetch_threads
            ),
            "16 from 2 cachelines",
        ),
        (
            "Branch Predictor",
            format!(
                "2bcgskew: {}K gshare/meta, {}K bimodal",
                p.gskew.gshare_entries / 1024,
                p.gskew.bimodal_entries / 1024
            ),
            "2bcgskew 64K meta/gshare, 16K bimodal",
        ),
        (
            "Stride Prefetcher",
            format!(
                "PC based, {} entries, {} stream buffers",
                m.prefetch.table_entries, m.prefetch.stream_buffers
            ),
            "PC based, 256 entry, 8 stream buffers",
        ),
        (
            "ROB Size",
            format!("{} entries", p.rob_entries),
            "256 entry",
        ),
        (
            "Rename Registers",
            format!("{} per class", p.rename_regs),
            "224",
        ),
        (
            "Queue Sizes",
            format!("{} each IQ, FQ, MQ", p.iq_entries),
            "64 each",
        ),
        (
            "Issue Bandwidth",
            format!(
                "8 per cycle: {} int, {} fp, {} ld/st",
                p.int_issue, p.fp_issue, p.mem_issue
            ),
            "8: 6 int, 2 fp, 4 ls",
        ),
        (
            "ICache",
            format!(
                "{}KB {}-way, {} cycles",
                m.l1i.size_bytes / 1024,
                m.l1i.assoc,
                m.l1_latency
            ),
            "64KB 2-way, 2 cycles",
        ),
        (
            "L1 D",
            format!(
                "{}KB {}-way, {} cycles",
                m.l1d.size_bytes / 1024,
                m.l1d.assoc,
                m.l1_latency
            ),
            "64KB 2-way, 2 cycles",
        ),
        (
            "L2",
            format!(
                "{}KB {}-way, {} cycles",
                m.l2.size_bytes / 1024,
                m.l2.assoc,
                m.l2_latency
            ),
            "512KB 8-way, 20 cycles",
        ),
        (
            "L3",
            format!(
                "{}MB {}-way, {} cycles",
                m.l3.size_bytes / 1024 / 1024,
                m.l3.assoc,
                m.l3_latency
            ),
            "4MB 16-way, 50 cycles",
        ),
        (
            "Main Memory",
            format!("{} cycles", m.mem_latency),
            "1000 cycles",
        ),
    ];

    println!("=== Table 1: Simulator Architectural Parameters ===\n");
    println!("{:<20} {:<52} paper", "parameter", "this reproduction");
    for (name, ours, paper) in &rows {
        println!("{name:<20} {ours:<52} {paper}");
    }

    // Hard assertions on the Table 1 numbers.
    assert_eq!(p.fetch_width, 16);
    assert_eq!(p.fetch_threads, 2);
    assert_eq!(p.rob_entries, 256);
    assert_eq!(p.rename_regs, 224);
    assert_eq!((p.iq_entries, p.fq_entries, p.mq_entries), (64, 64, 64));
    assert_eq!((p.int_issue, p.fp_issue, p.mem_issue), (6, 2, 4));
    assert_eq!(p.gskew.gshare_entries, 64 * 1024);
    assert_eq!(p.gskew.bimodal_entries, 16 * 1024);
    assert_eq!(m.prefetch.table_entries, 256);
    assert_eq!(m.prefetch.stream_buffers, 8);
    assert_eq!((m.l1i.size_bytes, m.l1i.assoc), (64 * 1024, 2));
    assert_eq!((m.l2.size_bytes, m.l2.assoc), (512 * 1024, 8));
    assert_eq!((m.l3.size_bytes, m.l3.assoc), (4 * 1024 * 1024, 16));
    assert_eq!(
        (m.l1_latency, m.l2_latency, m.l3_latency, m.mem_latency),
        (2, 20, 50, 1000)
    );
    println!("\nall Table 1 parameters verified");
}
