//! # mtvp-bench
//!
//! The benchmark harness that regenerates every table and figure of
//! *Multithreaded Value Prediction* (Tuck & Tullsen, HPCA-11 2005).
//!
//! Each figure has a binary (`fig1` … `fig6`, `table1`, `storebuf`,
//! `multivalue`) that runs the corresponding sweep and prints the same
//! rows/series the paper reports, plus a scaled-down criterion bench so
//! `cargo bench` exercises every experiment. Binaries accept an optional
//! `--scale tiny|small|full` argument (default `small`; the numbers in
//! EXPERIMENTS.md use `full`).

use mtvp_core::sweep::Sweep;
use mtvp_core::{Mode, Scale, SimConfig, Suite};

/// Parse `--scale` from argv (default Small).
pub fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--scale") {
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some("tiny") => Scale::Tiny,
            Some("small") => Scale::Small,
            Some("full") => Scale::Full,
            other => panic!("unknown --scale {other:?} (expected tiny|small|full)"),
        },
        None => Scale::Small,
    }
}

/// Parse the first positional (non-flag) argument as a benchmark name,
/// falling back to `default`. Flag values (e.g. the argument after
/// `--scale`) are skipped.
pub fn bench_from_args(default: &str) -> String {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--scale" {
            i += 2;
        } else if args[i].starts_with("--") {
            i += 1;
        } else {
            return args[i].clone();
        }
    }
    default.to_string()
}

/// An MTVP configuration with `contexts` hardware contexts under the
/// paper's default parameterization (Wang–Franklin predictor, ILP-pred
/// selector).
pub fn mtvp_config(contexts: usize) -> SimConfig {
    let mut c = SimConfig::new(Mode::Mtvp);
    c.contexts = contexts;
    c
}

/// An oracle-predictor MTVP configuration with the given context count
/// and thread-spawn latency (the Figure 2 parameterization).
pub fn oracle_mtvp_config(contexts: usize, spawn_latency: u64) -> SimConfig {
    let mut c = SimConfig::oracle(Mode::Mtvp);
    c.contexts = contexts;
    c.spawn_latency = spawn_latency;
    c
}

/// Print a per-benchmark percent-speedup table in the paper's layout:
/// integer benchmarks, then FP, each followed by its geometric mean.
pub fn print_speedup_table(title: &str, sweep: &Sweep, configs: &[&str], baseline: &str) {
    println!("\n=== {title} ===");
    println!("(percent change in useful IPC vs `{baseline}`)\n");
    let width = 10usize;
    print!("{:<12}", "benchmark");
    for c in configs {
        print!("{c:>width$}");
    }
    println!();
    for &int_suite in &[true, false] {
        println!("--- SPEC {} ---", if int_suite { "INT" } else { "FP" });
        for (bench, is_int) in sweep.benches() {
            if is_int != int_suite {
                continue;
            }
            print!("{bench:<12}");
            for c in configs {
                match sweep.speedup(&bench, c, baseline) {
                    Some(s) => print!("{s:>width$.1}"),
                    None => print!("{:>width$}", "-"),
                }
            }
            println!();
        }
        let suite = if int_suite { Suite::Int } else { Suite::Fp };
        print!("{:<12}", "geomean");
        for c in configs {
            print!(
                "{:>width$.1}",
                sweep.geomean_speedup(Some(suite), c, baseline)
            );
        }
        println!();
    }
}

/// Write the sweep's raw JSON next to the binary output for bookkeeping.
pub fn dump_json(name: &str, sweep: &Sweep) {
    let path = format!("target/{name}.json");
    if std::fs::write(&path, sweep.to_json()).is_ok() {
        println!("\n[raw data written to {path}]");
    }
}
