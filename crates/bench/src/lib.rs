//! # mtvp-bench
//!
//! The benchmark harness that regenerates every table and figure of
//! *Multithreaded Value Prediction* (Tuck & Tullsen, HPCA-11 2005).
//!
//! Each figure has a binary (`fig1` … `fig6`, `table1`, `storebuf`,
//! `multivalue`) that prints the same rows/series the paper reports.
//! The figure binaries are thin wrappers over the named built-in
//! scenarios in `mtvp-engine` — the same experiments `mtvp-sim exp run`
//! drives — so their cells come from (and land in) the shared results
//! cache and re-runs are incremental. Binaries accept an optional
//! `--scale tiny|small|full` argument (default `small`; the numbers in
//! EXPERIMENTS.md use `full`) plus the engine's `--jobs N` and
//! `--no-cache` flags.

use mtvp_engine::{builtin, Engine, EngineOptions, Mode, Scenario, SimConfig, Sweep};
use mtvp_workloads::Scale;

/// Parse `--scale` from argv (default Small).
pub fn scale_from_args() -> Scale {
    scale_opt_from_args().unwrap_or(Scale::Small)
}

/// Parse `--scale` from argv, `None` when absent (so a scenario's own
/// default scale can apply).
pub fn scale_opt_from_args() -> Option<Scale> {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--scale") {
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some("tiny") => Some(Scale::Tiny),
            Some("small") => Some(Scale::Small),
            Some("full") => Some(Scale::Full),
            other => panic!("unknown --scale {other:?} (expected tiny|small|full)"),
        },
        None => None,
    }
}

/// Parse the first positional (non-flag) argument as a benchmark name,
/// falling back to `default`. Flag values (e.g. the argument after
/// `--scale`) are skipped.
pub fn bench_from_args(default: &str) -> String {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--scale" || args[i] == "--jobs" {
            i += 2;
        } else if args[i].starts_with("--") {
            i += 1;
        } else {
            return args[i].clone();
        }
    }
    default.to_string()
}

/// The engine every figure binary runs on: disk cache (honouring
/// `$MTVP_CACHE_DIR`) unless `--no-cache` is given, `--jobs N` respected,
/// live progress on stderr.
pub fn engine_from_args() -> Engine {
    let args: Vec<String> = std::env::args().collect();
    let jobs = args.iter().position(|a| a == "--jobs").map(|i| {
        args.get(i + 1)
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| panic!("--jobs needs a positive integer"))
    });
    let mut opts = EngineOptions {
        jobs,
        progress: true,
        ..EngineOptions::default()
    };
    if args.iter().any(|a| a == "--no-cache") {
        opts.cache = mtvp_engine::CacheMode::Off;
    }
    Engine::new(opts)
}

/// Run a named built-in scenario under the argv-configured engine and
/// scale, printing the cache summary. The workhorse of the figure
/// binaries.
pub fn run_builtin(name: &str) -> (Scenario, Sweep) {
    let scenario = builtin(name).unwrap_or_else(|| panic!("no built-in scenario `{name}`"));
    let report = engine_from_args()
        .run_scenario(&scenario, scale_opt_from_args())
        .unwrap_or_else(|e| panic!("scenario {name}: {e}"));
    println!("[{name}] {}", report.summary());
    (scenario, report.sweep)
}

/// An MTVP configuration with `contexts` hardware contexts under the
/// paper's default parameterization (Wang–Franklin predictor, ILP-pred
/// selector).
pub fn mtvp_config(contexts: usize) -> SimConfig {
    let mut c = SimConfig::new(Mode::Mtvp);
    c.contexts = contexts;
    c
}

/// An oracle-predictor MTVP configuration with the given context count
/// and thread-spawn latency (the Figure 2 parameterization).
pub fn oracle_mtvp_config(contexts: usize, spawn_latency: u64) -> SimConfig {
    let mut c = SimConfig::oracle(Mode::Mtvp);
    c.contexts = contexts;
    c.spawn_latency = spawn_latency;
    c
}

/// Print a per-benchmark percent-speedup table in the paper's layout:
/// integer benchmarks, then FP, each followed by its geometric mean.
pub fn print_speedup_table(title: &str, sweep: &Sweep, configs: &[&str], baseline: &str) {
    print!(
        "{}",
        mtvp_engine::render_speedup_table(title, sweep, configs, baseline)
    );
}

/// Write the sweep's raw JSON next to the binary output for bookkeeping.
pub fn dump_json(name: &str, sweep: &Sweep) {
    let path = format!("target/{name}.json");
    let json = match sweep.to_json() {
        Ok(j) => j,
        Err(e) => {
            eprintln!("[warn] cannot serialize {name} sweep: {e}");
            return;
        }
    };
    if std::fs::write(&path, json).is_ok() {
        println!("\n[raw data written to {path}]");
    }
}
