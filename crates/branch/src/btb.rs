//! Branch target buffer for indirect jumps (`jr`/`jalr`).
//!
//! Direct branches and jumps in this ISA carry their target in the
//! instruction word, which the front end sees as soon as the instruction
//! is fetched, so only *indirect* targets need prediction.

use serde::{Deserialize, Serialize};

#[derive(Copy, Clone, Debug, Default)]
struct BtbEntry {
    valid: bool,
    pc: u64,
    target: u64,
}

/// BTB statistics.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BtbStats {
    /// Lookups that found a target.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
}

/// A direct-mapped, tagged branch target buffer.
#[derive(Clone, Debug)]
pub struct Btb {
    entries: Vec<BtbEntry>,
    stats: BtbStats,
}

impl Btb {
    /// Create a BTB with `entries` slots (power of two).
    ///
    /// # Panics
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "BTB size must be a power of two");
        Btb {
            entries: vec![BtbEntry::default(); entries],
            stats: BtbStats::default(),
        }
    }

    #[inline]
    fn idx(&self, pc: u64) -> usize {
        (pc as usize) & (self.entries.len() - 1)
    }

    /// Predicted target for the indirect jump at `pc`, if known.
    pub fn predict(&mut self, pc: u64) -> Option<u64> {
        let e = self.entries[self.idx(pc)];
        if e.valid && e.pc == pc {
            self.stats.hits += 1;
            Some(e.target)
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Record the resolved target of the indirect jump at `pc`.
    pub fn update(&mut self, pc: u64, target: u64) {
        let i = self.idx(pc);
        self.entries[i] = BtbEntry {
            valid: true,
            pc,
            target,
        };
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> BtbStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learn_and_predict() {
        let mut b = Btb::new(64);
        assert_eq!(b.predict(0x10), None);
        b.update(0x10, 0x99);
        assert_eq!(b.predict(0x10), Some(0x99));
        b.update(0x10, 0x55); // target changes
        assert_eq!(b.predict(0x10), Some(0x55));
        assert_eq!(b.stats().hits, 2);
        assert_eq!(b.stats().misses, 1);
    }

    #[test]
    fn aliasing_entries_replace() {
        let mut b = Btb::new(16);
        b.update(0x1, 0xA);
        b.update(0x11, 0xB); // same slot (0x11 & 15 == 1), different tag
        assert_eq!(b.predict(0x1), None);
        assert_eq!(b.predict(0x11), Some(0xB));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_size_panics() {
        let _ = Btb::new(100);
    }
}
