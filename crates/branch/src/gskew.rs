//! The 2bcgskew direction predictor (Seznec), as configured in Table 1.
//!
//! Four banks of 2-bit saturating counters:
//! - a **bimodal** table indexed by PC alone;
//! - two **gshare** banks `G0`/`G1` indexed by skewed hashes of PC and
//!   global history (short and long histories respectively);
//! - a **meta** table that chooses between the bimodal prediction and the
//!   majority vote of {bimodal, G0, G1} (the "e-gskew" prediction).
//!
//! Updates follow the partial-update policy: on a correct prediction only
//! the agreeing banks are strengthened; on a misprediction all banks are
//! trained toward the outcome, and the meta table is trained whenever the
//! bimodal and e-gskew predictions disagree.

use serde::{Deserialize, Serialize};

/// Sizing of the 2bcgskew predictor.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GskewConfig {
    /// Entries in the bimodal table (power of two).
    pub bimodal_entries: usize,
    /// Entries in each gshare bank and the meta table (power of two).
    pub gshare_entries: usize,
    /// History bits used by the short-history bank `G0`.
    pub short_history: u32,
    /// History bits used by the long-history bank `G1` and meta.
    pub long_history: u32,
}

impl GskewConfig {
    /// Table 1: 64K-entry meta and gshare banks, 16K-entry bimodal table.
    pub fn hpca2005() -> Self {
        GskewConfig {
            bimodal_entries: 16 * 1024,
            gshare_entries: 64 * 1024,
            short_history: 8,
            long_history: 16,
        }
    }

    /// A small configuration for fast tests.
    pub fn tiny() -> Self {
        GskewConfig {
            bimodal_entries: 256,
            gshare_entries: 1024,
            short_history: 6,
            long_history: 10,
        }
    }
}

#[inline]
fn ctr_taken(c: u8) -> bool {
    c >= 2
}

#[inline]
fn ctr_update(c: &mut u8, taken: bool) {
    if taken {
        *c = (*c + 1).min(3);
    } else {
        *c = c.saturating_sub(1);
    }
}

/// Statistics of the direction predictor.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DirectionStats {
    /// Predictions made.
    pub predictions: u64,
    /// Predictions that matched the outcome at update time.
    pub correct: u64,
}

/// The 2bcgskew conditional-branch direction predictor.
#[derive(Clone, Debug)]
pub struct DirectionPredictor {
    cfg: GskewConfig,
    bimodal: Vec<u8>,
    g0: Vec<u8>,
    g1: Vec<u8>,
    meta: Vec<u8>,
    stats: DirectionStats,
}

impl DirectionPredictor {
    /// Create a predictor with all counters weakly not-taken (1).
    ///
    /// # Panics
    /// Panics unless both table sizes are powers of two.
    pub fn new(cfg: GskewConfig) -> Self {
        assert!(
            cfg.bimodal_entries.is_power_of_two(),
            "bimodal size must be a power of two"
        );
        assert!(
            cfg.gshare_entries.is_power_of_two(),
            "gshare size must be a power of two"
        );
        DirectionPredictor {
            bimodal: vec![1; cfg.bimodal_entries],
            g0: vec![1; cfg.gshare_entries],
            g1: vec![1; cfg.gshare_entries],
            meta: vec![2; cfg.gshare_entries], // weakly prefer e-gskew
            cfg,
            stats: DirectionStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> GskewConfig {
        self.cfg
    }

    /// Accumulated accuracy statistics.
    pub fn stats(&self) -> DirectionStats {
        self.stats
    }

    #[inline]
    fn bim_idx(&self, pc: u64) -> usize {
        (pc as usize) & (self.cfg.bimodal_entries - 1)
    }

    /// Skewing functions: distinct mixes of PC and (masked) history per bank.
    #[inline]
    fn g0_idx(&self, pc: u64, ghist: u64) -> usize {
        let h = ghist & ((1 << self.cfg.short_history) - 1);
        ((pc ^ (h << 2) ^ (pc >> 13)) as usize) & (self.cfg.gshare_entries - 1)
    }

    #[inline]
    fn g1_idx(&self, pc: u64, ghist: u64) -> usize {
        let h = ghist & ((1u64 << self.cfg.long_history) - 1);
        ((pc ^ h ^ (h << 5) ^ (pc >> 7)) as usize) & (self.cfg.gshare_entries - 1)
    }

    #[inline]
    fn meta_idx(&self, pc: u64, ghist: u64) -> usize {
        let h = ghist & ((1u64 << self.cfg.long_history) - 1);
        ((pc.wrapping_mul(0x9E37_79B9) ^ h) as usize) & (self.cfg.gshare_entries - 1)
    }

    fn components(&self, pc: u64, ghist: u64) -> (bool, bool, bool, bool) {
        let bim = ctr_taken(self.bimodal[self.bim_idx(pc)]);
        let g0 = ctr_taken(self.g0[self.g0_idx(pc, ghist)]);
        let g1 = ctr_taken(self.g1[self.g1_idx(pc, ghist)]);
        let use_gskew = ctr_taken(self.meta[self.meta_idx(pc, ghist)]);
        (bim, g0, g1, use_gskew)
    }

    /// Predict the direction of the conditional branch at `pc` under global
    /// history `ghist`. Read-only; call [`DirectionPredictor::update`] at
    /// resolution.
    pub fn predict(&self, pc: u64, ghist: u64) -> bool {
        let (bim, g0, g1, use_gskew) = self.components(pc, ghist);
        let egskew = (bim as u8 + g0 as u8 + g1 as u8) >= 2;
        if use_gskew {
            egskew
        } else {
            bim
        }
    }

    /// Train the predictor with the resolved outcome. `ghist` must be the
    /// history value that was used at prediction time.
    pub fn update(&mut self, pc: u64, ghist: u64, taken: bool) {
        let (bim, g0, g1, use_gskew) = self.components(pc, ghist);
        let egskew = (bim as u8 + g0 as u8 + g1 as u8) >= 2;
        let pred = if use_gskew { egskew } else { bim };

        self.stats.predictions += 1;
        if pred == taken {
            self.stats.correct += 1;
        }

        let bi = self.bim_idx(pc);
        let i0 = self.g0_idx(pc, ghist);
        let i1 = self.g1_idx(pc, ghist);
        let mi = self.meta_idx(pc, ghist);

        if pred == taken {
            // Partial update: strengthen only the agreeing banks.
            if bim == taken {
                ctr_update(&mut self.bimodal[bi], taken);
            }
            if g0 == taken {
                ctr_update(&mut self.g0[i0], taken);
            }
            if g1 == taken {
                ctr_update(&mut self.g1[i1], taken);
            }
        } else {
            ctr_update(&mut self.bimodal[bi], taken);
            ctr_update(&mut self.g0[i0], taken);
            ctr_update(&mut self.g1[i1], taken);
        }
        // Meta trains whenever its two inputs disagree.
        if bim != egskew {
            ctr_update(&mut self.meta[mi], egskew == taken);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_pattern(pattern: &[bool], reps: usize, pc: u64) -> f64 {
        let mut p = DirectionPredictor::new(GskewConfig::tiny());
        let mut ghist = 0u64;
        let (mut correct, mut total) = (0u64, 0u64);
        for _ in 0..reps {
            for &taken in pattern {
                let pred = p.predict(pc, ghist);
                if pred == taken {
                    correct += 1;
                }
                total += 1;
                p.update(pc, ghist, taken);
                ghist = (ghist << 1) | taken as u64;
            }
        }
        correct as f64 / total as f64
    }

    #[test]
    fn always_taken_is_learned() {
        assert!(run_pattern(&[true], 200, 0x10) > 0.95);
    }

    #[test]
    fn always_not_taken_is_learned() {
        assert!(run_pattern(&[false], 200, 0x14) > 0.95);
    }

    #[test]
    fn short_loop_pattern_is_learned_by_history_banks() {
        // T T T N repeating: bimodal alone caps at 75%, history banks learn it.
        let acc = run_pattern(&[true, true, true, false], 300, 0x18);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn alternating_pattern_is_learned() {
        let acc = run_pattern(&[true, false], 300, 0x1C);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn random_pattern_is_not_learnable() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(42);
        let pattern: Vec<bool> = (0..512).map(|_| rng.r#gen::<bool>()).collect();
        let acc = run_pattern(&pattern, 4, 0x20);
        assert!(
            acc < 0.75,
            "random branches should not be highly predictable: {acc}"
        );
    }

    #[test]
    fn stats_track_accuracy() {
        let mut p = DirectionPredictor::new(GskewConfig::tiny());
        for _ in 0..100 {
            let _ = p.predict(0x30, 0);
            p.update(0x30, 0, true);
        }
        let s = p.stats();
        assert_eq!(s.predictions, 100);
        assert!(s.correct >= 95);
    }

    #[test]
    fn distinct_pcs_do_not_fully_alias() {
        // Train pc A taken, pc B not-taken; both should end up correct.
        let mut p = DirectionPredictor::new(GskewConfig::tiny());
        for _ in 0..50 {
            p.update(0x100, 0, true);
            p.update(0x104, 0, false);
        }
        assert!(p.predict(0x100, 0));
        assert!(!p.predict(0x104, 0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let _ = DirectionPredictor::new(GskewConfig {
            bimodal_entries: 100,
            ..GskewConfig::tiny()
        });
    }

    #[test]
    fn hpca_config_sizes() {
        let p = DirectionPredictor::new(GskewConfig::hpca2005());
        assert_eq!(p.config().bimodal_entries, 16 * 1024);
        assert_eq!(p.config().gshare_entries, 64 * 1024);
    }
}
