//! # mtvp-branch
//!
//! Branch prediction for the MTVP simulator, matching Table 1 of the
//! paper: a **2bcgskew** direction predictor (16K-entry bimodal table,
//! 64K-entry gshare banks and meta table), a branch target buffer for
//! indirect jumps, and a per-thread return-address stack.
//!
//! Direction history is speculative: the pipeline snapshots the global
//! history register at each prediction and restores it on a squash.
//!
//! # Example
//!
//! ```
//! use mtvp_branch::{DirectionPredictor, GskewConfig};
//!
//! let mut p = DirectionPredictor::new(GskewConfig::hpca2005());
//! let mut ghist = 0u64;
//! // A loop branch: taken 7 times, then not taken, repeating.
//! let pc = 0x40;
//! let mut correct = 0;
//! for trip in 0..400u32 {
//!     let taken = trip % 8 != 7;
//!     let pred = p.predict(pc, ghist);
//!     if pred == taken { correct += 1 }
//!     p.update(pc, ghist, taken);
//!     ghist = (ghist << 1) | taken as u64;
//! }
//! assert!(correct > 350, "predictor should learn the loop: {correct}/400");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod btb;
mod gskew;
mod ras;

pub use btb::Btb;
pub use gskew::{DirectionPredictor, GskewConfig};
pub use ras::ReturnAddressStack;
