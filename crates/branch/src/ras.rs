//! Per-thread return-address stack.
//!
//! The pipeline pushes on `jal`/`jalr` (calls) and pops on `jr r31`
//! (the return idiom in this ISA). The stack is part of per-thread fetch
//! state: it is cloned when a value-prediction thread is spawned and
//! checkpointed/restored around squashes by value (it is small).

use serde::{Deserialize, Serialize};

/// A bounded return-address stack. Pushing past capacity wraps (oldest
/// entry is lost), as in real hardware.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReturnAddressStack {
    entries: Vec<u64>,
    capacity: usize,
}

impl ReturnAddressStack {
    /// Create an empty RAS with the given capacity.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "RAS capacity must be positive");
        ReturnAddressStack {
            entries: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Push a return address (a call).
    pub fn push(&mut self, addr: u64) {
        if self.entries.len() == self.capacity {
            self.entries.remove(0);
        }
        self.entries.push(addr);
    }

    /// Pop the predicted return address (a return). `None` if empty.
    pub fn pop(&mut self) -> Option<u64> {
        self.entries.pop()
    }

    /// Current depth.
    pub fn depth(&self) -> usize {
        self.entries.len()
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut r = ReturnAddressStack::new(4);
        r.push(1);
        r.push(2);
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), Some(1));
        assert_eq!(r.pop(), None);
        assert!(r.is_empty());
    }

    #[test]
    fn overflow_drops_oldest() {
        let mut r = ReturnAddressStack::new(2);
        r.push(1);
        r.push(2);
        r.push(3);
        assert_eq!(r.depth(), 2);
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn clone_for_spawn_is_independent() {
        let mut r = ReturnAddressStack::new(4);
        r.push(7);
        let mut child = r.clone();
        child.pop();
        assert_eq!(r.depth(), 1);
        assert_eq!(child.depth(), 0);
    }
}
