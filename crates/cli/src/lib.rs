//! Argument parsing and command implementations for the `mtvp-sim` CLI.
//!
//! Hand-rolled parsing (the workspace deliberately keeps its dependency
//! set to the simulation essentials). See [`Command::parse`] for the
//! grammar and `mtvp-sim help` for user documentation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mtvp_core::{
    chrome_trace, pipeview, run_program, run_program_traced, suite, Mode, PredictorKind, Scale,
    SelectorKind, SimConfig, TraceOptions,
};
use std::fmt::Write as _;

/// Tracing options parsed from `--trace[=N]`, `--trace-out` and
/// `--trace-window` (see [`Command::parse`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceSpec {
    /// Ring capacity: the newest `ring` events are retained.
    pub ring: usize,
    /// Where to write the Chrome trace-event JSON (`None`: don't write).
    pub out: Option<String>,
    /// Cycle window `[start, end)` restricting ring retention.
    pub window: Option<(u64, u64)>,
}

impl Default for TraceSpec {
    fn default() -> Self {
        TraceSpec {
            ring: 1 << 20,
            out: None,
            window: None,
        }
    }
}

/// A parsed CLI invocation.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// `list` — print the workload registry.
    List,
    /// `run <bench> [options]` — simulate one workload under one config.
    Run {
        /// Benchmark name.
        bench: String,
        /// Machine configuration.
        config: SimConfig,
        /// Build scale.
        scale: Scale,
        /// Emit JSON instead of text.
        json: bool,
        /// Lifecycle tracing, when requested with `--trace`.
        trace: Option<TraceSpec>,
    },
    /// `trace <bench> [options]` — simulate with tracing and render a
    /// textual pipeline view (gem5 O3-pipeview style).
    Trace {
        /// Benchmark name.
        bench: String,
        /// Machine configuration.
        config: SimConfig,
        /// Build scale.
        scale: Scale,
        /// Ring/window/output options.
        spec: TraceSpec,
        /// Maximum uop rows in the pipeview rendering.
        rows: usize,
    },
    /// `compare <bench> [--scale s]` — run every mode on one workload.
    Compare {
        /// Benchmark name.
        bench: String,
        /// Build scale.
        scale: Scale,
    },
    /// `disasm <bench> [--limit n]` — print a kernel's assembly.
    Disasm {
        /// Benchmark name.
        bench: String,
        /// Maximum instructions to print.
        limit: usize,
    },
    /// `help`.
    Help,
}

/// Errors produced while parsing arguments.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseArgsError(pub String);

impl std::fmt::Display for ParseArgsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseArgsError {}

fn parse_scale(s: &str) -> Result<Scale, ParseArgsError> {
    match s {
        "tiny" => Ok(Scale::Tiny),
        "small" => Ok(Scale::Small),
        "full" => Ok(Scale::Full),
        other => Err(ParseArgsError(format!(
            "unknown scale `{other}` (tiny|small|full)"
        ))),
    }
}

fn parse_mode(s: &str) -> Result<Mode, ParseArgsError> {
    Ok(match s {
        "baseline" => Mode::Baseline,
        "stvp" => Mode::Stvp,
        "mtvp" => Mode::Mtvp,
        "mtvp-nostall" => Mode::MtvpNoStall,
        "spawn-only" => Mode::SpawnOnly,
        "wide-window" => Mode::WideWindow,
        "multi-value" => Mode::MultiValue,
        other => {
            return Err(ParseArgsError(format!(
                "unknown mode `{other}` (baseline|stvp|mtvp|mtvp-nostall|spawn-only|wide-window|multi-value)"
            )))
        }
    })
}

fn parse_predictor(s: &str) -> Result<PredictorKind, ParseArgsError> {
    Ok(match s {
        "none" => PredictorKind::None,
        "oracle" => PredictorKind::Oracle,
        "wang-franklin" | "wf" => PredictorKind::WangFranklin,
        "wf-liberal" => PredictorKind::WangFranklinLiberal,
        "dfcm" => PredictorKind::Dfcm,
        "stride" => PredictorKind::Stride,
        "last-value" => PredictorKind::LastValue,
        other => {
            return Err(ParseArgsError(format!(
                "unknown predictor `{other}` (none|oracle|wf|wf-liberal|dfcm|stride|last-value)"
            )))
        }
    })
}

fn parse_selector(s: &str) -> Result<SelectorKind, ParseArgsError> {
    Ok(match s {
        "always" => SelectorKind::Always,
        "ilp-pred" | "ilp" => SelectorKind::IlpPred,
        "l3-miss-oracle" | "l3" => SelectorKind::L3MissOracle,
        other => {
            return Err(ParseArgsError(format!(
                "unknown selector `{other}` (always|ilp-pred|l3-miss-oracle)"
            )))
        }
    })
}

/// Positional value lookup for `--flag value` pairs.
fn get_flag<'a>(rest: &[&'a str], name: &str) -> Result<Option<&'a str>, ParseArgsError> {
    match rest.iter().position(|a| *a == name) {
        Some(i) => match rest.get(i + 1) {
            Some(v) => Ok(Some(*v)),
            None => Err(ParseArgsError(format!("{name} requires a value"))),
        },
        None => Ok(None),
    }
}

/// Machine-configuration flags shared by `run` and `trace`.
fn parse_sim_config(rest: &[&str]) -> Result<(SimConfig, Scale), ParseArgsError> {
    let mode = parse_mode(get_flag(rest, "--mode")?.unwrap_or("mtvp"))?;
    let mut config = SimConfig::new(mode);
    if let Some(v) = get_flag(rest, "--contexts")? {
        config.contexts = v
            .parse()
            .map_err(|_| ParseArgsError(format!("bad --contexts `{v}`")))?;
    }
    if let Some(v) = get_flag(rest, "--predictor")? {
        config.predictor = parse_predictor(v)?;
    }
    if let Some(v) = get_flag(rest, "--selector")? {
        config.selector = parse_selector(v)?;
    }
    if let Some(v) = get_flag(rest, "--spawn-latency")? {
        config.spawn_latency = v
            .parse()
            .map_err(|_| ParseArgsError(format!("bad --spawn-latency `{v}`")))?;
    }
    if let Some(v) = get_flag(rest, "--store-buffer")? {
        config.store_buffer = v
            .parse()
            .map_err(|_| ParseArgsError(format!("bad --store-buffer `{v}`")))?;
    }
    if rest.contains(&"--no-prefetch") {
        config.prefetcher = false;
    }
    if rest.contains(&"--cold-start") {
        config.warm_start = false;
    }
    let scale = parse_scale(get_flag(rest, "--scale")?.unwrap_or("small"))?;
    Ok((config, scale))
}

/// A `START:END` cycle window.
fn parse_trace_window(v: &str) -> Result<(u64, u64), ParseArgsError> {
    let Some((s, e)) = v.split_once(':') else {
        return Err(ParseArgsError(format!(
            "bad --trace-window `{v}` (expected START:END)"
        )));
    };
    let start: u64 = s
        .parse()
        .map_err(|_| ParseArgsError(format!("bad --trace-window start `{s}`")))?;
    let end: u64 = e
        .parse()
        .map_err(|_| ParseArgsError(format!("bad --trace-window end `{e}`")))?;
    if end <= start {
        return Err(ParseArgsError(format!(
            "empty --trace-window `{v}` (end must exceed start)"
        )));
    }
    Ok((start, end))
}

/// The `--trace[=N]`, `--trace-out FILE` and `--trace-window[=]S:E` flags.
/// `--trace-out`/`--trace-window` imply `--trace`. Returns `None` when no
/// tracing flag is present.
fn parse_trace_spec(rest: &[&str]) -> Result<Option<TraceSpec>, ParseArgsError> {
    let mut spec = TraceSpec::default();
    let mut enabled = false;
    for a in rest {
        if *a == "--trace" {
            enabled = true;
        } else if let Some(v) = a.strip_prefix("--trace=") {
            enabled = true;
            spec.ring = v
                .parse()
                .map_err(|_| ParseArgsError(format!("bad --trace ring size `{v}`")))?;
        } else if let Some(v) = a.strip_prefix("--trace-window=") {
            enabled = true;
            spec.window = Some(parse_trace_window(v)?);
        }
    }
    if let Some(v) = get_flag(rest, "--trace-window")? {
        enabled = true;
        spec.window = Some(parse_trace_window(v)?);
    }
    if let Some(v) = get_flag(rest, "--trace-out")? {
        enabled = true;
        spec.out = Some(v.to_string());
    }
    Ok(enabled.then_some(spec))
}

impl Command {
    /// Parse an argv tail (without the program name).
    pub fn parse(args: &[String]) -> Result<Command, ParseArgsError> {
        let mut it = args.iter().map(String::as_str);
        let cmd = it.next().unwrap_or("help");
        let rest: Vec<&str> = it.collect();
        match cmd {
            "list" => Ok(Command::List),
            "help" | "--help" | "-h" => Ok(Command::Help),
            "run" => {
                let bench = rest
                    .first()
                    .filter(|a| !a.starts_with("--"))
                    .ok_or_else(|| ParseArgsError("run requires a benchmark name".into()))?
                    .to_string();
                let (config, scale) = parse_sim_config(&rest)?;
                Ok(Command::Run {
                    bench,
                    config,
                    scale,
                    json: rest.contains(&"--json"),
                    trace: parse_trace_spec(&rest)?,
                })
            }
            "trace" => {
                let bench = rest
                    .first()
                    .filter(|a| !a.starts_with("--"))
                    .ok_or_else(|| ParseArgsError("trace requires a benchmark name".into()))?
                    .to_string();
                let (config, scale) = parse_sim_config(&rest)?;
                let spec = parse_trace_spec(&rest)?.unwrap_or_default();
                let rows = match get_flag(&rest, "--rows")? {
                    Some(v) => v
                        .parse()
                        .map_err(|_| ParseArgsError(format!("bad --rows `{v}`")))?,
                    None => 48,
                };
                Ok(Command::Trace {
                    bench,
                    config,
                    scale,
                    spec,
                    rows,
                })
            }
            "compare" => {
                let bench = rest
                    .first()
                    .filter(|a| !a.starts_with("--"))
                    .ok_or_else(|| ParseArgsError("compare requires a benchmark name".into()))?
                    .to_string();
                let scale = parse_scale(get_flag(&rest, "--scale")?.unwrap_or("small"))?;
                Ok(Command::Compare { bench, scale })
            }
            "disasm" => {
                let bench = rest
                    .first()
                    .filter(|a| !a.starts_with("--"))
                    .ok_or_else(|| ParseArgsError("disasm requires a benchmark name".into()))?
                    .to_string();
                let limit = match get_flag(&rest, "--limit")? {
                    Some(v) => v
                        .parse()
                        .map_err(|_| ParseArgsError(format!("bad --limit `{v}`")))?,
                    None => 120,
                };
                Ok(Command::Disasm { bench, limit })
            }
            other => Err(ParseArgsError(format!(
                "unknown command `{other}`; try `help`"
            ))),
        }
    }

    /// Execute the command, returning the text to print.
    ///
    /// # Errors
    /// Returns an error string for unknown benchmark names.
    pub fn execute(self) -> Result<String, ParseArgsError> {
        let mut out = String::new();
        match self {
            Command::Help => out.push_str(HELP),
            Command::List => {
                let _ = writeln!(out, "{:<10} {:<6} description", "name", "suite");
                for w in suite() {
                    let _ = writeln!(
                        out,
                        "{:<10} {:<6} {}",
                        w.name,
                        if w.suite == mtvp_core::Suite::Int {
                            "int"
                        } else {
                            "fp"
                        },
                        w.description
                    );
                }
            }
            Command::Run {
                bench,
                config,
                scale,
                json,
                trace,
            } => {
                let wl = find(&bench)?;
                let program = wl.build(scale);
                let (r, tracer) = match &trace {
                    Some(spec) => {
                        let opts = TraceOptions {
                            ring: spec.ring,
                            window: spec.window,
                        };
                        let (r, t) = run_program_traced(&config, &program, &opts);
                        (r, Some(t))
                    }
                    None => (run_program(&config, &program), None),
                };
                if json {
                    let doc = serde_json::json!({
                        "bench": bench,
                        "config": config,
                        "ipc": r.ipc(),
                        "stats": r.stats,
                    });
                    let doc = match (&tracer, doc) {
                        (Some(t), serde_json::Value::Map(mut entries)) => {
                            let trace_doc = serde_json::json!({
                                "events_retained": t.len() as u64,
                                "events_dropped": t.dropped(),
                                "registry": t.registry(),
                            });
                            entries.push(("trace".to_string(), trace_doc));
                            serde_json::Value::Map(entries)
                        }
                        (_, doc) => doc,
                    };
                    let _ = writeln!(out, "{doc}");
                } else {
                    let _ = writeln!(out, "bench      : {bench} ({})", wl.description);
                    let _ = writeln!(out, "mode       : {:?}", config.mode);
                    let _ = writeln!(out, "cycles     : {}", r.stats.cycles);
                    let _ = writeln!(out, "committed  : {}", r.stats.committed);
                    let _ = writeln!(out, "useful IPC : {:.4}", r.ipc());
                    let _ = writeln!(
                        out,
                        "vp         : stvp {}/{} ok, spawns {} ({} ok, {} wrong)",
                        r.stats.vp.stvp_used,
                        r.stats.vp.stvp_correct,
                        r.stats.vp.mtvp_spawns,
                        r.stats.vp.mtvp_correct,
                        r.stats.vp.mtvp_wrong
                    );
                    if let Some(t) = &tracer {
                        let _ = writeln!(
                            out,
                            "trace      : {} events retained, {} dropped",
                            t.len(),
                            t.dropped()
                        );
                    }
                }
                if let (Some(spec), Some(t)) = (&trace, &tracer) {
                    if let Some(path) = &spec.out {
                        let text = chrome_trace(t.events());
                        std::fs::write(path, text).map_err(|e| {
                            ParseArgsError(format!("cannot write trace to {path}: {e}"))
                        })?;
                        // Keep stdout machine-readable under --json.
                        if !json {
                            let _ = writeln!(out, "trace JSON : {path} (open in about:tracing)");
                        }
                    }
                }
            }
            Command::Trace {
                bench,
                config,
                scale,
                spec,
                rows,
            } => {
                let wl = find(&bench)?;
                let program = wl.build(scale);
                let opts = TraceOptions {
                    ring: spec.ring,
                    window: spec.window,
                };
                let (r, t) = run_program_traced(&config, &program, &opts);
                let _ = writeln!(
                    out,
                    "bench {bench} mode {:?}: {} cycles, {} committed, IPC {:.4}",
                    config.mode,
                    r.stats.cycles,
                    r.stats.committed,
                    r.ipc()
                );
                let _ = writeln!(
                    out,
                    "{} events retained ({} dropped); spawns {} ok {} wrong {}",
                    t.len(),
                    t.dropped(),
                    r.stats.vp.mtvp_spawns,
                    r.stats.vp.mtvp_correct,
                    r.stats.vp.mtvp_wrong
                );
                out.push_str(&pipeview(t.events(), rows));
                if let Some(path) = &spec.out {
                    let text = chrome_trace(t.events());
                    std::fs::write(path, text).map_err(|e| {
                        ParseArgsError(format!("cannot write trace to {path}: {e}"))
                    })?;
                    let _ = writeln!(out, "trace JSON : {path} (open in about:tracing)");
                }
            }
            Command::Compare { bench, scale } => {
                let wl = find(&bench)?;
                let program = wl.build(scale);
                let base = run_program(&SimConfig::new(Mode::Baseline), &program);
                let _ = writeln!(
                    out,
                    "{:<14}{:>10}{:>9}{:>12}",
                    "mode", "cycles", "IPC", "speedup"
                );
                let _ = writeln!(
                    out,
                    "{:<14}{:>10}{:>9.3}{:>12}",
                    "baseline",
                    base.stats.cycles,
                    base.ipc(),
                    "-"
                );
                for mode in [
                    Mode::Stvp,
                    Mode::Mtvp,
                    Mode::MtvpNoStall,
                    Mode::SpawnOnly,
                    Mode::WideWindow,
                    Mode::MultiValue,
                ] {
                    let r = run_program(&SimConfig::new(mode), &program);
                    let _ = writeln!(
                        out,
                        "{:<14}{:>10}{:>9.3}{:>+11.1}%",
                        format!("{mode:?}"),
                        r.stats.cycles,
                        r.ipc(),
                        r.stats.speedup_over(&base.stats)
                    );
                }
            }
            Command::Disasm { bench, limit } => {
                let wl = find(&bench)?;
                let program = wl.build(Scale::Tiny);
                let _ = writeln!(
                    out,
                    "; {} — {} static instructions, {} bytes of data",
                    program.name,
                    program.len(),
                    program.data_bytes()
                );
                for (pc, inst) in program.code.iter().take(limit).enumerate() {
                    let _ = writeln!(out, "{pc:>6}: {inst}");
                }
                if program.len() > limit {
                    let _ = writeln!(out, "… ({} more)", program.len() - limit);
                }
            }
        }
        Ok(out)
    }
}

fn find(name: &str) -> Result<mtvp_core::Workload, ParseArgsError> {
    suite()
        .into_iter()
        .find(|w| w.name == name)
        .ok_or_else(|| ParseArgsError(format!("unknown benchmark `{name}`; see `mtvp-sim list`")))
}

/// The help text.
pub const HELP: &str = "\
mtvp-sim — cycle-level SMT simulator with multithreaded value prediction

USAGE:
  mtvp-sim list
  mtvp-sim run <bench> [--mode M] [--contexts N] [--predictor P] [--selector S]
                       [--spawn-latency N] [--store-buffer N] [--scale tiny|small|full]
                       [--no-prefetch] [--cold-start] [--json]
                       [--trace[=RING]] [--trace-out FILE] [--trace-window START:END]
  mtvp-sim trace <bench> [run options] [--rows N] [--trace-out FILE]
  mtvp-sim compare <bench> [--scale tiny|small|full]
  mtvp-sim disasm <bench> [--limit N]

MODES:      baseline stvp mtvp mtvp-nostall spawn-only wide-window multi-value
PREDICTORS: none oracle wf wf-liberal dfcm stride last-value
SELECTORS:  always ilp-pred l3-miss-oracle

TRACING:
  --trace[=RING]       record uop lifecycle + MTVP thread events in a ring of
                       RING entries (default 1048576); counters/histograms
                       aggregate over the whole run regardless of ring size
  --trace-out FILE     write Chrome trace-event JSON (chrome://tracing,
                       about:tracing, or https://ui.perfetto.dev)
  --trace-window S:E   keep only events from cycles [S, E) in the ring
  trace subcommand     same flags, prints a gem5-style textual pipeview
";

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Command, ParseArgsError> {
        let v: Vec<String> = words.iter().map(|s| s.to_string()).collect();
        Command::parse(&v)
    }

    #[test]
    fn parses_basic_commands() {
        assert_eq!(parse(&["list"]).unwrap(), Command::List);
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&["help"]).unwrap(), Command::Help);
        assert!(matches!(
            parse(&["compare", "mcf"]).unwrap(),
            Command::Compare { .. }
        ));
        assert!(matches!(
            parse(&["disasm", "mcf"]).unwrap(),
            Command::Disasm { limit: 120, .. }
        ));
    }

    #[test]
    fn parses_run_flags() {
        let cmd = parse(&[
            "run",
            "mcf",
            "--mode",
            "mtvp",
            "--contexts",
            "4",
            "--predictor",
            "oracle",
            "--spawn-latency",
            "1",
            "--store-buffer",
            "64",
            "--scale",
            "tiny",
            "--json",
            "--no-prefetch",
            "--cold-start",
        ])
        .unwrap();
        match cmd {
            Command::Run {
                bench,
                config,
                scale,
                json,
                trace,
            } => {
                assert_eq!(bench, "mcf");
                assert_eq!(config.contexts, 4);
                assert_eq!(config.predictor, PredictorKind::Oracle);
                assert_eq!(config.spawn_latency, 1);
                assert_eq!(config.store_buffer, 64);
                assert!(!config.prefetcher);
                assert!(!config.warm_start);
                assert_eq!(scale, Scale::Tiny);
                assert!(json);
                assert_eq!(trace, None);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn parses_trace_flags() {
        let cmd = parse(&[
            "run",
            "mcf",
            "--trace=4096",
            "--trace-window",
            "100:200",
            "--trace-out",
            "x.json",
        ])
        .unwrap();
        match cmd {
            Command::Run { trace, .. } => {
                let spec = trace.expect("--trace parsed");
                assert_eq!(spec.ring, 4096);
                assert_eq!(spec.window, Some((100, 200)));
                assert_eq!(spec.out.as_deref(), Some("x.json"));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // `=` form of the window, bare --trace, and implied enabling.
        match parse(&["run", "mcf", "--trace", "--trace-window=5:9"]).unwrap() {
            Command::Run { trace, .. } => {
                let spec = trace.expect("--trace parsed");
                assert_eq!(spec.ring, 1 << 20);
                assert_eq!(spec.window, Some((5, 9)));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        match parse(&["run", "mcf", "--trace-out", "y.json"]).unwrap() {
            Command::Run { trace, .. } => {
                assert_eq!(trace.expect("implied").out.as_deref(), Some("y.json"));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // trace subcommand shares the run flags.
        match parse(&["trace", "mcf", "--mode", "mtvp", "--rows", "16"]).unwrap() {
            Command::Trace { bench, rows, .. } => {
                assert_eq!(bench, "mcf");
                assert_eq!(rows, 16);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(parse(&["run", "mcf", "--trace=abc"]).is_err());
        assert!(parse(&["run", "mcf", "--trace-window", "9:5"]).is_err());
        assert!(parse(&["run", "mcf", "--trace-window", "nope"]).is_err());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["run"]).is_err());
        assert!(parse(&["run", "mcf", "--mode", "bogus"]).is_err());
        assert!(parse(&["run", "mcf", "--contexts"]).is_err());
        assert!(parse(&["frobnicate"]).is_err());
        assert!(parse(&["run", "mcf", "--scale", "gigantic"]).is_err());
    }

    #[test]
    fn list_and_disasm_execute() {
        let out = Command::List.execute().unwrap();
        assert!(out.contains("mcf"));
        assert!(out.contains("swim"));
        let out = Command::Disasm {
            bench: "mcf".into(),
            limit: 40,
        }
        .execute()
        .unwrap();
        assert!(out.contains("ld "), "{out}");
        assert!(out.contains("static instructions"));
        let err = Command::Disasm {
            bench: "nope".into(),
            limit: 10,
        }
        .execute()
        .unwrap_err();
        assert!(err.0.contains("unknown benchmark"));
    }

    #[test]
    fn run_executes_tiny() {
        let cmd = parse(&["run", "crafty", "--mode", "baseline", "--scale", "tiny"]).unwrap();
        let out = cmd.execute().unwrap();
        assert!(out.contains("useful IPC"), "{out}");
    }

    #[test]
    fn run_json_is_valid() {
        let cmd = parse(&[
            "run", "crafty", "--mode", "baseline", "--scale", "tiny", "--json",
        ])
        .unwrap();
        let out = cmd.execute().unwrap();
        let v: serde_json::Value = serde_json::from_str(out.trim()).unwrap();
        assert!(v["ipc"].as_f64().unwrap() > 0.0);
    }
}
