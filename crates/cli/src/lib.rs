//! Argument parsing and command implementations for the `mtvp-sim` CLI.
//!
//! Hand-rolled parsing (the workspace deliberately keeps its dependency
//! set to the simulation essentials). See [`Command::parse`] for the
//! grammar and `mtvp-sim help` for user documentation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mtvp_core::{run_program, suite, Mode, PredictorKind, Scale, SelectorKind, SimConfig};
use std::fmt::Write as _;

/// A parsed CLI invocation.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// `list` — print the workload registry.
    List,
    /// `run <bench> [options]` — simulate one workload under one config.
    Run {
        /// Benchmark name.
        bench: String,
        /// Machine configuration.
        config: SimConfig,
        /// Build scale.
        scale: Scale,
        /// Emit JSON instead of text.
        json: bool,
    },
    /// `compare <bench> [--scale s]` — run every mode on one workload.
    Compare {
        /// Benchmark name.
        bench: String,
        /// Build scale.
        scale: Scale,
    },
    /// `disasm <bench> [--limit n]` — print a kernel's assembly.
    Disasm {
        /// Benchmark name.
        bench: String,
        /// Maximum instructions to print.
        limit: usize,
    },
    /// `help`.
    Help,
}

/// Errors produced while parsing arguments.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseArgsError(pub String);

impl std::fmt::Display for ParseArgsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseArgsError {}

fn parse_scale(s: &str) -> Result<Scale, ParseArgsError> {
    match s {
        "tiny" => Ok(Scale::Tiny),
        "small" => Ok(Scale::Small),
        "full" => Ok(Scale::Full),
        other => Err(ParseArgsError(format!(
            "unknown scale `{other}` (tiny|small|full)"
        ))),
    }
}

fn parse_mode(s: &str) -> Result<Mode, ParseArgsError> {
    Ok(match s {
        "baseline" => Mode::Baseline,
        "stvp" => Mode::Stvp,
        "mtvp" => Mode::Mtvp,
        "mtvp-nostall" => Mode::MtvpNoStall,
        "spawn-only" => Mode::SpawnOnly,
        "wide-window" => Mode::WideWindow,
        "multi-value" => Mode::MultiValue,
        other => {
            return Err(ParseArgsError(format!(
                "unknown mode `{other}` (baseline|stvp|mtvp|mtvp-nostall|spawn-only|wide-window|multi-value)"
            )))
        }
    })
}

fn parse_predictor(s: &str) -> Result<PredictorKind, ParseArgsError> {
    Ok(match s {
        "none" => PredictorKind::None,
        "oracle" => PredictorKind::Oracle,
        "wang-franklin" | "wf" => PredictorKind::WangFranklin,
        "wf-liberal" => PredictorKind::WangFranklinLiberal,
        "dfcm" => PredictorKind::Dfcm,
        "stride" => PredictorKind::Stride,
        "last-value" => PredictorKind::LastValue,
        other => {
            return Err(ParseArgsError(format!(
                "unknown predictor `{other}` (none|oracle|wf|wf-liberal|dfcm|stride|last-value)"
            )))
        }
    })
}

fn parse_selector(s: &str) -> Result<SelectorKind, ParseArgsError> {
    Ok(match s {
        "always" => SelectorKind::Always,
        "ilp-pred" | "ilp" => SelectorKind::IlpPred,
        "l3-miss-oracle" | "l3" => SelectorKind::L3MissOracle,
        other => {
            return Err(ParseArgsError(format!(
                "unknown selector `{other}` (always|ilp-pred|l3-miss-oracle)"
            )))
        }
    })
}

impl Command {
    /// Parse an argv tail (without the program name).
    pub fn parse(args: &[String]) -> Result<Command, ParseArgsError> {
        let mut it = args.iter().map(String::as_str);
        let cmd = it.next().unwrap_or("help");
        let rest: Vec<&str> = it.collect();
        let get_flag = |name: &str| -> Result<Option<&str>, ParseArgsError> {
            match rest.iter().position(|a| *a == name) {
                Some(i) => match rest.get(i + 1) {
                    Some(v) => Ok(Some(*v)),
                    None => Err(ParseArgsError(format!("{name} requires a value"))),
                },
                None => Ok(None),
            }
        };
        match cmd {
            "list" => Ok(Command::List),
            "help" | "--help" | "-h" => Ok(Command::Help),
            "run" => {
                let bench = rest
                    .first()
                    .filter(|a| !a.starts_with("--"))
                    .ok_or_else(|| ParseArgsError("run requires a benchmark name".into()))?
                    .to_string();
                let mode = parse_mode(get_flag("--mode")?.unwrap_or("mtvp"))?;
                let mut config = SimConfig::new(mode);
                if let Some(v) = get_flag("--contexts")? {
                    config.contexts = v
                        .parse()
                        .map_err(|_| ParseArgsError(format!("bad --contexts `{v}`")))?;
                }
                if let Some(v) = get_flag("--predictor")? {
                    config.predictor = parse_predictor(v)?;
                }
                if let Some(v) = get_flag("--selector")? {
                    config.selector = parse_selector(v)?;
                }
                if let Some(v) = get_flag("--spawn-latency")? {
                    config.spawn_latency = v
                        .parse()
                        .map_err(|_| ParseArgsError(format!("bad --spawn-latency `{v}`")))?;
                }
                if let Some(v) = get_flag("--store-buffer")? {
                    config.store_buffer = v
                        .parse()
                        .map_err(|_| ParseArgsError(format!("bad --store-buffer `{v}`")))?;
                }
                if rest.contains(&"--no-prefetch") {
                    config.prefetcher = false;
                }
                if rest.contains(&"--cold-start") {
                    config.warm_start = false;
                }
                let scale = parse_scale(get_flag("--scale")?.unwrap_or("small"))?;
                Ok(Command::Run {
                    bench,
                    config,
                    scale,
                    json: rest.contains(&"--json"),
                })
            }
            "compare" => {
                let bench = rest
                    .first()
                    .filter(|a| !a.starts_with("--"))
                    .ok_or_else(|| ParseArgsError("compare requires a benchmark name".into()))?
                    .to_string();
                let scale = parse_scale(get_flag("--scale")?.unwrap_or("small"))?;
                Ok(Command::Compare { bench, scale })
            }
            "disasm" => {
                let bench = rest
                    .first()
                    .filter(|a| !a.starts_with("--"))
                    .ok_or_else(|| ParseArgsError("disasm requires a benchmark name".into()))?
                    .to_string();
                let limit = match get_flag("--limit")? {
                    Some(v) => v
                        .parse()
                        .map_err(|_| ParseArgsError(format!("bad --limit `{v}`")))?,
                    None => 120,
                };
                Ok(Command::Disasm { bench, limit })
            }
            other => Err(ParseArgsError(format!(
                "unknown command `{other}`; try `help`"
            ))),
        }
    }

    /// Execute the command, returning the text to print.
    ///
    /// # Errors
    /// Returns an error string for unknown benchmark names.
    pub fn execute(self) -> Result<String, ParseArgsError> {
        let mut out = String::new();
        match self {
            Command::Help => out.push_str(HELP),
            Command::List => {
                let _ = writeln!(out, "{:<10} {:<6} description", "name", "suite");
                for w in suite() {
                    let _ = writeln!(
                        out,
                        "{:<10} {:<6} {}",
                        w.name,
                        if w.suite == mtvp_core::Suite::Int {
                            "int"
                        } else {
                            "fp"
                        },
                        w.description
                    );
                }
            }
            Command::Run {
                bench,
                config,
                scale,
                json,
            } => {
                let wl = find(&bench)?;
                let program = wl.build(scale);
                let r = run_program(&config, &program);
                if json {
                    let _ = writeln!(
                        out,
                        "{}",
                        serde_json::json!({
                            "bench": bench,
                            "config": config,
                            "ipc": r.ipc(),
                            "stats": r.stats,
                        })
                    );
                } else {
                    let _ = writeln!(out, "bench      : {bench} ({})", wl.description);
                    let _ = writeln!(out, "mode       : {:?}", config.mode);
                    let _ = writeln!(out, "cycles     : {}", r.stats.cycles);
                    let _ = writeln!(out, "committed  : {}", r.stats.committed);
                    let _ = writeln!(out, "useful IPC : {:.4}", r.ipc());
                    let _ = writeln!(
                        out,
                        "vp         : stvp {}/{} ok, spawns {} ({} ok, {} wrong)",
                        r.stats.vp.stvp_used,
                        r.stats.vp.stvp_correct,
                        r.stats.vp.mtvp_spawns,
                        r.stats.vp.mtvp_correct,
                        r.stats.vp.mtvp_wrong
                    );
                }
            }
            Command::Compare { bench, scale } => {
                let wl = find(&bench)?;
                let program = wl.build(scale);
                let base = run_program(&SimConfig::new(Mode::Baseline), &program);
                let _ = writeln!(
                    out,
                    "{:<14}{:>10}{:>9}{:>12}",
                    "mode", "cycles", "IPC", "speedup"
                );
                let _ = writeln!(
                    out,
                    "{:<14}{:>10}{:>9.3}{:>12}",
                    "baseline",
                    base.stats.cycles,
                    base.ipc(),
                    "-"
                );
                for mode in [
                    Mode::Stvp,
                    Mode::Mtvp,
                    Mode::MtvpNoStall,
                    Mode::SpawnOnly,
                    Mode::WideWindow,
                    Mode::MultiValue,
                ] {
                    let r = run_program(&SimConfig::new(mode), &program);
                    let _ = writeln!(
                        out,
                        "{:<14}{:>10}{:>9.3}{:>+11.1}%",
                        format!("{mode:?}"),
                        r.stats.cycles,
                        r.ipc(),
                        r.stats.speedup_over(&base.stats)
                    );
                }
            }
            Command::Disasm { bench, limit } => {
                let wl = find(&bench)?;
                let program = wl.build(Scale::Tiny);
                let _ = writeln!(
                    out,
                    "; {} — {} static instructions, {} bytes of data",
                    program.name,
                    program.len(),
                    program.data_bytes()
                );
                for (pc, inst) in program.code.iter().take(limit).enumerate() {
                    let _ = writeln!(out, "{pc:>6}: {inst}");
                }
                if program.len() > limit {
                    let _ = writeln!(out, "… ({} more)", program.len() - limit);
                }
            }
        }
        Ok(out)
    }
}

fn find(name: &str) -> Result<mtvp_core::Workload, ParseArgsError> {
    suite()
        .into_iter()
        .find(|w| w.name == name)
        .ok_or_else(|| ParseArgsError(format!("unknown benchmark `{name}`; see `mtvp-sim list`")))
}

/// The help text.
pub const HELP: &str = "\
mtvp-sim — cycle-level SMT simulator with multithreaded value prediction

USAGE:
  mtvp-sim list
  mtvp-sim run <bench> [--mode M] [--contexts N] [--predictor P] [--selector S]
                       [--spawn-latency N] [--store-buffer N] [--scale tiny|small|full]
                       [--no-prefetch] [--cold-start] [--json]
  mtvp-sim compare <bench> [--scale tiny|small|full]
  mtvp-sim disasm <bench> [--limit N]

MODES:      baseline stvp mtvp mtvp-nostall spawn-only wide-window multi-value
PREDICTORS: none oracle wf wf-liberal dfcm stride last-value
SELECTORS:  always ilp-pred l3-miss-oracle
";

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Command, ParseArgsError> {
        let v: Vec<String> = words.iter().map(|s| s.to_string()).collect();
        Command::parse(&v)
    }

    #[test]
    fn parses_basic_commands() {
        assert_eq!(parse(&["list"]).unwrap(), Command::List);
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&["help"]).unwrap(), Command::Help);
        assert!(matches!(
            parse(&["compare", "mcf"]).unwrap(),
            Command::Compare { .. }
        ));
        assert!(matches!(
            parse(&["disasm", "mcf"]).unwrap(),
            Command::Disasm { limit: 120, .. }
        ));
    }

    #[test]
    fn parses_run_flags() {
        let cmd = parse(&[
            "run",
            "mcf",
            "--mode",
            "mtvp",
            "--contexts",
            "4",
            "--predictor",
            "oracle",
            "--spawn-latency",
            "1",
            "--store-buffer",
            "64",
            "--scale",
            "tiny",
            "--json",
            "--no-prefetch",
            "--cold-start",
        ])
        .unwrap();
        match cmd {
            Command::Run {
                bench,
                config,
                scale,
                json,
            } => {
                assert_eq!(bench, "mcf");
                assert_eq!(config.contexts, 4);
                assert_eq!(config.predictor, PredictorKind::Oracle);
                assert_eq!(config.spawn_latency, 1);
                assert_eq!(config.store_buffer, 64);
                assert!(!config.prefetcher);
                assert!(!config.warm_start);
                assert_eq!(scale, Scale::Tiny);
                assert!(json);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["run"]).is_err());
        assert!(parse(&["run", "mcf", "--mode", "bogus"]).is_err());
        assert!(parse(&["run", "mcf", "--contexts"]).is_err());
        assert!(parse(&["frobnicate"]).is_err());
        assert!(parse(&["run", "mcf", "--scale", "gigantic"]).is_err());
    }

    #[test]
    fn list_and_disasm_execute() {
        let out = Command::List.execute().unwrap();
        assert!(out.contains("mcf"));
        assert!(out.contains("swim"));
        let out = Command::Disasm {
            bench: "mcf".into(),
            limit: 40,
        }
        .execute()
        .unwrap();
        assert!(out.contains("ld "), "{out}");
        assert!(out.contains("static instructions"));
        let err = Command::Disasm {
            bench: "nope".into(),
            limit: 10,
        }
        .execute()
        .unwrap_err();
        assert!(err.0.contains("unknown benchmark"));
    }

    #[test]
    fn run_executes_tiny() {
        let cmd = parse(&["run", "crafty", "--mode", "baseline", "--scale", "tiny"]).unwrap();
        let out = cmd.execute().unwrap();
        assert!(out.contains("useful IPC"), "{out}");
    }

    #[test]
    fn run_json_is_valid() {
        let cmd = parse(&[
            "run", "crafty", "--mode", "baseline", "--scale", "tiny", "--json",
        ])
        .unwrap();
        let out = cmd.execute().unwrap();
        let v: serde_json::Value = serde_json::from_str(out.trim()).unwrap();
        assert!(v["ipc"].as_f64().unwrap() > 0.0);
    }
}
