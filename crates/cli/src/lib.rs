//! Argument parsing and command implementations for the `mtvp-sim` CLI.
//!
//! Hand-rolled parsing (the workspace deliberately keeps its dependency
//! set to the simulation essentials). See [`Command::parse`] for the
//! grammar and `mtvp-sim help` for user documentation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mtvp_engine::{
    builtin, builtin_scenarios, chrome_trace, lint_program_cached, pipeview, reference_trace,
    render_speedup_table, run_program, run_program_at, run_program_traced, run_sampled, suite,
    Cache, CacheMode, CkptStore, Engine, EngineOptions, Mode, PredictorKind, RunReport,
    SamplingParams, Scale, Scenario, SelectorKind, SimConfig, TraceOptions,
};
use std::fmt::Write as _;
use std::path::PathBuf;

/// Tracing options parsed from `--trace[=N]`, `--trace-out` and
/// `--trace-window` (see [`Command::parse`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceSpec {
    /// Ring capacity: the newest `ring` events are retained.
    pub ring: usize,
    /// Where to write the Chrome trace-event JSON (`None`: don't write).
    pub out: Option<String>,
    /// Cycle window `[start, end)` restricting ring retention.
    pub window: Option<(u64, u64)>,
}

impl Default for TraceSpec {
    fn default() -> Self {
        TraceSpec {
            ring: 1 << 20,
            out: None,
            window: None,
        }
    }
}

/// A parsed CLI invocation.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// `list` — print the workload registry.
    List,
    /// `run <bench> [options]` — simulate one workload under one config.
    Run {
        /// Benchmark name.
        bench: String,
        /// Machine configuration.
        config: SimConfig,
        /// Build scale.
        scale: Scale,
        /// Emit JSON instead of text.
        json: bool,
        /// Lifecycle tracing, when requested with `--trace`.
        trace: Option<TraceSpec>,
        /// `--no-cache` — don't read or write sampling checkpoints.
        no_cache: bool,
        /// `--cache-dir DIR` checkpoint-store override (sampled runs).
        cache_dir: Option<String>,
    },
    /// `trace <bench> [options]` — simulate with tracing and render a
    /// textual pipeline view (gem5 O3-pipeview style).
    Trace {
        /// Benchmark name.
        bench: String,
        /// Machine configuration.
        config: SimConfig,
        /// Build scale.
        scale: Scale,
        /// Ring/window/output options.
        spec: TraceSpec,
        /// Maximum uop rows in the pipeview rendering.
        rows: usize,
    },
    /// `compare <bench> [--scale s]` — run every mode on one workload.
    Compare {
        /// Benchmark name.
        bench: String,
        /// Build scale.
        scale: Scale,
    },
    /// `disasm <bench> [--limit n]` — print a kernel's assembly.
    Disasm {
        /// Benchmark name.
        bench: String,
        /// Maximum instructions to print.
        limit: usize,
    },
    /// `lint [--all | <bench>...]` — static dataflow/lint analysis over
    /// kernel programs, or (`--source`) the hot-path source lint.
    Lint {
        /// Benchmark names to lint (registry names, `matmul`,
        /// `histogram`, `string-search`, or `synth-<seed>`).
        benches: Vec<String>,
        /// `--all` — lint every registry workload plus the standalone
        /// kernels and a few synth seeds.
        all: bool,
        /// Build scale for registry workloads.
        scale: Scale,
        /// Emit JSON instead of text.
        json: bool,
        /// `--source` — run the hot-path source lint over
        /// `crates/pipeline/src` instead of analyzing programs.
        source: bool,
        /// `--spawn-hints` — emit the spawn-site analysis artifact
        /// (differentially validated) instead of the dataflow lint.
        spawn_hints: bool,
        /// `--no-cache` — ignore and don't write the lint cache.
        no_cache: bool,
        /// `--cache-dir DIR` override.
        cache_dir: Option<String>,
        /// `--root DIR` — repository root for `--source` (default `.`).
        root: Option<String>,
    },
    /// `exp <subcommand>` — the cached, resumable experiment engine.
    Exp(ExpCmd),
    /// `serve [options]` — run the multithreaded experiment HTTP service.
    Serve {
        /// `--addr HOST:PORT` listen address (default `127.0.0.1:8707`).
        addr: String,
        /// `--workers N` worker-thread override.
        workers: Option<usize>,
        /// `--queue-depth N` bounded-queue override.
        queue_depth: Option<usize>,
        /// `--no-cache` — simulate every request, persist nothing.
        no_cache: bool,
        /// `--cache-dir DIR` override (default `results/cache/`).
        cache_dir: Option<String>,
        /// `--request-timeout-ms N` default per-request deadline.
        request_timeout_ms: Option<u64>,
        /// `--peers a,b,c` — fetch warm cells from these peer workers
        /// before simulating (cluster cache peering; empty: disabled).
        peers: Vec<String>,
    },
    /// `cluster <subcommand>` — the distributed sweep fabric.
    Cluster(ClusterCmd),
    /// `help`.
    Help,
}

/// `cluster` subcommands (see [`Command::Cluster`]).
#[derive(Clone, Debug, PartialEq)]
pub enum ClusterCmd {
    /// `cluster coord <scenario> --workers a,b,c` — fan a scenario out
    /// to running `mtvp-sim serve` workers and merge the sweep.
    Coord {
        /// Built-in scenario name, or a path to a scenario JSON file.
        scenario: String,
        /// `--workers a,b,c` worker addresses (required).
        workers: Vec<String>,
        /// `--scale` override.
        scale: Option<Scale>,
        /// `--benches a,b,c` benchmark-subset override.
        benches: Option<Vec<String>>,
        /// `--timeout-ms N` per-cell deadline.
        timeout_ms: Option<u64>,
        /// `--retries N` attempts per cell before declaring a worker dead.
        retries: Option<u32>,
        /// `--backoff-ms N` base retry backoff.
        backoff_ms: Option<u64>,
        /// `--no-steal` — disable work stealing between worker queues.
        no_steal: bool,
        /// `--manifest FILE` — write a live progress manifest
        /// (`exp status --manifest` reads it).
        manifest: Option<String>,
        /// `--json` — print the machine-readable report to stdout.
        json: bool,
        /// `--json-out FILE` — also write the report JSON to a file.
        json_out: Option<String>,
    },
    /// `cluster bench` — boot 1..N local workers, measure cell
    /// throughput at each fleet size, and probe SLOs open-loop.
    Bench {
        /// Built-in scenario name or scenario JSON path (default `smoke`).
        scenario: String,
        /// `--fleets 1,2,4` fleet sizes to measure.
        fleets: Vec<usize>,
        /// `--scale` override.
        scale: Option<Scale>,
        /// `--benches a,b,c` benchmark-subset override.
        benches: Option<Vec<String>>,
        /// `--rate RPS` open-loop probe target rate (0 skips the probe).
        rate: f64,
        /// `--duration-ms N` open-loop probe duration.
        duration_ms: u64,
        /// `--json-out FILE` report path (default `BENCH_cluster.json`).
        json_out: String,
    },
}

/// `exp` subcommands (see [`Command::Exp`]).
#[derive(Clone, Debug, PartialEq)]
pub enum ExpCmd {
    /// `exp list` — the built-in scenarios.
    List,
    /// `exp run <scenario>` — run a scenario through the engine.
    Run {
        /// Built-in scenario name, or a path to a scenario JSON file.
        scenario: String,
        /// `--scale` override (default: the scenario's own scale).
        scale: Option<Scale>,
        /// `--benches a,b,c` benchmark-subset override.
        benches: Option<Vec<String>>,
        /// `--jobs N` worker cap.
        jobs: Option<usize>,
        /// `--shard i/n` — run only this shard of the cells.
        shard: Option<(usize, usize)>,
        /// `--no-cache` — ignore and don't write `results/cache/`.
        no_cache: bool,
        /// `--cache-dir DIR` override.
        cache_dir: Option<String>,
        /// `--json` — print a machine-readable report to stdout.
        json: bool,
        /// `--json-out FILE` — also write the report JSON to a file.
        json_out: Option<String>,
        /// `--sample W:I:U` — run every configuration sampled (two-tier
        /// fast-forward + detailed windows), overriding the scenario.
        sample: Option<SamplingParams>,
    },
    /// `exp status [scenario]` — cached/total cells without running, or
    /// (`--manifest`) a cluster coordinator's live per-shard progress.
    Status {
        /// Scenario to inspect (`None`: all built-ins).
        scenario: Option<String>,
        /// `--scale` override.
        scale: Option<Scale>,
        /// `--cache-dir DIR` override.
        cache_dir: Option<String>,
        /// `--manifest FILE` — report a running (or finished) cluster
        /// coordinator's progress from its manifest instead.
        manifest: Option<String>,
    },
    /// `exp diff <a> <b>` — compare two scenarios' results cell by cell.
    Diff {
        /// First scenario.
        a: String,
        /// Second scenario.
        b: String,
        /// `--scale` override applied to both.
        scale: Option<Scale>,
        /// `--cache-dir DIR` override.
        cache_dir: Option<String>,
    },
}

/// Errors produced while parsing arguments.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseArgsError(pub String);

impl std::fmt::Display for ParseArgsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseArgsError {}

// The configuration vocabulary lives in `mtvp-core` (shared with scenario
// files); these wrappers only adapt the error type.

fn parse_scale(s: &str) -> Result<Scale, ParseArgsError> {
    mtvp_engine::parse_scale(s).map_err(|e| ParseArgsError(e.0))
}

fn parse_mode(s: &str) -> Result<Mode, ParseArgsError> {
    mtvp_engine::parse_mode(s).map_err(|e| ParseArgsError(e.0))
}

fn parse_core(s: &str) -> Result<mtvp_engine::CoreKind, ParseArgsError> {
    mtvp_engine::parse_core(s).map_err(|e| ParseArgsError(e.0))
}

fn parse_predictor(s: &str) -> Result<PredictorKind, ParseArgsError> {
    mtvp_engine::parse_predictor(s).map_err(|e| ParseArgsError(e.0))
}

fn parse_selector(s: &str) -> Result<SelectorKind, ParseArgsError> {
    mtvp_engine::parse_selector(s).map_err(|e| ParseArgsError(e.0))
}

fn parse_spawn_policy(s: &str) -> Result<mtvp_engine::SpawnPolicyKind, ParseArgsError> {
    mtvp_engine::parse_spawn_policy(s).map_err(|e| ParseArgsError(e.0))
}

/// Positional value lookup for `--flag value` pairs.
fn get_flag<'a>(rest: &[&'a str], name: &str) -> Result<Option<&'a str>, ParseArgsError> {
    match rest.iter().position(|a| *a == name) {
        Some(i) => match rest.get(i + 1) {
            Some(v) => Ok(Some(*v)),
            None => Err(ParseArgsError(format!("{name} requires a value"))),
        },
        None => Ok(None),
    }
}

/// Machine-configuration flags shared by `run` and `trace`.
fn parse_sim_config(rest: &[&str]) -> Result<(SimConfig, Scale), ParseArgsError> {
    let mode = parse_mode(get_flag(rest, "--mode")?.unwrap_or("mtvp"))?;
    let mut config = SimConfig::new(mode);
    if let Some(v) = get_flag(rest, "--core")? {
        config.core = parse_core(v)?;
    }
    if let Some(v) = get_flag(rest, "--contexts")? {
        config.contexts = v
            .parse()
            .map_err(|_| ParseArgsError(format!("bad --contexts `{v}`")))?;
    }
    if let Some(v) = get_flag(rest, "--predictor")? {
        config.predictor = parse_predictor(v)?;
    }
    if let Some(v) = get_flag(rest, "--selector")? {
        config.selector = parse_selector(v)?;
    }
    if let Some(v) = get_flag(rest, "--spawn-policy")? {
        config.spawn_policy = parse_spawn_policy(v)?;
    }
    if let Some(v) = get_flag(rest, "--spawn-latency")? {
        config.spawn_latency = v
            .parse()
            .map_err(|_| ParseArgsError(format!("bad --spawn-latency `{v}`")))?;
    }
    if let Some(v) = get_flag(rest, "--store-buffer")? {
        config.store_buffer = v
            .parse()
            .map_err(|_| ParseArgsError(format!("bad --store-buffer `{v}`")))?;
    }
    if rest.contains(&"--no-prefetch") {
        config.prefetcher = false;
    }
    if rest.contains(&"--cold-start") {
        config.warm_start = false;
    }
    if let Some(v) = get_flag(rest, "--sample")? {
        config.sampling = Some(SamplingParams::parse(v).map_err(|e| ParseArgsError(e.0))?);
    }
    if let Some(v) = get_flag(rest, "--cores")? {
        config.cores = v
            .parse()
            .map_err(|_| ParseArgsError(format!("bad --cores `{v}`")))?;
    }
    if let Some(v) = get_flag(rest, "--l3")? {
        config.l3 = mtvp_engine::L3Params::parse(v).map_err(|e| ParseArgsError(e.0))?;
    }
    if let Some(v) = get_flag(rest, "--interconnect")? {
        config.interconnect_hop = v
            .parse()
            .map_err(|_| ParseArgsError(format!("bad --interconnect `{v}`")))?;
    }
    if rest.contains(&"--xspawn") || rest.contains(&"--cross-core-spawn") {
        config.cross_core_spawn = true;
    }
    if let Some(v) = get_flag(rest, "--co")? {
        config.co_workloads = v.split(',').map(|s| s.trim().to_string()).collect();
    }
    config.validate().map_err(|e| ParseArgsError(e.0))?;
    let scale = parse_scale(get_flag(rest, "--scale")?.unwrap_or("small"))?;
    Ok((config, scale))
}

/// A `START:END` cycle window.
fn parse_trace_window(v: &str) -> Result<(u64, u64), ParseArgsError> {
    let Some((s, e)) = v.split_once(':') else {
        return Err(ParseArgsError(format!(
            "bad --trace-window `{v}` (expected START:END)"
        )));
    };
    let start: u64 = s
        .parse()
        .map_err(|_| ParseArgsError(format!("bad --trace-window start `{s}`")))?;
    let end: u64 = e
        .parse()
        .map_err(|_| ParseArgsError(format!("bad --trace-window end `{e}`")))?;
    if end <= start {
        return Err(ParseArgsError(format!(
            "empty --trace-window `{v}` (end must exceed start)"
        )));
    }
    Ok((start, end))
}

/// The `--trace[=N]`, `--trace-out FILE` and `--trace-window[=]S:E` flags.
/// `--trace-out`/`--trace-window` imply `--trace`. Returns `None` when no
/// tracing flag is present.
fn parse_trace_spec(rest: &[&str]) -> Result<Option<TraceSpec>, ParseArgsError> {
    let mut spec = TraceSpec::default();
    let mut enabled = false;
    for a in rest {
        if *a == "--trace" {
            enabled = true;
        } else if let Some(v) = a.strip_prefix("--trace=") {
            enabled = true;
            spec.ring = v
                .parse()
                .map_err(|_| ParseArgsError(format!("bad --trace ring size `{v}`")))?;
        } else if let Some(v) = a.strip_prefix("--trace-window=") {
            enabled = true;
            spec.window = Some(parse_trace_window(v)?);
        }
    }
    if let Some(v) = get_flag(rest, "--trace-window")? {
        enabled = true;
        spec.window = Some(parse_trace_window(v)?);
    }
    if let Some(v) = get_flag(rest, "--trace-out")? {
        enabled = true;
        spec.out = Some(v.to_string());
    }
    Ok(enabled.then_some(spec))
}

/// An `i/n` shard specification.
fn parse_shard(v: &str) -> Result<(usize, usize), ParseArgsError> {
    let Some((i, n)) = v.split_once('/') else {
        return Err(ParseArgsError(format!(
            "bad --shard `{v}` (expected i/n, e.g. 0/4)"
        )));
    };
    let i: usize = i
        .parse()
        .map_err(|_| ParseArgsError(format!("bad --shard index `{i}`")))?;
    let n: usize = n
        .parse()
        .map_err(|_| ParseArgsError(format!("bad --shard count `{n}`")))?;
    if n == 0 || i >= n {
        return Err(ParseArgsError(format!(
            "bad --shard `{v}` (need 0 <= i < n)"
        )));
    }
    Ok((i, n))
}

/// Flags shared by the `exp` subcommands.
fn parse_exp_common(rest: &[&str]) -> Result<(Option<Scale>, Option<String>), ParseArgsError> {
    let scale = match get_flag(rest, "--scale")? {
        Some(v) => Some(parse_scale(v)?),
        None => None,
    };
    let cache_dir = get_flag(rest, "--cache-dir")?.map(str::to_string);
    Ok((scale, cache_dir))
}

fn parse_exp(rest: &[&str]) -> Result<Command, ParseArgsError> {
    let sub = rest.first().copied().unwrap_or("list");
    let tail = &rest[1.min(rest.len())..];
    let positional = |n: usize| -> Option<String> {
        tail.iter()
            .enumerate()
            .filter(|(i, a)| {
                !a.starts_with("--")
                    && (*i == 0 || {
                        let prev = tail[i - 1];
                        !matches!(
                            prev,
                            "--scale"
                                | "--benches"
                                | "--jobs"
                                | "--shard"
                                | "--cache-dir"
                                | "--json-out"
                                | "--sample"
                                | "--manifest"
                        )
                    })
            })
            .map(|(_, a)| a.to_string())
            .nth(n)
    };
    match sub {
        "list" => Ok(Command::Exp(ExpCmd::List)),
        "run" => {
            let scenario = positional(0)
                .ok_or_else(|| ParseArgsError("exp run requires a scenario name".into()))?;
            let (scale, cache_dir) = parse_exp_common(tail)?;
            let benches = get_flag(tail, "--benches")?
                .map(|v| v.split(',').map(|b| b.trim().to_string()).collect());
            let jobs = match get_flag(tail, "--jobs")? {
                Some(v) => Some(
                    v.parse()
                        .map_err(|_| ParseArgsError(format!("bad --jobs `{v}`")))?,
                ),
                None => None,
            };
            let shard = match get_flag(tail, "--shard")? {
                Some(v) => Some(parse_shard(v)?),
                None => None,
            };
            let sample = match get_flag(tail, "--sample")? {
                Some(v) => Some(SamplingParams::parse(v).map_err(|e| ParseArgsError(e.0))?),
                None => None,
            };
            Ok(Command::Exp(ExpCmd::Run {
                scenario,
                scale,
                benches,
                jobs,
                shard,
                no_cache: tail.contains(&"--no-cache"),
                cache_dir,
                json: tail.contains(&"--json"),
                json_out: get_flag(tail, "--json-out")?.map(str::to_string),
                sample,
            }))
        }
        "status" => {
            let (scale, cache_dir) = parse_exp_common(tail)?;
            Ok(Command::Exp(ExpCmd::Status {
                scenario: positional(0),
                scale,
                cache_dir,
                manifest: get_flag(tail, "--manifest")?.map(str::to_string),
            }))
        }
        "diff" => {
            let a = positional(0)
                .ok_or_else(|| ParseArgsError("exp diff requires two scenarios".into()))?;
            let b = positional(1)
                .ok_or_else(|| ParseArgsError("exp diff requires two scenarios".into()))?;
            let (scale, cache_dir) = parse_exp_common(tail)?;
            Ok(Command::Exp(ExpCmd::Diff {
                a,
                b,
                scale,
                cache_dir,
            }))
        }
        other => Err(ParseArgsError(format!(
            "unknown exp subcommand `{other}` (list|run|status|diff)"
        ))),
    }
}

/// A comma-separated list flag value.
fn split_list(v: &str) -> Vec<String> {
    v.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

fn parse_cluster(rest: &[&str]) -> Result<Command, ParseArgsError> {
    let sub = rest.first().copied().unwrap_or("");
    let tail = &rest[1.min(rest.len())..];
    let positional = |n: usize| -> Option<String> {
        tail.iter()
            .enumerate()
            .filter(|(i, a)| {
                !a.starts_with("--")
                    && (*i == 0 || {
                        let prev = tail[i - 1];
                        !matches!(
                            prev,
                            "--workers"
                                | "--scale"
                                | "--benches"
                                | "--timeout-ms"
                                | "--retries"
                                | "--backoff-ms"
                                | "--manifest"
                                | "--json-out"
                                | "--fleets"
                                | "--rate"
                                | "--duration-ms"
                        )
                    })
            })
            .map(|(_, a)| a.to_string())
            .nth(n)
    };
    let scale = match get_flag(tail, "--scale")? {
        Some(v) => Some(parse_scale(v)?),
        None => None,
    };
    let benches = get_flag(tail, "--benches")?.map(split_list);
    let parse_u64 = |name: &str| -> Result<Option<u64>, ParseArgsError> {
        match get_flag(tail, name)? {
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| ParseArgsError(format!("bad {name} `{v}`"))),
            None => Ok(None),
        }
    };
    match sub {
        "coord" => {
            let scenario = positional(0)
                .ok_or_else(|| ParseArgsError("cluster coord requires a scenario name".into()))?;
            let workers = get_flag(tail, "--workers")?
                .map(split_list)
                .filter(|w| !w.is_empty())
                .ok_or_else(|| ParseArgsError("cluster coord requires --workers a,b,c".into()))?;
            let retries = match get_flag(tail, "--retries")? {
                Some(v) => Some(
                    v.parse()
                        .map_err(|_| ParseArgsError(format!("bad --retries `{v}`")))?,
                ),
                None => None,
            };
            Ok(Command::Cluster(ClusterCmd::Coord {
                scenario,
                workers,
                scale,
                benches,
                timeout_ms: parse_u64("--timeout-ms")?,
                retries,
                backoff_ms: parse_u64("--backoff-ms")?,
                no_steal: tail.contains(&"--no-steal"),
                manifest: get_flag(tail, "--manifest")?.map(str::to_string),
                json: tail.contains(&"--json"),
                json_out: get_flag(tail, "--json-out")?.map(str::to_string),
            }))
        }
        "bench" => {
            let fleets = match get_flag(tail, "--fleets")? {
                Some(v) => {
                    let fleets: Vec<usize> = split_list(v)
                        .iter()
                        .map(|s| {
                            s.parse::<usize>()
                                .ok()
                                .filter(|n| *n > 0)
                                .ok_or_else(|| ParseArgsError(format!("bad --fleets `{v}`")))
                        })
                        .collect::<Result<_, _>>()?;
                    if fleets.is_empty() {
                        return Err(ParseArgsError(format!("bad --fleets `{v}`")));
                    }
                    fleets
                }
                None => vec![1, 2, 4],
            };
            let rate = match get_flag(tail, "--rate")? {
                Some(v) => v
                    .parse()
                    .map_err(|_| ParseArgsError(format!("bad --rate `{v}`")))?,
                None => 50.0,
            };
            Ok(Command::Cluster(ClusterCmd::Bench {
                scenario: positional(0).unwrap_or_else(|| "smoke".to_string()),
                fleets,
                scale,
                benches,
                rate,
                duration_ms: parse_u64("--duration-ms")?.unwrap_or(2_000),
                json_out: get_flag(tail, "--json-out")?
                    .unwrap_or("BENCH_cluster.json")
                    .to_string(),
            }))
        }
        other => Err(ParseArgsError(format!(
            "unknown cluster subcommand `{other}` (coord|bench)"
        ))),
    }
}

/// Resolve a scenario argument: a built-in name, else a JSON file path.
fn resolve_scenario(name: &str) -> Result<Scenario, ParseArgsError> {
    if let Some(s) = builtin(name) {
        return Ok(s);
    }
    if std::path::Path::new(name).is_file() {
        let text = std::fs::read_to_string(name)
            .map_err(|e| ParseArgsError(format!("cannot read scenario {name}: {e}")))?;
        return Scenario::from_json(&text).map_err(|e| ParseArgsError(format!("{name}: {e}")));
    }
    Err(ParseArgsError(format!(
        "unknown scenario `{name}` (not a built-in, not a file; see `exp list`)"
    )))
}

fn engine_with(
    no_cache: bool,
    cache_dir: Option<&str>,
    jobs: Option<usize>,
    shard: Option<(usize, usize)>,
    progress: bool,
) -> Engine {
    let cache = if no_cache {
        CacheMode::Off
    } else {
        CacheMode::Disk(
            cache_dir
                .map(PathBuf::from)
                .unwrap_or_else(mtvp_engine::Cache::default_dir),
        )
    };
    Engine::new(EngineOptions {
        cache,
        jobs,
        shard,
        progress,
    })
}

/// The labels reported against the baseline: the scenario's `series`, or
/// every non-baseline label.
fn series_labels(scenario: &Scenario, labels: &[String], baseline: &str) -> Vec<String> {
    if scenario.series.is_empty() {
        labels
            .iter()
            .filter(|l| l.as_str() != baseline)
            .cloned()
            .collect()
    } else {
        scenario.series.clone()
    }
}

fn report_json(scenario: &Scenario, report: &RunReport) -> serde_json::Value {
    serde_json::json!({
        "scenario": scenario.name.as_str(),
        "scale": format!("{:?}", report.scale).to_lowercase(),
        "total_cells": report.total_cells as u64,
        "cache_hits": report.cache_hits as u64,
        "simulated": report.simulated as u64,
        "skipped_by_shard": report.skipped_by_shard as u64,
        "traces_built": report.traces_built as u64,
        "traces_cached": report.traces_cached as u64,
        "elapsed_s": report.elapsed.as_secs_f64(),
        "sweep": report.sweep,
    })
}

fn execute_exp(cmd: ExpCmd) -> Result<String, ParseArgsError> {
    let mut out = String::new();
    match cmd {
        ExpCmd::List => {
            let _ = writeln!(out, "{:<12} {:<6} title", "name", "cells");
            for s in builtin_scenarios() {
                let n_configs = s.configs().map(|c| c.len()).unwrap_or(0);
                let n_benches = if s.benches.is_empty() {
                    suite().len()
                } else {
                    s.benches.len()
                };
                let _ = writeln!(
                    out,
                    "{:<12} {:<6} {}",
                    s.name,
                    n_configs * n_benches,
                    s.title
                );
            }
            let _ = writeln!(
                out,
                "\nrun one with `mtvp-sim exp run <name>` (or a path to a scenario JSON file)"
            );
        }
        ExpCmd::Run {
            scenario,
            scale,
            benches,
            jobs,
            shard,
            no_cache,
            cache_dir,
            json,
            json_out,
            sample,
        } => {
            let mut scenario = resolve_scenario(&scenario)?;
            if let Some(b) = benches {
                scenario.benches = b;
            }
            if let Some(sp) = sample {
                for grid in &mut scenario.grids {
                    grid.sampling = Some(sp);
                }
            }
            let engine = engine_with(no_cache, cache_dir.as_deref(), jobs, shard, !json);
            let report = engine
                .run_scenario(&scenario, scale)
                .map_err(|e| ParseArgsError(e.0))?;
            if let Some(path) = &json_out {
                let doc = report_json(&scenario, &report);
                std::fs::write(path, format!("{doc}"))
                    .map_err(|e| ParseArgsError(format!("cannot write {path}: {e}")))?;
            }
            if json {
                let _ = writeln!(out, "{}", report_json(&scenario, &report));
            } else {
                let _ = writeln!(out, "{}: {}", scenario.name, scenario.title);
                let _ = writeln!(out, "{}", report.summary());
                if let Some(baseline) = &scenario.baseline {
                    let labels: Vec<String> = report
                        .sweep
                        .cells
                        .iter()
                        .map(|c| c.config.clone())
                        .collect::<std::collections::BTreeSet<_>>()
                        .into_iter()
                        .collect();
                    let series = series_labels(&scenario, &labels, baseline);
                    let refs: Vec<&str> = series.iter().map(String::as_str).collect();
                    out.push_str(&render_speedup_table(
                        &scenario.title,
                        &report.sweep,
                        &refs,
                        baseline,
                    ));
                }
                if let Some(path) = &json_out {
                    let _ = writeln!(out, "\n[report JSON written to {path}]");
                }
            }
        }
        ExpCmd::Status {
            scenario,
            scale,
            cache_dir,
            manifest,
        } => {
            if let Some(path) = manifest {
                return manifest_status(&path);
            }
            let engine = engine_with(false, cache_dir.as_deref(), None, None, false);
            let scenarios = match scenario {
                Some(name) => vec![resolve_scenario(&name)?],
                None => builtin_scenarios(),
            };
            let _ = writeln!(
                out,
                "{:<12} {:<7} {:>7} {:>7}",
                "name", "scale", "cached", "total"
            );
            for s in scenarios {
                let st = engine.status(&s, scale).map_err(|e| ParseArgsError(e.0))?;
                let _ = writeln!(
                    out,
                    "{:<12} {:<7} {:>7} {:>7}",
                    st.name,
                    format!("{:?}", st.scale).to_lowercase(),
                    st.cached,
                    st.total_cells
                );
            }
        }
        ExpCmd::Diff {
            a,
            b,
            scale,
            cache_dir,
        } => {
            let sa = resolve_scenario(&a)?;
            let sb = resolve_scenario(&b)?;
            let engine = engine_with(false, cache_dir.as_deref(), None, None, true);
            let ra = engine
                .run_scenario(&sa, scale)
                .map_err(|e| ParseArgsError(e.0))?;
            let rb = engine
                .run_scenario(&sb, scale)
                .map_err(|e| ParseArgsError(e.0))?;
            let _ = writeln!(
                out,
                "diff {} vs {} at {:?}: {} vs {} cells",
                sa.name,
                sb.name,
                ra.scale,
                ra.sweep.cells.len(),
                rb.sweep.cells.len()
            );
            let mut common = 0usize;
            let mut differing = 0usize;
            for ca in &ra.sweep.cells {
                let Some(cb) = rb.sweep.cell(&ca.bench, &ca.config) else {
                    continue;
                };
                common += 1;
                if ca.stats != cb.stats {
                    differing += 1;
                    let _ = writeln!(
                        out,
                        "  {} / {:<12} ipc {:.4} -> {:.4} ({:+.1}%)",
                        ca.bench,
                        ca.config,
                        ca.stats.ipc(),
                        cb.stats.ipc(),
                        cb.stats.speedup_over(&ca.stats)
                    );
                }
            }
            let _ = writeln!(
                out,
                "{common} shared (bench, config) cells; {differing} differ, {} identical",
                common - differing
            );
            let only_a = ra.sweep.cells.len() - common;
            let only_b: usize = rb
                .sweep
                .cells
                .iter()
                .filter(|c| ra.sweep.cell(&c.bench, &c.config).is_none())
                .count();
            if only_a + only_b > 0 {
                let _ = writeln!(
                    out,
                    "{only_a} cells only in {}, {only_b} only in {}",
                    sa.name, sb.name
                );
            }
        }
    }
    Ok(out)
}

/// `serve`: bind, install SIGINT/SIGTERM handlers, and block in the
/// accept loop until a signal (or queue shutdown) triggers the graceful
/// drain. The startup banner goes to stderr immediately; the returned
/// string is the post-drain summary.
fn execute_serve(
    addr: String,
    workers: Option<usize>,
    queue_depth: Option<usize>,
    no_cache: bool,
    cache_dir: Option<String>,
    request_timeout_ms: Option<u64>,
    peers: Vec<String>,
) -> Result<String, ParseArgsError> {
    let mut opts = mtvp_serve::ServeOptions {
        addr,
        peers,
        ..mtvp_serve::ServeOptions::default()
    };
    if let Some(n) = workers {
        opts.workers = n;
    }
    if let Some(n) = queue_depth {
        opts.queue_depth = n;
    }
    if let Some(ms) = request_timeout_ms {
        opts.request_timeout_ms = ms;
    }
    opts.cache = if no_cache {
        CacheMode::Off
    } else {
        CacheMode::Disk(
            cache_dir
                .map(PathBuf::from)
                .unwrap_or_else(Cache::default_dir),
        )
    };
    let server = mtvp_serve::Server::bind(opts.clone())
        .map_err(|e| ParseArgsError(format!("cannot serve on {}: {e}", opts.addr)))?;
    let addr = server
        .local_addr()
        .map_err(|e| ParseArgsError(format!("no local address: {e}")))?;
    mtvp_serve::signal::install();
    eprintln!(
        "mtvp-serve listening on http://{addr} ({} workers, queue depth {}, cache {})",
        opts.workers,
        opts.queue_depth,
        match &opts.cache {
            CacheMode::Off => "off".to_string(),
            CacheMode::Disk(dir) => dir.display().to_string(),
        }
    );
    eprintln!(
        "endpoints: /health /scenarios /run /sweep /jobs/<id> /cache/stats \
         /cache/cell/<hash> /metrics"
    );
    if !opts.peers.is_empty() {
        eprintln!("cache peering with: {}", opts.peers.join(", "));
    }
    eprintln!("stop with SIGINT or SIGTERM for a graceful drain");
    let report = server
        .run()
        .map_err(|e| ParseArgsError(format!("serve failed: {e}")))?;
    Ok(format!(
        "drained: {} request(s) served, {} rejected under backpressure, \
         {} job(s), {} coalesce hit(s)\n",
        report.requests, report.rejected, report.jobs, report.coalesce_hits
    ))
}

/// `exp status --manifest`: render a cluster coordinator's progress
/// manifest as a per-shard table.
fn manifest_status(path: &str) -> Result<String, ParseArgsError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| ParseArgsError(format!("cannot read manifest {path}: {e}")))?;
    let v: serde_json::Value = serde_json::from_str(&text)
        .map_err(|e| ParseArgsError(format!("{path} is not valid JSON: {e}")))?;
    if v["format"].as_str() != Some(mtvp_cluster::MANIFEST_FORMAT) {
        return Err(ParseArgsError(format!(
            "{path} is not a cluster manifest (format `{}`, expected `{}`)",
            v["format"].as_str().unwrap_or("?"),
            mtvp_cluster::MANIFEST_FORMAT
        )));
    }
    let get = |k: &str| v[k].as_u64().unwrap_or(0);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "cluster sweep {} at {}: {}/{} cells done",
        v["scenario"].as_str().unwrap_or("?"),
        v["scale"].as_str().unwrap_or("?"),
        get("done"),
        get("total_cells"),
    );
    let _ = writeln!(
        out,
        "fabric: {} retr{}, {} re-shard(s) moving {} cell(s), {} steal(s)",
        get("retries"),
        if get("retries") == 1 { "y" } else { "ies" },
        get("reshards"),
        get("cells_resharded"),
        get("steals"),
    );
    let _ = writeln!(
        out,
        "{:<22} {:<6} {:>8} {:>6} {:>6} {:>8}",
        "worker", "state", "assigned", "done", "queued", "retries"
    );
    for w in v["workers"].as_array().map(Vec::as_slice).unwrap_or(&[]) {
        let wget = |k: &str| w[k].as_u64().unwrap_or(0);
        let _ = writeln!(
            out,
            "{:<22} {:<6} {:>8} {:>6} {:>6} {:>8}",
            w["addr"].as_str().unwrap_or("?"),
            if w["alive"].as_bool().unwrap_or(false) {
                "alive"
            } else {
                "dead"
            },
            wget("assigned"),
            wget("done"),
            wget("queued"),
            wget("retries"),
        );
    }
    Ok(out)
}

fn execute_cluster(cmd: ClusterCmd) -> Result<String, ParseArgsError> {
    let mut out = String::new();
    match cmd {
        ClusterCmd::Coord {
            scenario,
            workers,
            scale,
            benches,
            timeout_ms,
            retries,
            backoff_ms,
            no_steal,
            manifest,
            json,
            json_out,
        } => {
            let mut scenario = resolve_scenario(&scenario)?;
            if let Some(b) = benches {
                scenario.benches = b;
            }
            let mut opts = mtvp_cluster::CoordOptions {
                workers,
                scale,
                steal: !no_steal,
                manifest: manifest.map(PathBuf::from),
                ..mtvp_cluster::CoordOptions::default()
            };
            if let Some(ms) = timeout_ms {
                opts.timeout_ms = ms;
            }
            if let Some(n) = retries {
                opts.retries = n;
            }
            if let Some(ms) = backoff_ms {
                opts.backoff_ms = ms;
            }
            let report = mtvp_cluster::run_cluster(&scenario, &opts).map_err(ParseArgsError)?;
            let doc = mtvp_cluster::cluster_report_json(&report);
            if let Some(path) = &json_out {
                std::fs::write(path, format!("{doc}"))
                    .map_err(|e| ParseArgsError(format!("cannot write {path}: {e}")))?;
            }
            if json {
                let _ = writeln!(out, "{doc}");
            } else {
                let _ = writeln!(out, "{}: {}", scenario.name, scenario.title);
                let _ = writeln!(
                    out,
                    "{} cells over {} worker(s) in {:.2}s ({} from worker caches)",
                    report.total_cells,
                    report.workers.len(),
                    report.elapsed.as_secs_f64(),
                    report.worker_cached,
                );
                for w in &report.workers {
                    let _ = writeln!(
                        out,
                        "  {:<22} {:<6} {} assigned, {} done, {} retries",
                        w.addr,
                        if w.alive { "alive" } else { "dead" },
                        w.assigned,
                        w.done,
                        w.retries
                    );
                }
                if report.reshards > 0 || report.steals > 0 {
                    let _ = writeln!(
                        out,
                        "fabric: {} re-shard(s) moved {} cell(s), {} steal(s), {} retries",
                        report.reshards, report.cells_resharded, report.steals, report.retries
                    );
                }
                if let Some(path) = &json_out {
                    let _ = writeln!(out, "[report JSON written to {path}]");
                }
            }
        }
        ClusterCmd::Bench {
            scenario,
            fleets,
            scale,
            benches,
            rate,
            duration_ms,
            json_out,
        } => {
            let mut scenario = resolve_scenario(&scenario)?;
            if let Some(b) = benches {
                scenario.benches = b;
            }
            let opts = mtvp_cluster::ScalingOptions {
                scenario,
                scale,
                fleet_sizes: fleets,
                slo_rate: rate,
                slo_duration_ms: duration_ms,
                ..mtvp_cluster::ScalingOptions::default()
            };
            let doc = mtvp_cluster::scaling_bench(&opts).map_err(ParseArgsError)?;
            std::fs::write(&json_out, format!("{doc}"))
                .map_err(|e| ParseArgsError(format!("cannot write {json_out}: {e}")))?;
            let _ = writeln!(out, "{doc}");
            let _ = writeln!(out, "[bench JSON written to {json_out}]");
        }
    }
    Ok(out)
}

/// Resolve a lint target: a registry workload (built at `scale`), one of
/// the standalone kernels, or a `synth-<seed>` random program.
fn lint_build(name: &str, scale: Scale) -> Result<mtvp_isa::Program, ParseArgsError> {
    if let Some(w) = suite().into_iter().find(|w| w.name == name) {
        return Ok(w.build(scale));
    }
    match name {
        "matmul" => Ok(mtvp_workloads::kernels::matmul(6)),
        "histogram" => {
            let bytes: Vec<u8> = (0..256u32)
                .map(|i| (i.wrapping_mul(31) % 251) as u8)
                .collect();
            Ok(mtvp_workloads::kernels::histogram(&bytes))
        }
        "string-search" => Ok(mtvp_workloads::kernels::string_search(
            b"the quick brown fox jumps over the lazy dog; the fox won",
            b"fox",
        )),
        _ => name
            .strip_prefix("synth-")
            .and_then(|s| s.parse::<u64>().ok())
            .map(|seed| {
                mtvp_workloads::synth::random_program(
                    seed,
                    mtvp_workloads::synth::SynthParams::default(),
                )
            })
            .ok_or_else(|| {
                ParseArgsError(format!(
                    "unknown lint target `{name}`; use a registry benchmark (see \
                     `mtvp-sim list`), matmul, histogram, string-search, or synth-<seed>"
                ))
            }),
    }
}

/// The `lint --all` target set: every registry workload plus the
/// standalone kernels and a handful of synth-generator seeds.
fn lint_all_targets() -> Vec<String> {
    let mut names: Vec<String> = suite().into_iter().map(|w| w.name.to_string()).collect();
    names.extend(["matmul", "histogram", "string-search"].map(str::to_string));
    names.extend((1..=4).map(|s| format!("synth-{s}")));
    names
}

/// Per-rule counts of suppressed findings (`// hotlint: allow` escapes),
/// sorted by rule so the JSON is deterministic.
fn suppressed_by_rule(suppressed: &[mtvp_analysis::SourceDiag]) -> Vec<(String, u64)> {
    let mut counts = std::collections::BTreeMap::<String, u64>::new();
    for d in suppressed {
        *counts.entry(d.pattern.clone()).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}

/// `lint --source`: the hot-path source lint over `crates/pipeline/src`.
fn execute_source_lint(root: Option<&str>, json: bool) -> Result<String, ParseArgsError> {
    let root = std::path::Path::new(root.unwrap_or("."));
    let (files, outcome) = mtvp_analysis::scan_pipeline(root)
        .map_err(|e| ParseArgsError(format!("source lint failed under {}: {e}", root.display())))?;
    if files == 0 {
        return Err(ParseArgsError(format!(
            "source lint found no .rs files under {}/crates/pipeline/src \
             (pass --root REPO_DIR when running outside the repository root)",
            root.display()
        )));
    }
    let suppressed: Vec<serde_json::Value> = suppressed_by_rule(&outcome.suppressed)
        .into_iter()
        .map(|(rule, count)| serde_json::json!({ "rule": rule, "count": count }))
        .collect();
    if outcome.diags.is_empty() {
        let out = if json {
            format!(
                "{}\n",
                serde_json::json!({
                    "files": files as u64,
                    "findings": Vec::<u64>::new(),
                    "suppressed": suppressed,
                    "suppressed_total": outcome.suppressed.len() as u64,
                })
            )
        } else if outcome.suppressed.is_empty() {
            format!("hot-path source lint: {files} pipeline files clean\n")
        } else {
            format!(
                "hot-path source lint: {files} pipeline files clean \
                 ({} finding(s) suppressed by `hotlint: allow`)\n",
                outcome.suppressed.len()
            )
        };
        return Ok(out);
    }
    let mut msg = format!(
        "hot-path source lint: {} finding(s):\n",
        outcome.diags.len()
    );
    for d in &outcome.diags {
        let _ = writeln!(
            msg,
            "  {}:{}: `{}` — {}",
            d.file.display(),
            d.line,
            d.pattern,
            d.message
        );
    }
    if !outcome.suppressed.is_empty() {
        let _ = writeln!(
            msg,
            "({} further finding(s) suppressed by `hotlint: allow`)",
            outcome.suppressed.len()
        );
    }
    msg.push_str("(annotate a deliberate use with `// hotlint: allow` to accept it)");
    Err(ParseArgsError(msg))
}

#[allow(clippy::too_many_arguments)] // mirrors the Command::Lint flag set one-for-one
fn execute_lint(
    benches: Vec<String>,
    all: bool,
    scale: Scale,
    json: bool,
    source: bool,
    no_cache: bool,
    cache_dir: Option<String>,
    root: Option<String>,
) -> Result<String, ParseArgsError> {
    if source {
        return execute_source_lint(root.as_deref(), json);
    }
    let names = if all { lint_all_targets() } else { benches };
    let cache = (!no_cache).then(|| {
        Cache::new(
            cache_dir
                .map(PathBuf::from)
                .unwrap_or_else(Cache::default_dir),
        )
    });
    let mut outcomes = Vec::with_capacity(names.len());
    for name in &names {
        let program = lint_build(name, scale)?;
        outcomes.push(lint_program_cached(cache.as_ref(), name, scale, &program));
    }
    let total_errors: usize = outcomes.iter().map(|o| o.errors).sum();
    let total_warnings: usize = outcomes.iter().map(|o| o.warnings).sum();
    let mut out = String::new();
    if json {
        let programs: Vec<serde_json::Value> = outcomes
            .iter()
            .map(|o| {
                serde_json::json!({
                    "bench": o.bench.as_str(),
                    "errors": o.errors as u64,
                    "warnings": o.warnings as u64,
                    "from_cache": o.from_cache,
                    "report": o.report.clone(),
                })
            })
            .collect();
        let doc = serde_json::json!({
            "scale": format!("{scale:?}").to_lowercase(),
            "programs": programs,
            "total_errors": total_errors as u64,
            "total_warnings": total_warnings as u64,
        });
        let _ = writeln!(out, "{doc}");
    } else {
        let _ = writeln!(
            out,
            "{:<16} {:>6} {:>8} {:>7} {:>6} {:>6}",
            "bench", "errors", "warnings", "blocks", "loops", "insts"
        );
        for o in &outcomes {
            let _ = writeln!(
                out,
                "{:<16} {:>6} {:>8} {:>7} {:>6} {:>6}{}",
                o.bench,
                o.errors,
                o.warnings,
                o.report["blocks"].as_u64().unwrap_or(0),
                o.report["loops"].as_u64().unwrap_or(0),
                o.report["insts"].as_u64().unwrap_or(0),
                if o.from_cache { "  (cached)" } else { "" }
            );
        }
        for o in &outcomes {
            if let Some(diags) = o.report["diags"].as_array() {
                for d in diags {
                    let sev = d["severity"].as_str().unwrap_or("?");
                    if sev == "info" {
                        continue;
                    }
                    let _ = writeln!(
                        out,
                        "  {sev}[{}] {}: {}",
                        d["rule"].as_str().unwrap_or("?"),
                        o.bench,
                        d["message"].as_str().unwrap_or("")
                    );
                }
            }
        }
        let _ = writeln!(
            out,
            "total: {total_errors} error(s), {total_warnings} warning(s) across {} program(s)",
            outcomes.len()
        );
    }
    if total_errors > 0 {
        return Err(ParseArgsError(out));
    }
    Ok(out)
}

/// `lint --spawn-hints`: the static spawn-site analysis, differentially
/// validated against the tracing interpreter and cached like lint runs.
fn execute_spawn_hints(
    benches: Vec<String>,
    all: bool,
    scale: Scale,
    json: bool,
    no_cache: bool,
    cache_dir: Option<String>,
) -> Result<String, ParseArgsError> {
    let names = if all { lint_all_targets() } else { benches };
    let cache = (!no_cache).then(|| {
        Cache::new(
            cache_dir
                .map(PathBuf::from)
                .unwrap_or_else(Cache::default_dir),
        )
    });
    let mut outcomes = Vec::with_capacity(names.len());
    for name in &names {
        let program = lint_build(name, scale)?;
        outcomes.push(mtvp_engine::spawn_hints_cached(
            cache.as_ref(),
            name,
            scale,
            &program,
        ));
    }
    let mut out = String::new();
    if json {
        let programs: Vec<serde_json::Value> = outcomes
            .iter()
            .map(|o| {
                serde_json::json!({
                    "bench": o.bench.as_str(),
                    "selected_sites": u64::from(o.selected_sites),
                    "hinted_loads": o.hinted_loads.clone(),
                    "checks": o.checks,
                    "validated": o.validated,
                    "from_cache": o.from_cache,
                    "hints": o.hints.clone(),
                })
            })
            .collect();
        let doc = serde_json::json!({
            "scale": format!("{scale:?}").to_lowercase(),
            "programs": programs,
            "unsound": outcomes.iter().filter(|o| !o.validated).count() as u64,
        });
        let _ = writeln!(out, "{doc}");
    } else {
        let _ = writeln!(
            out,
            "{:<16} {:>5} {:>8} {:>6} {:>9} {:>10}",
            "bench", "sites", "selected", "hinted", "checks", "validated"
        );
        for o in &outcomes {
            let sites = o.hints["sites"].as_array().map(Vec::len).unwrap_or(0);
            let _ = writeln!(
                out,
                "{:<16} {:>5} {:>8} {:>6} {:>9} {:>10}{}",
                o.bench,
                sites,
                o.selected_sites,
                o.hinted_loads.len(),
                o.checks,
                if o.validated { "yes" } else { "NO" },
                if o.from_cache { "  (cached)" } else { "" }
            );
        }
    }
    if outcomes.iter().any(|o| !o.validated) {
        return Err(ParseArgsError(out));
    }
    Ok(out)
}

impl Command {
    /// Parse an argv tail (without the program name).
    pub fn parse(args: &[String]) -> Result<Command, ParseArgsError> {
        let mut it = args.iter().map(String::as_str);
        let cmd = it.next().unwrap_or("help");
        let rest: Vec<&str> = it.collect();
        match cmd {
            "list" => Ok(Command::List),
            "help" | "--help" | "-h" => Ok(Command::Help),
            "run" => {
                let bench = rest
                    .first()
                    .filter(|a| !a.starts_with("--"))
                    .ok_or_else(|| ParseArgsError("run requires a benchmark name".into()))?
                    .to_string();
                let (config, scale) = parse_sim_config(&rest)?;
                let trace = parse_trace_spec(&rest)?;
                if config.sampling.is_some() && trace.is_some() {
                    return Err(ParseArgsError(
                        "--sample is incompatible with --trace (sampled windows run \
                         without the uop-lifecycle tracer)"
                            .into(),
                    ));
                }
                Ok(Command::Run {
                    bench,
                    config,
                    scale,
                    json: rest.contains(&"--json"),
                    trace,
                    no_cache: rest.contains(&"--no-cache"),
                    cache_dir: get_flag(&rest, "--cache-dir")?.map(str::to_string),
                })
            }
            "trace" => {
                let bench = rest
                    .first()
                    .filter(|a| !a.starts_with("--"))
                    .ok_or_else(|| ParseArgsError("trace requires a benchmark name".into()))?
                    .to_string();
                let (config, scale) = parse_sim_config(&rest)?;
                if config.sampling.is_some() {
                    return Err(ParseArgsError(
                        "--sample is incompatible with the trace command (sampled \
                         windows run without the uop-lifecycle tracer)"
                            .into(),
                    ));
                }
                let spec = parse_trace_spec(&rest)?.unwrap_or_default();
                let rows = match get_flag(&rest, "--rows")? {
                    Some(v) => v
                        .parse()
                        .map_err(|_| ParseArgsError(format!("bad --rows `{v}`")))?,
                    None => 48,
                };
                Ok(Command::Trace {
                    bench,
                    config,
                    scale,
                    spec,
                    rows,
                })
            }
            "compare" => {
                let bench = rest
                    .first()
                    .filter(|a| !a.starts_with("--"))
                    .ok_or_else(|| ParseArgsError("compare requires a benchmark name".into()))?
                    .to_string();
                let scale = parse_scale(get_flag(&rest, "--scale")?.unwrap_or("small"))?;
                Ok(Command::Compare { bench, scale })
            }
            "disasm" => {
                let bench = rest
                    .first()
                    .filter(|a| !a.starts_with("--"))
                    .ok_or_else(|| ParseArgsError("disasm requires a benchmark name".into()))?
                    .to_string();
                let limit = match get_flag(&rest, "--limit")? {
                    Some(v) => v
                        .parse()
                        .map_err(|_| ParseArgsError(format!("bad --limit `{v}`")))?,
                    None => 120,
                };
                Ok(Command::Disasm { bench, limit })
            }
            "lint" => {
                let all = rest.contains(&"--all");
                let source = rest.contains(&"--source");
                let spawn_hints = rest.contains(&"--spawn-hints");
                let scale = parse_scale(get_flag(&rest, "--scale")?.unwrap_or("tiny"))?;
                let cache_dir = get_flag(&rest, "--cache-dir")?.map(str::to_string);
                let root = get_flag(&rest, "--root")?.map(str::to_string);
                let benches: Vec<String> = rest
                    .iter()
                    .enumerate()
                    .filter(|(i, a)| {
                        !a.starts_with("--")
                            && (*i == 0
                                || !matches!(rest[i - 1], "--scale" | "--cache-dir" | "--root"))
                    })
                    .map(|(_, a)| a.to_string())
                    .collect();
                if !all && !source && benches.is_empty() {
                    return Err(ParseArgsError(
                        "lint requires benchmark names, --all, or --source".into(),
                    ));
                }
                if source && spawn_hints {
                    return Err(ParseArgsError(
                        "--source and --spawn-hints are mutually exclusive".into(),
                    ));
                }
                Ok(Command::Lint {
                    benches,
                    all,
                    scale,
                    json: rest.contains(&"--json"),
                    source,
                    spawn_hints,
                    no_cache: rest.contains(&"--no-cache"),
                    cache_dir,
                    root,
                })
            }
            "exp" => parse_exp(&rest),
            "cluster" => parse_cluster(&rest),
            "serve" => {
                let addr = get_flag(&rest, "--addr")?
                    .unwrap_or("127.0.0.1:8707")
                    .to_string();
                let workers = match get_flag(&rest, "--workers")? {
                    Some(v) => Some(
                        v.parse::<usize>()
                            .ok()
                            .filter(|n| *n > 0)
                            .ok_or_else(|| ParseArgsError(format!("bad --workers `{v}`")))?,
                    ),
                    None => None,
                };
                let queue_depth = match get_flag(&rest, "--queue-depth")? {
                    Some(v) => Some(
                        v.parse::<usize>()
                            .ok()
                            .filter(|n| *n > 0)
                            .ok_or_else(|| ParseArgsError(format!("bad --queue-depth `{v}`")))?,
                    ),
                    None => None,
                };
                let request_timeout_ms = match get_flag(&rest, "--request-timeout-ms")? {
                    Some(v) => Some(v.parse::<u64>().ok().filter(|n| *n > 0).ok_or_else(|| {
                        ParseArgsError(format!("bad --request-timeout-ms `{v}`"))
                    })?),
                    None => None,
                };
                Ok(Command::Serve {
                    addr,
                    workers,
                    queue_depth,
                    no_cache: rest.contains(&"--no-cache"),
                    cache_dir: get_flag(&rest, "--cache-dir")?.map(str::to_string),
                    request_timeout_ms,
                    peers: get_flag(&rest, "--peers")?
                        .map(split_list)
                        .unwrap_or_default(),
                })
            }
            other => Err(ParseArgsError(format!(
                "unknown command `{other}`; try `help`"
            ))),
        }
    }

    /// Execute the command, returning the text to print.
    ///
    /// # Errors
    /// Returns an error string for unknown benchmark names.
    pub fn execute(self) -> Result<String, ParseArgsError> {
        let mut out = String::new();
        match self {
            Command::Exp(cmd) => return execute_exp(cmd),
            Command::Cluster(cmd) => return execute_cluster(cmd),
            Command::Serve {
                addr,
                workers,
                queue_depth,
                no_cache,
                cache_dir,
                request_timeout_ms,
                peers,
            } => {
                return execute_serve(
                    addr,
                    workers,
                    queue_depth,
                    no_cache,
                    cache_dir,
                    request_timeout_ms,
                    peers,
                )
            }
            Command::Lint {
                benches,
                all,
                scale,
                json,
                source,
                spawn_hints,
                no_cache,
                cache_dir,
                root,
            } => {
                return if spawn_hints {
                    execute_spawn_hints(benches, all, scale, json, no_cache, cache_dir)
                } else {
                    execute_lint(benches, all, scale, json, source, no_cache, cache_dir, root)
                }
            }
            Command::Help => out.push_str(HELP),
            Command::List => {
                let _ = writeln!(out, "{:<10} {:<6} description", "name", "suite");
                for w in suite() {
                    let _ = writeln!(
                        out,
                        "{:<10} {:<6} {}",
                        w.name,
                        if w.suite == mtvp_engine::Suite::Int {
                            "int"
                        } else {
                            "fp"
                        },
                        w.description
                    );
                }
            }
            Command::Run {
                bench,
                config,
                scale,
                json,
                trace,
                no_cache,
                cache_dir,
            } => {
                let wl = find(&bench)?;
                let program = wl.build(scale);
                if config.sampling.is_some() {
                    let (n, ref_trace) = reference_trace(&program);
                    let cache = (!no_cache).then(|| {
                        Cache::new(
                            cache_dir
                                .as_ref()
                                .map(PathBuf::from)
                                .unwrap_or_else(Cache::default_dir),
                        )
                    });
                    let store = cache.as_ref().map(|c| CkptStore {
                        cache: c,
                        bench: wl.name,
                        scale,
                    });
                    let s = run_sampled(&config, &program, n, &ref_trace, store);
                    if json {
                        let doc = serde_json::json!({
                            "bench": bench,
                            "config": config,
                            "ipc": s.stats.ipc(),
                            "stats": s.stats,
                        });
                        let sampling_doc = serde_json::json!({
                            "windows": s.meta.windows,
                            "total_instrs": n,
                            "measured_instrs": s.meta.measured_instrs,
                            "measured_cycles": s.meta.measured_cycles,
                            "detailed_fraction": s.detailed_fraction(n),
                            "ckpt_hits": s.ckpt_hits,
                            "ckpt_misses": s.ckpt_misses,
                        });
                        let doc = match doc {
                            serde_json::Value::Map(mut entries) => {
                                entries.push(("sampling".to_string(), sampling_doc));
                                serde_json::Value::Map(entries)
                            }
                            doc => doc,
                        };
                        let _ = writeln!(out, "{doc}");
                    } else {
                        let _ = writeln!(out, "bench      : {bench} ({})", wl.description);
                        let _ = writeln!(out, "mode       : {:?} (sampled)", config.mode);
                        let _ = writeln!(out, "est cycles : {}", s.stats.cycles);
                        let _ = writeln!(out, "committed  : {}", s.stats.committed);
                        let _ = writeln!(out, "useful IPC : {:.4} (estimated)", s.stats.ipc());
                        let _ = writeln!(
                            out,
                            "sampling   : {} windows, {}/{} instrs detailed ({:.1}%)",
                            s.meta.windows,
                            s.meta.measured_instrs,
                            n,
                            100.0 * s.detailed_fraction(n)
                        );
                        let _ = writeln!(
                            out,
                            "checkpoints: {} hits, {} misses{}",
                            s.ckpt_hits,
                            s.ckpt_misses,
                            if cache.is_none() { " (cache off)" } else { "" }
                        );
                    }
                    return Ok(out);
                }
                let (r, tracer) = match &trace {
                    Some(spec) => {
                        let opts = TraceOptions {
                            ring: spec.ring,
                            window: spec.window,
                        };
                        let (r, t) = run_program_traced(&config, &program, &opts);
                        (r, Some(t))
                    }
                    None => (run_program_at(&config, &program, scale), None),
                };
                if json {
                    let doc = serde_json::json!({
                        "bench": bench,
                        "config": config,
                        "ipc": r.ipc(),
                        "stats": r.stats,
                    });
                    let doc = match (&tracer, doc) {
                        (Some(t), serde_json::Value::Map(mut entries)) => {
                            let trace_doc = serde_json::json!({
                                "events_retained": t.len() as u64,
                                "events_dropped": t.dropped(),
                                "registry": t.registry(),
                            });
                            entries.push(("trace".to_string(), trace_doc));
                            serde_json::Value::Map(entries)
                        }
                        (_, doc) => doc,
                    };
                    let _ = writeln!(out, "{doc}");
                } else {
                    let _ = writeln!(out, "bench      : {bench} ({})", wl.description);
                    let _ = writeln!(out, "mode       : {:?}", config.mode);
                    let _ = writeln!(out, "cycles     : {}", r.stats.cycles);
                    let _ = writeln!(out, "committed  : {}", r.stats.committed);
                    let _ = writeln!(out, "useful IPC : {:.4}", r.ipc());
                    let _ = writeln!(
                        out,
                        "vp         : stvp {}/{} ok, spawns {} ({} ok, {} wrong)",
                        r.stats.vp.stvp_used,
                        r.stats.vp.stvp_correct,
                        r.stats.vp.mtvp_spawns,
                        r.stats.vp.mtvp_correct,
                        r.stats.vp.mtvp_wrong
                    );
                    if let Some(t) = &tracer {
                        let _ = writeln!(
                            out,
                            "trace      : {} events retained, {} dropped",
                            t.len(),
                            t.dropped()
                        );
                    }
                }
                if let (Some(spec), Some(t)) = (&trace, &tracer) {
                    if let Some(path) = &spec.out {
                        let text = chrome_trace(t.events());
                        std::fs::write(path, text).map_err(|e| {
                            ParseArgsError(format!("cannot write trace to {path}: {e}"))
                        })?;
                        // Keep stdout machine-readable under --json.
                        if !json {
                            let _ = writeln!(out, "trace JSON : {path} (open in about:tracing)");
                        }
                    }
                }
            }
            Command::Trace {
                bench,
                config,
                scale,
                spec,
                rows,
            } => {
                let wl = find(&bench)?;
                let program = wl.build(scale);
                let opts = TraceOptions {
                    ring: spec.ring,
                    window: spec.window,
                };
                let (r, t) = run_program_traced(&config, &program, &opts);
                let _ = writeln!(
                    out,
                    "bench {bench} mode {:?}: {} cycles, {} committed, IPC {:.4}",
                    config.mode,
                    r.stats.cycles,
                    r.stats.committed,
                    r.ipc()
                );
                let _ = writeln!(
                    out,
                    "{} events retained ({} dropped); spawns {} ok {} wrong {}",
                    t.len(),
                    t.dropped(),
                    r.stats.vp.mtvp_spawns,
                    r.stats.vp.mtvp_correct,
                    r.stats.vp.mtvp_wrong
                );
                out.push_str(&pipeview(t.events(), rows));
                if let Some(path) = &spec.out {
                    let text = chrome_trace(t.events());
                    std::fs::write(path, text).map_err(|e| {
                        ParseArgsError(format!("cannot write trace to {path}: {e}"))
                    })?;
                    let _ = writeln!(out, "trace JSON : {path} (open in about:tracing)");
                }
            }
            Command::Compare { bench, scale } => {
                let wl = find(&bench)?;
                let program = wl.build(scale);
                let base = run_program(&SimConfig::new(Mode::Baseline), &program);
                let _ = writeln!(
                    out,
                    "{:<14}{:>10}{:>9}{:>12}",
                    "mode", "cycles", "IPC", "speedup"
                );
                let _ = writeln!(
                    out,
                    "{:<14}{:>10}{:>9.3}{:>12}",
                    "baseline",
                    base.stats.cycles,
                    base.ipc(),
                    "-"
                );
                for mode in [
                    Mode::Stvp,
                    Mode::Mtvp,
                    Mode::MtvpNoStall,
                    Mode::SpawnOnly,
                    Mode::WideWindow,
                    Mode::MultiValue,
                ] {
                    let r = run_program(&SimConfig::new(mode), &program);
                    let _ = writeln!(
                        out,
                        "{:<14}{:>10}{:>9.3}{:>+11.1}%",
                        format!("{mode:?}"),
                        r.stats.cycles,
                        r.ipc(),
                        r.stats.speedup_over(&base.stats)
                    );
                }
            }
            Command::Disasm { bench, limit } => {
                let wl = find(&bench)?;
                let program = wl.build(Scale::Tiny);
                let _ = writeln!(
                    out,
                    "; {} — {} static instructions, {} bytes of data",
                    program.name,
                    program.len(),
                    program.data_bytes()
                );
                for (pc, inst) in program.code.iter().take(limit).enumerate() {
                    let _ = writeln!(out, "{pc:>6}: {inst}");
                }
                if program.len() > limit {
                    let _ = writeln!(out, "… ({} more)", program.len() - limit);
                }
            }
        }
        Ok(out)
    }
}

fn find(name: &str) -> Result<mtvp_engine::Workload, ParseArgsError> {
    suite()
        .into_iter()
        .find(|w| w.name == name)
        .ok_or_else(|| ParseArgsError(format!("unknown benchmark `{name}`; see `mtvp-sim list`")))
}

/// The help text.
pub const HELP: &str = "\
mtvp-sim — cycle-level SMT simulator with multithreaded value prediction

USAGE:
  mtvp-sim list
  mtvp-sim run <bench> [--mode M] [--core C] [--contexts N] [--predictor P] [--selector S]
                       [--spawn-policy dynamic|static] [--spawn-latency N]
                       [--store-buffer N] [--scale tiny|small|full]
                       [--no-prefetch] [--cold-start] [--json]
                       [--cores M] [--l3 KB:ASSOC:LAT] [--interconnect N]
                       [--xspawn] [--co spec1,spec2,...]
                       [--sample W:I:U] [--no-cache] [--cache-dir DIR]
                       [--trace[=RING]] [--trace-out FILE] [--trace-window START:END]
  mtvp-sim trace <bench> [run options] [--rows N] [--trace-out FILE]
  mtvp-sim compare <bench> [--scale tiny|small|full]
  mtvp-sim disasm <bench> [--limit N]
  mtvp-sim lint [--all | <bench>...] [--scale tiny|small|full] [--json]
                [--no-cache] [--cache-dir DIR]
  mtvp-sim lint --source [--root REPO_DIR] [--json]
  mtvp-sim lint --spawn-hints [--all | <bench>...] [--scale S] [--json]
                [--no-cache] [--cache-dir DIR]
  mtvp-sim exp list
  mtvp-sim exp run <scenario> [--scale S] [--benches a,b,c] [--jobs N]
                              [--shard i/n] [--no-cache] [--cache-dir DIR]
                              [--json] [--json-out FILE] [--sample W:I:U]
  mtvp-sim exp status [scenario] [--scale S] [--cache-dir DIR] [--manifest FILE]
  mtvp-sim exp diff <a> <b> [--scale S] [--cache-dir DIR]
  mtvp-sim serve [--addr HOST:PORT] [--workers N] [--queue-depth N]
                 [--no-cache] [--cache-dir DIR] [--request-timeout-ms N]
                 [--peers HOST:PORT,...]
  mtvp-sim cluster coord <scenario> --workers a,b,c [--scale S] [--benches ...]
                         [--timeout-ms N] [--retries N] [--backoff-ms N]
                         [--no-steal] [--manifest FILE] [--json] [--json-out FILE]
  mtvp-sim cluster bench [scenario] [--fleets 1,2,4] [--scale S] [--benches ...]
                         [--rate RPS] [--duration-ms N] [--json-out FILE]

MODES:      baseline stvp mtvp mtvp-nostall spawn-only wide-window multi-value
CORES:      ooo (default SMT out-of-order) | inorder (scalar in-order baseline;
            requires --mode baseline, e.g. `run mcf --core inorder --mode baseline`)
PREDICTORS: none oracle wf wf-liberal dfcm stride last-value
SELECTORS:  always ilp-pred l3-miss-oracle
POLICIES:   dynamic (default: every confident load may spawn) | static
            (only loads inside statically selected spawn regions spawn;
            requires an out-of-order value-predicting mode)

EXPERIMENTS:
  `exp run` drives a declarative scenario (the paper's figures are built
  in; `exp list` names them, or pass a path to a scenario JSON file).
  Completed cells and reference traces persist under results/cache/ (or
  $MTVP_CACHE_DIR, or --cache-dir), so re-runs are incremental and an
  interrupted sweep resumes from its completed cells. --shard i/n splits
  a sweep deterministically across machines sharing a cache directory.

SERVING:
  `serve` exposes the experiment engine as a multithreaded HTTP/1.1 JSON
  service (default 127.0.0.1:8707): GET /health, /scenarios, /metrics,
  /cache/stats; POST /run (one bench x config x scale cell) and /sweep
  (a scenario by name or inline JSON); async polling via `\"wait\": false`
  plus GET /jobs/<id> and /jobs/<id>/result?wait_ms=N. A bounded queue
  answers 503 + Retry-After under overload, identical concurrent jobs
  coalesce into one engine execution, and results share the exp cache.
  SIGINT/SIGTERM drain gracefully. `mtvp-loadgen` drives load against it
  (closed loop, or open loop with --rate for SLO reporting).

CLUSTER:
  `cluster coord` fans a scenario out to running `serve` workers: cells
  are placed by rendezvous hashing on their cache content hash, failed
  requests retry with backoff, a dead worker's remaining cells re-shard
  onto the survivors, and the merged sweep JSON is byte-identical to a
  single-node `exp run` of the same scenario. --manifest writes live
  progress that `exp status --manifest` renders. Workers started with
  `serve --peers` fetch warm cells from each other before simulating, so
  results migrate instead of being recomputed. `cluster bench` boots
  local fleets of 1..N workers, measures cell throughput at each size,
  probes SLOs open-loop, and writes BENCH_cluster.json.

LINT:
  `lint` runs the static dataflow analysis (CFG, liveness, reaching
  definitions, address ranges) over kernel programs and reports
  uninitialized reads, bad branch targets, dead stores, unreachable code
  and loop-termination smells. Targets are registry benchmarks plus
  matmul, histogram, string-search and synth-<seed>; --all lints the
  whole shipped set (the CI gate requires zero errors). Results are
  cached like experiment cells. `lint --source` instead lints the
  pipeline's hot-path source for denied collections/allocations; exit
  status is 2 when any error (or source finding) is present. With --json
  the source lint also reports per-rule counts of findings suppressed by
  `// hotlint: allow`. `lint --spawn-hints` runs the static spawn-site
  analysis instead: natural loops and call continuations are scored by
  fork-point live-in predictability (constant / affine induction /
  accumulator / memory-carried), every predictable verdict is checked
  against the tracing interpreter, and the cached artifact's selected
  load PCs are what `run --spawn-policy static` uses as its spawn filter.

CMP:
  --cores M            chip multiprocessor with M cores (default 1). Cores
                       above 1 share an L3 and require --core ooo; the primary
                       workload always runs on core 0. Cells are keyed on every
                       CMP knob, so mixes are exactly reproducible.
  --l3 KB:ASSOC:LAT    shared-L3 shape (default 4096:16:50). At --cores 1 this
                       configures the private L3 instead.
  --interconnect N     core-to-L3 hop latency in cycles (default 4); a shared
                       hit pays LAT + 2 hops.
  --xspawn             let MTVP spawn speculative threads onto idle sibling
                       cores (remote contexts): spawn and reconcile each pay
                       two extra hops. Needs a spawning mode and an idle core.
                       (Alias: --cross-core-spawn.)
  --co s1,s2,...       co-runner workloads for sibling cores, one per spec:
                       a registry benchmark name, synth:<seed>, or
                       phases:<seed> (seeded generated programs; generated
                       co-runners must pass the error-severity lints).

SAMPLING:
  --sample W:I:U       two-tier sampled simulation: functionally fast-forward
                       between detailed windows of W instructions taken every I
                       instructions, each preceded by U warm-up instructions
                       (detailed but uncounted). Reported statistics are
                       extrapolated estimates; the window at instruction 0 is
                       measured exactly. Checkpoints of architectural state at
                       each window's warm-up point persist in the cache and are
                       shared by every configuration with the same schedule
                       (`run --no-cache` disables the checkpoint store).
                       Example: --sample 2000:20000:1000 runs ~15% detailed.
                       `exp run --sample` applies the schedule to every
                       configuration in the scenario, and scenario files may
                       set \"sampling\" per grid. Incompatible with --trace.

TRACING:
  --trace[=RING]       record uop lifecycle + MTVP thread events in a ring of
                       RING entries (default 1048576); counters/histograms
                       aggregate over the whole run regardless of ring size
  --trace-out FILE     write Chrome trace-event JSON (chrome://tracing,
                       about:tracing, or https://ui.perfetto.dev)
  --trace-window S:E   keep only events from cycles [S, E) in the ring
  trace subcommand     same flags, prints a gem5-style textual pipeview
";

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Command, ParseArgsError> {
        let v: Vec<String> = words.iter().map(|s| s.to_string()).collect();
        Command::parse(&v)
    }

    #[test]
    fn parses_basic_commands() {
        assert_eq!(parse(&["list"]).unwrap(), Command::List);
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&["help"]).unwrap(), Command::Help);
        assert!(matches!(
            parse(&["compare", "mcf"]).unwrap(),
            Command::Compare { .. }
        ));
        assert!(matches!(
            parse(&["disasm", "mcf"]).unwrap(),
            Command::Disasm { limit: 120, .. }
        ));
    }

    #[test]
    fn parses_run_flags() {
        let cmd = parse(&[
            "run",
            "mcf",
            "--mode",
            "mtvp",
            "--contexts",
            "4",
            "--predictor",
            "oracle",
            "--spawn-latency",
            "1",
            "--store-buffer",
            "64",
            "--scale",
            "tiny",
            "--json",
            "--no-prefetch",
            "--cold-start",
        ])
        .unwrap();
        match cmd {
            Command::Run {
                bench,
                config,
                scale,
                json,
                trace,
                ..
            } => {
                assert_eq!(bench, "mcf");
                assert_eq!(config.contexts, 4);
                assert_eq!(config.predictor, PredictorKind::Oracle);
                assert_eq!(config.spawn_latency, 1);
                assert_eq!(config.store_buffer, 64);
                assert!(!config.prefetcher);
                assert!(!config.warm_start);
                assert_eq!(scale, Scale::Tiny);
                assert!(json);
                assert_eq!(trace, None);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn parses_trace_flags() {
        let cmd = parse(&[
            "run",
            "mcf",
            "--trace=4096",
            "--trace-window",
            "100:200",
            "--trace-out",
            "x.json",
        ])
        .unwrap();
        match cmd {
            Command::Run { trace, .. } => {
                let spec = trace.expect("--trace parsed");
                assert_eq!(spec.ring, 4096);
                assert_eq!(spec.window, Some((100, 200)));
                assert_eq!(spec.out.as_deref(), Some("x.json"));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // `=` form of the window, bare --trace, and implied enabling.
        match parse(&["run", "mcf", "--trace", "--trace-window=5:9"]).unwrap() {
            Command::Run { trace, .. } => {
                let spec = trace.expect("--trace parsed");
                assert_eq!(spec.ring, 1 << 20);
                assert_eq!(spec.window, Some((5, 9)));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        match parse(&["run", "mcf", "--trace-out", "y.json"]).unwrap() {
            Command::Run { trace, .. } => {
                assert_eq!(trace.expect("implied").out.as_deref(), Some("y.json"));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // trace subcommand shares the run flags.
        match parse(&["trace", "mcf", "--mode", "mtvp", "--rows", "16"]).unwrap() {
            Command::Trace { bench, rows, .. } => {
                assert_eq!(bench, "mcf");
                assert_eq!(rows, 16);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(parse(&["run", "mcf", "--trace=abc"]).is_err());
        assert!(parse(&["run", "mcf", "--trace-window", "9:5"]).is_err());
        assert!(parse(&["run", "mcf", "--trace-window", "nope"]).is_err());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["run"]).is_err());
        assert!(parse(&["run", "mcf", "--mode", "bogus"]).is_err());
        assert!(parse(&["run", "mcf", "--contexts"]).is_err());
        assert!(parse(&["frobnicate"]).is_err());
        assert!(parse(&["run", "mcf", "--scale", "gigantic"]).is_err());
    }

    #[test]
    fn rejects_invalid_configs_before_running() {
        // validate() is wired into parsing: a baseline machine cannot have
        // eight contexts, and store_buffer 0 is meaningless.
        let err = parse(&["run", "mcf", "--mode", "baseline", "--contexts", "8"]).unwrap_err();
        assert!(err.0.contains("single-context"), "{err}");
        assert!(parse(&["run", "mcf", "--store-buffer", "0"]).is_err());
        assert!(parse(&["run", "mcf", "--mode", "stvp", "--predictor", "none"]).is_err());
    }

    #[test]
    fn parses_core_flag_and_rejects_unsupported_knobs() {
        let cmd = parse(&[
            "run", "mcf", "--core", "inorder", "--mode", "baseline", "--scale", "tiny",
        ])
        .unwrap();
        match cmd {
            Command::Run { config, .. } => {
                assert_eq!(config.core, mtvp_engine::CoreKind::InOrderScalar);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // The vocabulary accepts the long spellings too.
        let cmd = parse(&["run", "mcf", "--core", "out-of-order"]).unwrap();
        match cmd {
            Command::Run { config, .. } => {
                assert_eq!(config.core, mtvp_engine::CoreKind::OutOfOrder);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(parse(&["run", "mcf", "--core", "vliw"]).is_err());
        // validate() rejects knobs the in-order core doesn't support, with
        // an error naming the core.
        for bad in [
            vec!["run", "mcf", "--core", "inorder"], // default mode is mtvp
            vec![
                "run",
                "mcf",
                "--core",
                "inorder",
                "--mode",
                "baseline",
                "--contexts",
                "4",
            ],
            vec![
                "run",
                "mcf",
                "--core",
                "inorder",
                "--mode",
                "baseline",
                "--predictor",
                "wf",
            ],
            vec!["run", "mcf", "--core", "inorder", "--mode", "wide-window"],
        ] {
            let err = parse(&bad).unwrap_err();
            assert!(err.0.contains("in-order"), "{bad:?}: {err}");
        }
        // Sampling stays legal on the in-order core.
        assert!(parse(&[
            "run",
            "mcf",
            "--core",
            "inorder",
            "--mode",
            "baseline",
            "--sample",
            "2000:20000:1000",
        ])
        .is_ok());
    }

    #[test]
    fn parses_cmp_flags_and_rejects_unsupported_topologies() {
        let cmd = parse(&[
            "run",
            "mcf",
            "--cores",
            "4",
            "--l3",
            "2048:8:40",
            "--interconnect",
            "6",
            "--xspawn",
            "--co",
            "synth:7,phases:9",
            "--scale",
            "tiny",
        ])
        .unwrap();
        match cmd {
            Command::Run { config, .. } => {
                assert_eq!(config.cores, 4);
                assert_eq!(config.l3.kb, 2048);
                assert_eq!(config.l3.assoc, 8);
                assert_eq!(config.l3.latency, 40);
                assert_eq!(config.interconnect_hop, 6);
                assert!(config.cross_core_spawn);
                assert_eq!(config.co_workloads, vec!["synth:7", "phases:9"]);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // The long spelling of --xspawn works too.
        match parse(&["run", "mcf", "--cores", "2", "--cross-core-spawn"]).unwrap() {
            Command::Run { config, .. } => assert!(config.cross_core_spawn),
            other => panic!("wrong parse: {other:?}"),
        }
        // Malformed values are parse errors.
        assert!(parse(&["run", "mcf", "--cores", "lots"]).is_err());
        assert!(parse(&["run", "mcf", "--l3", "2048:8"]).is_err());
        assert!(parse(&["run", "mcf", "--interconnect", "-1"]).is_err());
        // validate() rejects CMP knobs the selected topology lacks, with an
        // error naming the offending knob.
        for (bad, needle) in [
            (
                vec![
                    "run", "mcf", "--cores", "2", "--core", "inorder", "--mode", "baseline",
                ],
                "in-order",
            ),
            (vec!["run", "mcf", "--cores", "0"], "cores"),
            (vec!["run", "mcf", "--cores", "32"], "cores"),
            (vec!["run", "mcf", "--xspawn"], "cross_core_spawn"),
            (
                vec![
                    "run", "mcf", "--cores", "2", "--mode", "baseline", "--xspawn",
                ],
                "spawn",
            ),
            (
                vec!["run", "mcf", "--cores", "2", "--xspawn", "--co", "synth:1"],
                "idle",
            ),
            (vec!["run", "mcf", "--co", "synth:1"], "sibling"),
            (
                vec!["run", "mcf", "--cores", "2", "--co", "synth:1,synth:2"],
                "exceed",
            ),
            (
                vec!["run", "mcf", "--cores", "2", "--co", "nonesuch-bench"],
                "nonesuch",
            ),
            (
                vec!["run", "mcf", "--cores", "2", "--co", "synth:notaseed"],
                "seed",
            ),
            (
                vec!["run", "mcf", "--cores", "2", "--sample", "2000:20000:1000"],
                "sampl",
            ),
        ] {
            let err = parse(&bad).unwrap_err();
            assert!(err.0.contains(needle), "{bad:?}: {err}");
        }
    }

    #[test]
    fn parses_exp_commands() {
        assert_eq!(parse(&["exp", "list"]).unwrap(), Command::Exp(ExpCmd::List));
        assert_eq!(parse(&["exp"]).unwrap(), Command::Exp(ExpCmd::List));
        match parse(&[
            "exp",
            "run",
            "smoke",
            "--scale",
            "tiny",
            "--benches",
            "mcf,mesa",
            "--jobs",
            "2",
            "--shard",
            "1/4",
            "--no-cache",
            "--json",
            "--json-out",
            "r.json",
        ])
        .unwrap()
        {
            Command::Exp(ExpCmd::Run {
                scenario,
                scale,
                benches,
                jobs,
                shard,
                no_cache,
                cache_dir,
                json,
                json_out,
                sample,
            }) => {
                assert_eq!(scenario, "smoke");
                assert_eq!(sample, None);
                assert_eq!(scale, Some(Scale::Tiny));
                assert_eq!(benches, Some(vec!["mcf".to_string(), "mesa".to_string()]));
                assert_eq!(jobs, Some(2));
                assert_eq!(shard, Some((1, 4)));
                assert!(no_cache);
                assert_eq!(cache_dir, None);
                assert!(json);
                assert_eq!(json_out.as_deref(), Some("r.json"));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        match parse(&["exp", "status", "fig3", "--cache-dir", "/tmp/c"]).unwrap() {
            Command::Exp(ExpCmd::Status {
                scenario,
                cache_dir,
                ..
            }) => {
                assert_eq!(scenario.as_deref(), Some("fig3"));
                assert_eq!(cache_dir.as_deref(), Some("/tmp/c"));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        match parse(&["exp", "diff", "fig3", "fig4"]).unwrap() {
            Command::Exp(ExpCmd::Diff { a, b, .. }) => {
                assert_eq!((a.as_str(), b.as_str()), ("fig3", "fig4"));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // Positional scan must skip flag values.
        match parse(&["exp", "run", "--scale", "tiny", "smoke"]).unwrap() {
            Command::Exp(ExpCmd::Run { scenario, .. }) => assert_eq!(scenario, "smoke"),
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(parse(&["exp", "run"]).is_err());
        assert!(parse(&["exp", "run", "smoke", "--shard", "4/4"]).is_err());
        assert!(parse(&["exp", "run", "smoke", "--shard", "x"]).is_err());
        assert!(parse(&["exp", "diff", "fig3"]).is_err());
        assert!(parse(&["exp", "frobnicate"]).is_err());
    }

    #[test]
    fn exp_list_and_unknown_scenario_execute() {
        let out = Command::Exp(ExpCmd::List).execute().unwrap();
        assert!(out.contains("fig1"), "{out}");
        assert!(out.contains("smoke"), "{out}");
        let err = Command::Exp(ExpCmd::Status {
            scenario: Some("nope".into()),
            scale: None,
            cache_dir: None,
            manifest: None,
        })
        .execute()
        .unwrap_err();
        assert!(err.0.contains("unknown scenario"), "{err}");
    }

    #[test]
    fn exp_run_smoke_uncached_executes() {
        let cmd = Command::Exp(ExpCmd::Run {
            scenario: "smoke".into(),
            scale: Some(Scale::Tiny),
            benches: Some(vec!["mcf".into()]),
            jobs: Some(2),
            shard: None,
            no_cache: true,
            cache_dir: None,
            json: true,
            json_out: None,
            sample: None,
        });
        let out = cmd.execute().unwrap();
        let v: serde_json::Value = serde_json::from_str(out.trim()).unwrap();
        assert_eq!(v["scenario"].as_str(), Some("smoke"));
        assert_eq!(v["simulated"].as_u64(), Some(2));
        assert_eq!(v["cache_hits"].as_u64(), Some(0));
        assert!(v["sweep"]["cells"][0]["stats"]["cycles"].as_u64().unwrap() > 0);
    }

    #[test]
    fn parses_serve_commands() {
        match parse(&["serve"]).unwrap() {
            Command::Serve {
                addr,
                workers,
                queue_depth,
                no_cache,
                cache_dir,
                request_timeout_ms,
                peers,
            } => {
                assert_eq!(addr, "127.0.0.1:8707");
                assert_eq!(workers, None);
                assert_eq!(queue_depth, None);
                assert!(!no_cache);
                assert_eq!(cache_dir, None);
                assert_eq!(request_timeout_ms, None);
                assert!(peers.is_empty());
            }
            other => panic!("wrong parse: {other:?}"),
        }
        match parse(&[
            "serve",
            "--addr",
            "0.0.0.0:9000",
            "--workers",
            "4",
            "--queue-depth",
            "16",
            "--no-cache",
            "--cache-dir",
            "/tmp/c",
            "--request-timeout-ms",
            "5000",
            "--peers",
            "10.0.0.1:8707, 10.0.0.2:8707",
        ])
        .unwrap()
        {
            Command::Serve {
                addr,
                workers,
                queue_depth,
                no_cache,
                cache_dir,
                request_timeout_ms,
                peers,
            } => {
                assert_eq!(addr, "0.0.0.0:9000");
                assert_eq!(workers, Some(4));
                assert_eq!(queue_depth, Some(16));
                assert!(no_cache);
                assert_eq!(cache_dir.as_deref(), Some("/tmp/c"));
                assert_eq!(request_timeout_ms, Some(5000));
                assert_eq!(peers, vec!["10.0.0.1:8707", "10.0.0.2:8707"]);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(parse(&["serve", "--workers", "0"]).is_err());
        assert!(parse(&["serve", "--queue-depth", "none"]).is_err());
        assert!(parse(&["serve", "--request-timeout-ms", "0"]).is_err());
        assert!(parse(&["serve", "--addr"]).is_err());
    }

    #[test]
    fn serve_rejects_unbindable_addresses() {
        let err = Command::Serve {
            addr: "definitely-not-an-address".into(),
            workers: Some(1),
            queue_depth: Some(1),
            no_cache: true,
            cache_dir: None,
            request_timeout_ms: None,
            peers: Vec::new(),
        }
        .execute()
        .unwrap_err();
        assert!(err.0.contains("cannot serve"), "{err}");
    }

    #[test]
    fn parses_cluster_commands() {
        match parse(&[
            "cluster",
            "coord",
            "smoke",
            "--workers",
            "a:1,b:2",
            "--scale",
            "tiny",
            "--retries",
            "5",
            "--timeout-ms",
            "9000",
            "--backoff-ms",
            "10",
            "--no-steal",
            "--manifest",
            "m.json",
            "--json",
            "--json-out",
            "c.json",
        ])
        .unwrap()
        {
            Command::Cluster(ClusterCmd::Coord {
                scenario,
                workers,
                scale,
                benches,
                timeout_ms,
                retries,
                backoff_ms,
                no_steal,
                manifest,
                json,
                json_out,
            }) => {
                assert_eq!(scenario, "smoke");
                assert_eq!(workers, vec!["a:1".to_string(), "b:2".to_string()]);
                assert_eq!(scale, Some(Scale::Tiny));
                assert_eq!(benches, None);
                assert_eq!(timeout_ms, Some(9000));
                assert_eq!(retries, Some(5));
                assert_eq!(backoff_ms, Some(10));
                assert!(no_steal);
                assert_eq!(manifest.as_deref(), Some("m.json"));
                assert!(json);
                assert_eq!(json_out.as_deref(), Some("c.json"));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // Defaults, and a positional scenario after flag values.
        match parse(&[
            "cluster", "bench", "--fleets", "1,3", "--rate", "25.5", "smoke",
        ])
        .unwrap()
        {
            Command::Cluster(ClusterCmd::Bench {
                scenario,
                fleets,
                rate,
                duration_ms,
                json_out,
                ..
            }) => {
                assert_eq!(scenario, "smoke");
                assert_eq!(fleets, vec![1, 3]);
                assert!((rate - 25.5).abs() < 1e-9);
                assert_eq!(duration_ms, 2000);
                assert_eq!(json_out, "BENCH_cluster.json");
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(parse(&["cluster", "coord", "smoke"]).is_err());
        assert!(parse(&["cluster", "coord", "--workers", "a:1"]).is_err());
        assert!(parse(&["cluster", "bench", "--fleets", "0"]).is_err());
        assert!(parse(&["cluster", "frobnicate"]).is_err());
        match parse(&["exp", "status", "--manifest", "m.json"]).unwrap() {
            Command::Exp(ExpCmd::Status {
                scenario, manifest, ..
            }) => {
                // The --manifest value must not be read as a positional.
                assert_eq!(scenario, None);
                assert_eq!(manifest.as_deref(), Some("m.json"));
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn cluster_coord_runs_a_fleet_and_matches_exp_run() {
        let dir = std::env::temp_dir().join(format!("mtvp-cli-cluster-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let fleet: Vec<mtvp_cluster::WorkerProc> = (0..2)
            .map(|i| mtvp_cluster::spawn_worker(&dir.join(format!("w{i}")), 1, Vec::new()).unwrap())
            .collect();
        let manifest = dir.join("manifest.json").to_string_lossy().into_owned();
        let out = Command::Cluster(ClusterCmd::Coord {
            scenario: "smoke".into(),
            workers: fleet.iter().map(|w| w.addr.clone()).collect(),
            scale: None,
            benches: None,
            timeout_ms: None,
            retries: None,
            backoff_ms: None,
            no_steal: false,
            manifest: Some(manifest.clone()),
            json: true,
            json_out: None,
        })
        .execute()
        .unwrap();
        for w in fleet {
            w.stop();
        }
        let v: serde_json::Value = serde_json::from_str(out.trim()).unwrap();
        assert_eq!(v["total_cells"].as_u64(), Some(4));

        // The differential gate: the coordinator's "sweep" subtree is
        // byte-identical to a single-node `exp run --json` of the same
        // scenario.
        let single = Command::Exp(ExpCmd::Run {
            scenario: "smoke".into(),
            scale: None,
            benches: None,
            jobs: Some(2),
            shard: None,
            no_cache: true,
            cache_dir: None,
            json: true,
            json_out: None,
            sample: None,
        })
        .execute()
        .unwrap();
        let sv: serde_json::Value = serde_json::from_str(single.trim()).unwrap();
        assert_eq!(format!("{}", v["sweep"]), format!("{}", sv["sweep"]));

        let status = Command::Exp(ExpCmd::Status {
            scenario: None,
            scale: None,
            cache_dir: None,
            manifest: Some(manifest),
        })
        .execute()
        .unwrap();
        assert!(status.contains("4/4 cells done"), "{status}");
        assert!(status.contains("alive"), "{status}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parses_lint_commands() {
        match parse(&["lint", "mcf", "gzip", "--scale", "tiny", "--json"]).unwrap() {
            Command::Lint {
                benches,
                all,
                scale,
                json,
                source,
                no_cache,
                ..
            } => {
                assert_eq!(benches, vec!["mcf".to_string(), "gzip".to_string()]);
                assert!(!all);
                assert_eq!(scale, Scale::Tiny);
                assert!(json);
                assert!(!source);
                assert!(!no_cache);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        match parse(&["lint", "--all", "--no-cache"]).unwrap() {
            Command::Lint {
                benches,
                all,
                no_cache,
                ..
            } => {
                assert!(benches.is_empty());
                assert!(all);
                assert!(no_cache);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        match parse(&["lint", "--source", "--root", "/somewhere"]).unwrap() {
            Command::Lint { source, root, .. } => {
                assert!(source);
                assert_eq!(root.as_deref(), Some("/somewhere"));
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // Flag values must not be mistaken for bench names.
        match parse(&["lint", "--scale", "tiny", "mcf"]).unwrap() {
            Command::Lint { benches, .. } => assert_eq!(benches, vec!["mcf".to_string()]),
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(parse(&["lint"]).is_err());
        assert!(parse(&["lint", "--scale", "gigantic", "mcf"]).is_err());
    }

    #[test]
    fn lint_executes_and_emits_valid_json() {
        let cmd = parse(&["lint", "mcf", "matmul", "synth-3", "--json", "--no-cache"]).unwrap();
        let out = cmd.execute().expect("shipped kernels lint clean");
        let v: serde_json::Value = serde_json::from_str(out.trim()).unwrap();
        assert_eq!(v["total_errors"].as_u64(), Some(0));
        let programs = v["programs"].as_array().unwrap();
        assert_eq!(programs.len(), 3);
        assert_eq!(programs[0]["bench"].as_str(), Some("mcf"));
        assert!(programs[0]["report"]["blocks"].as_u64().unwrap() > 0);
        // Unknown targets fail with a lint-specific message.
        let err = parse(&["lint", "nope", "--no-cache"])
            .unwrap()
            .execute()
            .unwrap_err();
        assert!(err.0.contains("unknown lint target"), "{err}");
    }

    #[test]
    fn parses_spawn_policy_flag() {
        match parse(&["run", "mcf", "--spawn-policy", "static", "--scale", "tiny"]).unwrap() {
            Command::Run { config, .. } => {
                assert_eq!(config.spawn_policy, mtvp_engine::SpawnPolicyKind::Static);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // Default policy is dynamic.
        match parse(&["run", "mcf", "--scale", "tiny"]).unwrap() {
            Command::Run { config, .. } => {
                assert_eq!(config.spawn_policy, mtvp_engine::SpawnPolicyKind::Dynamic);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // The static policy is rejected on machines with no spawn path.
        assert!(parse(&[
            "run",
            "mcf",
            "--mode",
            "baseline",
            "--spawn-policy",
            "static"
        ])
        .is_err());
        assert!(parse(&["run", "mcf", "--spawn-policy", "bogus"]).is_err());
    }

    #[test]
    fn spawn_hints_executes_and_emits_valid_json() {
        match parse(&["lint", "--spawn-hints", "mcf", "--json"]).unwrap() {
            Command::Lint { spawn_hints, .. } => assert!(spawn_hints),
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(parse(&["lint", "--spawn-hints", "--source", "mcf"]).is_err());
        let cmd = parse(&[
            "lint",
            "--spawn-hints",
            "mcf",
            "matmul",
            "--json",
            "--no-cache",
        ])
        .unwrap();
        let out = cmd.execute().expect("hints validate on shipped kernels");
        let v: serde_json::Value = serde_json::from_str(out.trim()).unwrap();
        assert_eq!(v["unsound"].as_u64(), Some(0));
        let programs = v["programs"].as_array().unwrap();
        assert_eq!(programs.len(), 2);
        assert_eq!(programs[0]["bench"].as_str(), Some("mcf"));
        assert_eq!(programs[0]["validated"].as_bool(), Some(true));
        assert!(programs[0]["hints"]["sites"].as_array().is_some());
    }

    #[test]
    fn lint_source_runs_against_this_repository() {
        // The crate lives at crates/cli, so the repo root is two up.
        let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
        let out = parse(&["lint", "--source", "--root", root])
            .unwrap()
            .execute()
            .expect("pipeline hot paths lint clean");
        assert!(out.contains("clean"), "{out}");
        // A bogus root has no pipeline sources to scan.
        assert!(parse(&["lint", "--source", "--root", "/nonexistent-mtvp"])
            .unwrap()
            .execute()
            .is_err());
    }

    #[test]
    fn list_and_disasm_execute() {
        let out = Command::List.execute().unwrap();
        assert!(out.contains("mcf"));
        assert!(out.contains("swim"));
        let out = Command::Disasm {
            bench: "mcf".into(),
            limit: 40,
        }
        .execute()
        .unwrap();
        assert!(out.contains("ld "), "{out}");
        assert!(out.contains("static instructions"));
        let err = Command::Disasm {
            bench: "nope".into(),
            limit: 10,
        }
        .execute()
        .unwrap_err();
        assert!(err.0.contains("unknown benchmark"));
    }

    #[test]
    fn run_executes_tiny() {
        let cmd = parse(&["run", "crafty", "--mode", "baseline", "--scale", "tiny"]).unwrap();
        let out = cmd.execute().unwrap();
        assert!(out.contains("useful IPC"), "{out}");
    }

    #[test]
    fn run_json_is_valid() {
        let cmd = parse(&[
            "run", "crafty", "--mode", "baseline", "--scale", "tiny", "--json",
        ])
        .unwrap();
        let out = cmd.execute().unwrap();
        let v: serde_json::Value = serde_json::from_str(out.trim()).unwrap();
        assert!(v["ipc"].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn parses_sample_flag() {
        match parse(&["run", "mcf", "--sample", "2000:20000:1000"]).unwrap() {
            Command::Run { config, .. } => {
                assert_eq!(
                    config.sampling,
                    Some(SamplingParams {
                        window: 2_000,
                        interval: 20_000,
                        warmup: 1_000,
                    })
                );
            }
            other => panic!("wrong parse: {other:?}"),
        }
        match parse(&["exp", "run", "fig2", "--sample", "500:5000:100"]).unwrap() {
            Command::Exp(ExpCmd::Run {
                scenario, sample, ..
            }) => {
                assert_eq!(scenario, "fig2");
                assert_eq!(
                    sample,
                    Some(SamplingParams {
                        window: 500,
                        interval: 5_000,
                        warmup: 100,
                    })
                );
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // Malformed schedules, validate()-rejected schedules, and the
        // tracer conflict are all caught at parse time.
        assert!(parse(&["run", "mcf", "--sample", "2000:20000"]).is_err());
        assert!(parse(&["run", "mcf", "--sample", "0:20000:0"]).is_err());
        assert!(parse(&["run", "mcf", "--sample", "1000:5000:100", "--trace"]).is_err());
        assert!(parse(&["trace", "mcf", "--sample", "1000:5000:100"]).is_err());
    }

    #[test]
    fn run_sampled_executes_and_reports() {
        let dir = std::env::temp_dir().join(format!("mtvp-cli-sample-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let sampled = |json: bool| Command::Run {
            bench: "gzip g".into(),
            config: {
                let mut c = SimConfig::new(Mode::Baseline);
                c.sampling = Some(SamplingParams {
                    window: 500,
                    interval: 2_000,
                    warmup: 200,
                });
                c
            },
            scale: Scale::Tiny,
            json,
            trace: None,
            no_cache: false,
            cache_dir: Some(dir.to_string_lossy().into_owned()),
        };
        let out = sampled(true).execute().unwrap();
        let v: serde_json::Value = serde_json::from_str(out.trim()).unwrap();
        assert!(v["ipc"].as_f64().unwrap() > 0.0);
        let s = &v["sampling"];
        assert!(s["windows"].as_u64().unwrap() > 1, "{out}");
        let total = s["total_instrs"].as_u64().unwrap();
        let measured = s["measured_instrs"].as_u64().unwrap();
        assert!(0 < measured && measured < total, "{out}");
        assert!(s["ckpt_misses"].as_u64().unwrap() > 0, "{out}");
        assert_eq!(s["ckpt_hits"].as_u64(), Some(0), "{out}");
        // Second run reuses every checkpoint; the text report mentions it.
        let out2 = sampled(false).execute().unwrap();
        assert!(out2.contains("(estimated)"), "{out2}");
        assert!(out2.contains("0 misses"), "{out2}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
