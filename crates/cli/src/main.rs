//! `mtvp-sim` entry point. All logic lives in `mtvp_cli` so it can be
//! tested; this file only bridges argv/stdout/exit codes.

use mtvp_cli::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match Command::parse(&args).and_then(Command::execute) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", mtvp_cli::HELP);
            std::process::exit(2);
        }
    }
}
