//! `mtvp-sim` entry point. All logic lives in `mtvp_cli` so it can be
//! tested; this file only bridges argv/stdout/exit codes.

use mtvp_cli::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match Command::parse(&args) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", mtvp_cli::HELP);
            std::process::exit(2);
        }
    };
    match cmd.execute() {
        Ok(out) => print!("{out}"),
        Err(e) => {
            // Execution failures (unknown bench, lint errors) carry their
            // own message; the usage text would only bury it.
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
