//! The sweep coordinator: scenario in, merged sweep out, N workers in
//! between.
//!
//! The coordinator owns no simulator — it expands a [`Scenario`] into
//! content-addressed cells exactly like [`mtvp_engine::Engine`] would,
//! then drives a fleet of `mtvp-serve` workers over `POST /run`:
//!
//! - **Placement** is rendezvous hashing on the engine cache hash
//!   ([`mtvp_engine::owner_of`]), so a cell lands on the same worker
//!   run after run and warm disk caches keep paying off.
//! - **Fault handling**: each request is retried with linear backoff;
//!   a worker that exhausts its retries is declared dead and its
//!   remaining cells are re-sharded over the survivors (again by
//!   rendezvous, so only the dead worker's cells move).
//! - **Work stealing** (on by default) lets an idle client thread pull
//!   from the back of the longest live queue, which keeps the fleet busy
//!   when placement is skewed.
//! - **Merging** is by task construction order — bench-major suite order
//!   × config input order — never by completion order, so the merged
//!   [`Sweep`] serializes byte-identically to a single-node
//!   `mtvp-sim exp run` regardless of races, retries or deaths.
//!
//! Progress is observable two ways: a JSON *manifest* file rewritten
//! atomically after every state change (consumed by
//! `mtvp-sim exp status --manifest`), and fabric counters
//! (`cluster.retries`, `cluster.reshards`, `cluster.steals`, …) merged
//! into the report's [`Registry`].

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mtvp_engine::key::scale_tag;
use mtvp_engine::{
    cell_descriptor, key_of, owner_of, partition, suite, Cell, JobKey, PipeStats, Registry, Scale,
    Scenario, SimConfig, Suite, Sweep, Workload,
};
use mtvp_serve::loadgen::http_request;
use serde::{Deserialize, Serialize, Value};

/// Format tag of the progress manifest written by the coordinator.
pub const MANIFEST_FORMAT: &str = "mtvp-cluster-manifest-v1";

/// Hook invoked after every completed cell with the completed count so
/// far. Tests use it to kill a worker at a deterministic point mid-sweep.
pub type CellHook = Arc<dyn Fn(usize) + Send + Sync>;

/// Coordinator configuration.
#[derive(Clone)]
pub struct CoordOptions {
    /// Worker addresses (`host:port`), each an `mtvp-sim serve` instance.
    pub workers: Vec<String>,
    /// CLI scale override (`None`: the scenario's own default).
    pub scale: Option<Scale>,
    /// Per-cell deadline, sent to the worker and used as the client
    /// socket timeout.
    pub timeout_ms: u64,
    /// Attempts per cell on one worker before declaring it dead.
    pub retries: u32,
    /// Base backoff between attempts (attempt `k` waits `k * backoff`).
    pub backoff_ms: u64,
    /// Allow idle client threads to steal queued cells from live peers.
    pub steal: bool,
    /// Progress manifest path, rewritten atomically on every change.
    pub manifest: Option<PathBuf>,
    /// Test hook: called after each completed cell.
    pub on_cell: Option<CellHook>,
}

impl Default for CoordOptions {
    fn default() -> CoordOptions {
        CoordOptions {
            workers: Vec::new(),
            scale: None,
            timeout_ms: 120_000,
            retries: 3,
            backoff_ms: 100,
            steal: true,
            manifest: None,
            on_cell: None,
        }
    }
}

impl std::fmt::Debug for CoordOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoordOptions")
            .field("workers", &self.workers)
            .field("scale", &self.scale)
            .field("timeout_ms", &self.timeout_ms)
            .field("retries", &self.retries)
            .field("backoff_ms", &self.backoff_ms)
            .field("steal", &self.steal)
            .field("manifest", &self.manifest)
            .field("on_cell", &self.on_cell.is_some())
            .finish()
    }
}

/// Per-worker accounting in a [`CoordReport`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerReport {
    /// Worker address.
    pub addr: String,
    /// Still alive at the end of the run.
    pub alive: bool,
    /// Cells ever assigned (initial placement + re-shards).
    pub assigned: u64,
    /// Cells this worker completed.
    pub done: u64,
    /// Failed attempts against this worker.
    pub retries: u64,
}

/// Result of a coordinated sweep.
#[derive(Clone, Debug)]
pub struct CoordReport {
    /// Scenario name.
    pub scenario: String,
    /// Scale the sweep ran at.
    pub scale: Scale,
    /// The merged sweep, byte-identical to a single-node run.
    pub sweep: Sweep,
    /// Cells in the sweep.
    pub total_cells: usize,
    /// Cells the workers answered from cache (local or peer).
    pub worker_cached: usize,
    /// Failed attempts across the fleet.
    pub retries: u64,
    /// Worker-death events that triggered a re-shard.
    pub reshards: u64,
    /// Cells moved to a survivor by re-sharding.
    pub cells_resharded: u64,
    /// Cells stolen by an idle client thread.
    pub steals: u64,
    /// Per-worker accounting, in input order.
    pub workers: Vec<WorkerReport>,
    /// Fabric counters (`cluster.*`).
    pub registry: Registry,
    /// Wall-clock time of the whole sweep.
    pub elapsed: Duration,
}

impl CoordReport {
    /// Addresses of workers that died during the run.
    pub fn dead_workers(&self) -> Vec<String> {
        self.workers
            .iter()
            .filter(|w| !w.alive)
            .map(|w| w.addr.clone())
            .collect()
    }
}

/// One expanded cell: everything needed to ask any worker for it.
struct CellTask {
    bench: String,
    suite_int: bool,
    label: String,
    config: SimConfig,
    key: JobKey,
}

/// Mutable fleet state shared by the client threads.
struct CoordState {
    workers: Vec<WorkerSlot>,
    results: Vec<Option<(PipeStats, bool)>>,
    remaining: usize,
    retries: u64,
    reshards: u64,
    cells_resharded: u64,
    steals: u64,
    error: Option<String>,
}

struct WorkerSlot {
    addr: String,
    alive: bool,
    queue: VecDeque<usize>,
    assigned: u64,
    done: u64,
    retries: u64,
}

/// Run `scenario` across the fleet described by `opts`.
///
/// # Errors
/// Returns a message when the scenario is malformed (or a worker rejects
/// a cell with 422, which means the same thing), when no workers were
/// given, or when every worker died before the sweep completed.
pub fn run_cluster(scenario: &Scenario, opts: &CoordOptions) -> Result<CoordReport, String> {
    if opts.workers.is_empty() {
        return Err("cluster: no workers given".to_string());
    }
    let t0 = Instant::now();
    let scale = scenario.scale_or(opts.scale);
    let configs = scenario.configs().map_err(|e| e.0)?;
    let workloads: Vec<Workload> = suite().into_iter().filter(|w| scenario.keeps(w)).collect();
    if workloads.is_empty() {
        return Err(format!(
            "cluster: scenario `{}` matches no benchmarks",
            scenario.name
        ));
    }
    // Bench-major suite order × config input order: the merge order, and
    // exactly the cell order Engine::run_scenario produces.
    let mut tasks = Vec::with_capacity(workloads.len() * configs.len());
    for wl in &workloads {
        for (label, cfg) in &configs {
            tasks.push(CellTask {
                bench: wl.name.to_string(),
                suite_int: wl.suite == Suite::Int,
                label: label.clone(),
                config: cfg.clone(),
                key: key_of(&cell_descriptor(wl.name, cfg, scale)),
            });
        }
    }
    let tasks = Arc::new(tasks);

    let keys: Vec<JobKey> = tasks.iter().map(|t| t.key.clone()).collect();
    let buckets = partition(&keys, &opts.workers);
    let workers = opts
        .workers
        .iter()
        .zip(&buckets)
        .map(|(addr, bucket)| WorkerSlot {
            addr: addr.clone(),
            alive: true,
            queue: bucket.iter().copied().collect(),
            assigned: bucket.len() as u64,
            done: 0,
            retries: 0,
        })
        .collect();
    let state = Arc::new(Mutex::new(CoordState {
        workers,
        results: (0..tasks.len()).map(|_| None).collect(),
        remaining: tasks.len(),
        retries: 0,
        reshards: 0,
        cells_resharded: 0,
        steals: 0,
        error: None,
    }));

    write_manifest(opts, scenario, scale, &state.lock().expect("coord state"));

    let handles: Vec<_> = (0..opts.workers.len())
        .map(|me| {
            let state = Arc::clone(&state);
            let tasks = Arc::clone(&tasks);
            let opts = opts.clone();
            let scenario = scenario.clone();
            std::thread::spawn(move || client_loop(me, &tasks, &state, &opts, &scenario, scale))
        })
        .collect();
    for h in handles {
        let _ = h.join();
    }

    let st = Arc::try_unwrap(state)
        .map_err(|_| "cluster: client thread leaked state".to_string())?
        .into_inner()
        .map_err(|_| "cluster: state poisoned".to_string())?;
    if let Some(e) = st.error {
        return Err(e);
    }
    if st.remaining > 0 {
        return Err(format!(
            "cluster: {} of {} cells never completed (all workers dead)",
            st.remaining,
            tasks.len()
        ));
    }

    let mut cells = Vec::with_capacity(tasks.len());
    let mut worker_cached = 0usize;
    for (task, slot) in tasks.iter().zip(&st.results) {
        let (stats, cached) = slot
            .clone()
            .expect("remaining == 0 means every slot filled");
        if cached {
            worker_cached += 1;
        }
        cells.push(Cell {
            bench: task.bench.clone(),
            suite_int: task.suite_int,
            config: task.label.clone(),
            stats,
        });
    }

    let mut registry = Registry::new();
    registry.add("cluster.cells.total", tasks.len() as u64);
    registry.add("cluster.cells.worker_cached", worker_cached as u64);
    registry.add("cluster.retries", st.retries);
    registry.add("cluster.reshards", st.reshards);
    registry.add("cluster.cells.resharded", st.cells_resharded);
    registry.add("cluster.steals", st.steals);
    registry.add(
        "cluster.workers.dead",
        st.workers.iter().filter(|w| !w.alive).count() as u64,
    );

    Ok(CoordReport {
        scenario: scenario.name.clone(),
        scale,
        sweep: Sweep { cells },
        total_cells: tasks.len(),
        worker_cached,
        retries: st.retries,
        reshards: st.reshards,
        cells_resharded: st.cells_resharded,
        steals: st.steals,
        workers: st
            .workers
            .into_iter()
            .map(|w| WorkerReport {
                addr: w.addr,
                alive: w.alive,
                assigned: w.assigned,
                done: w.done,
                retries: w.retries,
            })
            .collect(),
        registry,
        elapsed: t0.elapsed(),
    })
}

/// One client thread: drain my worker's queue (stealing when idle) until
/// the sweep completes, my worker dies, or the run aborts.
fn client_loop(
    me: usize,
    tasks: &[CellTask],
    state: &Arc<Mutex<CoordState>>,
    opts: &CoordOptions,
    scenario: &Scenario,
    scale: Scale,
) {
    loop {
        let picked = {
            let mut st = state.lock().expect("coord state");
            if st.error.is_some() || st.remaining == 0 || !st.workers[me].alive {
                return;
            }
            match st.workers[me].queue.pop_front() {
                Some(i) => Some(i),
                None if opts.steal => {
                    let victim = st
                        .workers
                        .iter()
                        .enumerate()
                        .filter(|(j, w)| *j != me && w.alive && !w.queue.is_empty())
                        .max_by_key(|(_, w)| w.queue.len())
                        .map(|(j, _)| j);
                    victim.map(|j| {
                        let i = st.workers[j].queue.pop_back().expect("non-empty victim");
                        st.steals += 1;
                        i
                    })
                }
                None => None,
            }
        };
        let Some(ti) = picked else {
            // Queues are empty but cells are still in flight elsewhere —
            // a death could re-shard work back to us, so stay around.
            std::thread::sleep(Duration::from_millis(5));
            continue;
        };
        if !run_one(me, ti, tasks, state, opts, scenario, scale) {
            return;
        }
    }
}

/// Execute one cell against my worker, retrying with backoff. Returns
/// `false` when this client thread should exit (worker dead or aborted).
fn run_one(
    me: usize,
    ti: usize,
    tasks: &[CellTask],
    state: &Arc<Mutex<CoordState>>,
    opts: &CoordOptions,
    scenario: &Scenario,
    scale: Scale,
) -> bool {
    let task = &tasks[ti];
    let addr = {
        let st = state.lock().expect("coord state");
        st.workers[me].addr.clone()
    };
    let body = run_body(task, scale, opts.timeout_ms);
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let outcome = http_request(&addr, "POST", "/run", Some(&body), opts.timeout_ms);
        match outcome {
            // A 200 whose body we cannot read is a transport-class
            // failure (truncated response): fall through and retry.
            Ok((200, text)) => {
                if let Ok((stats, cached)) = parse_run_response(&text) {
                    let completed = {
                        let mut st = state.lock().expect("coord state");
                        st.results[ti] = Some((stats, cached));
                        st.remaining -= 1;
                        st.workers[me].done += 1;
                        write_manifest(opts, scenario, scale, &st);
                        st.results.len() - st.remaining
                    };
                    if let Some(hook) = &opts.on_cell {
                        hook(completed);
                    }
                    return true;
                }
            }
            Ok((422, text)) => {
                let mut st = state.lock().expect("coord state");
                st.error = Some(format!(
                    "cluster: worker {addr} rejected {}/{}: {}",
                    task.bench,
                    task.label,
                    error_message(&text)
                ));
                return false;
            }
            Ok(_) | Err(_) => {}
        }
        {
            let mut st = state.lock().expect("coord state");
            st.retries += 1;
            st.workers[me].retries += 1;
        }
        if attempt > opts.retries {
            declare_dead(me, ti, tasks, state, opts, scenario, scale);
            return false;
        }
        std::thread::sleep(Duration::from_millis(opts.backoff_ms * u64::from(attempt)));
    }
}

/// Mark worker `me` dead and re-shard its unfinished cells (queue +
/// the in-flight `failed`) over the survivors by rendezvous hashing.
fn declare_dead(
    me: usize,
    failed: usize,
    tasks: &[CellTask],
    state: &Arc<Mutex<CoordState>>,
    opts: &CoordOptions,
    scenario: &Scenario,
    scale: Scale,
) {
    let mut st = state.lock().expect("coord state");
    st.workers[me].alive = false;
    let mut orphans: Vec<usize> = st.workers[me].queue.drain(..).collect();
    orphans.push(failed);
    let survivors: Vec<usize> = st
        .workers
        .iter()
        .enumerate()
        .filter(|(_, w)| w.alive)
        .map(|(j, _)| j)
        .collect();
    if survivors.is_empty() {
        st.error = Some(format!(
            "cluster: worker {} died and no workers remain ({} cells unfinished)",
            st.workers[me].addr, st.remaining
        ));
        return;
    }
    let names: Vec<String> = survivors
        .iter()
        .map(|&j| st.workers[j].addr.clone())
        .collect();
    for ti in orphans {
        let w = survivors[owner_of(&tasks[ti].key, &names)];
        st.workers[w].queue.push_back(ti);
        st.workers[w].assigned += 1;
        st.cells_resharded += 1;
    }
    st.reshards += 1;
    write_manifest(opts, scenario, scale, &st);
}

/// The `POST /run` body for one cell: full config, explicit scale, and
/// the coordinator's per-cell deadline.
fn run_body(task: &CellTask, scale: Scale, timeout_ms: u64) -> String {
    Value::Map(vec![
        ("bench".to_string(), Value::Str(task.bench.clone())),
        (
            "scale".to_string(),
            Value::Str(scale_tag(scale).to_string()),
        ),
        ("config".to_string(), task.config.to_value()),
        ("timeout_ms".to_string(), Value::U64(timeout_ms)),
    ])
    .to_string()
}

/// Pull `(stats, cached)` out of a `/run` success payload.
fn parse_run_response(text: &str) -> Result<(PipeStats, bool), String> {
    let v: Value = serde_json::from_str(text).map_err(|e| format!("bad /run response: {e}"))?;
    let stats = v
        .get("stats")
        .ok_or_else(|| "no `stats` in /run response".to_string())
        .and_then(|s| PipeStats::from_value(s).map_err(|e| format!("bad `stats`: {e}")))?;
    let cached = v.get("cached").and_then(Value::as_bool).unwrap_or(false);
    Ok((stats, cached))
}

/// Best-effort extraction of an error body's `error` field.
fn error_message(text: &str) -> String {
    serde_json::from_str::<Value>(text)
        .ok()
        .and_then(|v| v.get("error").and_then(Value::as_str).map(String::from))
        .unwrap_or_else(|| text.to_string())
}

/// The manifest document for the current fleet state.
fn manifest_value(scenario: &Scenario, scale: Scale, st: &CoordState) -> Value {
    let total = st.results.len();
    let workers: Vec<Value> = st
        .workers
        .iter()
        .map(|w| {
            Value::Map(vec![
                ("addr".to_string(), Value::Str(w.addr.clone())),
                ("alive".to_string(), Value::Bool(w.alive)),
                ("queued".to_string(), Value::U64(w.queue.len() as u64)),
                ("assigned".to_string(), Value::U64(w.assigned)),
                ("done".to_string(), Value::U64(w.done)),
                ("retries".to_string(), Value::U64(w.retries)),
            ])
        })
        .collect();
    Value::Map(vec![
        (
            "format".to_string(),
            Value::Str(MANIFEST_FORMAT.to_string()),
        ),
        ("scenario".to_string(), Value::Str(scenario.name.clone())),
        (
            "scale".to_string(),
            Value::Str(scale_tag(scale).to_string()),
        ),
        ("total_cells".to_string(), Value::U64(total as u64)),
        (
            "done".to_string(),
            Value::U64((total - st.remaining) as u64),
        ),
        ("retries".to_string(), Value::U64(st.retries)),
        ("reshards".to_string(), Value::U64(st.reshards)),
        (
            "cells_resharded".to_string(),
            Value::U64(st.cells_resharded),
        ),
        ("steals".to_string(), Value::U64(st.steals)),
        ("workers".to_string(), Value::Seq(workers)),
    ])
}

/// Atomically rewrite the manifest (write-to-temp, rename) so a
/// concurrent `exp status --manifest` never reads a torn file.
fn write_manifest(opts: &CoordOptions, scenario: &Scenario, scale: Scale, st: &CoordState) {
    let Some(path) = &opts.manifest else {
        return;
    };
    let doc = serde_json::to_string_pretty(&manifest_value(scenario, scale, st))
        .expect("manifest serializes");
    let tmp = path.with_extension("tmp");
    if std::fs::write(&tmp, doc).is_ok() {
        let _ = std::fs::rename(&tmp, path);
    }
}

/// The coordinator's report document. The `"sweep"` subtree serializes
/// byte-identically to the one `mtvp-sim exp run --json` emits for the
/// same scenario — that equality is the cluster's differential gate.
pub fn cluster_report_json(report: &CoordReport) -> Value {
    let workers: Vec<Value> = report
        .workers
        .iter()
        .map(|w| {
            Value::Map(vec![
                ("addr".to_string(), Value::Str(w.addr.clone())),
                ("alive".to_string(), Value::Bool(w.alive)),
                ("assigned".to_string(), Value::U64(w.assigned)),
                ("done".to_string(), Value::U64(w.done)),
                ("retries".to_string(), Value::U64(w.retries)),
            ])
        })
        .collect();
    Value::Map(vec![
        ("scenario".to_string(), Value::Str(report.scenario.clone())),
        (
            "scale".to_string(),
            Value::Str(scale_tag(report.scale).to_string()),
        ),
        (
            "total_cells".to_string(),
            Value::U64(report.total_cells as u64),
        ),
        (
            "worker_cache_hits".to_string(),
            Value::U64(report.worker_cached as u64),
        ),
        ("retries".to_string(), Value::U64(report.retries)),
        ("reshards".to_string(), Value::U64(report.reshards)),
        (
            "cells_resharded".to_string(),
            Value::U64(report.cells_resharded),
        ),
        ("steals".to_string(), Value::U64(report.steals)),
        (
            "dead_workers".to_string(),
            Value::Seq(report.dead_workers().into_iter().map(Value::Str).collect()),
        ),
        ("workers".to_string(), Value::Seq(workers)),
        (
            "elapsed_s".to_string(),
            Value::F64(report.elapsed.as_secs_f64()),
        ),
        ("sweep".to_string(), serde_json::to_value(&report.sweep)),
    ])
}
