//! Scaling and SLO harness: boot an in-process worker fleet, measure
//! cell throughput at 1..N workers, and probe a worker with the
//! open-loop load generator.
//!
//! This is the machinery behind `mtvp-sim cluster bench` and the
//! `BENCH_cluster.json` artifact: each fleet size gets fresh cold
//! caches, the coordinator sweeps the same scenario, and the point
//! records cells/second plus the speedup over the single-worker run.
//! A final open-loop section reports achieved throughput, latency
//! percentiles and error budget at a stated target rate against a
//! warmed worker.

use std::path::{Path, PathBuf};

use mtvp_engine::key::scale_tag;
use mtvp_engine::{CacheMode, Scale, Scenario};
use mtvp_serve::loadgen::{run_open_loop, OpenLoopOptions};
use mtvp_serve::server::{ServeOptions, Server, ServerHandle};
use serde::{Serialize, Value};

use crate::coord::{run_cluster, CoordOptions};

/// One booted in-process worker: address, stop handle, server thread.
pub struct WorkerProc {
    /// `127.0.0.1:port` of the worker.
    pub addr: String,
    /// Graceful-drain handle.
    pub handle: ServerHandle,
    join: std::thread::JoinHandle<()>,
}

impl WorkerProc {
    /// Request shutdown and wait for the server thread to drain.
    pub fn stop(self) {
        self.handle.shutdown();
        let _ = self.join.join();
    }
}

/// Boot one in-process `mtvp-serve` worker on an ephemeral port with a
/// disk cache at `cache_dir`.
///
/// `server_workers` sizes its thread pool; `peers` enables cache
/// peering against already-running workers.
///
/// # Errors
/// Propagates the listener bind error as a message.
pub fn spawn_worker(
    cache_dir: &Path,
    server_workers: usize,
    peers: Vec<String>,
) -> Result<WorkerProc, String> {
    let server = Server::bind(ServeOptions {
        addr: "127.0.0.1:0".to_string(),
        workers: server_workers.max(1),
        queue_depth: 64,
        cache: CacheMode::Disk(cache_dir.to_path_buf()),
        request_timeout_ms: 120_000,
        read_timeout_ms: 10_000,
        peers,
    })
    .map_err(|e| format!("bind worker: {e}"))?;
    let addr = server
        .local_addr()
        .map_err(|e| format!("worker addr: {e}"))?
        .to_string();
    let handle = server.handle();
    let join = std::thread::spawn(move || {
        let _ = server.run();
    });
    Ok(WorkerProc { addr, handle, join })
}

/// Scaling-bench configuration.
#[derive(Clone, Debug)]
pub struct ScalingOptions {
    /// The scenario every fleet size sweeps (cold caches each time).
    pub scenario: Scenario,
    /// Scale override (`None`: the scenario's default).
    pub scale: Option<Scale>,
    /// Fleet sizes to measure, e.g. `[1, 2, 4]`.
    pub fleet_sizes: Vec<usize>,
    /// Worker threads per server (1 isolates fleet-level scaling).
    pub server_workers: usize,
    /// Open-loop probe target rate (requests/s); 0 skips the probe.
    pub slo_rate: f64,
    /// Open-loop probe duration.
    pub slo_duration_ms: u64,
    /// Scratch directory for the fleets' cache trees.
    pub scratch: PathBuf,
}

impl Default for ScalingOptions {
    fn default() -> ScalingOptions {
        ScalingOptions {
            scenario: Scenario::new("bench", "bench", ""),
            scale: None,
            fleet_sizes: vec![1, 2, 4],
            server_workers: 1,
            slo_rate: 50.0,
            slo_duration_ms: 2_000,
            scratch: std::env::temp_dir()
                .join(format!("mtvp-cluster-bench-{}", std::process::id())),
        }
    }
}

/// Run the scaling bench: for each fleet size boot that many cold
/// workers, sweep the scenario through the coordinator, and record
/// throughput; then (rate > 0) probe one warmed worker open-loop.
///
/// # Errors
/// Returns a message when a worker fails to boot or a sweep fails.
pub fn scaling_bench(opts: &ScalingOptions) -> Result<Value, String> {
    let scale = opts.scenario.scale_or(opts.scale);
    let mut points: Vec<Value> = Vec::new();
    let mut base_cps: Option<f64> = None;
    let mut total_cells = 0usize;
    for &n in &opts.fleet_sizes {
        let n = n.max(1);
        let mut fleet = Vec::with_capacity(n);
        for i in 0..n {
            let dir = opts.scratch.join(format!("n{n}-w{i}"));
            std::fs::create_dir_all(&dir).map_err(|e| format!("scratch {}: {e}", dir.display()))?;
            fleet.push(spawn_worker(&dir, opts.server_workers, Vec::new())?);
        }
        let coord = CoordOptions {
            workers: fleet.iter().map(|w| w.addr.clone()).collect(),
            scale: opts.scale,
            ..CoordOptions::default()
        };
        let report = run_cluster(&opts.scenario, &coord);
        for w in fleet {
            w.stop();
        }
        let report = report?;
        total_cells = report.total_cells;
        let secs = report.elapsed.as_secs_f64().max(1e-9);
        let cps = report.total_cells as f64 / secs;
        let speedup = cps / *base_cps.get_or_insert(cps);
        points.push(Value::Map(vec![
            ("workers".to_string(), Value::U64(n as u64)),
            ("elapsed_s".to_string(), Value::F64(secs)),
            ("cells_per_s".to_string(), Value::F64(cps)),
            ("speedup".to_string(), Value::F64(speedup)),
            (
                "worker_cached".to_string(),
                Value::U64(report.worker_cached as u64),
            ),
            ("steals".to_string(), Value::U64(report.steals)),
        ]));
    }

    let open_loop = if opts.slo_rate > 0.0 {
        slo_probe(opts, scale)?
    } else {
        Value::Null
    };

    let _ = std::fs::remove_dir_all(&opts.scratch);
    Ok(Value::Map(vec![
        (
            "scenario".to_string(),
            Value::Str(opts.scenario.name.clone()),
        ),
        (
            "scale".to_string(),
            Value::Str(scale_tag(scale).to_string()),
        ),
        ("cells".to_string(), Value::U64(total_cells as u64)),
        (
            "server_workers".to_string(),
            Value::U64(opts.server_workers as u64),
        ),
        // Scaling is only visible when the host has the cores to run
        // the fleet; record them so the artifact is interpretable.
        (
            "host_cpus".to_string(),
            Value::U64(
                std::thread::available_parallelism()
                    .map(|n| n.get() as u64)
                    .unwrap_or(1),
            ),
        ),
        ("fleet".to_string(), Value::Seq(points)),
        ("open_loop".to_string(), open_loop),
    ]))
}

/// Open-loop SLO probe: warm one cell on a fresh worker, then offer
/// `slo_rate` requests/s against `/run` for the warm cell.
fn slo_probe(opts: &ScalingOptions, scale: Scale) -> Result<Value, String> {
    let dir = opts.scratch.join("slo");
    std::fs::create_dir_all(&dir).map_err(|e| format!("scratch {}: {e}", dir.display()))?;
    // The probe serves from cache, so give the worker a few threads.
    let worker = spawn_worker(&dir, 4, Vec::new())?;
    let (bench, body) = probe_body(&opts.scenario, scale)?;
    match mtvp_serve::loadgen::http_request(&worker.addr, "POST", "/run", Some(&body), 120_000) {
        Ok((200, _)) => {}
        Ok((status, text)) => {
            worker.stop();
            return Err(format!("slo warmup for {bench}: status {status}: {text}"));
        }
        Err(e) => {
            worker.stop();
            return Err(format!("slo warmup for {bench}: {e}"));
        }
    }
    let report = run_open_loop(&OpenLoopOptions {
        addr: worker.addr.clone(),
        rate: opts.slo_rate,
        duration_ms: opts.slo_duration_ms,
        path: "/run".to_string(),
        body: Some(body),
        timeout_ms: 10_000,
    });
    worker.stop();
    Ok(report.to_value())
}

/// A `/run` body for the scenario's first (bench, config) cell.
fn probe_body(scenario: &Scenario, scale: Scale) -> Result<(String, String), String> {
    let configs = scenario.configs().map_err(|e| e.0)?;
    let (label, cfg) = configs.first().ok_or("scenario has no configs")?;
    let bench = mtvp_engine::suite()
        .into_iter()
        .find(|w| scenario.keeps(w))
        .map(|w| w.name.to_string())
        .ok_or("scenario matches no benchmarks")?;
    let body = Value::Map(vec![
        ("bench".to_string(), Value::Str(bench.clone())),
        (
            "scale".to_string(),
            Value::Str(scale_tag(scale).to_string()),
        ),
        ("config".to_string(), cfg.to_value()),
    ])
    .to_string();
    Ok((format!("{bench}/{label}"), body))
}
