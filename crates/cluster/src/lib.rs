//! # mtvp-cluster
//!
//! The distributed sweep fabric of the *Multithreaded Value Prediction*
//! reproduction: scale the single-node `mtvp-serve` service out to N
//! worker processes while keeping the engine's core guarantee — a sweep's
//! result JSON is bit-identical however it was computed.
//!
//! Two building blocks compose into the fabric:
//!
//! - **Coordinator** ([`coord::run_cluster`]): expands a scenario into
//!   content-addressed cells, partitions them over workers by rendezvous
//!   hashing on the engine cache hash ([`mtvp_engine::partition`]), fans
//!   them out over `POST /run`, retries with backoff, re-shards a dead
//!   worker's remaining cells over the survivors, optionally steals work
//!   from loaded peers, and merges everything into one [`Sweep`] in the
//!   engine's canonical bench-major order.
//! - **Cache peering** (in `mtvp-serve`): workers started with `--peers`
//!   ask each other for warm cells (`GET /cache/cell/<hash>`) before
//!   simulating, so results migrate instead of being recomputed.
//!
//! [`harness::scaling_bench`] boots 1..N in-process workers and measures
//! cell throughput at each fleet size, plus an open-loop SLO probe — the
//! artifact behind `BENCH_cluster.json`.
//!
//! Determinism is the design anchor: cells are pure functions of their
//! content hash, the merge order is independent of completion order, and
//! the differential gate (cluster output == single-node `exp run` output,
//! cold, warm, and with a worker killed mid-sweep) is what makes a
//! cluster-produced sweep citable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coord;
pub mod harness;

pub use coord::{
    cluster_report_json, run_cluster, CoordOptions, CoordReport, WorkerReport, MANIFEST_FORMAT,
};
pub use harness::{scaling_bench, spawn_worker, ScalingOptions, WorkerProc};

pub use mtvp_engine::{Scale, Scenario, Sweep};
