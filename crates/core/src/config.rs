//! Experiment-level configuration: the machine modes of the paper's
//! evaluation, lowered onto `mtvp-pipeline`'s mechanism-level switches,
//! plus the shared CLI/scenario vocabulary for naming them and a
//! validator that rejects nonsensical combinations before they burn
//! simulation time.

use mtvp_pipeline::{FetchPolicy, PipelineConfig, PredictorKind, SelectorKind, VpConfig};
use mtvp_workloads::Scale;
use serde::{Deserialize, Serialize};

/// An invalid configuration, or an unknown word in the configuration
/// vocabulary (mode/predictor/selector/scale names).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// Parse a mode name (`baseline`, `stvp`, `mtvp`, …) as used by the CLI
/// and scenario files.
pub fn parse_mode(s: &str) -> Result<Mode, ConfigError> {
    Ok(match s {
        "baseline" => Mode::Baseline,
        "stvp" => Mode::Stvp,
        "mtvp" => Mode::Mtvp,
        "mtvp-nostall" => Mode::MtvpNoStall,
        "spawn-only" => Mode::SpawnOnly,
        "wide-window" => Mode::WideWindow,
        "multi-value" => Mode::MultiValue,
        other => {
            return Err(ConfigError(format!(
                "unknown mode `{other}` (baseline|stvp|mtvp|mtvp-nostall|spawn-only|wide-window|multi-value)"
            )))
        }
    })
}

/// Parse a predictor name (`none`, `oracle`, `wf`, …).
pub fn parse_predictor(s: &str) -> Result<PredictorKind, ConfigError> {
    Ok(match s {
        "none" => PredictorKind::None,
        "oracle" => PredictorKind::Oracle,
        "wang-franklin" | "wf" => PredictorKind::WangFranklin,
        "wf-liberal" => PredictorKind::WangFranklinLiberal,
        "dfcm" => PredictorKind::Dfcm,
        "stride" => PredictorKind::Stride,
        "last-value" => PredictorKind::LastValue,
        other => {
            return Err(ConfigError(format!(
                "unknown predictor `{other}` (none|oracle|wf|wf-liberal|dfcm|stride|last-value)"
            )))
        }
    })
}

/// Parse a selector name (`always`, `ilp-pred`, `l3-miss-oracle`).
pub fn parse_selector(s: &str) -> Result<SelectorKind, ConfigError> {
    Ok(match s {
        "always" => SelectorKind::Always,
        "ilp-pred" | "ilp" => SelectorKind::IlpPred,
        "l3-miss-oracle" | "l3" => SelectorKind::L3MissOracle,
        other => {
            return Err(ConfigError(format!(
                "unknown selector `{other}` (always|ilp-pred|l3-miss-oracle)"
            )))
        }
    })
}

/// Parse a core-module name (`ooo`, `inorder`).
pub fn parse_core(s: &str) -> Result<CoreKind, ConfigError> {
    Ok(match s {
        "ooo" | "out-of-order" | "smt-ooo" => CoreKind::OutOfOrder,
        "inorder" | "in-order" | "in-order-scalar" => CoreKind::InOrderScalar,
        other => return Err(ConfigError(format!("unknown core `{other}` (ooo|inorder)"))),
    })
}

/// Parse a spawn-policy name (`dynamic`, `static`).
pub fn parse_spawn_policy(s: &str) -> Result<SpawnPolicyKind, ConfigError> {
    Ok(match s {
        "dynamic" | "dyn" => SpawnPolicyKind::Dynamic,
        "static" | "hints" | "static-hints" => SpawnPolicyKind::Static,
        other => {
            return Err(ConfigError(format!(
                "unknown spawn policy `{other}` (dynamic|static)"
            )))
        }
    })
}

/// Parse a workload scale name (`tiny`, `small`, `full`).
pub fn parse_scale(s: &str) -> Result<Scale, ConfigError> {
    match s {
        "tiny" => Ok(Scale::Tiny),
        "small" => Ok(Scale::Small),
        "full" => Ok(Scale::Full),
        other => Err(ConfigError(format!(
            "unknown scale `{other}` (tiny|small|full)"
        ))),
    }
}

/// The machine variants evaluated in the paper.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mode {
    /// Table 1 machine, no value prediction.
    Baseline,
    /// Single-threaded value prediction with selective reissue.
    Stvp,
    /// Multithreaded value prediction, single fetch path (§3.3 — the
    /// paper's default MTVP; falls back to STVP when no context is free).
    Mtvp,
    /// MTVP with the aggressive no-stall fetch policy (§5.5).
    MtvpNoStall,
    /// Thread spawning at selected loads *without* value prediction — the
    /// split-window comparator of §5.7.
    SpawnOnly,
    /// The idealized checkpoint/wide-window machine of §5.7: 8K-entry ROB
    /// and queues, unlimited rename registers, no value prediction.
    WideWindow,
    /// Multiple-value MTVP (§5.6): liberal Wang–Franklin confidence, the
    /// cache-level-oracle selector, several values followed per load.
    MultiValue,
}

/// The core module (stage-set composition) an experiment runs on. Each
/// variant names a monomorphized `StagedCore` composition in
/// `mtvp-pipeline`; the engine selects the machine type from this axis
/// and everything downstream (sampling, serve, cluster) is generic over
/// it.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoreKind {
    /// The paper's SMT out-of-order core (`SmtOooStages`) — supports
    /// every [`Mode`].
    OutOfOrder,
    /// The single-context in-order scalar baseline (`InOrderStages`) —
    /// supports [`Mode::Baseline`] only (it has no spawn policy, rename
    /// windows, or value-prediction hardware).
    InOrderScalar,
}

/// How spawn candidates are chosen at the load-rename decision point.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpawnPolicyKind {
    /// The paper's dynamic policy: every renamed load consults the value
    /// predictor and selector (`ValuePredictSpawn`).
    Dynamic,
    /// Hint-guided: only loads the static spawn-site analysis selected
    /// are considered (`StaticHintSpawn` + a cached `SpawnHints`
    /// artifact computed per program).
    Static,
}

/// Two-tier sampled-simulation schedule: functionally interpret between
/// sample windows, simulate in detail only inside them.
///
/// Window `k` measures architectural instructions
/// `[k·interval, k·interval + window)`; detailed execution starts
/// `warmup` instructions earlier (clamped at program start) to prime
/// caches, branch predictors and value predictors without counting
/// statistics. Parsed from the CLI as `window:interval:warmup`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SamplingParams {
    /// Measured (detailed, counted) instructions per window.
    pub window: u64,
    /// Instructions from one window start to the next.
    pub interval: u64,
    /// Detailed-but-uncounted instructions run before each window.
    pub warmup: u64,
}

impl SamplingParams {
    /// Parse the CLI form `window:interval:warmup` (e.g. `2000:50000:1000`).
    ///
    /// # Errors
    /// Returns a [`ConfigError`] for malformed or non-numeric input; range
    /// rules (zero window, warmup ≥ interval, …) are left to
    /// [`SimConfig::validate`].
    pub fn parse(s: &str) -> Result<Self, ConfigError> {
        let parts: Vec<&str> = s.split(':').collect();
        let [w, i, u] = parts.as_slice() else {
            return Err(ConfigError(format!(
                "--sample expects window:interval:warmup, got `{s}`"
            )));
        };
        let num = |name: &str, v: &str| {
            v.parse::<u64>()
                .map_err(|_| ConfigError(format!("--sample {name} `{v}` is not a number")))
        };
        Ok(SamplingParams {
            window: num("window", w)?,
            interval: num("interval", i)?,
            warmup: num("warmup", u)?,
        })
    }
}

/// Last-level-cache sizing and timing, parsed from the CLI as
/// `kb:assoc:latency` (e.g. `4096:16:50`, the paper's 4MB/16-way @50).
///
/// With `cores = 1` this shapes the private L3; with `cores > 1` it
/// shapes the *shared* L3 every core of the CMP attaches to.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct L3Params {
    /// Capacity in KiB.
    pub kb: u64,
    /// Associativity (ways per set).
    pub assoc: u32,
    /// Array hit latency in cycles.
    pub latency: u64,
}

impl L3Params {
    /// Table 1 of the paper: 4MB, 16-way, 50 cycles.
    pub fn hpca2005() -> Self {
        L3Params {
            kb: 4096,
            assoc: 16,
            latency: 50,
        }
    }

    /// Parse the CLI form `kb:assoc:latency` (e.g. `4096:16:50`).
    ///
    /// # Errors
    /// Returns a [`ConfigError`] for malformed or non-numeric input;
    /// geometry rules (power-of-two sets, …) are left to
    /// [`SimConfig::validate`].
    pub fn parse(s: &str) -> Result<Self, ConfigError> {
        let parts: Vec<&str> = s.split(':').collect();
        let [kb, assoc, lat] = parts.as_slice() else {
            return Err(ConfigError(format!(
                "--l3 expects kb:assoc:latency, got `{s}`"
            )));
        };
        let num = |name: &str, v: &str| {
            v.parse::<u64>()
                .map_err(|_| ConfigError(format!("--l3 {name} `{v}` is not a number")))
        };
        Ok(L3Params {
            kb: num("kb", kb)?,
            assoc: u32::try_from(num("assoc", assoc)?)
                .map_err(|_| ConfigError(format!("--l3 assoc `{assoc}` is out of range")))?,
            latency: num("latency", lat)?,
        })
    }

    /// The cache geometry these parameters describe (64-byte lines, like
    /// every cache in the hierarchy). Call [`SimConfig::validate`] first:
    /// this panics on geometries validate would have rejected.
    pub fn geometry(&self) -> mtvp_mem::CacheGeometry {
        mtvp_mem::CacheGeometry::new(self.kb * 1024, self.assoc, 64)
    }
}

/// A complete experiment configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Machine variant.
    pub mode: Mode,
    /// Core module the experiment runs on.
    pub core: CoreKind,
    /// Cores in the chip-multiprocessor topology (1 = the paper's
    /// single-core SMT machine; >1 attaches every core to a shared L3).
    pub cores: usize,
    /// Last-level cache sizing/timing (private when `cores` is 1, shared
    /// across the CMP otherwise).
    pub l3: L3Params,
    /// One-way point-to-point interconnect hop latency in cycles; every
    /// shared-L3 access pays a round trip (2 hops) on top of the array
    /// latency. Irrelevant when `cores` is 1.
    pub interconnect_hop: u64,
    /// Let the primary core spawn speculative threads into the contexts
    /// of *idle* sibling cores (cores with no co-scheduled workload),
    /// paying the interconnect on spawn and reconcile.
    pub cross_core_spawn: bool,
    /// Workloads co-scheduled on sibling cores, at most `cores - 1`:
    /// registry benchmark names (e.g. `mcf`) or seeded synthetic
    /// programs (`synth:<seed>`, `phases:<seed>`).
    pub co_workloads: Vec<String>,
    /// Hardware thread contexts (1, 2, 4, 8).
    pub contexts: usize,
    /// Value predictor (ignored for `Baseline`/`WideWindow`/`SpawnOnly`).
    pub predictor: PredictorKind,
    /// Load selector.
    pub selector: SelectorKind,
    /// Spawn-candidate policy at the load-rename decision point.
    pub spawn_policy: SpawnPolicyKind,
    /// Thread-spawn (map flash-copy) latency in cycles (§5.2).
    pub spawn_latency: u64,
    /// Per-context speculative store buffer entries (§5.3).
    pub store_buffer: usize,
    /// Values followed per load in `MultiValue` mode.
    pub max_values_per_load: usize,
    /// Optional architectural instruction limit (0 = run to halt).
    pub inst_limit: u64,
    /// Hard cycle limit.
    pub max_cycles: u64,
    /// Enable the stride prefetcher (the paper's baseline includes it;
    /// §4 notes MTVP's effect is larger and more consistent without it).
    pub prefetcher: bool,
    /// MSHR capacity (outstanding memory misses).
    pub mshrs: usize,
    /// Warm-start the caches with the data image.
    pub warm_start: bool,
    /// Fast-forward fully idle cycles (long memory stalls). Statistics are
    /// bit-identical either way; this only changes simulator wall-clock
    /// speed. See `PipelineConfig::fast_forward`.
    pub fast_forward: bool,
    /// Two-tier sampled simulation (`None`: full detailed execution).
    /// When set, reported statistics are extrapolated estimates — see
    /// DESIGN.md §13 for the error methodology.
    pub sampling: Option<SamplingParams>,
}

impl SimConfig {
    /// The paper's default configuration for a mode: Wang–Franklin
    /// predictor, ILP-pred selector, 8-cycle spawn, 128-entry store
    /// buffer, and as many contexts as the mode meaningfully uses.
    pub fn new(mode: Mode) -> Self {
        let contexts = match mode {
            Mode::Baseline | Mode::Stvp | Mode::WideWindow => 1,
            _ => 8,
        };
        SimConfig {
            mode,
            core: CoreKind::OutOfOrder,
            cores: 1,
            l3: L3Params::hpca2005(),
            interconnect_hop: 4,
            cross_core_spawn: false,
            co_workloads: Vec::new(),
            contexts,
            predictor: match mode {
                Mode::Baseline | Mode::WideWindow | Mode::SpawnOnly => PredictorKind::None,
                Mode::MultiValue => PredictorKind::WangFranklinLiberal,
                _ => PredictorKind::WangFranklin,
            },
            selector: match mode {
                Mode::MultiValue => SelectorKind::L3MissOracle,
                _ => SelectorKind::IlpPred,
            },
            spawn_policy: SpawnPolicyKind::Dynamic,
            spawn_latency: 8,
            store_buffer: 128,
            max_values_per_load: if mode == Mode::MultiValue { 4 } else { 1 },
            inst_limit: 0,
            max_cycles: 500_000_000,
            prefetcher: true,
            mshrs: 16,
            warm_start: true,
            fast_forward: true,
            sampling: None,
        }
    }

    /// The in-order scalar baseline core: [`Mode::Baseline`] semantics on
    /// [`CoreKind::InOrderScalar`].
    pub fn in_order() -> Self {
        SimConfig {
            core: CoreKind::InOrderScalar,
            ..Self::new(Mode::Baseline)
        }
    }

    /// Same as [`SimConfig::new`] but with the oracle value predictor and
    /// the idealized §5.1 assumptions (1-cycle spawn, huge store buffer).
    pub fn oracle(mode: Mode) -> Self {
        SimConfig {
            predictor: PredictorKind::Oracle,
            spawn_latency: 1,
            store_buffer: 1 << 20,
            ..Self::new(mode)
        }
    }

    /// Reject configurations that cannot describe a meaningful experiment
    /// (they would either crash the simulator or silently measure the
    /// wrong machine). Called by the CLI before running and by scenario
    /// expansion before a sweep is scheduled.
    ///
    /// # Errors
    /// Returns a [`ConfigError`] naming the offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.contexts == 0 {
            return Err(ConfigError("contexts must be at least 1".into()));
        }
        if self.contexts > 64 {
            return Err(ConfigError(format!(
                "contexts {} exceeds the 64-context SMT limit",
                self.contexts
            )));
        }
        if self.store_buffer == 0 {
            return Err(ConfigError(
                "store_buffer must be at least 1 entry (speculative threads buffer every store)"
                    .into(),
            ));
        }
        if self.max_values_per_load == 0 {
            return Err(ConfigError("max_values_per_load must be at least 1".into()));
        }
        if self.mshrs == 0 {
            return Err(ConfigError(
                "mshrs must be at least 1 (no outstanding misses means no memory)".into(),
            ));
        }
        if self.max_cycles == 0 {
            return Err(ConfigError("max_cycles must be nonzero".into()));
        }
        // CMP topology rules: the l3/interconnect/co-scheduling knobs
        // describe a chip multiprocessor, so they must form one the
        // simulator can actually build.
        if self.cores == 0 {
            return Err(ConfigError("cores must be at least 1".into()));
        }
        if self.cores > 16 {
            return Err(ConfigError(format!(
                "cores {} exceeds the 16-core CMP limit",
                self.cores
            )));
        }
        if self.l3.kb == 0 || self.l3.assoc == 0 {
            return Err(ConfigError(format!(
                "l3 {}KB/{}-way is not a cache",
                self.l3.kb, self.l3.assoc
            )));
        }
        {
            let bytes = self.l3.kb * 1024;
            let set_bytes = u64::from(self.l3.assoc) * 64;
            if !bytes.is_multiple_of(set_bytes) || !(bytes / set_bytes).is_power_of_two() {
                return Err(ConfigError(format!(
                    "l3 {}KB/{}-way does not divide into a power-of-two number of 64-byte-line \
                     sets",
                    self.l3.kb, self.l3.assoc
                )));
            }
        }
        if self.cores > 1 {
            if self.core != CoreKind::OutOfOrder {
                return Err(ConfigError(format!(
                    "cores {} needs the out-of-order core: the in-order scalar baseline has no \
                     CMP composition — use --core ooo",
                    self.cores
                )));
            }
            if self.sampling.is_some() {
                return Err(ConfigError(
                    "sampling cannot be combined with a CMP topology: the two-tier driver \
                     transfers one core's architectural state, and a sampled window cannot \
                     reconstruct sibling-core and shared-cache state (run CMP cells \
                     full-detailed)"
                        .into(),
                ));
            }
        }
        if !self.co_workloads.is_empty() && self.cores == 1 {
            return Err(ConfigError(format!(
                "{} co-workload(s) need sibling cores to run on; raise --cores",
                self.co_workloads.len()
            )));
        }
        if self.co_workloads.len() > self.cores.saturating_sub(1) {
            return Err(ConfigError(format!(
                "{} co-workloads exceed the {} sibling core(s) of a {}-core topology",
                self.co_workloads.len(),
                self.cores - 1,
                self.cores
            )));
        }
        for spec in &self.co_workloads {
            mtvp_workloads::synth::validate_co_spec(spec).map_err(ConfigError)?;
        }
        if self.cross_core_spawn {
            if self.cores == 1 {
                return Err(ConfigError(
                    "cross_core_spawn needs a CMP topology (cores > 1); on one core there is no \
                     sibling to spawn into"
                        .into(),
                ));
            }
            if !matches!(
                self.mode,
                Mode::Mtvp | Mode::MtvpNoStall | Mode::SpawnOnly | Mode::MultiValue
            ) {
                return Err(ConfigError(format!(
                    "cross_core_spawn requires a thread-spawning mode (mtvp, mtvp-nostall, \
                     spawn-only, or multi-value); {:?} never spawns",
                    self.mode
                )));
            }
            if self.co_workloads.len() >= self.cores - 1 {
                return Err(ConfigError(format!(
                    "cross_core_spawn needs at least one *idle* sibling core to borrow contexts \
                     from, but all {} sibling(s) carry co-workloads",
                    self.cores - 1
                )));
            }
        }
        // Knobs the selected core module does not support: the in-order
        // scalar baseline has no spawn policy, no value-prediction
        // hardware, and a single context, so any MTVP/STVP mode (and any
        // knob that only exists to serve one) is a configuration error,
        // not a silently-ignored setting.
        if self.core == CoreKind::InOrderScalar {
            if self.mode != Mode::Baseline {
                return Err(ConfigError(format!(
                    "the in-order scalar core supports mode baseline only; {:?} needs the \
                     out-of-order core (its spawn/value-prediction policies do not exist on an \
                     in-order pipeline) — use --core ooo",
                    self.mode
                )));
            }
            if self.contexts != 1 {
                return Err(ConfigError(format!(
                    "the in-order scalar core is single-context; got contexts {}",
                    self.contexts
                )));
            }
            if self.predictor != PredictorKind::None {
                return Err(ConfigError(format!(
                    "the in-order scalar core has no value predictor; got predictor {:?}",
                    self.predictor
                )));
            }
        }
        match self.mode {
            Mode::Baseline | Mode::Stvp | Mode::WideWindow if self.contexts != 1 => {
                return Err(ConfigError(format!(
                    "{:?} is a single-context machine; got contexts {}",
                    self.mode, self.contexts
                )));
            }
            Mode::MultiValue if self.max_values_per_load == 1 => {
                return Err(ConfigError(
                    "MultiValue with max_values_per_load 1 is just Mtvp; use mode mtvp".into(),
                ));
            }
            _ => {}
        }
        if self.mode != Mode::MultiValue && self.max_values_per_load > 1 {
            return Err(ConfigError(format!(
                "max_values_per_load {} requires mode multi-value",
                self.max_values_per_load
            )));
        }
        if matches!(
            self.mode,
            Mode::Stvp | Mode::Mtvp | Mode::MtvpNoStall | Mode::MultiValue
        ) && self.predictor == PredictorKind::None
        {
            return Err(ConfigError(format!(
                "{:?} is a value-prediction mode and needs a predictor (try wf or oracle)",
                self.mode
            )));
        }
        if self.spawn_policy == SpawnPolicyKind::Static {
            if self.core != CoreKind::OutOfOrder {
                return Err(ConfigError(
                    "--spawn-policy static needs the out-of-order core (the in-order scalar \
                     baseline has no spawn decision point to hint)"
                        .into(),
                ));
            }
            if matches!(self.mode, Mode::Baseline | Mode::WideWindow) {
                return Err(ConfigError(format!(
                    "--spawn-policy static is meaningless in mode {:?}: that machine never \
                     value-predicts or spawns, so there is nothing for hints to gate",
                    self.mode
                )));
            }
        }
        if let Some(s) = self.sampling {
            if s.window == 0 {
                return Err(ConfigError(
                    "sampling window must be nonzero (a zero-length window measures nothing)"
                        .into(),
                ));
            }
            if s.interval == 0 {
                return Err(ConfigError("sampling interval must be nonzero".into()));
            }
            if s.window > s.interval {
                return Err(ConfigError(format!(
                    "sampling window {} exceeds interval {} (windows would overlap)",
                    s.window, s.interval
                )));
            }
            if s.warmup >= s.interval {
                return Err(ConfigError(format!(
                    "sampling warmup {} must be shorter than interval {} (warm-up would reach \
                     back into the previous window)",
                    s.warmup, s.interval
                )));
            }
            if self.predictor == PredictorKind::Oracle {
                return Err(ConfigError(
                    "sampling cannot be combined with the oracle predictor: the oracle replays \
                     the committed-path trace and needs no warm-up, so sampled estimates of it \
                     measure nothing real (run it full-detailed)"
                        .into(),
                ));
            }
            if self.inst_limit > 0 {
                return Err(ConfigError(
                    "sampling and inst_limit conflict: the sampling schedule already bounds \
                     detailed execution (drop one of them)"
                        .into(),
                ));
            }
        }
        Ok(())
    }

    /// The memory-hierarchy configuration this experiment uses. The `l3`
    /// knob always shapes the last-level cache: the private L3 on a
    /// single-core machine, and each core's (bypassed) private geometry
    /// on a CMP, where the shared array from [`SimConfig::shared_l3_spec`]
    /// takes over demand traffic.
    pub fn to_mem_config(&self) -> mtvp_mem::MemConfig {
        let mut m = mtvp_mem::MemConfig::hpca2005();
        m.mshrs = self.mshrs;
        m.l3 = self.l3.geometry();
        m.l3_latency = self.l3.latency;
        if !self.prefetcher {
            m.prefetch = mtvp_mem::PrefetchConfig::disabled();
        }
        m
    }

    /// The shared-L3 specification of a CMP topology (`None` when
    /// `cores` is 1 — a single core keeps its private hierarchy).
    pub fn shared_l3_spec(&self) -> Option<mtvp_mem::SharedL3Spec> {
        if self.cores <= 1 {
            return None;
        }
        Some(mtvp_mem::SharedL3Spec {
            geometry: self.l3.geometry(),
            latency: self.l3.latency,
            hop: self.interconnect_hop,
        })
    }

    /// Sibling cores with no co-scheduled workload: with
    /// `cross_core_spawn` their contexts are donated to the primary as
    /// remote spawn slots.
    pub fn idle_cores(&self) -> usize {
        self.cores.saturating_sub(1 + self.co_workloads.len())
    }

    /// Lower to the mechanism-level pipeline configuration.
    pub fn to_pipeline_config(&self) -> PipelineConfig {
        let mut p = match (self.core, self.mode) {
            (CoreKind::InOrderScalar, _) => PipelineConfig::in_order_scalar(),
            (CoreKind::OutOfOrder, Mode::WideWindow) => PipelineConfig::wide_window(),
            (CoreKind::OutOfOrder, _) => PipelineConfig::hpca2005(),
        };
        p.hw_contexts = self.contexts;
        if self.cross_core_spawn {
            // Each idle sibling core donates its full context complement
            // as remote slots; spawning into one pays the interconnect
            // round trip on top of the flash-copy, and freeing one holds
            // the slot for a round trip of store-buffer reconciliation.
            p.remote_contexts = self.idle_cores() * self.contexts;
            p.remote_spawn_extra = 2 * self.interconnect_hop;
            p.remote_reconcile = 2 * self.interconnect_hop;
        }
        p.store_buffer_entries = self.store_buffer;
        p.inst_limit = self.inst_limit;
        p.max_cycles = self.max_cycles;
        p.warm_start = self.warm_start;
        p.fast_forward = self.fast_forward;

        let mut vp = match self.mode {
            Mode::Baseline | Mode::WideWindow => VpConfig::baseline(),
            Mode::Stvp => VpConfig::stvp(self.predictor),
            Mode::Mtvp | Mode::MultiValue => VpConfig::mtvp(self.predictor),
            Mode::MtvpNoStall => {
                let mut v = VpConfig::mtvp(self.predictor);
                v.fetch_policy = FetchPolicy::NoStall;
                v
            }
            Mode::SpawnOnly => VpConfig::spawn_only(),
        };
        vp.selector = self.selector;
        vp.spawn_latency = self.spawn_latency;
        vp.max_values_per_load = self.max_values_per_load;
        p.vp = vp;
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_defaults_are_sensible() {
        let b = SimConfig::new(Mode::Baseline);
        assert_eq!(b.contexts, 1);
        assert_eq!(b.predictor, PredictorKind::None);
        let m = SimConfig::new(Mode::Mtvp);
        assert_eq!(m.contexts, 8);
        assert_eq!(m.predictor, PredictorKind::WangFranklin);
        let mv = SimConfig::new(Mode::MultiValue);
        assert_eq!(mv.max_values_per_load, 4);
        assert_eq!(mv.selector, SelectorKind::L3MissOracle);
    }

    #[test]
    fn oracle_config_is_idealized() {
        let o = SimConfig::oracle(Mode::Mtvp);
        assert_eq!(o.predictor, PredictorKind::Oracle);
        assert_eq!(o.spawn_latency, 1);
        assert!(o.store_buffer > 100_000);
    }

    #[test]
    fn lowering_matches_mode() {
        let p = SimConfig::new(Mode::WideWindow).to_pipeline_config();
        assert_eq!(p.rob_entries, 8192);
        assert!(!p.vp.allow_stvp && !p.vp.allow_mtvp);

        let p = SimConfig::new(Mode::Mtvp).to_pipeline_config();
        assert!(p.vp.allow_stvp && p.vp.allow_mtvp);
        assert_eq!(p.vp.fetch_policy, FetchPolicy::SingleFetchPath);

        let p = SimConfig::new(Mode::MtvpNoStall).to_pipeline_config();
        assert_eq!(p.vp.fetch_policy, FetchPolicy::NoStall);

        let p = SimConfig::new(Mode::SpawnOnly).to_pipeline_config();
        assert!(p.vp.spawn_only);
    }

    #[test]
    fn default_configs_validate() {
        for mode in [
            Mode::Baseline,
            Mode::Stvp,
            Mode::Mtvp,
            Mode::MtvpNoStall,
            Mode::SpawnOnly,
            Mode::WideWindow,
            Mode::MultiValue,
        ] {
            SimConfig::new(mode).validate().unwrap();
            SimConfig::oracle(mode).validate().unwrap();
        }
    }

    #[test]
    fn validate_rejects_nonsense() {
        let reject = |f: &dyn Fn(&mut SimConfig)| {
            let mut c = SimConfig::new(Mode::Mtvp);
            f(&mut c);
            assert!(c.validate().is_err(), "{c:?} should be invalid");
        };
        reject(&|c| c.contexts = 0);
        reject(&|c| c.contexts = 65);
        reject(&|c| c.store_buffer = 0);
        reject(&|c| c.max_values_per_load = 0);
        reject(&|c| c.max_values_per_load = 4);
        reject(&|c| c.mshrs = 0);
        reject(&|c| c.max_cycles = 0);
        reject(&|c| c.predictor = PredictorKind::None);
        // Single-context machines with several contexts.
        let mut c = SimConfig::new(Mode::Baseline);
        c.contexts = 8;
        assert!(c.validate().is_err());
        // MultiValue degenerating to Mtvp.
        let mut c = SimConfig::new(Mode::MultiValue);
        c.max_values_per_load = 1;
        assert!(c.validate().is_err());
    }

    #[test]
    fn in_order_core_validates_and_lowers() {
        let c = SimConfig::in_order();
        c.validate().unwrap();
        let p = c.to_pipeline_config();
        assert_eq!(p.hw_contexts, 1);
        assert_eq!(p.rename_width, 1);
        assert_eq!(p.commit_width, 1);
        assert!(!p.vp.allow_stvp && !p.vp.allow_mtvp && !p.vp.spawn_only);

        // Knobs the in-order core does not support are rejected, not
        // silently ignored.
        let reject = |f: &dyn Fn(&mut SimConfig)| {
            let mut c = SimConfig::in_order();
            f(&mut c);
            let e = c.validate().expect_err("should be invalid").0;
            assert!(e.contains("in-order"), "error should name the core: {e}");
        };
        reject(&|c| c.mode = Mode::Mtvp);
        reject(&|c| c.mode = Mode::SpawnOnly);
        reject(&|c| c.mode = Mode::WideWindow);
        reject(&|c| c.contexts = 4);
        reject(&|c| c.predictor = PredictorKind::WangFranklin);
        // Sampling stays legal: the state-transfer surface is part of the
        // core trait, so the two-tier driver works on any core.
        let mut c = SimConfig::in_order();
        c.sampling = Some(SamplingParams {
            window: 2000,
            interval: 50_000,
            warmup: 1000,
        });
        c.validate().unwrap();
    }

    #[test]
    fn core_kind_serializes_into_cache_keys() {
        let ooo = SimConfig::new(Mode::Baseline);
        let inorder = SimConfig::in_order();
        let j_ooo = serde_json::to_string(&ooo).unwrap();
        let j_in = serde_json::to_string(&inorder).unwrap();
        // Different core modules are different experiments and must get
        // different cache keys.
        assert_ne!(j_ooo, j_in);
        let back: SimConfig = serde_json::from_str(&j_in).unwrap();
        assert_eq!(back, inorder);
    }

    #[test]
    fn sampling_params_parse() {
        assert_eq!(
            SamplingParams::parse("2000:50000:1000").unwrap(),
            SamplingParams {
                window: 2000,
                interval: 50_000,
                warmup: 1000,
            }
        );
        assert!(SamplingParams::parse("2000:50000").is_err());
        assert!(SamplingParams::parse("2000:50000:1000:9").is_err());
        assert!(SamplingParams::parse("a:b:c").is_err());
    }

    #[test]
    fn validate_rejects_sampling_nonsense() {
        let sampled = |f: &dyn Fn(&mut SimConfig)| {
            let mut c = SimConfig::new(Mode::Mtvp);
            c.sampling = Some(SamplingParams {
                window: 2000,
                interval: 50_000,
                warmup: 1000,
            });
            f(&mut c);
            c
        };
        assert!(sampled(&|_| {}).validate().is_ok());
        let reject = |f: &dyn Fn(&mut SimConfig)| {
            let c = sampled(f);
            assert!(c.validate().is_err(), "{c:?} should be invalid");
        };
        // Zero-length window and degenerate schedules.
        reject(&|c| c.sampling.as_mut().unwrap().window = 0);
        reject(&|c| c.sampling.as_mut().unwrap().interval = 0);
        reject(&|c| c.sampling.as_mut().unwrap().window = 60_000);
        // Warm-up at least as long as the interval.
        reject(&|c| c.sampling.as_mut().unwrap().warmup = 50_000);
        reject(&|c| c.sampling.as_mut().unwrap().warmup = 99_999);
        // Oracle-trace modes cannot be sampled.
        reject(&|c| c.predictor = PredictorKind::Oracle);
        // Conflicting termination bounds.
        reject(&|c| c.inst_limit = 1_000_000);
        // Back-to-back windows (window == interval, zero warm-up) are the
        // degenerate-but-legal full-coverage schedule.
        let mut c = SimConfig::new(Mode::Mtvp);
        c.sampling = Some(SamplingParams {
            window: 1000,
            interval: 1000,
            warmup: 0,
        });
        assert!(c.validate().is_ok());
    }

    #[test]
    fn sampled_config_serializes() {
        let mut cfg = SimConfig::new(Mode::Mtvp);
        cfg.sampling = Some(SamplingParams {
            window: 7,
            interval: 11,
            warmup: 3,
        });
        let json = serde_json::to_string(&cfg).unwrap();
        let back: SimConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
        // The sampled and unsampled forms must serialize differently (they
        // are different experiments and must get different cache keys).
        assert_ne!(
            json,
            serde_json::to_string(&SimConfig::new(Mode::Mtvp)).unwrap()
        );
    }

    #[test]
    fn vocabulary_parses_and_rejects() {
        assert_eq!(parse_mode("mtvp-nostall").unwrap(), Mode::MtvpNoStall);
        assert!(parse_mode("bogus").is_err());
        assert_eq!(parse_predictor("wf").unwrap(), PredictorKind::WangFranklin);
        assert!(parse_predictor("psychic").is_err());
        assert_eq!(parse_selector("l3").unwrap(), SelectorKind::L3MissOracle);
        assert!(parse_selector("never").is_err());
        assert_eq!(parse_scale("tiny").unwrap(), Scale::Tiny);
        assert!(parse_scale("gigantic").is_err());
        assert_eq!(parse_core("ooo").unwrap(), CoreKind::OutOfOrder);
        assert_eq!(parse_core("inorder").unwrap(), CoreKind::InOrderScalar);
        assert_eq!(
            parse_core("in-order-scalar").unwrap(),
            CoreKind::InOrderScalar
        );
        assert!(parse_core("vliw").is_err());
        assert_eq!(
            parse_spawn_policy("dynamic").unwrap(),
            SpawnPolicyKind::Dynamic
        );
        assert_eq!(
            parse_spawn_policy("static").unwrap(),
            SpawnPolicyKind::Static
        );
        assert!(parse_spawn_policy("psychic").is_err());
    }

    #[test]
    fn spawn_policy_validates_and_serializes() {
        // Static hints gate the spawn decision point, so they need a
        // machine that has one.
        let mut cfg = SimConfig::new(Mode::Mtvp);
        cfg.spawn_policy = SpawnPolicyKind::Static;
        cfg.validate().expect("static + mtvp is fine");

        let mut base = SimConfig::new(Mode::Baseline);
        base.spawn_policy = SpawnPolicyKind::Static;
        assert!(base.validate().is_err());

        let mut inorder = SimConfig::in_order();
        inorder.spawn_policy = SpawnPolicyKind::Static;
        assert!(inorder.validate().is_err());

        // The policy axis must reach the cache key (different policies
        // are different experiments).
        let json = serde_json::to_string(&cfg).unwrap();
        assert_ne!(
            json,
            serde_json::to_string(&SimConfig::new(Mode::Mtvp)).unwrap()
        );
        let back: SimConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn config_serializes() {
        let cfg = SimConfig::new(Mode::Mtvp);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: SimConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn l3_params_parse() {
        assert_eq!(L3Params::parse("4096:16:50").unwrap(), L3Params::hpca2005());
        assert_eq!(
            L3Params::parse("64:8:20").unwrap(),
            L3Params {
                kb: 64,
                assoc: 8,
                latency: 20,
            }
        );
        assert!(L3Params::parse("4096:16").is_err());
        assert!(L3Params::parse("4096:16:50:1").is_err());
        assert!(L3Params::parse("big:16:50").is_err());
        let g = L3Params::hpca2005().geometry();
        assert_eq!(g, mtvp_mem::CacheGeometry::new(4 * 1024 * 1024, 16, 64));
    }

    #[test]
    fn cmp_defaults_are_single_core_and_validate() {
        let c = SimConfig::new(Mode::Mtvp);
        assert_eq!(c.cores, 1);
        assert_eq!(c.l3, L3Params::hpca2005());
        assert!(!c.cross_core_spawn);
        assert!(c.co_workloads.is_empty());
        assert!(c.shared_l3_spec().is_none());
        // The default l3 knob reproduces the paper's hierarchy exactly.
        assert_eq!(c.to_mem_config(), mtvp_mem::MemConfig::hpca2005());
        // Non-CMP configs lower with no remote slots.
        let p = c.to_pipeline_config();
        assert_eq!(p.remote_contexts, 0);
        assert_eq!(p.total_contexts(), c.contexts);
    }

    #[test]
    fn cmp_config_validates_and_lowers() {
        let mut c = SimConfig::new(Mode::Mtvp);
        c.cores = 4;
        c.co_workloads = vec!["mcf".into(), "synth:7".into()];
        c.cross_core_spawn = true;
        c.validate()
            .expect("4-core mix with one idle sibling is fine");
        assert_eq!(c.idle_cores(), 1);

        let spec = c.shared_l3_spec().expect("CMP topologies share an L3");
        assert_eq!(spec.geometry, c.l3.geometry());
        assert_eq!(spec.hop, 4);

        let p = c.to_pipeline_config();
        assert_eq!(p.remote_contexts, c.contexts, "one idle core donates");
        assert_eq!(p.remote_spawn_extra, 8);
        assert_eq!(p.remote_reconcile, 8);
        assert_eq!(p.total_contexts(), 2 * c.contexts);

        // Without cross-core spawning, no remote slots are borrowed.
        c.cross_core_spawn = false;
        assert_eq!(c.to_pipeline_config().remote_contexts, 0);
    }

    #[test]
    fn validate_rejects_cmp_nonsense() {
        let reject = |f: &dyn Fn(&mut SimConfig), needle: &str| {
            let mut c = SimConfig::new(Mode::Mtvp);
            c.cores = 4;
            f(&mut c);
            let e = c.validate().expect_err("should be invalid").0;
            assert!(e.contains(needle), "error `{e}` should mention `{needle}`");
        };
        reject(&|c| c.cores = 0, "cores");
        reject(&|c| c.cores = 17, "16-core");
        reject(&|c| c.l3.kb = 0, "not a cache");
        reject(&|c| c.l3.kb = 100, "power-of-two");
        // CMP knobs the selected core or mode cannot honour.
        reject(
            &|c| {
                c.cores = 4;
                c.core = CoreKind::InOrderScalar;
                c.mode = Mode::Baseline;
                c.contexts = 1;
                c.predictor = PredictorKind::None;
            },
            "out-of-order",
        );
        reject(
            &|c| {
                c.sampling = Some(SamplingParams {
                    window: 2000,
                    interval: 50_000,
                    warmup: 1000,
                });
            },
            "sampling",
        );
        // Co-workload seating and spelling.
        reject(
            &|c| {
                c.cores = 1;
                c.co_workloads = vec!["mcf".into()];
            },
            "sibling",
        );
        reject(
            &|c| c.co_workloads = vec!["a".into(), "b".into(), "c".into(), "d".into()],
            "exceed",
        );
        reject(&|c| c.co_workloads = vec!["nonesuch".into()], "unknown");
        reject(&|c| c.co_workloads = vec!["synth:zzz".into()], "seed");
        // Cross-core spawning needs a spawning mode and an idle sibling.
        reject(
            &|c| {
                c.cores = 1;
                c.cross_core_spawn = true;
            },
            "sibling",
        );
        reject(
            &|c| {
                c.mode = Mode::Baseline;
                c.contexts = 1;
                c.predictor = PredictorKind::None;
                c.cross_core_spawn = true;
            },
            "spawning mode",
        );
        reject(
            &|c| {
                c.cores = 2;
                c.co_workloads = vec!["mcf".into()];
                c.cross_core_spawn = true;
            },
            "idle",
        );
    }

    #[test]
    fn cmp_axes_reach_the_cache_key() {
        let base = serde_json::to_string(&SimConfig::new(Mode::Mtvp)).unwrap();
        let mutate = |f: &dyn Fn(&mut SimConfig)| {
            let mut c = SimConfig::new(Mode::Mtvp);
            f(&mut c);
            serde_json::to_string(&c).unwrap()
        };
        assert_ne!(mutate(&|c| c.cores = 2), base);
        assert_ne!(mutate(&|c| c.l3.kb = 2048), base);
        assert_ne!(mutate(&|c| c.interconnect_hop = 9), base);
        assert_ne!(mutate(&|c| c.cross_core_spawn = true), base);
        assert_ne!(mutate(&|c| c.co_workloads = vec!["mcf".into()]), base);
        let mut c = SimConfig::new(Mode::Mtvp);
        c.cores = 3;
        c.co_workloads = vec!["phases:2".into()];
        let back: SimConfig = serde_json::from_str(&serde_json::to_string(&c).unwrap()).unwrap();
        assert_eq!(back, c);
    }
}
