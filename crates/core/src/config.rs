//! Experiment-level configuration: the machine modes of the paper's
//! evaluation, lowered onto `mtvp-pipeline`'s mechanism-level switches.

use mtvp_pipeline::{FetchPolicy, PipelineConfig, PredictorKind, SelectorKind, VpConfig};
use serde::{Deserialize, Serialize};

/// The machine variants evaluated in the paper.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mode {
    /// Table 1 machine, no value prediction.
    Baseline,
    /// Single-threaded value prediction with selective reissue.
    Stvp,
    /// Multithreaded value prediction, single fetch path (§3.3 — the
    /// paper's default MTVP; falls back to STVP when no context is free).
    Mtvp,
    /// MTVP with the aggressive no-stall fetch policy (§5.5).
    MtvpNoStall,
    /// Thread spawning at selected loads *without* value prediction — the
    /// split-window comparator of §5.7.
    SpawnOnly,
    /// The idealized checkpoint/wide-window machine of §5.7: 8K-entry ROB
    /// and queues, unlimited rename registers, no value prediction.
    WideWindow,
    /// Multiple-value MTVP (§5.6): liberal Wang–Franklin confidence, the
    /// cache-level-oracle selector, several values followed per load.
    MultiValue,
}

/// A complete experiment configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Machine variant.
    pub mode: Mode,
    /// Hardware thread contexts (1, 2, 4, 8).
    pub contexts: usize,
    /// Value predictor (ignored for `Baseline`/`WideWindow`/`SpawnOnly`).
    pub predictor: PredictorKind,
    /// Load selector.
    pub selector: SelectorKind,
    /// Thread-spawn (map flash-copy) latency in cycles (§5.2).
    pub spawn_latency: u64,
    /// Per-context speculative store buffer entries (§5.3).
    pub store_buffer: usize,
    /// Values followed per load in `MultiValue` mode.
    pub max_values_per_load: usize,
    /// Optional architectural instruction limit (0 = run to halt).
    pub inst_limit: u64,
    /// Hard cycle limit.
    pub max_cycles: u64,
    /// Enable the stride prefetcher (the paper's baseline includes it;
    /// §4 notes MTVP's effect is larger and more consistent without it).
    pub prefetcher: bool,
    /// MSHR capacity (outstanding memory misses).
    pub mshrs: usize,
    /// Warm-start the caches with the data image.
    pub warm_start: bool,
    /// Fast-forward fully idle cycles (long memory stalls). Statistics are
    /// bit-identical either way; this only changes simulator wall-clock
    /// speed. See `PipelineConfig::fast_forward`.
    pub fast_forward: bool,
}

impl SimConfig {
    /// The paper's default configuration for a mode: Wang–Franklin
    /// predictor, ILP-pred selector, 8-cycle spawn, 128-entry store
    /// buffer, and as many contexts as the mode meaningfully uses.
    pub fn new(mode: Mode) -> Self {
        let contexts = match mode {
            Mode::Baseline | Mode::Stvp | Mode::WideWindow => 1,
            _ => 8,
        };
        SimConfig {
            mode,
            contexts,
            predictor: match mode {
                Mode::Baseline | Mode::WideWindow | Mode::SpawnOnly => PredictorKind::None,
                Mode::MultiValue => PredictorKind::WangFranklinLiberal,
                _ => PredictorKind::WangFranklin,
            },
            selector: match mode {
                Mode::MultiValue => SelectorKind::L3MissOracle,
                _ => SelectorKind::IlpPred,
            },
            spawn_latency: 8,
            store_buffer: 128,
            max_values_per_load: if mode == Mode::MultiValue { 4 } else { 1 },
            inst_limit: 0,
            max_cycles: 500_000_000,
            prefetcher: true,
            mshrs: 16,
            warm_start: true,
            fast_forward: true,
        }
    }

    /// Same as [`SimConfig::new`] but with the oracle value predictor and
    /// the idealized §5.1 assumptions (1-cycle spawn, huge store buffer).
    pub fn oracle(mode: Mode) -> Self {
        SimConfig {
            predictor: PredictorKind::Oracle,
            spawn_latency: 1,
            store_buffer: 1 << 20,
            ..Self::new(mode)
        }
    }

    /// The memory-hierarchy configuration this experiment uses.
    pub fn to_mem_config(&self) -> mtvp_mem::MemConfig {
        let mut m = mtvp_mem::MemConfig::hpca2005();
        m.mshrs = self.mshrs;
        if !self.prefetcher {
            m.prefetch = mtvp_mem::PrefetchConfig::disabled();
        }
        m
    }

    /// Lower to the mechanism-level pipeline configuration.
    pub fn to_pipeline_config(&self) -> PipelineConfig {
        let mut p = match self.mode {
            Mode::WideWindow => PipelineConfig::wide_window(),
            _ => PipelineConfig::hpca2005(),
        };
        p.hw_contexts = self.contexts;
        p.store_buffer_entries = self.store_buffer;
        p.inst_limit = self.inst_limit;
        p.max_cycles = self.max_cycles;
        p.warm_start = self.warm_start;
        p.fast_forward = self.fast_forward;

        let mut vp = match self.mode {
            Mode::Baseline | Mode::WideWindow => VpConfig::baseline(),
            Mode::Stvp => VpConfig::stvp(self.predictor),
            Mode::Mtvp | Mode::MultiValue => VpConfig::mtvp(self.predictor),
            Mode::MtvpNoStall => {
                let mut v = VpConfig::mtvp(self.predictor);
                v.fetch_policy = FetchPolicy::NoStall;
                v
            }
            Mode::SpawnOnly => VpConfig::spawn_only(),
        };
        vp.selector = self.selector;
        vp.spawn_latency = self.spawn_latency;
        vp.max_values_per_load = self.max_values_per_load;
        p.vp = vp;
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_defaults_are_sensible() {
        let b = SimConfig::new(Mode::Baseline);
        assert_eq!(b.contexts, 1);
        assert_eq!(b.predictor, PredictorKind::None);
        let m = SimConfig::new(Mode::Mtvp);
        assert_eq!(m.contexts, 8);
        assert_eq!(m.predictor, PredictorKind::WangFranklin);
        let mv = SimConfig::new(Mode::MultiValue);
        assert_eq!(mv.max_values_per_load, 4);
        assert_eq!(mv.selector, SelectorKind::L3MissOracle);
    }

    #[test]
    fn oracle_config_is_idealized() {
        let o = SimConfig::oracle(Mode::Mtvp);
        assert_eq!(o.predictor, PredictorKind::Oracle);
        assert_eq!(o.spawn_latency, 1);
        assert!(o.store_buffer > 100_000);
    }

    #[test]
    fn lowering_matches_mode() {
        let p = SimConfig::new(Mode::WideWindow).to_pipeline_config();
        assert_eq!(p.rob_entries, 8192);
        assert!(!p.vp.allow_stvp && !p.vp.allow_mtvp);

        let p = SimConfig::new(Mode::Mtvp).to_pipeline_config();
        assert!(p.vp.allow_stvp && p.vp.allow_mtvp);
        assert_eq!(p.vp.fetch_policy, FetchPolicy::SingleFetchPath);

        let p = SimConfig::new(Mode::MtvpNoStall).to_pipeline_config();
        assert_eq!(p.vp.fetch_policy, FetchPolicy::NoStall);

        let p = SimConfig::new(Mode::SpawnOnly).to_pipeline_config();
        assert!(p.vp.spawn_only);
    }

    #[test]
    fn config_serializes() {
        let cfg = SimConfig::new(Mode::Mtvp);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: SimConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
