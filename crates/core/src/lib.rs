//! # mtvp-core
//!
//! Top-level API of the *Multithreaded Value Prediction* reproduction
//! (Tuck & Tullsen, HPCA-11 2005): experiment-level machine modes, a
//! one-call runner that pairs the cycle simulator with its reference
//! interpreter, and a parallel sweep driver used by the figure harness.
//!
//! # Example
//!
//! ```
//! use mtvp_core::{Mode, SimConfig, run_program};
//! use mtvp_workloads::{suite, Scale};
//!
//! let mcf = suite().into_iter().find(|w| w.name == "mcf").unwrap();
//! let program = mcf.build(Scale::Tiny);
//!
//! let baseline = run_program(&SimConfig::new(Mode::Baseline), &program);
//! let mut cfg = SimConfig::new(Mode::Mtvp);
//! cfg.contexts = 4;
//! let mtvp = run_program(&cfg, &program);
//! // Both executions are architecturally validated against the
//! // interpreter; compare useful IPC for the paper's "percent speedup".
//! let _speedup = mtvp.stats.speedup_over(&baseline.stats);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod run;
pub mod sweep;

pub use config::{Mode, SimConfig};
pub use run::{
    reference_trace, run_program, run_program_traced, run_with_trace, RunResult, TraceOptions,
};

pub use mtvp_obs::{chrome_trace, pipeview, Event, Registry, RingTracer};
pub use mtvp_pipeline::{PipeStats, PredictorKind, SelectorKind};
pub use mtvp_workloads::{suite, Scale, Suite, Workload};
