//! # mtvp-core
//!
//! Experiment-level configuration of the *Multithreaded Value Prediction*
//! reproduction (Tuck & Tullsen, HPCA-11 2005): the machine modes of the
//! paper's evaluation, their lowering onto the mechanism-level pipeline
//! and memory configurations, the shared naming vocabulary, and a
//! validator.
//!
//! Execution lives one layer up in `mtvp-engine` ([`run_program`] and
//! friends, the cached sweep driver, the scenario format); this crate is
//! the dependency-light description of *what* to simulate.
//!
//! [`run_program`]: https://docs.rs/mtvp-engine
//!
//! # Example
//!
//! ```
//! use mtvp_core::{Mode, SimConfig};
//!
//! let mut cfg = SimConfig::new(Mode::Mtvp);
//! cfg.contexts = 4;
//! cfg.validate().unwrap();
//! let pipeline = cfg.to_pipeline_config();
//! assert_eq!(pipeline.hw_contexts, 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;

pub use config::{
    parse_core, parse_mode, parse_predictor, parse_scale, parse_selector, parse_spawn_policy,
    ConfigError, CoreKind, L3Params, Mode, SamplingParams, SimConfig, SpawnPolicyKind,
};

pub use mtvp_pipeline::{PipeStats, PredictorKind, SelectorKind};
pub use mtvp_workloads::{suite, Scale, Suite, Workload};
