//! Parallel experiment sweeps over the benchmark suite — the engine behind
//! every figure-reproduction binary in `mtvp-bench`.

use crate::config::SimConfig;
use crate::run::{reference_trace, run_with_trace};
use mtvp_isa::trace::Trace;
use mtvp_isa::Program;
use mtvp_pipeline::PipeStats;
use mtvp_workloads::{suite, Scale, Suite, Workload};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// One (benchmark × configuration) measurement.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Cell {
    /// Benchmark name.
    pub bench: String,
    /// Suite of the benchmark.
    pub suite_int: bool,
    /// Configuration label.
    pub config: String,
    /// Full statistics.
    pub stats: PipeStats,
}

/// Results of a sweep.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Sweep {
    /// All measurements.
    pub cells: Vec<Cell>,
}

impl Sweep {
    /// Run every configuration over every benchmark of the suite at
    /// `scale`, in parallel across available cores.
    pub fn run(configs: &[(String, SimConfig)], scale: Scale) -> Sweep {
        Self::run_filtered(configs, scale, |_| true)
    }

    /// Run with a benchmark filter.
    pub fn run_filtered(
        configs: &[(String, SimConfig)],
        scale: Scale,
        keep: impl Fn(&Workload) -> bool,
    ) -> Sweep {
        let workloads: Vec<Workload> = suite().into_iter().filter(|w| keep(w)).collect();

        // Phase 1: build programs + reference traces (parallel over benches).
        let prepared: Vec<(Workload, Program, u64, Arc<Trace>)> = parallel_map(&workloads, |wl| {
            let program = wl.build(scale);
            let (n, trace) = reference_trace(&program);
            (wl.clone(), program, n, trace)
        });

        // Phase 2: simulate every (bench, config) cell in parallel.
        let mut jobs: Vec<(usize, usize)> = Vec::new();
        for b in 0..prepared.len() {
            for c in 0..configs.len() {
                jobs.push((b, c));
            }
        }
        let cells: Vec<Cell> = parallel_map(&jobs, |&(b, c)| {
            let (wl, program, n, trace) = &prepared[b];
            let (label, cfg) = &configs[c];
            let r = run_with_trace(cfg, program, *n, trace.clone());
            Cell {
                bench: wl.name.to_string(),
                suite_int: wl.suite == Suite::Int,
                config: label.clone(),
                stats: r.stats,
            }
        });
        Sweep { cells }
    }

    /// The measurement for (`bench`, `config`).
    pub fn cell(&self, bench: &str, config: &str) -> Option<&Cell> {
        self.cells
            .iter()
            .find(|c| c.bench == bench && c.config == config)
    }

    /// Percent useful-IPC speedup of `config` over `baseline` on `bench`
    /// (the paper's y-axis).
    pub fn speedup(&self, bench: &str, config: &str, baseline: &str) -> Option<f64> {
        let c = self.cell(bench, config)?;
        let b = self.cell(bench, baseline)?;
        Some(c.stats.speedup_over(&b.stats))
    }

    /// Geometric-mean percent speedup of `config` over `baseline` across
    /// the benchmarks of `which` suite (or all when `None`) — the paper's
    /// "average" bars.
    pub fn geomean_speedup(&self, which: Option<Suite>, config: &str, baseline: &str) -> f64 {
        // One pass to index the baseline cells by bench name, so the loop
        // below is O(cells) instead of a linear `cell()` scan per bench.
        let baseline_by_bench: std::collections::HashMap<&str, &Cell> = self
            .cells
            .iter()
            .filter(|c| c.config == baseline)
            .map(|c| (c.bench.as_str(), c))
            .collect();
        let mut log_sum = 0.0;
        let mut n = 0usize;
        for cell in self.cells.iter().filter(|c| c.config == config) {
            if let Some(suite) = which {
                if (suite == Suite::Int) != cell.suite_int {
                    continue;
                }
            }
            let Some(b) = baseline_by_bench.get(cell.bench.as_str()) else {
                continue;
            };
            let (ci, bi) = (cell.stats.ipc(), b.stats.ipc());
            if ci > 0.0 && bi > 0.0 {
                log_sum += (ci / bi).ln();
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            ((log_sum / n as f64).exp() - 1.0) * 100.0
        }
    }

    /// Benchmarks present, in suite order (integer first).
    pub fn benches(&self) -> Vec<(String, bool)> {
        let mut seen = Vec::new();
        for c in &self.cells {
            if !seen.iter().any(|(b, _)| b == &c.bench) {
                seen.push((c.bench.clone(), c.suite_int));
            }
        }
        seen
    }

    /// Serialize to JSON (for EXPERIMENTS.md bookkeeping).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("sweep serializes")
    }
}

/// Simple scoped-thread parallel map preserving input order.
///
/// Work is claimed dynamically via an atomic cursor; each worker sends
/// `(index, result)` pairs over a channel and the caller reassembles them
/// in input order, so workers never contend on a results lock.
fn parallel_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, R)>();
    std::thread::scope(|s| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(&items[i]);
                if tx.send((i, r)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        for (i, r) in rx {
            out[i] = Some(r);
        }
        out.into_iter().map(|r| r.expect("every job ran")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Mode;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn small_sweep_runs_and_aggregates() {
        let configs = vec![
            ("base".to_string(), SimConfig::new(Mode::Baseline)),
            ("mtvp4".to_string(), {
                let mut c = SimConfig::oracle(Mode::Mtvp);
                c.contexts = 4;
                c
            }),
        ];
        let sweep =
            Sweep::run_filtered(&configs, Scale::Tiny, |w| matches!(w.name, "mcf" | "mesa"));
        assert_eq!(sweep.cells.len(), 4);
        assert!(sweep.cell("mcf", "base").is_some());
        let s = sweep.speedup("mcf", "mtvp4", "base").unwrap();
        assert!(s.is_finite());
        let g = sweep.geomean_speedup(None, "mtvp4", "base");
        assert!(g.is_finite());
        let benches = sweep.benches();
        assert_eq!(benches.len(), 2);
        // JSON roundtrip.
        let json = sweep.to_json();
        let back: Sweep = serde_json::from_str(&json).unwrap();
        assert_eq!(back.cells.len(), 4);
    }
}
