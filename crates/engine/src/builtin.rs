//! The paper's figures as named built-in scenarios.
//!
//! Labels match the historical `mtvp-bench` binaries exactly, so JSON
//! artifacts and cached cells stay comparable across the refactor.

use crate::scenario::{ConfigGrid, Scenario};
use mtvp_core::{CoreKind, L3Params, Mode, SamplingParams, SpawnPolicyKind};
use mtvp_pipeline::PredictorKind;
use mtvp_workloads::Scale;

/// All built-in scenarios, in presentation order.
pub fn builtin_scenarios() -> Vec<Scenario> {
    vec![
        fig1(),
        fig2(),
        fig3(),
        fig4(),
        fig5(),
        fig6(),
        storebuf(),
        multivalue(),
        predictors(),
        ablation(),
        sampled(),
        baseline(),
        hinted(),
        cmp_scaling(),
        mix_matrix(),
        interference(),
        smoke(),
    ]
}

/// Look up a built-in scenario by name.
pub fn builtin(name: &str) -> Option<Scenario> {
    builtin_scenarios().into_iter().find(|s| s.name == name)
}

fn with_series(mut s: Scenario, baseline: &str, series: &[&str]) -> Scenario {
    s.baseline = Some(baseline.to_string());
    s.series = series.iter().map(|x| x.to_string()).collect();
    s
}

fn fig1() -> Scenario {
    let mut s = Scenario::new(
        "fig1",
        "Figure 1: oracle value-prediction potential",
        "Percent change in useful IPC for STVP and MTVP x {2,4,8} threads with an \
         oracle predictor under the idealized Section 5.1 assumptions (1-cycle \
         spawn, unbounded store buffer), ILP-pred load selection.",
    );
    s.grids = vec![
        ConfigGrid::new("base", Mode::Baseline),
        ConfigGrid::new("stvp", Mode::Stvp).oracle(),
        ConfigGrid::new("mtvp{contexts}", Mode::Mtvp)
            .oracle()
            .contexts(&[2, 4, 8]),
    ];
    with_series(s, "base", &["stvp", "mtvp2", "mtvp4", "mtvp8"])
}

fn fig2() -> Scenario {
    let mut s = Scenario::new(
        "fig2",
        "Figure 2: thread-spawn latency sensitivity",
        "Suite-average speedups for STVP and MTVP x {2,4,8} at 1-, 8- and \
         16-cycle spawn latencies (oracle predictor, ILP-pred).",
    );
    s.grids = vec![
        ConfigGrid::new("base", Mode::Baseline),
        ConfigGrid::new("stvp", Mode::Stvp).oracle(),
        ConfigGrid::new("mtvp{contexts}@{spawn}", Mode::Mtvp)
            .oracle()
            .contexts(&[2, 4, 8])
            .spawn_latency(&[1, 8, 16]),
    ];
    s.baseline = Some("base".to_string());
    s
}

fn fig3() -> Scenario {
    let mut s = Scenario::new(
        "fig3",
        "Figure 3: realistic Wang-Franklin predictor",
        "Change in useful IPC with the realistic Wang-Franklin value predictor \
         (8-cycle spawn latency, 128-entry store buffer, ILP-pred).",
    );
    s.grids = vec![
        ConfigGrid::new("base", Mode::Baseline),
        ConfigGrid::new("stvp", Mode::Stvp),
        ConfigGrid::new("mtvp{contexts}", Mode::Mtvp).contexts(&[2, 4, 8]),
    ];
    with_series(s, "base", &["stvp", "mtvp2", "mtvp4", "mtvp8"])
}

fn fig4() -> Scenario {
    let mut s = Scenario::new(
        "fig4",
        "Figure 4: fetch policy after a spawn",
        "Single fetch path (the default) vs letting the parent keep fetching \
         (no stall, Section 5.5), Wang-Franklin predictor, 8 threads.",
    );
    s.grids = vec![
        ConfigGrid::new("base", Mode::Baseline),
        ConfigGrid::new("stvp", Mode::Stvp),
        ConfigGrid::new("mtvp sfp", Mode::Mtvp),
        ConfigGrid::new("no stall", Mode::MtvpNoStall),
    ];
    with_series(s, "base", &["stvp", "mtvp sfp", "no stall"])
}

fn fig5() -> Scenario {
    let mut s = Scenario::new(
        "fig5",
        "Figure 5: multiple-value headroom",
        "Fraction of followed predictions whose primary value was wrong but \
         whose correct value was present and over threshold, on the mtvp8 \
         Wang-Franklin configuration (Section 5.6).",
    );
    s.grids = vec![ConfigGrid::new("mtvp8", Mode::Mtvp)];
    s
}

fn fig6() -> Scenario {
    let mut s = Scenario::new(
        "fig6",
        "Figure 6: checkpoint-architecture comparison",
        "The idealized wide-window machine (8K ROB), the best MTVP \
         configuration, and spawn-only threading (Section 5.7).",
    );
    s.grids = vec![
        ConfigGrid::new("base", Mode::Baseline),
        ConfigGrid::new("wide window", Mode::WideWindow),
        ConfigGrid::new("best mtvp", Mode::Mtvp),
        ConfigGrid::new("spawn only", Mode::SpawnOnly),
    ];
    with_series(s, "base", &["wide window", "best mtvp", "spawn only"])
}

fn storebuf() -> Scenario {
    let mut s = Scenario::new(
        "storebuf",
        "Store-buffer size sweep (Section 5.3)",
        "Speculative store buffer sensitivity on mtvp8: the paper reports \
         performance tails off at 64 entries and below while 128 is near the \
         largest buffer.",
    );
    s.grids = vec![
        ConfigGrid::new("base", Mode::Baseline),
        ConfigGrid::new("sb{sb}", Mode::Mtvp).store_buffer(&[4, 8, 16, 32, 64, 128, 256, 512]),
    ];
    s.baseline = Some("base".to_string());
    s
}

fn multivalue() -> Scenario {
    let mut s = Scenario::new(
        "multivalue",
        "Multiple-value MTVP (Section 5.6)",
        "Single- vs multiple-value MTVP on the Section 5.6 candidate \
         benchmarks (swim, parser): liberal confidence, L3-miss-oracle \
         selector, several values followed per load.",
    );
    s.benches = vec!["swim".to_string(), "parser".to_string()];
    s.grids = vec![
        ConfigGrid::new("base", Mode::Baseline),
        ConfigGrid::new("single-value", Mode::Mtvp),
        ConfigGrid::new("multi-value", Mode::MultiValue),
    ];
    with_series(s, "base", &["single-value", "multi-value"])
}

fn predictors() -> Scenario {
    let mut s = Scenario::new(
        "predictors",
        "Predictor comparison (Section 5.4)",
        "Wang-Franklin hybrid vs order-3 DFCM vs classic stride/last-value, \
         each driving mtvp8.",
    );
    s.grids = vec![
        ConfigGrid::new("base", Mode::Baseline),
        ConfigGrid::new("wang-franklin", Mode::Mtvp).predictor(PredictorKind::WangFranklin),
        ConfigGrid::new("dfcm", Mode::Mtvp).predictor(PredictorKind::Dfcm),
        ConfigGrid::new("stride", Mode::Mtvp).predictor(PredictorKind::Stride),
        ConfigGrid::new("last-value", Mode::Mtvp).predictor(PredictorKind::LastValue),
    ];
    with_series(
        s,
        "base",
        &["wang-franklin", "dfcm", "stride", "last-value"],
    )
}

fn ablation() -> Scenario {
    let mut s = Scenario::new(
        "ablation",
        "Reproduction ablations (DESIGN.md Section 6)",
        "Paired baseline/mtvp8 machines under prefetcher, MSHR and warm-start \
         ablations on a representative benchmark subset.",
    );
    s.benches = [
        "mcf", "vpr r", "gcc 1", "crafty", "mgrid", "applu", "art 1", "mesa",
    ]
    .iter()
    .map(|b| b.to_string())
    .collect();
    let mut grids = Vec::new();
    for (tag, prefetch, mshrs, warm) in [
        ("default", true, 16usize, true),
        ("no-prefetch", false, 16, true),
        ("mshr4", true, 4, true),
        ("mshr64", true, 64, true),
        ("cold-start", true, 16, false),
    ] {
        for (prefix, mode) in [("base", Mode::Baseline), ("mtvp", Mode::Mtvp)] {
            let mut g = ConfigGrid::new(format!("{prefix}/{tag}"), mode)
                .prefetcher(prefetch)
                .mshrs(&[mshrs]);
            g.warm_start = Some(warm);
            grids.push(g);
        }
    }
    s.grids = grids;
    s
}

/// The fig3 machines under the default two-tier sampling schedule:
/// estimates, not exact runs — `fig3` cells are the differential
/// reference for the measured error (DESIGN.md §13).
fn sampled() -> Scenario {
    let sp = SamplingParams {
        window: 2_000,
        interval: 20_000,
        warmup: 1_000,
    };
    let mut s = Scenario::new(
        "sampled",
        "Two-tier sampled simulation (DESIGN.md Section 13)",
        "The realistic Wang-Franklin machines of fig3 under the default \
         2000:20000:1000 sampling schedule: functional fast-forward between \
         checkpointed detailed windows. Statistics are extrapolated \
         estimates; run `fig3` on the same benchmarks for the full-detailed \
         reference the error bound is measured against.",
    );
    s.grids = vec![
        ConfigGrid::new("base", Mode::Baseline).sampling(sp),
        ConfigGrid::new("stvp", Mode::Stvp).sampling(sp),
        ConfigGrid::new("mtvp{contexts}", Mode::Mtvp)
            .contexts(&[2, 4, 8])
            .sampling(sp),
    ];
    with_series(s, "base", &["stvp", "mtvp2", "mtvp4", "mtvp8"])
}

/// The second core module of the microarchitecture framework, run
/// through the same sweep machinery as every other scenario.
fn baseline() -> Scenario {
    let mut s = Scenario::new(
        "baseline",
        "Core-module comparison: in-order scalar vs out-of-order",
        "The in-order scalar core next to the SMT out-of-order machine it is \
         the sanity floor for (both in baseline mode, no value prediction) \
         plus the realistic mtvp4 machine. Exists to exercise the pluggable \
         core axis of the framework end to end (DESIGN.md Section 15).",
    );
    s.grids = vec![
        ConfigGrid::new("inorder", Mode::Baseline).core(CoreKind::InOrderScalar),
        ConfigGrid::new("ooo", Mode::Baseline),
        ConfigGrid::new("mtvp4", Mode::Mtvp).contexts(&[4]),
    ];
    with_series(s, "inorder", &["ooo", "mtvp4"])
}

/// Dynamic vs hint-guided spawn policy: the same realistic mtvp4 machine
/// with the default always-consider policy next to one whose spawns are
/// gated by the static spawn-site analysis (DESIGN.md Section 16).
fn hinted() -> Scenario {
    let mut s = Scenario::new(
        "hinted",
        "Spawn policy: dynamic vs static hints (DESIGN.md Section 16)",
        "The realistic Wang-Franklin mtvp4 machine under the default dynamic \
         spawn policy and under the static hint-guided policy, where only \
         loads inside statically selected spawn regions (predictable \
         fork-point live-ins, sufficient coverage) may spawn. A baseline \
         anchors the speedup comparison.",
    );
    s.scale = Some(Scale::Tiny);
    s.benches = vec![
        "mcf".to_string(),
        "swim".to_string(),
        "mgrid".to_string(),
        "art 1".to_string(),
    ];
    s.grids = vec![
        ConfigGrid::new("base", Mode::Baseline),
        ConfigGrid::new("dynamic", Mode::Mtvp).contexts(&[4]),
        ConfigGrid::new("static-hints", Mode::Mtvp)
            .contexts(&[4])
            .spawn_policy(SpawnPolicyKind::Static),
    ];
    with_series(s, "base", &["dynamic", "static-hints"])
}

/// CMP scaling: the realistic mtvp4 machine with a growing pool of idle
/// sibling cores donating remote spawn slots over the shared L3
/// (DESIGN.md Section 17).
fn cmp_scaling() -> Scenario {
    let mut s = Scenario::new(
        "cmp-scaling",
        "CMP scaling: idle siblings as remote spawn slots (DESIGN.md Section 17)",
        "The realistic Wang-Franklin mtvp4 machine alone, then on 2- and \
         4-core chips whose idle siblings donate their contexts as remote \
         spawn slots. Cross-core spawn and reconcile each pay two \
         interconnect hops; all cores share one L3. A single-core machine \
         anchors the speedup comparison and doubles as the differential \
         reference for the cores=1 bit-identity guarantee.",
    );
    s.scale = Some(Scale::Tiny);
    s.benches = vec![
        "mcf".to_string(),
        "swim".to_string(),
        "art 1".to_string(),
        "mgrid".to_string(),
    ];
    s.grids = vec![
        ConfigGrid::new("base", Mode::Baseline),
        ConfigGrid::new("solo", Mode::Mtvp).contexts(&[4]),
        ConfigGrid::new("cmp{cores}c", Mode::Mtvp)
            .contexts(&[4])
            .cores(&[2, 4])
            .cross_core_spawn(true),
    ];
    with_series(s, "base", &["solo", "cmp2c", "cmp4c"])
}

/// The multiprogrammed mix matrix: measured benchmarks co-scheduled with
/// generated co-runner workloads over the shared L3 (DESIGN.md Section 17).
fn mix_matrix() -> Scenario {
    let mut s = Scenario::new(
        "mix-matrix",
        "Mix matrix: measured bench x generated co-runner (DESIGN.md Section 17)",
        "Each measured benchmark on a 2-core chip next to one generated \
         co-runner drawn from the seeded synth and phase-program families, \
         contending for a halved shared L3. The solo column isolates the \
         co-runner's interference; seeds are part of the cache key, so every \
         mix cell is exactly reproducible (see EXPERIMENTS.md for how to \
         cite a mix).",
    );
    s.scale = Some(Scale::Tiny);
    s.benches = vec!["mcf".to_string(), "swim".to_string(), "mesa".to_string()];
    let half_l3 = L3Params {
        kb: 2048,
        assoc: 16,
        latency: 50,
    };
    s.grids = vec![
        ConfigGrid::new("solo", Mode::Mtvp)
            .contexts(&[4])
            .l3(half_l3),
        ConfigGrid::new("vs-synth", Mode::Mtvp)
            .contexts(&[4])
            .cores(&[2])
            .l3(half_l3)
            .co_workloads(&["synth:11"]),
        ConfigGrid::new("vs-phases", Mode::Mtvp)
            .contexts(&[4])
            .cores(&[2])
            .l3(half_l3)
            .co_workloads(&["phases:23"]),
    ];
    with_series(s, "solo", &["vs-synth", "vs-phases"])
}

/// Interference under pressure: phase-changing co-runners squeezing a
/// small shared L3 while the primary also borrows a third, idle core for
/// cross-core spawns (DESIGN.md Section 17).
fn interference() -> Scenario {
    let mut s = Scenario::new(
        "interference",
        "Interference: phase-changing co-runners on a small shared L3",
        "A 4-core chip under memory pressure: the measured mtvp4 machine, \
         two phase-changing co-runners cycling through memory-bound, \
         compute-bound and store-heavy profiles, and one idle core donating \
         remote spawn slots — all over a deliberately small shared L3. The \
         no-spawn twin separates capacity interference from the value of \
         cross-core spawning under that interference.",
    );
    s.scale = Some(Scale::Tiny);
    s.benches = vec!["mcf".to_string(), "art 1".to_string()];
    let small_l3 = L3Params {
        kb: 512,
        assoc: 8,
        latency: 50,
    };
    s.grids = vec![
        ConfigGrid::new("solo", Mode::Mtvp)
            .contexts(&[4])
            .l3(small_l3),
        ConfigGrid::new("pressured", Mode::Mtvp)
            .contexts(&[4])
            .cores(&[4])
            .l3(small_l3)
            .co_workloads(&["phases:5", "phases:6"]),
        ConfigGrid::new("pressured+xspawn", Mode::Mtvp)
            .contexts(&[4])
            .cores(&[4])
            .l3(small_l3)
            .co_workloads(&["phases:5", "phases:6"])
            .cross_core_spawn(true),
    ];
    with_series(s, "solo", &["pressured", "pressured+xspawn"])
}

/// The tiny CI scenario: two benchmarks, a baseline and one oracle MTVP
/// machine. Fast enough to run twice in the `exp-smoke` job.
fn smoke() -> Scenario {
    let mut s = Scenario::new(
        "smoke",
        "CI smoke: two benches, base vs oracle mtvp4",
        "A minimal cache-exercising scenario for CI and local sanity checks.",
    );
    s.scale = Some(Scale::Tiny);
    s.benches = vec!["mcf".to_string(), "mesa".to_string()];
    s.grids = vec![
        ConfigGrid::new("base", Mode::Baseline),
        ConfigGrid::new("mtvp4", Mode::Mtvp).oracle().contexts(&[4]),
    ];
    with_series(s, "base", &["mtvp4"])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_expands_cleanly() {
        let all = builtin_scenarios();
        assert_eq!(all.len(), 17);
        for s in &all {
            let configs = s.configs().unwrap_or_else(|e| panic!("{}: {e}", s.name));
            assert!(!configs.is_empty(), "{} expands to nothing", s.name);
        }
        assert!(builtin("fig3").is_some());
        assert!(builtin("nope").is_none());
        // The sampled scenario sets the schedule on every grid point and
        // still validates (validate() runs inside configs()).
        let sampled = builtin("sampled").unwrap().configs().unwrap();
        assert!(sampled.iter().all(|(_, c)| c.sampling.is_some()));
    }

    #[test]
    fn labels_match_the_legacy_binaries() {
        let labels = |name: &str| -> Vec<String> {
            builtin(name)
                .unwrap()
                .configs()
                .unwrap()
                .into_iter()
                .map(|(l, _)| l)
                .collect()
        };
        assert_eq!(labels("fig1"), ["base", "stvp", "mtvp2", "mtvp4", "mtvp8"]);
        assert!(labels("fig2").contains(&"mtvp4@16".to_string()));
        assert_eq!(labels("fig4"), ["base", "stvp", "mtvp sfp", "no stall"]);
        assert_eq!(
            labels("fig6"),
            ["base", "wide window", "best mtvp", "spawn only"]
        );
        assert!(labels("storebuf").contains(&"sb512".to_string()));
        assert!(labels("ablation").contains(&"mtvp/no-prefetch".to_string()));
        assert_eq!(labels("predictors").len(), 5);
    }

    #[test]
    fn fig_configs_match_legacy_parameterizations() {
        let fig1 = builtin("fig1").unwrap().configs().unwrap();
        let stvp = &fig1.iter().find(|(l, _)| l == "stvp").unwrap().1;
        assert_eq!(stvp.predictor, PredictorKind::Oracle);
        assert_eq!(stvp.spawn_latency, 1);
        let fig3 = builtin("fig3").unwrap().configs().unwrap();
        let mtvp4 = &fig3.iter().find(|(l, _)| l == "mtvp4").unwrap().1;
        assert_eq!(mtvp4.predictor, PredictorKind::WangFranklin);
        assert_eq!(mtvp4.contexts, 4);
        assert_eq!(mtvp4.spawn_latency, 8);
        let abl = builtin("ablation").unwrap().configs().unwrap();
        let cold = &abl.iter().find(|(l, _)| l == "mtvp/cold-start").unwrap().1;
        assert!(!cold.warm_start);
        assert_eq!(cold.mshrs, 16);
    }

    #[test]
    fn hinted_scenario_selects_the_static_policy() {
        let configs = builtin("hinted").unwrap().configs().unwrap();
        let stat = &configs.iter().find(|(l, _)| l == "static-hints").unwrap().1;
        assert_eq!(stat.spawn_policy, SpawnPolicyKind::Static);
        assert_eq!(stat.contexts, 4);
        let dynamic = &configs.iter().find(|(l, _)| l == "dynamic").unwrap().1;
        assert_eq!(dynamic.spawn_policy, SpawnPolicyKind::Dynamic);
        // Apart from the policy the two machines are identical.
        let mut twin = stat.clone();
        twin.spawn_policy = SpawnPolicyKind::Dynamic;
        assert_eq!(&twin, dynamic);
    }

    #[test]
    fn cmp_scenarios_lower_their_topologies() {
        let scaling = builtin("cmp-scaling").unwrap().configs().unwrap();
        let cmp4 = &scaling.iter().find(|(l, _)| l == "cmp4c").unwrap().1;
        assert_eq!(cmp4.cores, 4);
        assert!(cmp4.cross_core_spawn);
        assert_eq!(cmp4.idle_cores(), 3);
        assert!(cmp4.shared_l3_spec().is_some());
        let solo = &scaling.iter().find(|(l, _)| l == "solo").unwrap().1;
        assert_eq!(solo.cores, 1);
        assert!(solo.shared_l3_spec().is_none());

        let mix = builtin("mix-matrix").unwrap().configs().unwrap();
        let vs = &mix.iter().find(|(l, _)| l == "vs-synth").unwrap().1;
        assert_eq!(vs.co_workloads, vec!["synth:11".to_string()]);
        assert_eq!(vs.l3.kb, 2048);
        assert_eq!(vs.idle_cores(), 0);

        let intf = builtin("interference").unwrap().configs().unwrap();
        let xs = &intf
            .iter()
            .find(|(l, _)| l == "pressured+xspawn")
            .unwrap()
            .1;
        assert_eq!(xs.cores, 4);
        assert_eq!(xs.co_workloads.len(), 2);
        assert_eq!(xs.idle_cores(), 1);
        // The borrowed sibling shows up as remote context slots.
        let p = xs.to_pipeline_config();
        assert_eq!(p.remote_contexts, xs.contexts);
        assert_eq!(p.remote_spawn_extra, 2 * xs.interconnect_hop);
        let np = &intf.iter().find(|(l, _)| l == "pressured").unwrap().1;
        assert_eq!(np.to_pipeline_config().remote_contexts, 0);
    }

    #[test]
    fn baseline_scenario_selects_the_in_order_core() {
        let configs = builtin("baseline").unwrap().configs().unwrap();
        let inorder = &configs.iter().find(|(l, _)| l == "inorder").unwrap().1;
        assert_eq!(inorder.core, CoreKind::InOrderScalar);
        assert_eq!(inorder.to_pipeline_config().rename_width, 1);
        let ooo = &configs.iter().find(|(l, _)| l == "ooo").unwrap().1;
        assert_eq!(ooo.core, CoreKind::OutOfOrder);
    }
}
