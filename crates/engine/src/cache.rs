//! Persistent, content-addressed result cache under `results/cache/`.
//!
//! Two kinds of entries, both keyed by [`crate::key::JobKey`]:
//!
//! - **cells** (`<key>.json`): the full [`PipeStats`] of one simulation,
//!   stored together with the canonical descriptor, benchmark name and
//!   configuration that produced it. On load the descriptor and config
//!   are re-verified, so a hash collision degrades to a miss.
//! - **reference traces** (`<key>.trace`): the committed-path trace of a
//!   (benchmark × scale) functional pre-execution, in a compact line
//!   format (JSON would be an order of magnitude larger).
//!
//! Writes go through a temp file + rename, so an interrupted sweep never
//! leaves a truncated entry behind — resuming simply re-simulates the
//! missing cells.

use crate::key::{JobKey, SIM_VERSION};
use mtvp_core::SimConfig;
use mtvp_isa::trace::{Trace, TraceEntry};
use mtvp_pipeline::PipeStats;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Format marker for cell entries.
const CELL_MARKER: &str = "mtvp-cell-v1";
/// Format marker (first line) for trace entries.
const TRACE_MARKER: &str = "mtvp-trace-v1";
/// Format marker for lint entries.
const LINT_MARKER: &str = "mtvp-lint-v1";
/// Format marker (first line) for functional checkpoints.
const CKPT_MARKER: &str = "mtvp-ckpt-v1";
/// Format marker for spawn-hint entries.
const HINTS_MARKER: &str = "mtvp-hints-v1";

/// One persisted simulation result.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CellEntry {
    /// File-format marker ([`CELL_MARKER`]).
    pub format: String,
    /// Simulator version tag ([`SIM_VERSION`]) at write time.
    pub version: String,
    /// Canonical descriptor the key was derived from.
    pub descriptor: String,
    /// Benchmark name.
    pub bench: String,
    /// Whether the benchmark is in the integer suite.
    pub suite_int: bool,
    /// Build scale tag (`tiny`/`small`/`full`).
    pub scale: String,
    /// The exact configuration simulated.
    pub config: SimConfig,
    /// Dynamic instructions on the committed path.
    pub dyn_instrs: u64,
    /// The simulation statistics. For a sampled cell these are
    /// extrapolated estimates (see `sampled`), not exact measurements.
    pub stats: PipeStats,
    /// Sampled-run accounting; `None` for full-detailed cells.
    pub sampled: Option<crate::sampling::SampledMeta>,
}

/// The reference interpreter's complete architectural state at one
/// dynamic-instruction index: PC, register files, and the memory pages
/// that differ from the program's initial data image (restorers replay
/// `Program::init_memory`, then `MainMemory::install_page` each delta
/// page — fast-forwarding by file read instead of by interpretation).
/// Storing the delta rather than the resident set keeps checkpoints of
/// constant-data-heavy workloads to a few pages; a full-image `pages`
/// list restores identically, just slower. Stored in a compact line
/// format (hex pages; JSON would more than triple the footprint).
#[derive(Clone, Debug, PartialEq)]
pub struct Checkpoint {
    /// PC at the checkpoint.
    pub pc: u64,
    /// Dynamic instructions executed (the checkpoint's identity index).
    pub index: u64,
    /// Integer register file.
    pub int_regs: [u64; 32],
    /// FP register file as raw bits, so the round trip is bit-exact for
    /// every value including NaNs.
    pub fp_bits: [u64; 32],
    /// Pages differing from the initial data image
    /// `(base address, 4 KiB image)`, sorted by base.
    pub pages: Vec<(u64, Vec<u8>)>,
}

/// One persisted static-lint result, stored alongside experiment cells
/// so `mtvp-sim lint` sweeps are as resumable as simulation sweeps.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LintEntry {
    /// File-format marker ([`LINT_MARKER`]).
    pub format: String,
    /// Simulator version tag ([`SIM_VERSION`]) at write time.
    pub version: String,
    /// Canonical descriptor the key was derived from.
    pub descriptor: String,
    /// Benchmark name.
    pub bench: String,
    /// Build scale tag (`tiny`/`small`/`full`).
    pub scale: String,
    /// Error-severity diagnostic count.
    pub errors: usize,
    /// Warning-severity diagnostic count.
    pub warnings: usize,
    /// The full [`mtvp_analysis::LintReport`] as JSON.
    pub report: serde_json::Value,
}

impl LintEntry {
    /// Build a well-formed entry for `descriptor` from a lint report.
    pub fn new(
        descriptor: &str,
        bench: &str,
        scale: &str,
        report: &mtvp_analysis::LintReport,
    ) -> LintEntry {
        LintEntry {
            format: LINT_MARKER.to_string(),
            version: SIM_VERSION.to_string(),
            descriptor: descriptor.to_string(),
            bench: bench.to_string(),
            scale: scale.to_string(),
            errors: report.errors(),
            warnings: report.warnings(),
            report: report.to_value(),
        }
    }
}

/// One persisted spawn-site analysis result: the [`mtvp_analysis::SpawnHints`]
/// artifact of one (benchmark × scale), plus the differential-validator
/// verdict so consumers can refuse unvalidated hints without re-running
/// the interpreter.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HintsEntry {
    /// File-format marker ([`HINTS_MARKER`]).
    pub format: String,
    /// Simulator version tag ([`SIM_VERSION`]) at write time.
    pub version: String,
    /// Canonical descriptor the key was derived from.
    pub descriptor: String,
    /// Benchmark name.
    pub bench: String,
    /// Build scale tag (`tiny`/`small`/`full`).
    pub scale: String,
    /// Sites the analysis selected for spawning.
    pub selected_sites: u32,
    /// Load PCs inside selected regions (the spawn filter).
    pub hinted_loads: Vec<u64>,
    /// Dynamic checks the differential validator performed (0 when
    /// validation was skipped).
    pub checks: u64,
    /// Whether the differential validator confirmed every predictable
    /// verdict against the tracing interpreter.
    pub validated: bool,
    /// The full [`mtvp_analysis::SpawnHints`] artifact as JSON.
    pub hints: serde_json::Value,
}

impl HintsEntry {
    /// Build a well-formed entry for `descriptor` from a hints artifact.
    pub fn new(
        descriptor: &str,
        bench: &str,
        scale: &str,
        hints: &mtvp_analysis::SpawnHints,
        checks: u64,
        validated: bool,
    ) -> HintsEntry {
        HintsEntry {
            format: HINTS_MARKER.to_string(),
            version: SIM_VERSION.to_string(),
            descriptor: descriptor.to_string(),
            bench: bench.to_string(),
            scale: scale.to_string(),
            selected_sites: hints.selected_sites,
            hinted_loads: hints.hinted_loads.clone(),
            checks,
            validated,
            hints: serde_json::to_value(hints),
        }
    }
}

/// Handle to a cache directory.
#[derive(Clone, Debug)]
pub struct Cache {
    dir: PathBuf,
}

impl Cache {
    /// Open (and lazily create) a cache at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Cache {
        Cache { dir: dir.into() }
    }

    /// The default cache directory: `$MTVP_CACHE_DIR` if set, else
    /// `results/cache` relative to the working directory.
    pub fn default_dir() -> PathBuf {
        match std::env::var_os("MTVP_CACHE_DIR") {
            Some(d) if !d.is_empty() => PathBuf::from(d),
            _ => PathBuf::from("results").join("cache"),
        }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn cell_path(&self, key: &JobKey) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }

    fn trace_path(&self, key: &JobKey) -> PathBuf {
        self.dir.join(format!("{key}.trace"))
    }

    fn lint_path(&self, key: &JobKey) -> PathBuf {
        self.dir.join(format!("{key}.lint.json"))
    }

    fn hints_path(&self, key: &JobKey) -> PathBuf {
        self.dir.join(format!("{key}.hints.json"))
    }

    /// Whether a cell entry exists for `key` (no verification).
    pub fn has_cell(&self, key: &JobKey) -> bool {
        self.cell_path(key).is_file()
    }

    /// Load and verify the cell for `key`. Returns `None` on a miss, a
    /// corrupt entry, or a descriptor mismatch (hash collision or stale
    /// format) — all of which simply mean "simulate it again".
    pub fn load_cell(&self, key: &JobKey, descriptor: &str) -> Option<CellEntry> {
        let text = std::fs::read_to_string(self.cell_path(key)).ok()?;
        let entry: CellEntry = serde_json::from_str(&text).ok()?;
        (entry.format == CELL_MARKER
            && entry.version == SIM_VERSION
            && entry.descriptor == descriptor)
            .then_some(entry)
    }

    /// Raw stored JSON text of the cell for `key`, if present. The
    /// cluster peering endpoint serves this verbatim; the fetching peer
    /// re-parses and re-verifies before trusting it.
    pub fn read_cell_text(&self, key: &JobKey) -> Option<String> {
        std::fs::read_to_string(self.cell_path(key)).ok()
    }

    /// Persist a cell entry atomically (temp file + rename).
    pub fn store_cell(&self, key: &JobKey, entry: &CellEntry) -> std::io::Result<()> {
        let text = serde_json::to_string_pretty(entry)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.0))?;
        self.write_atomic(&self.cell_path(key), text.as_bytes())
    }

    /// Load and verify the lint entry for `key`. `None` means "lint it
    /// again" (miss, corrupt entry, or stale descriptor).
    pub fn load_lint(&self, key: &JobKey, descriptor: &str) -> Option<LintEntry> {
        let text = std::fs::read_to_string(self.lint_path(key)).ok()?;
        let entry: LintEntry = serde_json::from_str(&text).ok()?;
        (entry.format == LINT_MARKER
            && entry.version == SIM_VERSION
            && entry.descriptor == descriptor)
            .then_some(entry)
    }

    /// Persist a lint entry atomically (temp file + rename).
    pub fn store_lint(&self, key: &JobKey, entry: &LintEntry) -> std::io::Result<()> {
        let text = serde_json::to_string_pretty(entry)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.0))?;
        self.write_atomic(&self.lint_path(key), text.as_bytes())
    }

    /// Load and verify the spawn-hints entry for `key`. `None` means
    /// "analyze it again" (miss, corrupt entry, or stale descriptor).
    pub fn load_hints(&self, key: &JobKey, descriptor: &str) -> Option<HintsEntry> {
        let text = std::fs::read_to_string(self.hints_path(key)).ok()?;
        let entry: HintsEntry = serde_json::from_str(&text).ok()?;
        (entry.format == HINTS_MARKER
            && entry.version == SIM_VERSION
            && entry.descriptor == descriptor)
            .then_some(entry)
    }

    /// Persist a spawn-hints entry atomically (temp file + rename).
    pub fn store_hints(&self, key: &JobKey, entry: &HintsEntry) -> std::io::Result<()> {
        let text = serde_json::to_string_pretty(entry)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.0))?;
        self.write_atomic(&self.hints_path(key), text.as_bytes())
    }

    /// Load the reference trace for `key`, verifying the stored
    /// descriptor. Returns `(dyn_instrs, trace)` or `None`.
    pub fn load_trace(&self, key: &JobKey, descriptor: &str) -> Option<(u64, Arc<Trace>)> {
        let file = std::fs::File::open(self.trace_path(key)).ok()?;
        let mut lines = BufReader::new(file).lines();
        let marker = lines.next()?.ok()?;
        if marker != TRACE_MARKER {
            return None;
        }
        let stored_desc = lines.next()?.ok()?;
        if stored_desc != descriptor {
            return None;
        }
        let header = lines.next()?.ok()?;
        let mut parts = header.split(' ');
        let dyn_instrs: u64 = parts.next()?.parse().ok()?;
        let len: usize = parts.next()?.parse().ok()?;
        let mut trace = Trace::new();
        for line in lines {
            let line = line.ok()?;
            let mut it = line.split(' ');
            let (kind, pc) = (it.next()?, it.next()?.parse().ok()?);
            let load_value = match kind {
                "l" => it.next()?.parse().ok()?,
                "i" => 0,
                _ => return None,
            };
            trace.push(TraceEntry {
                pc,
                is_load: kind == "l",
                load_value,
            });
        }
        (trace.len() == len).then(|| (dyn_instrs, Arc::new(trace)))
    }

    /// Persist a reference trace atomically.
    pub fn store_trace(
        &self,
        key: &JobKey,
        descriptor: &str,
        dyn_instrs: u64,
        trace: &Trace,
    ) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        let path = self.trace_path(key);
        let tmp = tmp_sibling(&path);
        {
            let mut w = BufWriter::new(std::fs::File::create(&tmp)?);
            writeln!(w, "{TRACE_MARKER}")?;
            writeln!(w, "{descriptor}")?;
            writeln!(w, "{dyn_instrs} {}", trace.len())?;
            for e in trace.iter() {
                if e.is_load {
                    writeln!(w, "l {} {}", e.pc, e.load_value)?;
                } else {
                    writeln!(w, "i {}", e.pc)?;
                }
            }
            w.flush()?;
        }
        std::fs::rename(&tmp, &path)
    }

    fn ckpt_path(&self, key: &JobKey) -> PathBuf {
        self.dir.join(format!("{key}.ckpt"))
    }

    /// Load the functional checkpoint for `key`, verifying the stored
    /// descriptor. `None` means "fast-forward by interpretation instead"
    /// (miss, corrupt entry, or stale descriptor).
    pub fn load_ckpt(&self, key: &JobKey, descriptor: &str) -> Option<Checkpoint> {
        let file = std::fs::File::open(self.ckpt_path(key)).ok()?;
        let mut lines = BufReader::new(file).lines();
        if lines.next()?.ok()? != CKPT_MARKER {
            return None;
        }
        if lines.next()?.ok()? != descriptor {
            return None;
        }
        let header = lines.next()?.ok()?;
        let mut parts = header.split(' ');
        let pc: u64 = parts.next()?.parse().ok()?;
        let index: u64 = parts.next()?.parse().ok()?;
        let n_pages: usize = parts.next()?.parse().ok()?;
        let regs32 = |line: String, tag: &str| -> Option<[u64; 32]> {
            let mut it = line.split(' ');
            if it.next()? != tag {
                return None;
            }
            let mut regs = [0u64; 32];
            for r in regs.iter_mut() {
                *r = it.next()?.parse().ok()?;
            }
            it.next().is_none().then_some(regs)
        };
        let int_regs = regs32(lines.next()?.ok()?, "i")?;
        let fp_bits = regs32(lines.next()?.ok()?, "f")?;
        let mut pages = Vec::with_capacity(n_pages);
        for line in lines {
            let line = line.ok()?;
            let mut it = line.split(' ');
            if it.next()? != "p" {
                return None;
            }
            let base: u64 = it.next()?.parse().ok()?;
            let hex = it.next()?;
            if it.next().is_some() || hex.len() % 2 != 0 {
                return None;
            }
            let bytes: Option<Vec<u8>> = (0..hex.len() / 2)
                .map(|i| u8::from_str_radix(&hex[2 * i..2 * i + 2], 16).ok())
                .collect();
            pages.push((base, bytes?));
        }
        (pages.len() == n_pages).then_some(Checkpoint {
            pc,
            index,
            int_regs,
            fp_bits,
            pages,
        })
    }

    /// Persist a functional checkpoint atomically.
    pub fn store_ckpt(
        &self,
        key: &JobKey,
        descriptor: &str,
        ckpt: &Checkpoint,
    ) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        let path = self.ckpt_path(key);
        let tmp = tmp_sibling(&path);
        {
            let mut w = BufWriter::new(std::fs::File::create(&tmp)?);
            writeln!(w, "{CKPT_MARKER}")?;
            writeln!(w, "{descriptor}")?;
            writeln!(w, "{} {} {}", ckpt.pc, ckpt.index, ckpt.pages.len())?;
            for (tag, regs) in [("i", &ckpt.int_regs), ("f", &ckpt.fp_bits)] {
                write!(w, "{tag}")?;
                for r in regs.iter() {
                    write!(w, " {r}")?;
                }
                writeln!(w)?;
            }
            let mut hex = String::new();
            for (base, bytes) in &ckpt.pages {
                hex.clear();
                for b in bytes.iter() {
                    use std::fmt::Write as _;
                    let _ = write!(hex, "{b:02x}");
                }
                writeln!(w, "p {base} {hex}")?;
            }
            w.flush()?;
        }
        std::fs::rename(&tmp, &path)
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        std::fs::create_dir_all(&self.dir)?;
        let tmp = tmp_sibling(path);
        std::fs::write(&tmp, bytes)?;
        std::fs::rename(&tmp, path)
    }
}

/// A temp-file name next to `path`, unique per process.
fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".tmp-{}", std::process::id()));
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::{cell_descriptor, key_of, trace_descriptor};
    use mtvp_core::Mode;
    use mtvp_workloads::Scale;

    fn scratch() -> PathBuf {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!("mtvp-cache-unit-{}-{n}", std::process::id()))
    }

    #[test]
    fn cell_round_trip_and_collision_guard() {
        let dir = scratch();
        let cache = Cache::new(&dir);
        let cfg = SimConfig::new(Mode::Baseline);
        let desc = cell_descriptor("mcf", &cfg, Scale::Tiny);
        let key = key_of(&desc);
        assert!(cache.load_cell(&key, &desc).is_none());
        let entry = CellEntry {
            format: CELL_MARKER.to_string(),
            version: SIM_VERSION.to_string(),
            descriptor: desc.clone(),
            bench: "mcf".to_string(),
            suite_int: true,
            scale: "tiny".to_string(),
            config: cfg.clone(),
            dyn_instrs: 1234,
            stats: PipeStats::default(),
            sampled: None,
        };
        cache.store_cell(&key, &entry).unwrap();
        let back = cache.load_cell(&key, &desc).expect("hit");
        assert_eq!(back, entry);
        // A different descriptor for the same file is rejected.
        let other = cell_descriptor("mesa", &cfg, Scale::Tiny);
        assert!(cache.load_cell(&key, &other).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lint_round_trip_and_descriptor_guard() {
        let dir = scratch();
        let cache = Cache::new(&dir);
        let desc = crate::key::lint_descriptor("mcf", Scale::Tiny);
        let key = key_of(&desc);
        assert!(cache.load_lint(&key, &desc).is_none());
        let mut b = mtvp_isa::ProgramBuilder::new();
        b.li(mtvp_isa::Reg(1), 1);
        b.halt();
        let report = mtvp_analysis::lint_program(&b.build());
        let entry = LintEntry::new(&desc, "mcf", "tiny", &report);
        cache.store_lint(&key, &entry).unwrap();
        let back = cache.load_lint(&key, &desc).expect("hit");
        assert_eq!(back, entry);
        assert_eq!(back.errors, 0);
        // A different descriptor for the same file is rejected.
        let other = crate::key::lint_descriptor("mesa", Scale::Tiny);
        assert!(cache.load_lint(&key, &other).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ckpt_round_trip_is_bit_exact() {
        let dir = scratch();
        let cache = Cache::new(&dir);
        let desc = crate::key::ckpt_descriptor("mcf", Scale::Tiny, 50_000);
        let key = key_of(&desc);
        assert!(cache.load_ckpt(&key, &desc).is_none());
        let mut int_regs = [0u64; 32];
        int_regs[5] = u64::MAX;
        let mut fp_bits = [0u64; 32];
        fp_bits[7] = f64::NAN.to_bits();
        let mut page = vec![0u8; 4096];
        page[0] = 0xab;
        page[4095] = 0xcd;
        let ckpt = Checkpoint {
            pc: 42,
            index: 50_000,
            int_regs,
            fp_bits,
            pages: vec![(0, page.clone()), (1 << 20, vec![0xee; 4096])],
        };
        cache.store_ckpt(&key, &desc, &ckpt).unwrap();
        let back = cache.load_ckpt(&key, &desc).expect("hit");
        assert_eq!(back, ckpt);
        // A different descriptor (other index) for the same file misses.
        let other = crate::key::ckpt_descriptor("mcf", Scale::Tiny, 60_000);
        assert!(cache.load_ckpt(&key, &other).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_round_trip() {
        let dir = scratch();
        let cache = Cache::new(&dir);
        let desc = trace_descriptor("mcf", Scale::Tiny);
        let key = key_of(&desc);
        let mut trace = Trace::new();
        trace.push(TraceEntry {
            pc: 5,
            is_load: true,
            load_value: u64::MAX,
        });
        trace.push(TraceEntry {
            pc: 6,
            is_load: false,
            load_value: 0,
        });
        cache.store_trace(&key, &desc, 2, &trace).unwrap();
        let (n, back) = cache.load_trace(&key, &desc).expect("hit");
        assert_eq!(n, 2);
        assert_eq!(back.len(), 2);
        assert_eq!(back.oracle_load_value(0, 5), Some(u64::MAX));
        assert_eq!(back.oracle_load_value(1, 6), None);
        // Descriptor mismatch is a miss.
        assert!(cache
            .load_trace(&key, &trace_descriptor("mcf", Scale::Full))
            .is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
