//! In-flight request coalescing.
//!
//! When several callers ask for the same content-addressed job at the
//! same time (the serving layer's `POST /run` under concurrent identical
//! traffic), only one of them should pay for the simulation: the first
//! caller becomes the *leader* and computes, everyone else *joins* the
//! leader's flight and blocks until the shared result is published. The
//! disk cache already deduplicates across time; the [`Coalescer`]
//! deduplicates across concurrency, keyed by the same
//! [`crate::key::JobKey`] content hash.
//!
//! Joiners can carry a deadline: a joiner that times out reports
//! [`Coalesced::TimedOut`] (the serving layer turns that into a graceful
//! 504) while the leader keeps running — the result still lands in the
//! cache for the next request.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Shared state of one in-flight computation.
struct Flight<T> {
    slot: Mutex<Option<Result<T, String>>>,
    done: Condvar,
}

/// How a [`Coalescer::run`] call obtained its result.
#[derive(Clone, Debug, PartialEq)]
pub enum Coalesced<T> {
    /// This caller was the leader: it executed the computation.
    Led(Result<T, String>),
    /// This caller joined a concurrent identical flight and shared the
    /// leader's result without computing anything.
    Joined(Result<T, String>),
    /// This caller joined a flight but its deadline expired before the
    /// leader finished. The leader keeps running.
    TimedOut,
}

impl<T> Coalesced<T> {
    /// Whether the result was shared from another caller's execution.
    pub fn was_coalesced(&self) -> bool {
        matches!(self, Coalesced::Joined(_) | Coalesced::TimedOut)
    }
}

/// Keyed single-flight executor: concurrent [`Coalescer::run`] calls with
/// equal keys share one execution of the compute closure.
pub struct Coalescer<T> {
    flights: Mutex<HashMap<String, Arc<Flight<T>>>>,
}

impl<T: Clone> Default for Coalescer<T> {
    fn default() -> Self {
        Coalescer::new()
    }
}

/// Publishes a failure and unregisters the flight if the leader unwinds
/// mid-compute, so joiners never deadlock on a panicked leader.
struct LeaderGuard<'a, T: Clone> {
    coalescer: &'a Coalescer<T>,
    key: &'a str,
    flight: &'a Arc<Flight<T>>,
    finished: bool,
}

impl<T: Clone> Drop for LeaderGuard<'_, T> {
    fn drop(&mut self) {
        if !self.finished {
            self.coalescer
                .publish(self.key, self.flight, Err("job panicked".to_string()));
        }
    }
}

impl<T: Clone> Coalescer<T> {
    /// An empty coalescer.
    pub fn new() -> Coalescer<T> {
        Coalescer {
            flights: Mutex::new(HashMap::new()),
        }
    }

    /// Number of flights currently in progress.
    pub fn in_flight(&self) -> usize {
        self.flights.lock().expect("flights lock").len()
    }

    /// Publish `result` on `flight`, wake every joiner, and retire the
    /// flight so later calls with the same key start fresh.
    fn publish(&self, key: &str, flight: &Arc<Flight<T>>, result: Result<T, String>) {
        *flight.slot.lock().expect("flight slot") = Some(result);
        flight.done.notify_all();
        self.flights.lock().expect("flights lock").remove(key);
    }

    /// Run `compute` for `key`, or join an identical in-flight call.
    ///
    /// The first caller for a key leads: it executes `compute`, publishes
    /// the result, and retires the flight. Any caller arriving while the
    /// flight is live joins it and blocks (up to `deadline`, if given)
    /// for the shared result.
    pub fn run(
        &self,
        key: &str,
        deadline: Option<Instant>,
        compute: impl FnOnce() -> Result<T, String>,
    ) -> Coalesced<T> {
        let (flight, leader) = {
            let mut flights = self.flights.lock().expect("flights lock");
            match flights.get(key) {
                Some(f) => (Arc::clone(f), false),
                None => {
                    let f = Arc::new(Flight {
                        slot: Mutex::new(None),
                        done: Condvar::new(),
                    });
                    flights.insert(key.to_string(), Arc::clone(&f));
                    (f, true)
                }
            }
        };
        if leader {
            let mut guard = LeaderGuard {
                coalescer: self,
                key,
                flight: &flight,
                finished: false,
            };
            let result = compute();
            guard.finished = true;
            self.publish(key, &flight, result.clone());
            return Coalesced::Led(result);
        }
        // Joiner: wait for the leader to publish.
        let mut slot = flight.slot.lock().expect("flight slot");
        loop {
            if let Some(result) = slot.as_ref() {
                return Coalesced::Joined(result.clone());
            }
            match deadline {
                None => slot = flight.done.wait(slot).expect("flight slot"),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return Coalesced::TimedOut;
                    }
                    let (s, timeout) = flight
                        .done
                        .wait_timeout(slot, d - now)
                        .expect("flight slot");
                    slot = s;
                    if timeout.timed_out() && slot.is_none() {
                        return Coalesced::TimedOut;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;
    use std::time::Duration;

    #[test]
    fn lone_caller_leads_and_retires_the_flight() {
        let c: Coalescer<u64> = Coalescer::new();
        let r = c.run("k", None, || Ok(7));
        assert_eq!(r, Coalesced::Led(Ok(7)));
        assert!(!r.was_coalesced());
        assert_eq!(c.in_flight(), 0);
        // A later identical call computes again (no stale flight).
        assert_eq!(c.run("k", None, || Ok(8)), Coalesced::Led(Ok(8)));
    }

    #[test]
    fn concurrent_identical_calls_share_one_execution() {
        let c: Arc<Coalescer<u64>> = Arc::new(Coalescer::new());
        let executions = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(4));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let (c, executions, barrier) = (
                Arc::clone(&c),
                Arc::clone(&executions),
                Arc::clone(&barrier),
            );
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                c.run("job", None, || {
                    executions.fetch_add(1, Ordering::SeqCst);
                    // Hold the flight open long enough for the laggards
                    // of the barrier release to join it.
                    std::thread::sleep(Duration::from_millis(100));
                    Ok(42u64)
                })
            }));
        }
        let results: Vec<Coalesced<u64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let led = results
            .iter()
            .filter(|r| matches!(r, Coalesced::Led(_)))
            .count();
        let joined = results
            .iter()
            .filter(|r| matches!(r, Coalesced::Joined(_)))
            .count();
        // Every flight that ran produced 42, and at least one caller
        // joined instead of executing (4 threads released together with a
        // 100ms execution window cannot all lead distinct flights).
        for r in &results {
            match r {
                Coalesced::Led(v) | Coalesced::Joined(v) => assert_eq!(v, &Ok(42)),
                Coalesced::TimedOut => panic!("no deadline was set"),
            }
        }
        assert_eq!(led + joined, 4);
        assert!(joined >= 1, "led={led} joined={joined}");
        assert_eq!(executions.load(Ordering::SeqCst), led);
        assert_eq!(c.in_flight(), 0);
    }

    #[test]
    fn distinct_keys_do_not_coalesce() {
        let c: Coalescer<u64> = Coalescer::new();
        assert_eq!(c.run("a", None, || Ok(1)), Coalesced::Led(Ok(1)));
        assert_eq!(c.run("b", None, || Ok(2)), Coalesced::Led(Ok(2)));
    }

    #[test]
    fn joiner_deadline_expires_gracefully() {
        let c: Arc<Coalescer<u64>> = Arc::new(Coalescer::new());
        let barrier = Arc::new(Barrier::new(2));
        let leader = {
            let (c, barrier) = (Arc::clone(&c), Arc::clone(&barrier));
            std::thread::spawn(move || {
                c.run("slow", None, || {
                    barrier.wait(); // joiner is about to arrive
                    std::thread::sleep(Duration::from_millis(300));
                    Ok(1u64)
                })
            })
        };
        barrier.wait();
        // Give the leader a moment to be firmly inside compute().
        std::thread::sleep(Duration::from_millis(20));
        let deadline = Instant::now() + Duration::from_millis(30);
        let joined = c.run("slow", Some(deadline), || Ok(2));
        assert_eq!(joined, Coalesced::TimedOut);
        assert!(joined.was_coalesced());
        // The leader is unaffected by the joiner's timeout.
        assert_eq!(leader.join().unwrap(), Coalesced::Led(Ok(1)));
    }

    #[test]
    fn errors_are_shared_and_flights_retired() {
        let c: Coalescer<u64> = Coalescer::new();
        let r = c.run("bad", None, || Err("boom".to_string()));
        assert_eq!(r, Coalesced::Led(Err("boom".to_string())));
        assert_eq!(c.in_flight(), 0);
    }
}
