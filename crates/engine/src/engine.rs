//! The experiment engine: a declarative sweep becomes a set of
//! content-addressed jobs, scheduled longest-first across cores, with
//! completed cells persisted under `results/cache/` so any sweep is
//! incremental and resumable.
//!
//! Two job phases per run:
//!
//! 1. **Reference traces.** Every benchmark that has at least one
//!    un-cached cell needs its program built and functionally
//!    pre-executed (or its trace loaded from the cache).
//! 2. **Cells.** Each missing (benchmark × configuration) simulation runs
//!    under the work-stealing scheduler; each worker persists its cell
//!    the moment it completes, so an interrupted sweep resumes from the
//!    finished cells.
//!
//! The assembled [`Sweep`] is ordered benchmark-major in suite order with
//! configurations in input order — deterministic and independent of
//! completion order, which is what makes the "cached run is bit-identical
//! to a cold run" guarantee testable.

use crate::cache::{Cache, CellEntry};
use crate::key::{cell_descriptor, key_of, scale_tag, trace_descriptor, JobKey, SIM_VERSION};
use crate::run::{reference_trace, run_with_trace_at};
use crate::sampling::{run_sampled, CkptStore, SampledMeta};
use crate::scenario::{Scenario, ScenarioError};
use crate::scheduler::Scheduler;
use crate::sweep::{Cell, Sweep};
use mtvp_core::SimConfig;
use mtvp_obs::Registry;
use mtvp_workloads::{suite, Scale, Workload};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Where completed jobs are persisted.
#[derive(Clone, Debug)]
pub enum CacheMode {
    /// Persist under the given directory (the default: [`Cache::default_dir`]).
    Disk(PathBuf),
    /// In-memory only; every run starts cold (`--no-cache`).
    Off,
}

/// Engine knobs, mirroring the `exp run` CLI flags.
#[derive(Clone, Debug)]
pub struct EngineOptions {
    /// Result persistence.
    pub cache: CacheMode,
    /// Worker-thread cap (`--jobs N`; `None`: all cores).
    pub jobs: Option<usize>,
    /// Run only cells whose key hashes to shard `i` of `n` (`--shard i/n`).
    pub shard: Option<(usize, usize)>,
    /// Print live progress to stderr.
    pub progress: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            cache: CacheMode::Disk(Cache::default_dir()),
            jobs: None,
            shard: None,
            progress: false,
        }
    }
}

/// The outcome of one engine run: the sweep plus its execution accounting.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Scale everything ran at.
    pub scale: Scale,
    /// The assembled measurements (cached and fresh cells alike).
    pub sweep: Sweep,
    /// Cells requested (after benchmark filtering, before sharding).
    pub total_cells: usize,
    /// Cells served from the cache.
    pub cache_hits: usize,
    /// Cells simulated this run.
    pub simulated: usize,
    /// Cells skipped because they belong to another shard.
    pub skipped_by_shard: usize,
    /// Reference traces functionally executed this run.
    pub traces_built: usize,
    /// Reference traces served from the cache.
    pub traces_cached: usize,
    /// Engine counters/histograms (`exp.cells.*`, `exp.traces.*`).
    pub registry: Registry,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
}

impl RunReport {
    /// One-line human summary (`exp run` prints this).
    pub fn summary(&self) -> String {
        format!(
            "cells: {} = {} cached + {} simulated ({} shard-skipped); traces: {} cached + {} built; {:.2}s",
            self.total_cells,
            self.cache_hits,
            self.simulated,
            self.skipped_by_shard,
            self.traces_cached,
            self.traces_built,
            self.elapsed.as_secs_f64()
        )
    }
}

/// Cache state of one scenario, computed without running anything.
#[derive(Clone, Debug)]
pub struct StatusReport {
    /// Scenario name.
    pub name: String,
    /// Scale inspected.
    pub scale: Scale,
    /// Total cells the scenario expands to.
    pub total_cells: usize,
    /// Cells already present in the cache.
    pub cached: usize,
}

/// A hook that asks cluster peers for an already-computed cell before the
/// engine simulates it: called with the cell's [`JobKey`] and canonical
/// descriptor, it returns a peer's entry or `None`. The engine verifies
/// the returned entry (format, simulator version, descriptor) before
/// trusting it, so a buggy or stale peer degrades to a cache miss.
pub type PeerFetch = Arc<dyn Fn(&JobKey, &str) -> Option<CellEntry> + Send + Sync>;

/// The experiment driver. See the module docs for the execution model.
#[derive(Clone, Default)]
pub struct Engine {
    opts: EngineOptions,
    peer_fetch: Option<PeerFetch>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("opts", &self.opts)
            .field("peer_fetch", &self.peer_fetch.is_some())
            .finish()
    }
}

struct CellJob {
    bench_idx: usize,
    label: String,
    config: SimConfig,
    descriptor: String,
    key: JobKey,
}

struct TraceJob {
    bench_idx: usize,
}

impl Engine {
    /// An engine with explicit options.
    pub fn new(opts: EngineOptions) -> Engine {
        Engine {
            opts,
            peer_fetch: None,
        }
    }

    /// Install a peer-fetch hook: before simulating a cell that missed the
    /// local cache, [`Engine::run_cell`] asks the hook for the entry (a
    /// cluster worker wires this to `GET /cache/cell/<hash>` on its
    /// peers). A verified peer entry is persisted locally and counts as a
    /// cache hit.
    pub fn with_peer_fetch(mut self, fetch: PeerFetch) -> Engine {
        self.peer_fetch = Some(fetch);
        self
    }

    /// An engine with caching disabled (used by `Sweep::run` and tests).
    pub fn ephemeral() -> Engine {
        Engine::new(EngineOptions {
            cache: CacheMode::Off,
            progress: false,
            jobs: None,
            shard: None,
        })
    }

    fn cache(&self) -> Option<Cache> {
        match &self.opts.cache {
            CacheMode::Disk(dir) => Some(Cache::new(dir.clone())),
            CacheMode::Off => None,
        }
    }

    /// Run a scenario: expand, validate, then [`Engine::run_cells`].
    ///
    /// # Errors
    /// Returns the scenario's expansion/validation error, if any.
    pub fn run_scenario(
        &self,
        scenario: &Scenario,
        scale: Option<Scale>,
    ) -> Result<RunReport, ScenarioError> {
        let configs = scenario.configs()?;
        let scale = scenario.scale_or(scale);
        Ok(self.run_cells(&configs, scale, |w| scenario.keeps(w)))
    }

    /// Cache status of a scenario at `scale` without simulating.
    ///
    /// # Errors
    /// Returns the scenario's expansion/validation error, if any.
    pub fn status(
        &self,
        scenario: &Scenario,
        scale: Option<Scale>,
    ) -> Result<StatusReport, ScenarioError> {
        let configs = scenario.configs()?;
        let scale = scenario.scale_or(scale);
        let cache = self.cache();
        let mut total = 0;
        let mut cached = 0;
        for wl in suite().iter().filter(|w| scenario.keeps(w)) {
            for (_, cfg) in &configs {
                total += 1;
                if let Some(c) = &cache {
                    if c.has_cell(&key_of(&cell_descriptor(wl.name, cfg, scale))) {
                        cached += 1;
                    }
                }
            }
        }
        Ok(StatusReport {
            name: scenario.name.clone(),
            scale,
            total_cells: total,
            cached,
        })
    }

    /// Run one (benchmark × configuration × scale) cell: probe the cache,
    /// else build the program, obtain its reference trace (cached when
    /// possible), simulate, and persist. Returns the cell and whether it
    /// was served from the cache.
    ///
    /// This is the single-job entry point behind the serving layer's
    /// `POST /run`; pair it with [`crate::coalesce::Coalescer`] (keyed by
    /// [`key_of`]`(`[`cell_descriptor`]`)`) to share one execution across
    /// concurrent identical requests.
    ///
    /// # Errors
    /// Returns a message for an invalid configuration or unknown
    /// benchmark; simulation itself does not fail.
    pub fn run_cell(
        &self,
        bench: &str,
        cfg: &SimConfig,
        scale: Scale,
    ) -> Result<(CellEntry, bool), String> {
        cfg.validate().map_err(|e| e.0)?;
        let wl = suite()
            .into_iter()
            .find(|w| w.name == bench)
            .ok_or_else(|| format!("unknown benchmark `{bench}`"))?;
        let descriptor = cell_descriptor(wl.name, cfg, scale);
        let key = key_of(&descriptor);
        let cache = self.cache();
        if let Some(entry) = cache.as_ref().and_then(|c| c.load_cell(&key, &descriptor)) {
            return Ok((entry, true));
        }
        if let Some(fetch) = &self.peer_fetch {
            if let Some(entry) = fetch(&key, &descriptor) {
                if entry.format == "mtvp-cell-v1"
                    && entry.version == SIM_VERSION
                    && entry.descriptor == descriptor
                {
                    if let Some(c) = &cache {
                        let _ = c.store_cell(&key, &entry);
                    }
                    return Ok((entry, true));
                }
            }
        }
        let program = wl.build(scale);
        let trace_desc = trace_descriptor(wl.name, scale);
        let trace_key = key_of(&trace_desc);
        let (dyn_instrs, trace) = match cache
            .as_ref()
            .and_then(|c| c.load_trace(&trace_key, &trace_desc))
        {
            Some((n, t)) => (n, t),
            None => {
                let (n, t) = reference_trace(&program);
                if let Some(c) = &cache {
                    let _ = c.store_trace(&trace_key, &trace_desc, n, &t);
                }
                (n, t)
            }
        };
        let (stats, sampled) = if cfg.sampling.is_some() {
            let s = run_sampled(
                cfg,
                &program,
                dyn_instrs,
                &trace,
                cache.as_ref().map(|c| CkptStore {
                    cache: c,
                    bench: wl.name,
                    scale,
                }),
            );
            (s.stats, Some(s.meta))
        } else {
            (
                run_with_trace_at(cfg, &program, dyn_instrs, trace, scale).stats,
                None,
            )
        };
        let entry = cell_entry(&wl, cfg, scale, &descriptor, dyn_instrs, stats, sampled);
        if let Some(c) = &cache {
            let _ = c.store_cell(&key, &entry);
        }
        Ok((entry, false))
    }

    /// Run every configuration over every kept benchmark at `scale`.
    /// This is the engine's core entry point; see the module docs.
    pub fn run_cells(
        &self,
        configs: &[(String, SimConfig)],
        scale: Scale,
        keep: impl Fn(&Workload) -> bool,
    ) -> RunReport {
        let t0 = std::time::Instant::now();
        let cache = self.cache();
        let registry = Registry::new();
        let workloads: Vec<Workload> = suite().into_iter().filter(|w| keep(w)).collect();
        let scheduler = Scheduler::with_jobs_cap(self.opts.jobs);

        // Enumerate cells, apply the shard filter, and probe the cache.
        let mut jobs: Vec<CellJob> = Vec::new();
        let mut hits: HashMap<(usize, String), CellEntry> = HashMap::new();
        let mut total_cells = 0usize;
        let mut skipped_by_shard = 0usize;
        for (bi, wl) in workloads.iter().enumerate() {
            for (label, cfg) in configs {
                let descriptor = cell_descriptor(wl.name, cfg, scale);
                let key = key_of(&descriptor);
                total_cells += 1;
                if let Some((i, n)) = self.opts.shard {
                    if key.shard_of(n) != i {
                        skipped_by_shard += 1;
                        continue;
                    }
                }
                if let Some(entry) = cache.as_ref().and_then(|c| c.load_cell(&key, &descriptor)) {
                    hits.insert((bi, label.clone()), entry);
                } else {
                    jobs.push(CellJob {
                        bench_idx: bi,
                        label: label.clone(),
                        config: cfg.clone(),
                        descriptor,
                        key,
                    });
                }
            }
        }
        let cache_hits = hits.len();

        // Phase 1: programs + reference traces for benchmarks with misses.
        let mut need_trace: Vec<TraceJob> = Vec::new();
        for (bi, _) in workloads.iter().enumerate() {
            if jobs.iter().any(|j| j.bench_idx == bi) {
                need_trace.push(TraceJob { bench_idx: bi });
            }
        }
        let traces_cached = std::sync::atomic::AtomicUsize::new(0);
        if self.opts.progress && !need_trace.is_empty() {
            eprintln!("[exp] preparing {} reference trace(s)", need_trace.len());
        }
        let prepared: Vec<(usize, mtvp_isa::Program, u64, Arc<mtvp_isa::trace::Trace>)> = scheduler
            .run(
                &need_trace,
                |j| workload_cost(&workloads[j.bench_idx], scale, 1),
                |j| {
                    let wl = &workloads[j.bench_idx];
                    let program = wl.build(scale);
                    let descriptor = trace_descriptor(wl.name, scale);
                    let key = key_of(&descriptor);
                    let (dyn_instrs, trace) =
                        match cache.as_ref().and_then(|c| c.load_trace(&key, &descriptor)) {
                            Some((n, t)) => {
                                traces_cached.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                (n, t)
                            }
                            None => {
                                let (n, t) = reference_trace(&program);
                                if let Some(c) = &cache {
                                    let _ = c.store_trace(&key, &descriptor, n, &t);
                                }
                                (n, t)
                            }
                        };
                    (j.bench_idx, program, dyn_instrs, trace)
                },
                |_, _| {},
            );
        let traces_cached = traces_cached.into_inner();
        let traces_built = prepared.len() - traces_cached;
        let by_bench: HashMap<usize, (mtvp_isa::Program, u64, Arc<mtvp_isa::trace::Trace>)> =
            prepared
                .into_iter()
                .map(|(bi, p, n, t)| (bi, (p, n, t)))
                .collect();

        // Phase 2: simulate the missing cells, longest jobs first, and
        // persist each one as soon as it completes (resume safety).
        let simulated = jobs.len();
        let sim_cycles = Mutex::new(Vec::with_capacity(jobs.len()));
        let n_jobs = jobs.len();
        let progress = self.opts.progress;
        let ckpt_hits = std::sync::atomic::AtomicU64::new(0);
        let ckpt_misses = std::sync::atomic::AtomicU64::new(0);
        let fresh: Vec<(usize, String, CellEntry)> = scheduler.run(
            &jobs,
            |j| workload_cost(&workloads[j.bench_idx], scale, j.config.contexts as u64),
            |j| {
                let wl = &workloads[j.bench_idx];
                let (program, dyn_instrs, trace) =
                    by_bench.get(&j.bench_idx).expect("trace prepared");
                let (stats, sampled) = if j.config.sampling.is_some() {
                    let s = run_sampled(
                        &j.config,
                        program,
                        *dyn_instrs,
                        trace,
                        cache.as_ref().map(|c| CkptStore {
                            cache: c,
                            bench: wl.name,
                            scale,
                        }),
                    );
                    ckpt_hits.fetch_add(s.ckpt_hits, std::sync::atomic::Ordering::Relaxed);
                    ckpt_misses.fetch_add(s.ckpt_misses, std::sync::atomic::Ordering::Relaxed);
                    (s.stats, Some(s.meta))
                } else {
                    let r =
                        run_with_trace_at(&j.config, program, *dyn_instrs, trace.clone(), scale);
                    (r.stats, None)
                };
                let entry = cell_entry(
                    wl,
                    &j.config,
                    scale,
                    &j.descriptor,
                    *dyn_instrs,
                    stats,
                    sampled,
                );
                if let Some(c) = &cache {
                    let _ = c.store_cell(&j.key, &entry);
                }
                sim_cycles
                    .lock()
                    .expect("cycles lock")
                    .push(entry.stats.cycles);
                (j.bench_idx, j.label.clone(), entry)
            },
            |done, i| {
                if progress {
                    eprint!(
                        "\r[exp] {done}/{n_jobs} cells simulated (last: {}/{})",
                        workloads[jobs[i].bench_idx].name, jobs[i].label
                    );
                    if done == n_jobs {
                        eprintln!();
                    }
                }
            },
        );

        // Assemble bench-major × config order, independent of completion
        // order, from cached + fresh cells.
        let mut fresh_map: HashMap<(usize, String), CellEntry> = fresh
            .into_iter()
            .map(|(bi, label, e)| ((bi, label), e))
            .collect();
        let mut cells = Vec::with_capacity(total_cells);
        for (bi, _) in workloads.iter().enumerate() {
            for (label, _) in configs {
                let slot = (bi, label.clone());
                let entry = hits.remove(&slot).or_else(|| fresh_map.remove(&slot));
                if let Some(e) = entry {
                    cells.push(Cell {
                        bench: e.bench,
                        suite_int: e.suite_int,
                        config: label.clone(),
                        stats: e.stats,
                    });
                }
            }
        }

        let mut registry = registry;
        registry.add("exp.cells.total", total_cells as u64);
        registry.add("exp.cells.cached", cache_hits as u64);
        registry.add("exp.cells.simulated", simulated as u64);
        registry.add("exp.cells.shard_skipped", skipped_by_shard as u64);
        registry.add("exp.traces.built", traces_built as u64);
        registry.add("exp.traces.cached", traces_cached as u64);
        registry.add("exp.ckpt.hits", ckpt_hits.into_inner());
        registry.add("exp.ckpt.misses", ckpt_misses.into_inner());
        for cycles in sim_cycles.into_inner().expect("cycles lock") {
            registry.observe("exp.cell.sim_cycles", cycles);
        }

        RunReport {
            scale,
            sweep: Sweep { cells },
            total_cells,
            cache_hits,
            simulated,
            skipped_by_shard,
            traces_built,
            traces_cached,
            registry,
            elapsed: t0.elapsed(),
        }
    }
}

/// Assemble the persistable entry for one completed simulation.
fn cell_entry(
    wl: &Workload,
    cfg: &SimConfig,
    scale: Scale,
    descriptor: &str,
    dyn_instrs: u64,
    stats: mtvp_pipeline::PipeStats,
    sampled: Option<SampledMeta>,
) -> CellEntry {
    CellEntry {
        format: "mtvp-cell-v1".to_string(),
        version: SIM_VERSION.to_string(),
        descriptor: descriptor.to_string(),
        bench: wl.name.to_string(),
        suite_int: wl.suite == mtvp_workloads::Suite::Int,
        scale: scale_tag(scale).to_string(),
        config: cfg.clone(),
        dyn_instrs,
        stats,
        sampled,
    }
}

/// Relative wall-clock cost of simulating one benchmark: iteration count
/// scaled by the build scale and the context count (more contexts means
/// more speculative work per committed instruction). Only the ordering
/// matters — the scheduler uses it for longest-job-first placement.
fn workload_cost(wl: &Workload, scale: Scale, contexts: u64) -> u64 {
    let iters = wl.params.iters.max(1) * scale.iter_factor();
    let work = 1 + u64::from(
        wl.params.alu_work + wl.params.fp_work + wl.params.stream_words + wl.params.noise_loads,
    );
    iters * work * (1 + contexts)
}

/// Render the per-benchmark percent-speedup table in the paper's layout:
/// integer benchmarks then FP, each followed by its geometric mean.
/// (Shared by the `mtvp-bench` wrappers and `exp run`.)
pub fn render_speedup_table(
    title: &str,
    sweep: &Sweep,
    configs: &[&str],
    baseline: &str,
) -> String {
    use mtvp_workloads::Suite;
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "\n=== {title} ===");
    let _ = writeln!(out, "(percent change in useful IPC vs `{baseline}`)\n");
    let width = 10usize;
    let _ = write!(out, "{:<12}", "benchmark");
    for c in configs {
        let _ = write!(out, "{c:>width$}");
    }
    let _ = writeln!(out);
    for &int_suite in &[true, false] {
        let _ = writeln!(out, "--- SPEC {} ---", if int_suite { "INT" } else { "FP" });
        for (bench, is_int) in sweep.benches() {
            if is_int != int_suite {
                continue;
            }
            let _ = write!(out, "{bench:<12}");
            for c in configs {
                match sweep.speedup(&bench, c, baseline) {
                    Some(s) => {
                        let _ = write!(out, "{s:>width$.1}");
                    }
                    None => {
                        let _ = write!(out, "{:>width$}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        let suite = if int_suite { Suite::Int } else { Suite::Fp };
        let _ = write!(out, "{:<12}", "geomean");
        for c in configs {
            let _ = write!(
                out,
                "{:>width$.1}",
                sweep.geomean_speedup(Some(suite), c, baseline)
            );
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvp_core::Mode;

    fn scratch() -> PathBuf {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!("mtvp-engine-unit-{}-{n}", std::process::id()))
    }

    fn tiny_configs() -> Vec<(String, SimConfig)> {
        let mut mtvp = SimConfig::oracle(Mode::Mtvp);
        mtvp.contexts = 2;
        vec![
            ("base".to_string(), SimConfig::new(Mode::Baseline)),
            ("mtvp2".to_string(), mtvp),
        ]
    }

    #[test]
    fn cached_rerun_simulates_nothing_and_matches() {
        let dir = scratch();
        let engine = Engine::new(EngineOptions {
            cache: CacheMode::Disk(dir.clone()),
            ..EngineOptions::default()
        });
        let keep = |w: &Workload| matches!(w.name, "mcf" | "mesa");
        let cold = engine.run_cells(&tiny_configs(), Scale::Tiny, keep);
        assert_eq!(cold.simulated, 4);
        assert_eq!(cold.cache_hits, 0);
        assert_eq!(cold.traces_built, 2);
        let warm = engine.run_cells(&tiny_configs(), Scale::Tiny, keep);
        assert_eq!(warm.simulated, 0);
        assert_eq!(warm.cache_hits, 4);
        assert_eq!(warm.sweep, cold.sweep);
        assert_eq!(warm.registry.counter("exp.cells.cached"), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shards_partition_a_sweep() {
        let dir = scratch();
        let keep = |w: &Workload| matches!(w.name, "mcf" | "mesa");
        let full = Engine::ephemeral().run_cells(&tiny_configs(), Scale::Tiny, keep);
        let mut merged: Vec<Cell> = Vec::new();
        let mut skipped = 0;
        for i in 0..3 {
            let eng = Engine::new(EngineOptions {
                cache: CacheMode::Disk(dir.clone()),
                shard: Some((i, 3)),
                ..EngineOptions::default()
            });
            let part = eng.run_cells(&tiny_configs(), Scale::Tiny, keep);
            skipped += part.skipped_by_shard;
            merged.extend(part.sweep.cells);
        }
        // Every cell lands in exactly one shard…
        assert_eq!(merged.len(), full.sweep.cells.len());
        assert_eq!(skipped, 2 * full.sweep.cells.len());
        // …and with identical stats to the unsharded run.
        for cell in &full.sweep.cells {
            let m = merged
                .iter()
                .find(|c| c.bench == cell.bench && c.config == cell.config)
                .expect("cell present in exactly one shard");
            assert_eq!(m, cell);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_cell_caches_and_matches_the_sweep_path() {
        let dir = scratch();
        let engine = Engine::new(EngineOptions {
            cache: CacheMode::Disk(dir.clone()),
            ..EngineOptions::default()
        });
        let cfg = SimConfig::new(Mode::Baseline);
        let (cold, hit) = engine.run_cell("mcf", &cfg, Scale::Tiny).unwrap();
        assert!(!hit);
        let (warm, hit) = engine.run_cell("mcf", &cfg, Scale::Tiny).unwrap();
        assert!(hit);
        assert_eq!(warm, cold);
        // The single-job path produces the same cell as the sweep path.
        let sweep = engine.run_cells(&[("base".to_string(), cfg.clone())], Scale::Tiny, |w| {
            w.name == "mcf"
        });
        assert_eq!(sweep.cache_hits, 1, "run_cell populated the sweep cache");
        assert_eq!(sweep.sweep.cells[0].stats, cold.stats);
        // Errors are reported, not panicked.
        assert!(engine.run_cell("nope", &cfg, Scale::Tiny).is_err());
        let mut bad = SimConfig::new(Mode::Baseline);
        bad.contexts = 8;
        assert!(engine.run_cell("mcf", &bad, Scale::Tiny).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sampled_sweep_shares_checkpoints_across_configs() {
        use mtvp_core::SamplingParams;
        let dir = scratch();
        let engine = Engine::new(EngineOptions {
            cache: CacheMode::Disk(dir.clone()),
            ..EngineOptions::default()
        });
        let sp = SamplingParams {
            window: 1_000,
            interval: 8_000,
            warmup: 500,
        };
        let mut a = SimConfig::new(Mode::Mtvp);
        a.sampling = Some(sp);
        let mut b = SimConfig::new(Mode::Baseline);
        b.sampling = Some(sp);
        let keep = |w: &Workload| w.name == "mcf";

        // Cold: every checkpoint is built and persisted.
        let cold = engine.run_cells(&[("a".to_string(), a.clone())], Scale::Small, keep);
        assert_eq!(cold.simulated, 1);
        assert!(cold.registry.counter("exp.ckpt.misses") > 0);
        assert_eq!(cold.registry.counter("exp.ckpt.hits"), 0);

        // A different configuration with the same schedule reuses them all.
        let shared = engine.run_cells(&[("b".to_string(), b)], Scale::Small, keep);
        assert_eq!(shared.simulated, 1);
        assert_eq!(shared.registry.counter("exp.ckpt.misses"), 0);
        assert!(shared.registry.counter("exp.ckpt.hits") > 0);

        // Re-running the first configuration is a pure cell-cache hit —
        // its stored (extrapolated) stats round-trip bit-identically.
        let again = engine.run_cells(&[("a".to_string(), a)], Scale::Small, keep);
        assert_eq!(again.simulated, 0);
        assert_eq!(again.cache_hits, 1);
        assert_eq!(again.sweep, cold.sweep);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn peer_fetch_fills_a_cold_cache_and_rejects_mismatches() {
        let dir_a = scratch();
        let dir_b = scratch();
        let warm = Engine::new(EngineOptions {
            cache: CacheMode::Disk(dir_a.clone()),
            ..EngineOptions::default()
        });
        let cfg = SimConfig::new(Mode::Baseline);
        let (expect, _) = warm.run_cell("mcf", &cfg, Scale::Tiny).unwrap();

        // A cold engine whose peer hook reads the warm cache: the cell
        // arrives without simulation and is persisted locally.
        let peer = Cache::new(dir_a.clone());
        let hits = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let hits_in = hits.clone();
        let cold = Engine::new(EngineOptions {
            cache: CacheMode::Disk(dir_b.clone()),
            ..EngineOptions::default()
        })
        .with_peer_fetch(Arc::new(move |key, descriptor| {
            hits_in.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            peer.load_cell(key, descriptor)
        }));
        let (got, hit) = cold.run_cell("mcf", &cfg, Scale::Tiny).unwrap();
        assert!(hit, "peer entry counts as a cache hit");
        assert_eq!(got, expect);
        assert_eq!(hits.load(std::sync::atomic::Ordering::Relaxed), 1);
        // Second run: served by the now-warm local cache, no peer call.
        let (_, hit) = cold.run_cell("mcf", &cfg, Scale::Tiny).unwrap();
        assert!(hit);
        assert_eq!(hits.load(std::sync::atomic::Ordering::Relaxed), 1);

        // A lying peer (wrong descriptor inside the entry) is ignored:
        // the engine verifies and falls through to simulation.
        let poisoned = Cache::new(dir_a.clone());
        let lying = Engine::ephemeral().with_peer_fetch(Arc::new(move |key, descriptor| {
            poisoned.load_cell(key, descriptor).map(|mut e| {
                e.descriptor = "tampered".to_string();
                e
            })
        }));
        let (recomputed, hit) = lying.run_cell("mcf", &cfg, Scale::Tiny).unwrap();
        assert!(!hit, "tampered peer entry must be recomputed");
        assert_eq!(recomputed, expect);
        std::fs::remove_dir_all(&dir_a).ok();
        std::fs::remove_dir_all(&dir_b).ok();
    }

    #[test]
    fn speedup_table_renders() {
        let sweep = Sweep::run_filtered(&tiny_configs(), Scale::Tiny, |w| w.name == "mcf");
        let t = render_speedup_table("t", &sweep, &["mtvp2"], "base");
        assert!(t.contains("mcf"));
        assert!(t.contains("geomean"));
    }
}
