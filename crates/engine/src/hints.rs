//! Cached spawn-site analysis: the engine-side wrapper that computes a
//! [`mtvp_analysis::SpawnHints`] artifact for a (benchmark × scale),
//! differentially validates it against the tracing interpreter, and
//! persists the result with the same content-addressed resumability as
//! experiment cells. The `StaticHintSpawn` pipeline policy consumes the
//! `hinted_loads` list as its spawn filter.

use crate::cache::{Cache, HintsEntry};
use crate::key::{hints_descriptor, key_of, scale_tag};
use mtvp_analysis::{analyze_spawn_sites, validate_spawn_hints, SpawnHints};
use mtvp_isa::Program;
use mtvp_workloads::Scale;

/// Dynamic-step budget for the differential validator. Registry programs
/// at tiny/small scale run well under this; the cap only guards against
/// a pathological synthetic input.
const VALIDATE_MAX_STEPS: u64 = 50_000_000;

/// Result of one (possibly cached) spawn-site analysis.
#[derive(Clone, Debug)]
pub struct HintsOutcome {
    /// Benchmark name the program was built from.
    pub bench: String,
    /// Sites the analysis selected for spawning.
    pub selected_sites: u32,
    /// Load PCs inside selected regions (the spawn filter).
    pub hinted_loads: Vec<u64>,
    /// Dynamic checks the differential validator performed.
    pub checks: u64,
    /// Whether the validator confirmed every predictable verdict.
    pub validated: bool,
    /// Full [`SpawnHints`] artifact as JSON.
    pub hints: serde_json::Value,
    /// Whether the result came from the cache.
    pub from_cache: bool,
}

/// Analyze spawn sites of `program` (already built for `bench` at
/// `scale`), differentially validate the verdicts, and consult/populate
/// `cache` when one is provided.
///
/// An unsound artifact (validator rejection) is never persisted: the
/// function panics instead, because a rejection means the static
/// analysis itself is broken — there is no recoverable "retry" state.
pub fn spawn_hints_cached(
    cache: Option<&Cache>,
    bench: &str,
    scale: Scale,
    program: &Program,
) -> HintsOutcome {
    let desc = hints_descriptor(bench, scale);
    let key = key_of(&desc);
    if let Some(c) = cache {
        if let Some(hit) = c.load_hints(&key, &desc) {
            return HintsOutcome {
                bench: bench.to_string(),
                selected_sites: hit.selected_sites,
                hinted_loads: hit.hinted_loads,
                checks: hit.checks,
                validated: hit.validated,
                hints: hit.hints,
                from_cache: true,
            };
        }
    }
    let hints = analyze_spawn_sites(program);
    let stats = match validate_spawn_hints(program, VALIDATE_MAX_STEPS) {
        Ok(s) => s,
        Err(e) => panic!("unsound spawn hints for {bench}: {e}"),
    };
    let entry = HintsEntry::new(&desc, bench, scale_tag(scale), &hints, stats.checks, true);
    if let Some(c) = cache {
        // Failure to persist is not failure to analyze.
        let _ = c.store_hints(&key, &entry);
    }
    HintsOutcome {
        bench: bench.to_string(),
        selected_sites: entry.selected_sites,
        hinted_loads: entry.hinted_loads,
        checks: entry.checks,
        validated: entry.validated,
        hints: entry.hints,
        from_cache: false,
    }
}

/// The hinted-load PCs for `program`, computed without validation or
/// caching. This is the hot path the run layer uses to lower
/// `SpawnPolicyKind::Static` into `VpConfig::hinted_pcs`: pure static
/// analysis, deterministic, cheap relative to a detailed simulation.
pub fn hinted_loads_for(program: &Program) -> Vec<u64> {
    analyze_spawn_sites(program).hinted_loads
}

/// Re-export convenience: the raw artifact for one program.
pub fn spawn_hints_for(program: &Program) -> SpawnHints {
    analyze_spawn_sites(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvp_isa::{ProgramBuilder, Reg};

    fn scratch() -> std::path::PathBuf {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!("mtvp-hints-unit-{}-{n}", std::process::id()))
    }

    /// A fully predictable streaming loop — affine induction variable,
    /// affine base pointer, loop-invariant bound — whose single load is
    /// the canonical selected spawn hint.
    fn stream_kernel() -> mtvp_isa::Program {
        let mut b = ProgramBuilder::new();
        let base = b.alloc_u64(&[7; 64]);
        let (p, i, n) = (Reg(1), Reg(2), Reg(3));
        b.li(p, base as i64).li(i, 0).li(n, 64);
        let top = b.here_label();
        b.ld(Reg(0), p, 0); // load to r0: pure touch, no def
        b.addi(p, p, 8);
        b.addi(i, i, 1);
        b.blt(i, n, top);
        b.halt();
        b.build()
    }

    #[test]
    fn second_analysis_is_served_from_cache() {
        let dir = scratch();
        let cache = Cache::new(&dir);
        let p = stream_kernel();
        let first = spawn_hints_cached(Some(&cache), "unit-bench", Scale::Tiny, &p);
        assert!(!first.from_cache);
        assert!(first.validated);
        assert!(first.checks > 0);
        assert!(first.selected_sites >= 1);
        assert!(!first.hinted_loads.is_empty());
        let second = spawn_hints_cached(Some(&cache), "unit-bench", Scale::Tiny, &p);
        assert!(second.from_cache);
        assert_eq!(second.hinted_loads, first.hinted_loads);
        assert_eq!(second.hints, first.hints);
        // Without a cache, every run is fresh.
        let none = spawn_hints_cached(None, "unit-bench", Scale::Tiny, &p);
        assert!(!none.from_cache);
        assert_eq!(none.hinted_loads, first.hinted_loads);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hinted_loads_match_the_artifact() {
        let p = stream_kernel();
        let hints = spawn_hints_for(&p);
        assert_eq!(hinted_loads_for(&p), hints.hinted_loads);
    }
}
