//! Content-addressed job keys.
//!
//! Every experiment cell — one (benchmark × configuration × scale)
//! simulation — is identified by a stable hash over its complete inputs
//! plus a simulator version tag. The key is the cache filename, the shard
//! assignment, and the resume identity: two jobs with the same key are the
//! same simulation and may share a cached result.

use mtvp_core::SimConfig;
use mtvp_workloads::Scale;

/// Simulator version tag baked into every cache key.
///
/// Bump this whenever a change alters simulated statistics (pipeline
/// semantics, memory timing, predictor behaviour, workload generation) so
/// stale cache entries can never be served for the new simulator.
pub const SIM_VERSION: &str = "mtvp-sim-v4";

/// A stable 128-bit content hash identifying one job, as 32 hex digits.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobKey(String);

impl JobKey {
    /// The hex digest (the cache filename stem).
    pub fn hex(&self) -> &str {
        &self.0
    }

    /// Reconstruct a key from its 32-hex-digit digest (e.g. out of a
    /// cluster peering URL). `None` unless `hex` is exactly 32 lowercase
    /// hex digits, so URL input can never escape the cache directory.
    pub fn from_hex(hex: &str) -> Option<JobKey> {
        (hex.len() == 32
            && hex
                .bytes()
                .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b)))
        .then(|| JobKey(hex.to_string()))
    }

    /// Stable shard assignment in `0..shards` (content-addressed, so it
    /// is identical across runs and machines).
    pub fn shard_of(&self, shards: usize) -> usize {
        debug_assert!(shards > 0);
        let hi = u64::from_str_radix(&self.0[..16], 16).unwrap_or(0);
        (hi % shards as u64) as usize
    }
}

impl std::fmt::Display for JobKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

pub(crate) fn fnv1a64(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = seed;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hash a canonical descriptor string into a [`JobKey`] (two independent
/// FNV-1a passes for a 128-bit digest).
pub fn key_of(descriptor: &str) -> JobKey {
    let h1 = fnv1a64(0xcbf2_9ce4_8422_2325, descriptor.as_bytes());
    let h2 = fnv1a64(0x8422_2325_cbf2_9ce4 ^ h1, descriptor.as_bytes());
    JobKey(format!("{h1:016x}{h2:016x}"))
}

/// Stable lowercase tag for a scale (part of descriptors).
pub fn scale_tag(scale: Scale) -> &'static str {
    match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Full => "full",
    }
}

/// Canonical descriptor of one simulation cell. Hashed into the job key
/// and stored verbatim in the cache entry, so a (vanishingly unlikely)
/// hash collision degrades to a cache miss instead of a wrong result.
///
/// The configuration is serialized through serde, which emits fields in
/// declaration order — the descriptor is deterministic for a given
/// `SimConfig` value.
pub fn cell_descriptor(bench: &str, cfg: &SimConfig, scale: Scale) -> String {
    format!(
        "{SIM_VERSION}|cell|{bench}|{}|{}",
        scale_tag(scale),
        serde_json::to_value(cfg)
    )
}

/// Canonical descriptor of one reference trace (benchmark × scale).
pub fn trace_descriptor(bench: &str, scale: Scale) -> String {
    format!("{SIM_VERSION}|trace|{bench}|{}", scale_tag(scale))
}

/// Canonical descriptor of one functional checkpoint: the reference
/// interpreter's architectural state at dynamic-instruction `index`.
///
/// Deliberately *excludes* the simulation configuration: architectural
/// state at an instruction index is a pure function of the program, so
/// every configuration in a sweep that fast-forwards to the same index —
/// any set sharing a sampling schedule — reuses one checkpoint. The
/// micro-architectural warm state is not stored; each configuration
/// rebuilds it deterministically with its own warm-up run.
pub fn ckpt_descriptor(bench: &str, scale: Scale, index: u64) -> String {
    format!("{SIM_VERSION}|ckpt|{bench}|{}|{index}", scale_tag(scale))
}

/// Canonical descriptor of one static-lint result (benchmark × scale).
/// Includes both the simulator version (workload generation feeds the
/// linted program) and the analysis version (rule changes invalidate
/// cached reports).
pub fn lint_descriptor(bench: &str, scale: Scale) -> String {
    format!(
        "{SIM_VERSION}|lint|{}|{bench}|{}",
        mtvp_analysis::ANALYSIS_VERSION,
        scale_tag(scale)
    )
}

/// Canonical descriptor of one spawn-site analysis artifact
/// (benchmark × scale). Versioned by both the simulator (workload
/// generation feeds the analyzed program) and the analysis (lattice or
/// scoring changes invalidate cached hints).
pub fn hints_descriptor(bench: &str, scale: Scale) -> String {
    format!(
        "{SIM_VERSION}|spawn-hints|{}|{bench}|{}",
        mtvp_analysis::ANALYSIS_VERSION,
        scale_tag(scale)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvp_core::Mode;

    #[test]
    fn keys_are_stable_and_distinct() {
        let cfg = SimConfig::new(Mode::Mtvp);
        let a = key_of(&cell_descriptor("mcf", &cfg, Scale::Tiny));
        let b = key_of(&cell_descriptor("mcf", &cfg, Scale::Tiny));
        assert_eq!(a, b);
        assert_eq!(a.hex().len(), 32);
        let c = key_of(&cell_descriptor("mesa", &cfg, Scale::Tiny));
        assert_ne!(a, c);
        let d = key_of(&cell_descriptor("mcf", &cfg, Scale::Small));
        assert_ne!(a, d);
        let e = key_of(&trace_descriptor("mcf", Scale::Tiny));
        assert_ne!(a, e);
        let f = key_of(&lint_descriptor("mcf", Scale::Tiny));
        assert_ne!(e, f);
        let g = key_of(&ckpt_descriptor("mcf", Scale::Tiny, 50_000));
        assert_ne!(g, key_of(&ckpt_descriptor("mcf", Scale::Tiny, 100_000)));
        assert_ne!(g, key_of(&ckpt_descriptor("mcf", Scale::Small, 50_000)));
        assert!(lint_descriptor("mcf", Scale::Tiny).contains(mtvp_analysis::ANALYSIS_VERSION));
        let h = key_of(&hints_descriptor("mcf", Scale::Tiny));
        assert_ne!(f, h);
        assert_ne!(
            hints_descriptor("mcf", Scale::Tiny),
            hints_descriptor("mcf", Scale::Small)
        );
        assert!(hints_descriptor("mcf", Scale::Tiny).contains(mtvp_analysis::ANALYSIS_VERSION));
    }

    #[test]
    fn shards_cover_all_indices() {
        let mut seen = [false; 4];
        for bench in [
            "mcf", "mesa", "swim", "vpr r", "gcc 1", "mgrid", "applu", "twolf",
        ] {
            let k = key_of(&trace_descriptor(bench, Scale::Tiny));
            seen[k.shard_of(4)] = true;
        }
        assert!(seen.iter().filter(|s| **s).count() >= 2, "{seen:?}");
    }
}
