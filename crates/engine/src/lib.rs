//! # mtvp-engine
//!
//! The experiment engine of the *Multithreaded Value Prediction*
//! reproduction (Tuck & Tullsen, HPCA-11 2005): a one-call runner that
//! pairs the cycle simulator with its reference interpreter, and a
//! declarative, cached, resumable sweep driver used by the figure harness
//! and the `mtvp-sim exp` subcommands.
//!
//! The layers, bottom up:
//!
//! - [`run`] — simulate one program under one [`SimConfig`], validated
//!   against the reference interpreter.
//! - [`key`] / [`cache`] — every (benchmark × config × scale) cell is a
//!   content-addressed job; completed cells and reference traces persist
//!   under `results/cache/` keyed by a stable hash that includes a
//!   simulator version tag.
//! - [`scheduler`] — work-stealing, longest-job-first execution with a
//!   `--jobs` cap.
//! - [`scenario`] / [`builtin`] — experiments as data: serde-described
//!   config grids, with the paper's figures shipped as built-ins.
//! - [`engine`] — [`Engine`] orchestrates all of the above;
//!   [`sweep::Sweep`] holds the results and the paper's aggregation
//!   arithmetic.
//!
//! # Example
//!
//! ```
//! use mtvp_engine::{run_program, Mode, SimConfig};
//! use mtvp_workloads::{suite, Scale};
//!
//! let mcf = suite().into_iter().find(|w| w.name == "mcf").unwrap();
//! let program = mcf.build(Scale::Tiny);
//!
//! let baseline = run_program(&SimConfig::new(Mode::Baseline), &program);
//! let mut cfg = SimConfig::new(Mode::Mtvp);
//! cfg.contexts = 4;
//! let mtvp = run_program(&cfg, &program);
//! // Both executions are architecturally validated against the
//! // interpreter; compare useful IPC for the paper's "percent speedup".
//! let _speedup = mtvp.stats.speedup_over(&baseline.stats);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builtin;
pub mod cache;
pub mod coalesce;
pub mod engine;
pub mod hints;
pub mod key;
pub mod lint;
pub mod partition;
pub mod run;
pub mod sampling;
pub mod scenario;
pub mod scheduler;
pub mod sweep;

pub use builtin::{builtin, builtin_scenarios};
pub use cache::{Cache, CellEntry, Checkpoint, HintsEntry, LintEntry};
pub use coalesce::{Coalesced, Coalescer};
pub use engine::{
    render_speedup_table, CacheMode, Engine, EngineOptions, PeerFetch, RunReport, StatusReport,
};
pub use hints::{hinted_loads_for, spawn_hints_cached, spawn_hints_for, HintsOutcome};
pub use key::{
    cell_descriptor, ckpt_descriptor, hints_descriptor, key_of, lint_descriptor, trace_descriptor,
    JobKey, SIM_VERSION,
};
pub use lint::{lint_program_cached, LintOutcome};
pub use partition::{owner_of, partition};
pub use run::{
    reference_trace, run_program, run_program_at, run_program_traced, run_with_trace,
    run_with_trace_at, RunResult, TraceOptions,
};
pub use sampling::{ipc_error, relative_errors, run_sampled, CkptStore, SampledMeta, SampledRun};
pub use scenario::{ConfigGrid, Scenario, ScenarioError};
pub use scheduler::{parallel_map, Scheduler};
pub use sweep::{Cell, Sweep};

// The experiment-level vocabulary, re-exported so dependents need only
// this crate (mirrors the old `mtvp_core` surface).
pub use mtvp_core::{
    parse_core, parse_mode, parse_predictor, parse_scale, parse_selector, parse_spawn_policy,
    ConfigError, CoreKind, L3Params, Mode, SamplingParams, SimConfig, SpawnPolicyKind,
};
pub use mtvp_obs::{chrome_trace, pipeview, Event, Registry, RingTracer};
pub use mtvp_pipeline::{PipeStats, PredictorKind, SelectorKind};
pub use mtvp_workloads::{suite, Scale, Suite, Workload};
