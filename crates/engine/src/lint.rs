//! Cached static-lint runs: the engine-side wrapper that gives
//! `mtvp-sim lint` the same content-addressed resumability as experiment
//! sweeps. A lint result is keyed by (simulator version × analysis
//! version × benchmark × scale) — workload generation feeds the linted
//! program, so either version bump invalidates the entry.

use crate::cache::{Cache, LintEntry};
use crate::key::{key_of, lint_descriptor, scale_tag};
use mtvp_analysis::lint_program;
use mtvp_isa::Program;
use mtvp_workloads::Scale;

/// Result of one (possibly cached) lint run.
#[derive(Clone, Debug)]
pub struct LintOutcome {
    /// Benchmark name the program was built from.
    pub bench: String,
    /// Error-severity diagnostic count.
    pub errors: usize,
    /// Warning-severity diagnostic count.
    pub warnings: usize,
    /// Full report as JSON (see [`mtvp_analysis::LintReport::to_value`]).
    pub report: serde_json::Value,
    /// Whether the result came from the cache.
    pub from_cache: bool,
}

/// Lint `program` (already built for `bench` at `scale`), consulting and
/// populating `cache` when one is provided.
pub fn lint_program_cached(
    cache: Option<&Cache>,
    bench: &str,
    scale: Scale,
    program: &Program,
) -> LintOutcome {
    let desc = lint_descriptor(bench, scale);
    let key = key_of(&desc);
    if let Some(c) = cache {
        if let Some(hit) = c.load_lint(&key, &desc) {
            return LintOutcome {
                bench: bench.to_string(),
                errors: hit.errors,
                warnings: hit.warnings,
                report: hit.report,
                from_cache: true,
            };
        }
    }
    let report = lint_program(program);
    let entry = LintEntry::new(&desc, bench, scale_tag(scale), &report);
    if let Some(c) = cache {
        // Failure to persist is not failure to lint.
        let _ = c.store_lint(&key, &entry);
    }
    LintOutcome {
        bench: bench.to_string(),
        errors: entry.errors,
        warnings: entry.warnings,
        report: entry.report,
        from_cache: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvp_isa::{ProgramBuilder, Reg};

    fn scratch() -> std::path::PathBuf {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!("mtvp-lint-unit-{}-{n}", std::process::id()))
    }

    #[test]
    fn second_run_is_served_from_cache() {
        let dir = scratch();
        let cache = Cache::new(&dir);
        let mut b = ProgramBuilder::new();
        b.li(Reg(1), 7);
        b.halt();
        let p = b.build();
        let first = lint_program_cached(Some(&cache), "unit-bench", Scale::Tiny, &p);
        assert!(!first.from_cache);
        assert_eq!(first.errors, 0);
        let second = lint_program_cached(Some(&cache), "unit-bench", Scale::Tiny, &p);
        assert!(second.from_cache);
        assert_eq!(second.errors, first.errors);
        assert_eq!(second.report, first.report);
        // Without a cache, every run is fresh.
        let none = lint_program_cached(None, "unit-bench", Scale::Tiny, &p);
        assert!(!none.from_cache);
        std::fs::remove_dir_all(&dir).ok();
    }
}
