//! Consistent-hash partitioning of content-addressed cells over workers.
//!
//! The cluster coordinator assigns every cell [`JobKey`] to one worker by
//! **rendezvous (highest-random-weight) hashing**: each (worker, key) pair
//! is scored with an independent FNV-1a pass, and the highest score owns
//! the key. Unlike `JobKey::shard_of` (plain modulo, used for the static
//! `--shard i/n` split), rendezvous hashing has the *minimal movement*
//! property a dynamic fabric needs:
//!
//! - Adding a worker moves only the keys the new worker now wins — on
//!   average `cells / (n + 1)` — and every moved key moves **to** the new
//!   worker, never between survivors.
//! - Removing a worker reassigns only that worker's keys, redistributing
//!   them over the survivors; nothing else moves. This is exactly the
//!   re-shard the coordinator performs when it declares a worker dead.
//!
//! Scores depend only on the worker identity string and the key's hex
//! digest, so every node computes the same assignment with no shared
//! state — the coordinator and any observer agree on ownership.

use crate::key::{fnv1a64, JobKey};

/// Rendezvous score of `worker` for `key`. Chains two FNV-1a passes so
/// the worker identity perturbs the whole key digest.
fn score(worker: &str, key: &JobKey) -> u64 {
    let h = fnv1a64(0x9e37_79b9_7f4a_7c15, worker.as_bytes());
    fnv1a64(h ^ 0xcbf2_9ce4_8422_2325, key.hex().as_bytes())
}

/// Index (into `workers`) of the worker that owns `key`, by rendezvous
/// hashing. Ties (score collisions) break toward the lower index, so the
/// choice is deterministic for any worker list.
///
/// # Panics
/// Panics if `workers` is empty — an empty fabric owns nothing.
pub fn owner_of(key: &JobKey, workers: &[String]) -> usize {
    assert!(!workers.is_empty(), "owner_of: no workers");
    let mut best = 0usize;
    let mut best_score = score(&workers[0], key);
    for (i, w) in workers.iter().enumerate().skip(1) {
        let s = score(w, key);
        if s > best_score {
            best = i;
            best_score = s;
        }
    }
    best
}

/// Partition `keys` over `workers`: returns one vector of key indices per
/// worker (complete and disjoint — every key index appears in exactly one
/// bucket, in input order).
///
/// # Panics
/// Panics if `workers` is empty.
pub fn partition(keys: &[JobKey], workers: &[String]) -> Vec<Vec<usize>> {
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); workers.len()];
    for (i, key) in keys.iter().enumerate() {
        buckets[owner_of(key, workers)].push(i);
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::key_of;

    fn keys(n: usize) -> Vec<JobKey> {
        (0..n).map(|i| key_of(&format!("cell-{i}"))).collect()
    }

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect()
    }

    #[test]
    fn partition_is_complete_and_disjoint() {
        let ks = keys(100);
        let ws = names(4);
        let buckets = partition(&ks, &ws);
        let mut seen = vec![false; ks.len()];
        for b in &buckets {
            for &i in b {
                assert!(!seen[i], "key {i} assigned twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|s| *s), "every key assigned");
    }

    #[test]
    fn growing_the_fabric_only_moves_keys_to_the_new_worker() {
        let ks = keys(200);
        let ws = names(3);
        let mut grown = ws.clone();
        grown.push("127.0.0.1:9100".to_string());
        let mut moved = 0usize;
        for k in &ks {
            let before = owner_of(k, &ws);
            let after = owner_of(k, &grown);
            if before != after {
                moved += 1;
                assert_eq!(after, 3, "moved key must land on the new worker");
            }
        }
        // ~1/4 of keys should move; allow a generous band.
        assert!(moved > 0 && moved < ks.len() / 2, "moved {moved}");
    }

    #[test]
    fn removal_reassigns_only_the_dead_workers_keys() {
        let ks = keys(200);
        let ws = names(4);
        let survivors: Vec<String> = ws.iter().take(3).cloned().collect();
        for k in &ks {
            let before = owner_of(k, &ws);
            let after = owner_of(k, &survivors);
            if before != 3 {
                assert_eq!(before, after, "surviving assignment must not move");
            }
        }
    }
}
