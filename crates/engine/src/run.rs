//! One-call simulation: reference run + traced oracle + cycle simulation,
//! with architectural validation built in.

use mtvp_core::{CoreKind, SimConfig, SpawnPolicyKind};
use mtvp_isa::interp::{Interp, SimpleBus};
use mtvp_isa::Program;
use mtvp_mem::SharedL3Handle;
use mtvp_obs::{NullTracer, RingTracer, Tracer};
use mtvp_pipeline::{
    CmpMachine, CoRunner, Core, InOrderMachine, Machine, PipeStats, PipelineConfig, SmtOooStages,
    SmtOooStaticHintStages, StageSet, StagedCore, StaticHintMachine,
};
use mtvp_workloads::synth::build_co_workload;
use mtvp_workloads::Scale;
use std::sync::Arc;

/// Lower `cfg` to a pipeline configuration for `program`. Under the
/// static spawn policy this is where the spawn-site analysis runs: the
/// selected sites' load PCs become `VpConfig::hinted_pcs`, the filter
/// `StaticHintSpawn` consults at rename. The analysis is deterministic,
/// so every build of the same (config, program) pair sees the same hints.
pub(crate) fn lowered_pipeline_config(cfg: &SimConfig, program: &Program) -> PipelineConfig {
    let mut p = cfg.to_pipeline_config();
    if cfg.spawn_policy == SpawnPolicyKind::Static {
        p.vp.hinted_pcs = crate::hints::hinted_loads_for(program);
    }
    p
}

/// The outcome of simulating one program under one configuration.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Cycle-level statistics.
    pub stats: PipeStats,
    /// Dynamic instructions on the committed path (from the reference run).
    pub dyn_instrs: u64,
}

impl RunResult {
    /// Useful IPC.
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }
}

/// Functionally pre-execute `program` to obtain its committed-path trace.
///
/// # Panics
/// Panics if the program does not halt within 200M instructions.
pub fn reference_trace(program: &Program) -> (u64, Arc<mtvp_isa::trace::Trace>) {
    let mut bus = SimpleBus::new();
    let mut interp = Interp::new(program);
    let (res, trace) = interp.run_traced(&mut bus, 200_000_000);
    assert!(res.halted, "workload {} does not halt", program.name);
    (res.dyn_instrs, Arc::new(trace))
}

/// Simulate `program` under `cfg`. The committed path is validated against
/// the reference interpreter instruction by instruction. CMP co-workloads
/// (if any) are built at [`Scale::Small`]; use [`run_program_at`] to pick
/// the scale explicitly.
pub fn run_program(cfg: &SimConfig, program: &Program) -> RunResult {
    run_program_at(cfg, program, Scale::Small)
}

/// Simulate `program` under `cfg`, building any CMP co-workloads at
/// `scale` (which only matters when `cfg.cores > 1` and
/// `cfg.co_workloads` is non-empty — pass the scale `program` itself was
/// built at so the mix's relative lengths are meaningful).
pub fn run_program_at(cfg: &SimConfig, program: &Program, scale: Scale) -> RunResult {
    let (dyn_instrs, trace) = reference_trace(program);
    run_with_trace_at(cfg, program, dyn_instrs, trace, scale)
}

/// Simulate with a pre-computed reference trace (lets sweeps amortize the
/// functional run across configurations). CMP co-workloads are built at
/// [`Scale::Small`]; see [`run_with_trace_at`].
pub fn run_with_trace(
    cfg: &SimConfig,
    program: &Program,
    dyn_instrs: u64,
    trace: Arc<mtvp_isa::trace::Trace>,
) -> RunResult {
    run_with_trace_at(cfg, program, dyn_instrs, trace, Scale::Small)
}

/// Simulate with a pre-computed reference trace, building any CMP
/// co-workloads at `scale`.
///
/// # Panics
/// Panics on co-workload specs [`SimConfig::validate`] would have
/// rejected, and on generated co-workloads failing the error-severity
/// program lints (a generator bug, not a configuration).
pub fn run_with_trace_at(
    cfg: &SimConfig,
    program: &Program,
    dyn_instrs: u64,
    trace: Arc<mtvp_isa::trace::Trace>,
    scale: Scale,
) -> RunResult {
    if cfg.cores > 1 {
        // CMP topologies: the co-runner fleet and the shared L3 wrap the
        // same stage-set selection the single-core arms make below. The
        // in-order core has no CMP composition (validate() rejects it).
        return match (cfg.core, cfg.spawn_policy) {
            (CoreKind::OutOfOrder, SpawnPolicyKind::Dynamic) => {
                run_cmp_on::<NullTracer, SmtOooStages>(
                    cfg, program, dyn_instrs, trace, scale, NullTracer,
                )
                .0
            }
            (CoreKind::OutOfOrder, SpawnPolicyKind::Static) => {
                run_cmp_on::<NullTracer, SmtOooStaticHintStages>(
                    cfg, program, dyn_instrs, trace, scale, NullTracer,
                )
                .0
            }
            (CoreKind::InOrderScalar, _) => {
                panic!("SimConfig::validate rejects CMP topologies on the in-order core")
            }
        };
    }
    // The only place the (core, spawn policy) axes become a concrete
    // machine type: every core module below this match is reached through
    // the `Core` trait. The in-order core has no spawn decision point, so
    // its arm ignores the policy (validate() rejects the combination).
    match (cfg.core, cfg.spawn_policy) {
        (CoreKind::OutOfOrder, SpawnPolicyKind::Dynamic) => {
            run_with_trace_on::<Machine>(cfg, program, dyn_instrs, trace)
        }
        (CoreKind::OutOfOrder, SpawnPolicyKind::Static) => {
            run_with_trace_on::<StaticHintMachine>(cfg, program, dyn_instrs, trace)
        }
        (CoreKind::InOrderScalar, _) => {
            run_with_trace_on::<InOrderMachine>(cfg, program, dyn_instrs, trace)
        }
    }
}

/// Resolve, lint-gate, and functionally pre-execute the co-workloads of
/// a CMP configuration. Generated (synth/phases) programs must pass every
/// error-severity lint in `mtvp-analysis` before they are allowed onto a
/// sibling core — a generator that emits an uninitialized read or an
/// unreachable halt would poison the mix silently otherwise.
fn resolve_co_workloads(
    cfg: &SimConfig,
    scale: Scale,
) -> Vec<(Program, Arc<mtvp_isa::trace::Trace>)> {
    cfg.co_workloads
        .iter()
        .map(|spec| {
            let p = build_co_workload(spec, scale)
                .unwrap_or_else(|e| panic!("{e} (SimConfig::validate admits only valid specs)"));
            if spec.starts_with("synth:") || spec.starts_with("phases:") {
                let report = mtvp_analysis::lint_program(&p);
                assert_eq!(
                    report.errors(),
                    0,
                    "generated co-workload `{spec}` failed error-severity lints: {:?}",
                    report.diags
                );
            }
            let (_, trace) = reference_trace(&p);
            (p, trace)
        })
        .collect()
}

/// Assemble and run a CMP topology: the primary core under `tracer`,
/// one co-runner core per co-workload, idle siblings donating remote
/// contexts (already lowered into the primary's `PipelineConfig` by
/// `SimConfig::to_pipeline_config`), all over one shared L3.
fn run_cmp_on<T: Tracer, S: StageSet>(
    cfg: &SimConfig,
    program: &Program,
    dyn_instrs: u64,
    trace: Arc<mtvp_isa::trace::Trace>,
    scale: Scale,
    tracer: T,
) -> (RunResult, T) {
    let co = resolve_co_workloads(cfg, scale);
    let mem_cfg = cfg.to_mem_config();
    let primary: StagedCore<'_, T, S> = StagedCore::with_tracer(
        lowered_pipeline_config(cfg, program),
        mem_cfg,
        program,
        Some(trace),
        tracer,
    );
    // Co-runners never borrow remote slots (only the primary spawns
    // cross-core), so lower their configs with that knob cleared.
    let mut co_cfg = cfg.clone();
    co_cfg.cross_core_spawn = false;
    let co_runners: Vec<CoRunner<'_, S>> = co
        .iter()
        .map(|(p, t)| {
            CoRunner::new(StagedCore::with_mem_config(
                lowered_pipeline_config(&co_cfg, p),
                mem_cfg,
                p,
                Some(t.clone()),
            ))
        })
        .collect();
    let shared = cfg.shared_l3_spec().map(SharedL3Handle::new);
    let mut machine = CmpMachine::assemble(cfg.cores, primary, co_runners, shared);
    let stats = machine.run();
    (RunResult { stats, dyn_instrs }, machine.into_tracer())
}

fn run_with_trace_on<'p, C: Core<'p>>(
    cfg: &SimConfig,
    program: &'p Program,
    dyn_instrs: u64,
    trace: Arc<mtvp_isa::trace::Trace>,
) -> RunResult {
    let mut machine = C::build_core(
        lowered_pipeline_config(cfg, program),
        cfg.to_mem_config(),
        program,
        Some(trace),
        NullTracer,
        true,
    );
    let stats = machine.run();
    RunResult { stats, dyn_instrs }
}

/// Options for a traced run (see [`run_program_traced`]).
#[derive(Clone, Debug)]
pub struct TraceOptions {
    /// Ring capacity: the newest `ring` events are retained.
    pub ring: usize,
    /// Optional `[start, end)` cycle window for ring retention.
    pub window: Option<(u64, u64)>,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions {
            ring: 1 << 20,
            window: None,
        }
    }
}

/// Simulate `program` under `cfg` with uop-lifecycle tracing enabled,
/// returning the result and the tracer (ring of events + counter and
/// histogram registry).
pub fn run_program_traced(
    cfg: &SimConfig,
    program: &Program,
    opts: &TraceOptions,
) -> (RunResult, RingTracer) {
    if cfg.cores > 1 {
        let (dyn_instrs, trace) = reference_trace(program);
        let mut tracer = RingTracer::new(opts.ring);
        if let Some((start, end)) = opts.window {
            tracer = tracer.with_window(start, end);
        }
        // Only the primary core is traced; co-runner lifecycle events
        // would interleave meaninglessly with the measured workload's.
        return match (cfg.core, cfg.spawn_policy) {
            (CoreKind::OutOfOrder, SpawnPolicyKind::Dynamic) => {
                run_cmp_on::<RingTracer, SmtOooStages>(
                    cfg,
                    program,
                    dyn_instrs,
                    trace,
                    Scale::Small,
                    tracer,
                )
            }
            (CoreKind::OutOfOrder, SpawnPolicyKind::Static) => {
                run_cmp_on::<RingTracer, SmtOooStaticHintStages>(
                    cfg,
                    program,
                    dyn_instrs,
                    trace,
                    Scale::Small,
                    tracer,
                )
            }
            (CoreKind::InOrderScalar, _) => {
                panic!("SimConfig::validate rejects CMP topologies on the in-order core")
            }
        };
    }
    match (cfg.core, cfg.spawn_policy) {
        (CoreKind::OutOfOrder, SpawnPolicyKind::Dynamic) => {
            run_traced_on::<Machine<RingTracer>>(cfg, program, opts)
        }
        (CoreKind::OutOfOrder, SpawnPolicyKind::Static) => {
            run_traced_on::<StaticHintMachine<RingTracer>>(cfg, program, opts)
        }
        (CoreKind::InOrderScalar, _) => {
            run_traced_on::<InOrderMachine<RingTracer>>(cfg, program, opts)
        }
    }
}

fn run_traced_on<'p, C: Core<'p, RingTracer>>(
    cfg: &SimConfig,
    program: &'p Program,
    opts: &TraceOptions,
) -> (RunResult, RingTracer) {
    let (dyn_instrs, trace) = reference_trace(program);
    let mut tracer = RingTracer::new(opts.ring);
    if let Some((start, end)) = opts.window {
        tracer = tracer.with_window(start, end);
    }
    let mut machine = C::build_core(
        lowered_pipeline_config(cfg, program),
        cfg.to_mem_config(),
        program,
        Some(trace),
        tracer,
        true,
    );
    let stats = machine.run();
    (RunResult { stats, dyn_instrs }, machine.into_tracer())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvp_core::Mode;
    use mtvp_workloads::{suite, Scale};

    #[test]
    fn run_completes_and_validates() {
        let wl = suite().into_iter().find(|w| w.name == "gzip g").unwrap();
        let program = wl.build(Scale::Tiny);
        let r = run_program(&SimConfig::new(Mode::Baseline), &program);
        assert!(r.stats.halted);
        assert_eq!(r.stats.committed, r.dyn_instrs);
        assert!(r.ipc() > 0.0);
    }

    #[test]
    fn static_spawn_policy_runs_and_validates() {
        let wl = suite().into_iter().find(|w| w.name == "swim").unwrap();
        let program = wl.build(Scale::Tiny);
        let (n, trace) = reference_trace(&program);
        let mut dynamic = SimConfig::new(Mode::Mtvp);
        dynamic.contexts = 4;
        let mut hinted = dynamic.clone();
        hinted.spawn_policy = SpawnPolicyKind::Static;
        hinted.validate().unwrap();
        let a = run_with_trace(&dynamic, &program, n, trace.clone());
        let b = run_with_trace(&hinted, &program, n, trace);
        // Same architectural work under either policy; the hint filter
        // can only gate spawns, never change committed-path semantics.
        assert_eq!(a.stats.committed, b.stats.committed);
        assert!(b.stats.halted);
        assert!(b.stats.vp.mtvp_spawns <= a.stats.vp.mtvp_spawns);
    }

    #[test]
    fn trace_is_reusable_across_configs() {
        let wl = suite().into_iter().find(|w| w.name == "eon r").unwrap();
        let program = wl.build(Scale::Tiny);
        let (n, trace) = reference_trace(&program);
        let a = run_with_trace(&SimConfig::new(Mode::Baseline), &program, n, trace.clone());
        let b = run_with_trace(&SimConfig::new(Mode::Mtvp), &program, n, trace);
        assert_eq!(a.stats.committed, b.stats.committed);
    }
}
