//! Two-tier sampled simulation: functional fast-forward between
//! checkpointed detailed windows (SimPoint-style systematic sampling).
//!
//! A sampled run alternates two engines over one program:
//!
//! - the **functional tier** — the reference [`Interp`] stepping directly
//!   on the machine's [`MainMemory`] image (no page is ever copied
//!   between tiers), covering the instructions between windows at
//!   interpreter speed;
//! - the **detailed tier** — ONE cycle-level [`Machine`] that persists
//!   across the whole run: booted through [`Machine::load_arch_state`] +
//!   [`Machine::replace_memory`], drained to architectural state with
//!   [`Machine::drain_to_arch`] at each gap, and moved forward with
//!   [`Machine::jump_arch_state`] after every fast-forward, so caches,
//!   branch history, and value-predictor training survive between
//!   windows ("stale state" warm-up). The jump also functionally warms
//!   the value predictor by replaying every skipped committed load's
//!   `(pc, value)` from the reference trace — stale value bases would
//!   otherwise predict confidently and wrongly after the skip. Each
//!   window then runs `warmup` uncounted instructions before its
//!   `window` measured ones.
//!
//! Window `k` measures instructions `[k·interval, k·interval + window)`.
//! Every detailed window still runs under commit-time trace validation,
//! so a botched state transfer is a loud panic, not a silent bias.
//!
//! Per-window statistics deltas are accumulated and extrapolated to a
//! whole-program estimate: the region measured from true reset is an
//! exact prefix (counted once, never scaled), and every later window is
//! scaled by `(total - exact) / sampled` committed instructions
//! ([`relative_errors`] quantifies the estimate against a full-detailed
//! run — the differential mode `sim_bench` and CI use to bound the
//! error).
//!
//! The functional tier's architectural state at each warm-up start is a
//! pure function of (benchmark, scale, instruction index) — it is
//! config-independent — so it persists as a content-addressed
//! [`Checkpoint`] in the engine cache. Sweeps whose configurations share
//! a sampling schedule replay the fast-forward once and every subsequent
//! configuration fast-forwards by `install_page`, not by interpretation.

use crate::cache::{Cache, Checkpoint};
use crate::key::{ckpt_descriptor, key_of};
use mtvp_core::{CoreKind, SimConfig, SpawnPolicyKind};
use mtvp_isa::interp::Interp;
use mtvp_isa::trace::Trace;
use mtvp_isa::Program;
use mtvp_mem::MainMemory;
use mtvp_obs::NullTracer;
use mtvp_pipeline::{Core, InOrderMachine, Machine, PipeStats, StaticHintMachine};
use mtvp_workloads::Scale;
use serde::{Deserialize, Serialize, Value};
use std::sync::Arc;

/// Where a sampled run persists and reuses functional checkpoints.
#[derive(Clone, Copy, Debug)]
pub struct CkptStore<'a> {
    /// The engine result cache the checkpoints live in.
    pub cache: &'a Cache,
    /// Benchmark name (part of the checkpoint identity).
    pub bench: &'a str,
    /// Build scale (part of the checkpoint identity).
    pub scale: Scale,
}

/// Deterministic accounting of one sampled run, persisted in the cell
/// cache next to the extrapolated statistics. (Checkpoint hit/miss
/// counts are *not* stored: they depend on cache state, and cached
/// sampled cells must be bit-identical cold or warm.)
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SampledMeta {
    /// Detailed windows measured.
    pub windows: u64,
    /// Committed instructions measured in detail (across all windows,
    /// warm-up excluded).
    pub measured_instrs: u64,
    /// Cycles spent in measured windows (warm-up excluded).
    pub measured_cycles: u64,
}

/// The outcome of one sampled simulation.
#[derive(Clone, Debug)]
pub struct SampledRun {
    /// Whole-program estimate: every counter extrapolated by
    /// `total / measured` committed instructions; `committed` is exact.
    pub stats: PipeStats,
    /// Deterministic run accounting.
    pub meta: SampledMeta,
    /// Functional checkpoints served from the cache.
    pub ckpt_hits: u64,
    /// Functional checkpoints built (and persisted) this run.
    pub ckpt_misses: u64,
}

impl SampledRun {
    /// Fraction of the program executed in the detailed tier (measured
    /// windows only; warm-up adds `warmup/interval` on top).
    pub fn detailed_fraction(&self, total_instrs: u64) -> f64 {
        if total_instrs == 0 {
            0.0
        } else {
            self.meta.measured_instrs as f64 / total_instrs as f64
        }
    }
}

/// Run `program` under `cfg`'s sampling schedule and extrapolate a
/// whole-program estimate. `dyn_instrs` and `trace` are the reference
/// run's committed path (the same artifacts full-detailed runs use).
///
/// # Panics
/// Panics if `cfg.sampling` is `None` (callers dispatch on it) or if the
/// schedule measures zero instructions.
pub fn run_sampled(
    cfg: &SimConfig,
    program: &Program,
    dyn_instrs: u64,
    trace: &Arc<Trace>,
    ckpts: Option<CkptStore<'_>>,
) -> SampledRun {
    // The detailed tier is generic over the `Core` trait — the sampling
    // state-transfer surface (drain/jump/load/replace) is part of it, so
    // two-tier simulation works for any core module.
    match (cfg.core, cfg.spawn_policy) {
        (CoreKind::OutOfOrder, SpawnPolicyKind::Dynamic) => {
            run_sampled_on::<Machine>(cfg, program, dyn_instrs, trace, ckpts)
        }
        (CoreKind::OutOfOrder, SpawnPolicyKind::Static) => {
            run_sampled_on::<StaticHintMachine>(cfg, program, dyn_instrs, trace, ckpts)
        }
        (CoreKind::InOrderScalar, _) => {
            run_sampled_on::<InOrderMachine>(cfg, program, dyn_instrs, trace, ckpts)
        }
    }
}

fn run_sampled_on<'p, C: Core<'p>>(
    cfg: &SimConfig,
    program: &'p Program,
    dyn_instrs: u64,
    trace: &Arc<Trace>,
    ckpts: Option<CkptStore<'_>>,
) -> SampledRun {
    let sp = cfg.sampling.expect("run_sampled requires cfg.sampling");
    let total = dyn_instrs;
    let mut mem = MainMemory::new();
    program.init_memory(&mut mem);
    let mut interp = Interp::new(program);

    // Two accumulators. The first detailed region starts at instruction 0
    // on a machine from true reset, so its measurement is an *exact
    // prefix* of the full run — the program's one-time startup transient
    // (cold caches, untrained predictors) belongs in the estimate once,
    // never multiplied by the extrapolation ratio. Every later region
    // starts on a mid-program machine and is a sample of steady state.
    let mut exact_acc: Option<Value> = None;
    let mut exact_covered = 0u64;
    let mut sampled_acc: Option<Value> = None;
    let mut windows = 0u64;
    let mut peak_contexts = 0usize;
    // Checkpoint (hits, misses) served / built this run.
    let mut ckpt_counts = (0u64, 0u64);
    // Post-`init_memory` image, built lazily the first time a checkpoint
    // is stored (diff base) or restored (install base).
    let mut baseline: Option<MainMemory> = None;

    // ONE detailed machine persists across the whole run. Contiguous
    // windows extend it; at a gap it is drained to architectural state,
    // the functional tier interprets forward *directly on its memory*
    // (zero copy), and `jump_arch_state` moves its architectural state to
    // the next warm-up point. Micro-architectural state — caches, branch
    // history, and above all value-predictor training — deliberately
    // survives the jump ("stale state" warm-up): it is keyed by static
    // instruction, so earlier windows' training stays largely valid
    // across the skipped region. Restarting each window on a cold machine
    // instead leaves Mtvp-mode windows spawning no threads until their
    // predictors re-train, inflating the cycle estimate by tens of
    // percent. A full-coverage schedule has no gaps and no jumps, so it
    // reproduces the detailed run exactly.
    let mut machine: Option<(C, PipeStats)> = None;
    let mut from_reset = true; // becomes false at the first jump

    let mut k = 0u64;
    while let Some(start) = k.checked_mul(sp.interval) {
        k += 1;
        if start >= total {
            break;
        }
        let end = start.saturating_add(sp.window);

        let mut accumulate = |win: &PipeStats, base: &PipeStats, from_reset: bool| {
            windows += 1;
            peak_contexts = peak_contexts.max(win.peak_contexts);
            let delta = v_sub(&serde_json::to_value(win), &serde_json::to_value(base));
            let acc = if from_reset {
                exact_covered = win.committed;
                &mut exact_acc
            } else {
                &mut sampled_acc
            };
            *acc = Some(match acc.take() {
                Some(a) => v_add(&a, &delta),
                None => delta,
            });
        };

        if let Some((m, last)) = machine.as_mut() {
            if last.committed >= end {
                // The live machine's deltas already cover this window
                // (commit overshoot past the next window's end).
                continue;
            }
            if start > last.committed {
                // A gap before this window: drain to architectural state
                // and hand the resume point to the functional tier, which
                // fast-forwards in place on the machine's memory.
                m.drain_to_arch();
                let committed = last.committed;
                let mut int_regs = m.arch_int_regs();
                int_regs[0] = 0; // r0 is architecturally hardwired
                interp.int_regs = int_regs;
                interp.fp_regs = m.arch_fp_regs();
                let next_pc = trace
                    .get(committed as usize)
                    .expect("trace covers the committed path")
                    .pc;
                interp.resume_at(u64::from(next_pc), committed);
                let warm_at = start.saturating_sub(sp.warmup);
                fast_forward(
                    &mut interp,
                    program,
                    m.memory_mut(),
                    &mut baseline,
                    warm_at,
                    ckpts,
                    &mut ckpt_counts,
                );
                m.jump_arch_state(
                    interp.pc,
                    interp.dyn_instrs(),
                    &interp.int_regs,
                    &interp.fp_regs,
                );
                from_reset = false;
                // Warm-up runs uncounted: re-snapshot at the window start.
                m.run_until_committed(start);
                *last = m.stats_now();
            }
            // Measure to the window end; the delta since the last
            // snapshot covers exactly the instructions not yet accounted
            // for.
            m.run_until_committed(end);
            let win = m.stats_now();
            let halted = win.halted;
            accumulate(&win, &*last, from_reset);
            *last = win;
            if halted {
                break;
            }
            continue;
        }

        // First window: boot the detailed machine from the functional
        // tier (the schedule starts at instruction 0, so this machine
        // starts from true reset and its region is the exact prefix).
        let warm_at = start.saturating_sub(sp.warmup);
        fast_forward(
            &mut interp,
            program,
            &mut mem,
            &mut baseline,
            warm_at,
            ckpts,
            &mut ckpt_counts,
        );
        from_reset = interp.dyn_instrs() == 0;
        let mut m = C::build_core(
            crate::run::lowered_pipeline_config(cfg, program),
            cfg.to_mem_config(),
            program,
            Some(trace.clone()),
            NullTracer,
            false, // state handoff supplies the memory image
        );
        m.load_arch_state(
            interp.pc,
            interp.dyn_instrs(),
            &interp.int_regs,
            &interp.fp_regs,
        );
        m.replace_memory(std::mem::replace(&mut mem, MainMemory::new()));
        m.run_until_committed(start);
        let warm = m.stats_now();
        m.run_until_committed(end);
        let win = m.stats_now();
        let halted = win.halted;
        accumulate(&win, &warm, from_reset);
        if halted {
            break;
        }
        machine = Some((m, win));
    }
    drop(machine); // past the last window, nobody needs the state back

    let acc_committed = |acc: &Option<Value>| acc.as_ref().map_or(0, |a| field_u64(a, "committed"));
    let acc_cycles = |acc: &Option<Value>| acc.as_ref().map_or(0, |a| field_u64(a, "cycles"));
    let measured_instrs = acc_committed(&exact_acc) + acc_committed(&sampled_acc);
    let measured_cycles = acc_cycles(&exact_acc) + acc_cycles(&sampled_acc);
    assert!(
        measured_instrs > 0,
        "sampling schedule measured zero instructions ({}: window {} interval {})",
        program.name,
        sp.window,
        sp.interval
    );

    // Extrapolate: the exact prefix counts once; the sampled windows
    // stand for everything past it.
    let estimate = match (&exact_acc, &sampled_acc) {
        (Some(e), Some(s)) => {
            let rest = total.saturating_sub(exact_covered);
            let ratio = rest as f64 / acc_committed(&sampled_acc) as f64;
            v_add(e, &v_scale(s, ratio))
        }
        (Some(e), None) => {
            // Degenerate schedule: one region from reset. Exact when it
            // reached the end of the program; otherwise the prefix is
            // the only evidence there is, so scale it.
            if exact_covered >= total {
                e.clone()
            } else {
                v_scale(e, total as f64 / exact_covered as f64)
            }
        }
        (None, Some(s)) => v_scale(s, total as f64 / measured_instrs as f64),
        (None, None) => panic!(
            "sampling schedule produced no windows ({}: window {} interval {})",
            program.name, sp.window, sp.interval
        ),
    };
    let mut stats = PipeStats::from_value(&estimate).expect("PipeStats round-trips through Value");
    // Exact where exactness is possible; a maximum never scales.
    stats.committed = total;
    stats.peak_contexts = peak_contexts;
    stats.halted = true;

    SampledRun {
        stats,
        meta: SampledMeta {
            windows,
            measured_instrs,
            measured_cycles,
        },
        ckpt_hits: ckpt_counts.0,
        ckpt_misses: ckpt_counts.1,
    }
}

/// Advance the functional tier to instruction index `target`, serving or
/// populating the checkpoint cache. A hit replaces interpretation with
/// `install_page` of the stored image; a miss interprets and persists the
/// reached state for every later configuration in the sweep.
fn fast_forward(
    interp: &mut Interp,
    program: &Program,
    mem: &mut MainMemory,
    baseline: &mut Option<MainMemory>,
    target: u64,
    ckpts: Option<CkptStore<'_>>,
    counts: &mut (u64, u64), // (checkpoint hits, misses)
) {
    if interp.dyn_instrs() >= target {
        return;
    }
    let key_desc = ckpts.map(|s| {
        let desc = ckpt_descriptor(s.bench, s.scale, target);
        (key_of(&desc), desc)
    });
    // Checkpoints are stored as a delta against the program's initial
    // data image: every run reaches its memory state from `init_memory`
    // plus the program's own stores, so pages still equal to the initial
    // image need no persisting. Workloads with large constant data (mcf's
    // arc arrays are ~tens of MiB) shrink from full-image dumps to a few
    // pages. Restoring replays `init_memory` and installs the delta,
    // which reproduces content *and* page residency exactly.
    let base_img = || {
        let mut b = MainMemory::new();
        program.init_memory(&mut b);
        b
    };
    if let (Some(store), Some((key, desc))) = (ckpts, &key_desc) {
        if let Some(ck) = store.cache.load_ckpt(key, desc) {
            let mut fresh = baseline.get_or_insert_with(base_img).clone();
            for (base, bytes) in &ck.pages {
                fresh.install_page(*base, bytes);
            }
            *mem = fresh;
            interp.int_regs = ck.int_regs;
            for (f, &bits) in ck.fp_bits.iter().enumerate() {
                interp.fp_regs[f] = f64::from_bits(bits);
            }
            interp.resume_at(ck.pc, ck.index);
            counts.0 += 1;
            return;
        }
    }
    while interp.dyn_instrs() < target && !interp.halted() {
        interp.step(mem, None);
    }
    if let (Some(store), Some((key, desc))) = (ckpts, &key_desc) {
        let base_img = baseline.get_or_insert_with(base_img);
        let mut pages: Vec<(u64, Vec<u8>)> = mem
            .pages()
            .filter(|&(base, p)| base_img.page(base) != Some(p))
            .map(|(base, p)| (base, p.to_vec()))
            .collect();
        pages.sort_unstable_by_key(|&(base, _)| base);
        let ck = Checkpoint {
            pc: interp.pc,
            index: interp.dyn_instrs(),
            int_regs: interp.int_regs,
            fp_bits: std::array::from_fn(|f| interp.fp_regs[f].to_bits()),
            pages,
        };
        let _ = store.cache.store_ckpt(key, desc, &ck);
        counts.1 += 1;
    }
}

/// Per-field relative errors of an extrapolated estimate against a
/// full-detailed run, flattened to dotted field paths
/// (`"cycles"`, `"vp.spawns"`, `"caches.2.misses"`, …). Boolean and
/// string fields are skipped; a zero-valued reference field scores `0`
/// when the estimate agrees and `1` when it does not.
pub fn relative_errors(full: &PipeStats, est: &PipeStats) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    walk_errors(
        &serde_json::to_value(full),
        &serde_json::to_value(est),
        "",
        &mut out,
    );
    out
}

/// Relative IPC error of an estimate against a full-detailed run — the
/// headline number the sampled mode is judged by.
pub fn ipc_error(full: &PipeStats, est: &PipeStats) -> f64 {
    if full.ipc() == 0.0 {
        0.0
    } else {
        ((est.ipc() - full.ipc()) / full.ipc()).abs()
    }
}

fn walk_errors(full: &Value, est: &Value, path: &str, out: &mut Vec<(String, f64)>) {
    let join = |key: &str| {
        if path.is_empty() {
            key.to_string()
        } else {
            format!("{path}.{key}")
        }
    };
    match (full, est) {
        (Value::Map(fs), Value::Map(es)) => {
            for ((key, fv), (_, ev)) in fs.iter().zip(es) {
                walk_errors(fv, ev, &join(key), out);
            }
        }
        (Value::Seq(fs), Value::Seq(es)) => {
            for (i, (fv, ev)) in fs.iter().zip(es).enumerate() {
                walk_errors(fv, ev, &join(&i.to_string()), out);
            }
        }
        _ => {
            if let (Some(f), Some(e)) = (full.as_f64(), est.as_f64()) {
                let err = if f == 0.0 {
                    if e == 0.0 {
                        0.0
                    } else {
                        1.0
                    }
                } else {
                    ((e - f) / f).abs()
                };
                out.push((path.to_string(), err));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Statistics arithmetic over the serde value tree. `PipeStats` is all
// counters structurally (nested structs, tuples, numbers, one bool), so
// window deltas, accumulation and extrapolation are three generic walks
// instead of forty hand-maintained field updates that would silently rot
// the moment a counter is added.

fn field_u64(v: &Value, key: &str) -> u64 {
    match v.get(key) {
        Some(Value::U64(x)) => *x,
        _ => 0,
    }
}

fn v_sub(a: &Value, b: &Value) -> Value {
    match (a, b) {
        (Value::U64(x), Value::U64(y)) => Value::U64(x.saturating_sub(*y)),
        (Value::I64(x), Value::I64(y)) => Value::I64(x - y),
        (Value::F64(x), Value::F64(y)) => Value::F64(x - y),
        (Value::Seq(xs), Value::Seq(ys)) => {
            Value::Seq(xs.iter().zip(ys).map(|(x, y)| v_sub(x, y)).collect())
        }
        (Value::Map(xs), Value::Map(ys)) => Value::Map(
            xs.iter()
                .zip(ys)
                .map(|((k, x), (_, y))| (k.clone(), v_sub(x, y)))
                .collect(),
        ),
        // Bool/Str/Null: keep the newer snapshot's value.
        _ => a.clone(),
    }
}

fn v_add(a: &Value, b: &Value) -> Value {
    match (a, b) {
        (Value::U64(x), Value::U64(y)) => Value::U64(x.saturating_add(*y)),
        (Value::I64(x), Value::I64(y)) => Value::I64(x + y),
        (Value::F64(x), Value::F64(y)) => Value::F64(x + y),
        (Value::Seq(xs), Value::Seq(ys)) => {
            Value::Seq(xs.iter().zip(ys).map(|(x, y)| v_add(x, y)).collect())
        }
        (Value::Map(xs), Value::Map(ys)) => Value::Map(
            xs.iter()
                .zip(ys)
                .map(|((k, x), (_, y))| (k.clone(), v_add(x, y)))
                .collect(),
        ),
        _ => a.clone(),
    }
}

fn v_scale(v: &Value, ratio: f64) -> Value {
    match v {
        Value::U64(x) => Value::U64((*x as f64 * ratio).round() as u64),
        Value::I64(x) => Value::I64((*x as f64 * ratio).round() as i64),
        Value::F64(x) => Value::F64(x * ratio),
        Value::Seq(xs) => Value::Seq(xs.iter().map(|x| v_scale(x, ratio)).collect()),
        Value::Map(xs) => Value::Map(
            xs.iter()
                .map(|(k, x)| (k.clone(), v_scale(x, ratio)))
                .collect(),
        ),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::reference_trace;
    use mtvp_core::{Mode, SamplingParams};
    use mtvp_workloads::suite;

    fn program(name: &str, scale: Scale) -> Program {
        suite()
            .iter()
            .find(|w| w.name == name)
            .unwrap_or_else(|| panic!("{name} not in registry"))
            .build(scale)
    }

    fn sampled_cfg(mode: Mode, sp: SamplingParams) -> SimConfig {
        let mut cfg = SimConfig::new(mode);
        cfg.sampling = Some(sp);
        cfg.validate().expect("test config valid");
        cfg
    }

    #[test]
    #[ignore = "parameter-space probe, run by hand"]
    fn probe_warmup_error() {
        for name in ["mcf", "gzip g", "mesa", "equake", "vpr r"] {
            let p = program(name, Scale::Small);
            let (n, trace) = reference_trace(&p);
            let full =
                crate::run::run_with_trace(&SimConfig::new(Mode::Mtvp), &p, n, trace.clone());
            for (w, i, u) in [
                (2_000, 10_000, 1_000),
                (2_000, 10_000, 4_000),
                (2_000, 20_000, 8_000),
                (5_000, 20_000, 5_000),
                (1_000, 20_000, 4_000),
            ] {
                let cfg = sampled_cfg(
                    Mode::Mtvp,
                    SamplingParams {
                        window: w,
                        interval: i,
                        warmup: u,
                    },
                );
                let s = run_sampled(&cfg, &p, n, &trace, None);
                println!(
                    "{name:8} n={n:7} w={w} i={i} u={u}: windows={} measured={} err={:.4}",
                    s.meta.windows,
                    s.meta.measured_instrs,
                    ipc_error(&full.stats, &s.stats)
                );
            }
        }
    }

    #[test]
    fn value_arithmetic_round_trips_pipe_stats() {
        let mut a = PipeStats {
            cycles: 1000,
            committed: 400,
            ..PipeStats::default()
        };
        a.vp.mtvp_spawns = 7;
        a.caches.2.misses = 30;
        let mut b = PipeStats {
            cycles: 400,
            committed: 100,
            ..PipeStats::default()
        };
        b.caches.2.misses = 10;
        let d = v_sub(&serde_json::to_value(&a), &serde_json::to_value(&b));
        let sum = v_add(&d, &d);
        let scaled = v_scale(&sum, 0.5);
        let back = PipeStats::from_value(&scaled).unwrap();
        assert_eq!(back.cycles, 600);
        assert_eq!(back.committed, 300);
        assert_eq!(back.vp.mtvp_spawns, 7);
        assert_eq!(back.caches.2.misses, 20);
        // Saturating subtraction never wraps a counter.
        let neg = v_sub(&serde_json::to_value(&b), &serde_json::to_value(&a));
        assert_eq!(field_u64(&neg, "cycles"), 0);
    }

    #[test]
    fn relative_errors_flatten_nested_paths() {
        let mut full = PipeStats {
            cycles: 1000,
            committed: 500,
            ..PipeStats::default()
        };
        full.mem.l1_hits = 50;
        let mut est = full.clone();
        est.cycles = 1100;
        let errs = relative_errors(&full, &est);
        let get = |p: &str| errs.iter().find(|(k, _)| k == p).map(|(_, e)| *e);
        assert!((get("cycles").unwrap() - 0.1).abs() < 1e-12);
        assert_eq!(get("mem.l1_hits"), Some(0.0));
        assert!(errs.iter().any(|(k, _)| k.starts_with("caches.0.")));
        assert!(ipc_error(&full, &est) > 0.0);
    }

    #[test]
    fn sampled_estimate_tracks_the_full_run() {
        let p = program("gzip g", Scale::Small);
        let (n, trace) = reference_trace(&p);
        let full = crate::run::run_with_trace(&SimConfig::new(Mode::Mtvp), &p, n, trace.clone());
        let cfg = sampled_cfg(
            Mode::Mtvp,
            SamplingParams {
                window: 2_000,
                interval: 10_000,
                warmup: 1_000,
            },
        );
        let s = run_sampled(&cfg, &p, n, &trace, None);
        assert_eq!(s.stats.committed, n);
        assert!(s.stats.halted);
        assert!(
            s.meta.windows > 1,
            "schedule produced {} windows",
            s.meta.windows
        );
        assert!(
            s.meta.measured_instrs < n,
            "sampling must not run everything"
        );
        let err = ipc_error(&full.stats, &s.stats);
        assert!(
            err < 0.05,
            "sampled IPC {} vs full {} (err {err:.4})",
            s.stats.ipc(),
            full.stats.ipc()
        );
    }

    #[test]
    fn full_coverage_schedule_is_nearly_exact() {
        // window == interval, zero warm-up: every instruction is measured,
        // so the "estimate" must agree with the full run almost exactly
        // (drain restarts cost a few cycles per window boundary).
        let p = program("gzip g", Scale::Tiny);
        let (n, trace) = reference_trace(&p);
        let full =
            crate::run::run_with_trace(&SimConfig::new(Mode::Baseline), &p, n, trace.clone());
        let cfg = sampled_cfg(
            Mode::Baseline,
            SamplingParams {
                window: 5_000,
                interval: 5_000,
                warmup: 0,
            },
        );
        let s = run_sampled(&cfg, &p, n, &trace, None);
        assert_eq!(s.meta.measured_instrs, n);
        assert!(
            ipc_error(&full.stats, &s.stats) < 0.10,
            "full-coverage sampled IPC {} vs detailed {}",
            s.stats.ipc(),
            full.stats.ipc()
        );
    }

    #[test]
    fn checkpoints_are_config_independent_and_bit_exact() {
        let dir = std::env::temp_dir().join(format!("mtvp-sampling-unit-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cache = Cache::new(&dir);
        let p = program("mesa", Scale::Small);
        let (n, trace) = reference_trace(&p);
        let sp = SamplingParams {
            window: 1_000,
            interval: 8_000,
            warmup: 500,
        };
        let store = CkptStore {
            cache: &cache,
            bench: "mesa",
            scale: Scale::Small,
        };

        // Pure cold run, no cache: the determinism reference.
        let cfg_a = sampled_cfg(Mode::Mtvp, sp);
        let uncached = run_sampled(&cfg_a, &p, n, &trace, None);
        assert_eq!(uncached.ckpt_hits + uncached.ckpt_misses, 0);

        // Cold run with a cache populates checkpoints...
        let cold = run_sampled(&cfg_a, &p, n, &trace, Some(store));
        assert!(cold.ckpt_misses > 0);
        assert_eq!(cold.ckpt_hits, 0);
        assert_eq!(cold.stats, uncached.stats, "cache must not change stats");

        // ...a different configuration sharing the schedule hits them all
        // (architectural state is config-independent)...
        let mut cfg_b = sampled_cfg(Mode::Baseline, sp);
        cfg_b.contexts = 1;
        let warm = run_sampled(&cfg_b, &p, n, &trace, Some(store));
        assert_eq!(
            warm.ckpt_misses, 0,
            "shared-schedule run rebuilt checkpoints"
        );
        assert!(warm.ckpt_hits > 0);

        // ...and produces bit-identical statistics to its own cold run.
        let cold_b = run_sampled(&cfg_b, &p, n, &trace, None);
        assert_eq!(warm.stats, cold_b.stats);
        assert_eq!(warm.meta, cold_b.meta);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tiny_program_degenerates_to_one_full_window() {
        let p = program("swim", Scale::Tiny);
        let (n, trace) = reference_trace(&p);
        let cfg = sampled_cfg(
            Mode::Mtvp,
            SamplingParams {
                window: 100_000_000,
                interval: 200_000_000,
                warmup: 0,
            },
        );
        let s = run_sampled(&cfg, &p, n, &trace, None);
        assert_eq!(s.meta.windows, 1);
        assert_eq!(s.meta.measured_instrs, n);
        let full = crate::run::run_with_trace(&SimConfig::new(Mode::Mtvp), &p, n, trace);
        assert_eq!(s.stats.cycles, full.stats.cycles);
        assert_eq!(s.stats.committed, full.stats.committed);
    }
}
