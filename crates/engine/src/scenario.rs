//! Declarative experiment scenarios.
//!
//! A scenario names a figure-shaped experiment: which benchmarks, which
//! scale, and a set of *configuration grids* — each a machine mode plus
//! per-axis value lists (contexts × spawn latency × store buffer × MSHRs)
//! that expand into labelled [`SimConfig`]s. The paper's figures ship as
//! built-in scenarios (see [`crate::builtin`]); users can also load their
//! own from JSON files via `mtvp-sim exp run ./my-scenario.json`.
//!
//! Scenario files are deliberately tolerant: every field except a grid's
//! `mode` has a default, and enum-valued fields accept the CLI vocabulary
//! (`"mtvp-nostall"`, `"wf"`, `"l3"`, `"tiny"`) as well as the canonical
//! variant names.

use mtvp_core::{
    parse_core, parse_mode, parse_predictor, parse_scale, parse_selector, parse_spawn_policy,
    CoreKind, L3Params, Mode, SamplingParams, SimConfig, SpawnPolicyKind, Workload,
};
use mtvp_pipeline::{PredictorKind, SelectorKind};
use mtvp_workloads::Scale;
use serde::{Deserialize, Serialize, Value};

/// A malformed or inconsistent scenario.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScenarioError(pub String);

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ScenarioError {}

/// One grid of configurations sharing a machine mode.
///
/// Every empty axis means "the mode's default value"; a non-empty axis
/// multiplies the grid. The `label` is a template rendered once per grid
/// point with `{contexts}`, `{spawn}`, `{sb}` and `{mshrs}` placeholders.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct ConfigGrid {
    /// Label template for the expanded configurations.
    pub label: String,
    /// Machine mode of every configuration in the grid.
    pub mode: Mode,
    /// Core module every configuration in the grid runs on (defaults to
    /// the out-of-order core; scenario files accept `"ooo"`/`"inorder"`).
    pub core: CoreKind,
    /// Start from [`SimConfig::oracle`] instead of [`SimConfig::new`].
    pub oracle: bool,
    /// Hardware-context axis (empty: mode default).
    pub contexts: Vec<usize>,
    /// Spawn-latency axis in cycles (empty: mode default).
    pub spawn_latency: Vec<u64>,
    /// Store-buffer-entries axis (empty: mode default).
    pub store_buffer: Vec<usize>,
    /// MSHR-capacity axis (empty: mode default).
    pub mshrs: Vec<usize>,
    /// Override the value predictor.
    pub predictor: Option<PredictorKind>,
    /// Override the load selector.
    pub selector: Option<SelectorKind>,
    /// Override the spawn policy (scenario files accept `"dynamic"` /
    /// `"static"`; `None`: mode default, i.e. dynamic).
    pub spawn_policy: Option<SpawnPolicyKind>,
    /// Override the stride prefetcher switch.
    pub prefetcher: Option<bool>,
    /// Override cache warm-start.
    pub warm_start: Option<bool>,
    /// Override values followed per load (MultiValue mode).
    pub max_values_per_load: Option<usize>,
    /// Two-tier sampled simulation schedule (`None`: full detailed).
    /// Scenario files accept the CLI form `"window:interval:warmup"`.
    pub sampling: Option<SamplingParams>,
    /// CMP core-count axis (empty: single core). Varies slowest; the
    /// label template may use a `{cores}` placeholder.
    pub cores: Vec<usize>,
    /// Override the shared-L3 shape. Scenario files accept the CLI form
    /// `"kb:assoc:latency"`.
    pub l3: Option<L3Params>,
    /// Override the core-to-L3 interconnect hop latency (cycles).
    pub interconnect_hop: Option<u64>,
    /// Override cross-core speculative spawning onto idle siblings.
    pub cross_core_spawn: Option<bool>,
    /// Co-runner workload specs (`synth:<seed>`, `phases:<seed>`, or a
    /// registry benchmark name), one per occupied sibling core.
    pub co_workloads: Vec<String>,
}

impl ConfigGrid {
    /// A single-point grid for `mode` labelled `label`.
    pub fn new(label: impl Into<String>, mode: Mode) -> ConfigGrid {
        ConfigGrid {
            label: label.into(),
            mode,
            core: CoreKind::OutOfOrder,
            oracle: false,
            contexts: Vec::new(),
            spawn_latency: Vec::new(),
            store_buffer: Vec::new(),
            mshrs: Vec::new(),
            predictor: None,
            selector: None,
            spawn_policy: None,
            prefetcher: None,
            warm_start: None,
            max_values_per_load: None,
            sampling: None,
            cores: Vec::new(),
            l3: None,
            interconnect_hop: None,
            cross_core_spawn: None,
            co_workloads: Vec::new(),
        }
    }

    /// Builder: idealized (oracle predictor, 1-cycle spawn) base config.
    pub fn oracle(mut self) -> ConfigGrid {
        self.oracle = true;
        self
    }

    /// Builder: the core module the grid runs on. The in-order core's
    /// defaults (single context, no predictor) are applied by `expand`.
    pub fn core(mut self, c: CoreKind) -> ConfigGrid {
        self.core = c;
        self
    }

    /// Builder: the contexts axis.
    pub fn contexts(mut self, v: &[usize]) -> ConfigGrid {
        self.contexts = v.to_vec();
        self
    }

    /// Builder: the spawn-latency axis.
    pub fn spawn_latency(mut self, v: &[u64]) -> ConfigGrid {
        self.spawn_latency = v.to_vec();
        self
    }

    /// Builder: the store-buffer axis.
    pub fn store_buffer(mut self, v: &[usize]) -> ConfigGrid {
        self.store_buffer = v.to_vec();
        self
    }

    /// Builder: the MSHR axis.
    pub fn mshrs(mut self, v: &[usize]) -> ConfigGrid {
        self.mshrs = v.to_vec();
        self
    }

    /// Builder: predictor override.
    pub fn predictor(mut self, p: PredictorKind) -> ConfigGrid {
        self.predictor = Some(p);
        self
    }

    /// Builder: selector override.
    pub fn selector(mut self, s: SelectorKind) -> ConfigGrid {
        self.selector = Some(s);
        self
    }

    /// Builder: spawn-policy override.
    pub fn spawn_policy(mut self, p: SpawnPolicyKind) -> ConfigGrid {
        self.spawn_policy = Some(p);
        self
    }

    /// Builder: prefetcher override.
    pub fn prefetcher(mut self, on: bool) -> ConfigGrid {
        self.prefetcher = Some(on);
        self
    }

    /// Builder: values-per-load override.
    pub fn max_values_per_load(mut self, n: usize) -> ConfigGrid {
        self.max_values_per_load = Some(n);
        self
    }

    /// Builder: sampled-simulation schedule.
    pub fn sampling(mut self, s: SamplingParams) -> ConfigGrid {
        self.sampling = Some(s);
        self
    }

    /// Builder: the CMP core-count axis.
    pub fn cores(mut self, v: &[usize]) -> ConfigGrid {
        self.cores = v.to_vec();
        self
    }

    /// Builder: shared-L3 shape override.
    pub fn l3(mut self, p: L3Params) -> ConfigGrid {
        self.l3 = Some(p);
        self
    }

    /// Builder: interconnect hop latency override.
    pub fn interconnect_hop(mut self, cycles: u64) -> ConfigGrid {
        self.interconnect_hop = Some(cycles);
        self
    }

    /// Builder: cross-core spawning override.
    pub fn cross_core_spawn(mut self, on: bool) -> ConfigGrid {
        self.cross_core_spawn = Some(on);
        self
    }

    /// Builder: co-runner workload specs.
    pub fn co_workloads(mut self, specs: &[&str]) -> ConfigGrid {
        self.co_workloads = specs.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Expand the grid into labelled, validated configurations, nested
    /// contexts → spawn → store buffer → MSHRs (outermost varies slowest).
    pub fn expand(&self) -> Result<Vec<(String, SimConfig)>, ScenarioError> {
        let mut base = if self.oracle {
            SimConfig::oracle(self.mode)
        } else {
            SimConfig::new(self.mode)
        };
        base.core = self.core;
        if let Some(p) = self.predictor {
            base.predictor = p;
        }
        if let Some(s) = self.selector {
            base.selector = s;
        }
        if let Some(p) = self.spawn_policy {
            base.spawn_policy = p;
        }
        if let Some(on) = self.prefetcher {
            base.prefetcher = on;
        }
        if let Some(on) = self.warm_start {
            base.warm_start = on;
        }
        if let Some(n) = self.max_values_per_load {
            base.max_values_per_load = n;
        }
        if let Some(s) = self.sampling {
            base.sampling = Some(s);
        }
        if let Some(p) = self.l3 {
            base.l3 = p;
        }
        if let Some(h) = self.interconnect_hop {
            base.interconnect_hop = h;
        }
        if let Some(x) = self.cross_core_spawn {
            base.cross_core_spawn = x;
        }
        if !self.co_workloads.is_empty() {
            base.co_workloads = self.co_workloads.clone();
        }
        let axis = |list: &[u64], default: u64| -> Vec<u64> {
            if list.is_empty() {
                vec![default]
            } else {
                list.to_vec()
            }
        };
        let contexts = axis(
            &self.contexts.iter().map(|&x| x as u64).collect::<Vec<_>>(),
            base.contexts as u64,
        );
        let spawns = axis(&self.spawn_latency, base.spawn_latency);
        let sbs = axis(
            &self
                .store_buffer
                .iter()
                .map(|&x| x as u64)
                .collect::<Vec<_>>(),
            base.store_buffer as u64,
        );
        let mshrs = axis(
            &self.mshrs.iter().map(|&x| x as u64).collect::<Vec<_>>(),
            base.mshrs as u64,
        );
        let cores = axis(
            &self.cores.iter().map(|&x| x as u64).collect::<Vec<_>>(),
            base.cores as u64,
        );
        let mut out = Vec::new();
        for &nc in &cores {
            for &c in &contexts {
                for &sp in &spawns {
                    for &sb in &sbs {
                        for &ms in &mshrs {
                            let mut cfg = base.clone();
                            cfg.cores = nc as usize;
                            cfg.contexts = c as usize;
                            cfg.spawn_latency = sp;
                            cfg.store_buffer = sb as usize;
                            cfg.mshrs = ms as usize;
                            let label = self
                                .label
                                .replace("{cores}", &nc.to_string())
                                .replace("{contexts}", &c.to_string())
                                .replace("{spawn}", &sp.to_string())
                                .replace("{sb}", &sb.to_string())
                                .replace("{mshrs}", &ms.to_string());
                            cfg.validate().map_err(|e| {
                                ScenarioError(format!("config `{label}` is invalid: {e}"))
                            })?;
                            out.push((label, cfg));
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}

/// A named, self-describing experiment.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct Scenario {
    /// Machine-friendly name (`fig2`, `storebuf`, …).
    pub name: String,
    /// Human title shown by `exp list`.
    pub title: String,
    /// One-paragraph description.
    pub description: String,
    /// Default scale (CLI `--scale` overrides; `None` means Small).
    pub scale: Option<Scale>,
    /// Benchmarks to run (empty: the full suite).
    pub benches: Vec<String>,
    /// Label of the baseline configuration for speedup reporting.
    pub baseline: Option<String>,
    /// Labels reported against the baseline (empty: all non-baseline).
    pub series: Vec<String>,
    /// The configuration grids.
    pub grids: Vec<ConfigGrid>,
}

impl Scenario {
    /// A scenario skeleton.
    pub fn new(name: &str, title: &str, description: &str) -> Scenario {
        Scenario {
            name: name.to_string(),
            title: title.to_string(),
            description: description.to_string(),
            scale: None,
            benches: Vec::new(),
            baseline: None,
            series: Vec::new(),
            grids: Vec::new(),
        }
    }

    /// The scale to run at, given an optional CLI override.
    pub fn scale_or(&self, cli: Option<Scale>) -> Scale {
        cli.or(self.scale).unwrap_or(Scale::Small)
    }

    /// Expand all grids into labelled configurations, rejecting duplicate
    /// labels and a dangling `baseline`/`series` reference.
    pub fn configs(&self) -> Result<Vec<(String, SimConfig)>, ScenarioError> {
        if self.grids.is_empty() {
            return Err(ScenarioError(format!(
                "scenario `{}` has no configuration grids",
                self.name
            )));
        }
        let mut out = Vec::new();
        for grid in &self.grids {
            out.extend(grid.expand()?);
        }
        let mut seen = std::collections::HashSet::new();
        for (label, _) in &out {
            if !seen.insert(label.as_str()) {
                return Err(ScenarioError(format!(
                    "scenario `{}` expands to duplicate config label `{label}`",
                    self.name
                )));
            }
        }
        for named in self.baseline.iter().chain(&self.series) {
            if !seen.contains(named.as_str()) {
                return Err(ScenarioError(format!(
                    "scenario `{}` references unknown config label `{named}`",
                    self.name
                )));
            }
        }
        Ok(out)
    }

    /// The benchmark filter: every benchmark when `benches` is empty.
    pub fn keeps(&self, w: &Workload) -> bool {
        self.benches.is_empty() || self.benches.iter().any(|b| b == w.name)
    }

    /// Parse a scenario from JSON text.
    ///
    /// # Errors
    /// Returns a [`ScenarioError`] describing the first malformed field.
    pub fn from_json(text: &str) -> Result<Scenario, ScenarioError> {
        let v: Value =
            serde_json::from_str(text).map_err(|e| ScenarioError(format!("bad JSON: {e}")))?;
        Scenario::from_value(&v).map_err(|e| ScenarioError(e.0))
    }
}

// ---------------------------------------------------------------------------
// Tolerant deserialization: missing fields default, enum fields accept the
// CLI vocabulary as well as the canonical variant names. (The derive shim
// requires every field to be present, which would make scenario files
// needlessly verbose.)

fn tolerant<T, F>(v: &Value, key: &str, parse: F, default: T) -> Result<T, serde::Error>
where
    F: FnOnce(&Value) -> Result<T, serde::Error>,
{
    match v.get(key) {
        None | Some(Value::Null) => Ok(default),
        Some(x) => parse(x).map_err(|e| serde::Error(format!("field `{key}`: {e}"))),
    }
}

fn mode_value(v: &Value) -> Result<Mode, serde::Error> {
    if let Ok(m) = Mode::from_value(v) {
        return Ok(m);
    }
    let s = serde::str_get(v)?;
    parse_mode(s).map_err(|e| serde::Error(e.0))
}

fn predictor_value(v: &Value) -> Result<PredictorKind, serde::Error> {
    if let Ok(p) = PredictorKind::from_value(v) {
        return Ok(p);
    }
    let s = serde::str_get(v)?;
    parse_predictor(s).map_err(|e| serde::Error(e.0))
}

fn selector_value(v: &Value) -> Result<SelectorKind, serde::Error> {
    if let Ok(s) = SelectorKind::from_value(v) {
        return Ok(s);
    }
    let s = serde::str_get(v)?;
    parse_selector(s).map_err(|e| serde::Error(e.0))
}

fn spawn_policy_value(v: &Value) -> Result<SpawnPolicyKind, serde::Error> {
    if let Ok(p) = SpawnPolicyKind::from_value(v) {
        return Ok(p);
    }
    let s = serde::str_get(v)?;
    parse_spawn_policy(s).map_err(|e| serde::Error(e.0))
}

fn sampling_value(v: &Value) -> Result<SamplingParams, serde::Error> {
    if let Ok(s) = SamplingParams::from_value(v) {
        return Ok(s);
    }
    let s = serde::str_get(v)?;
    SamplingParams::parse(s).map_err(|e| serde::Error(e.0))
}

fn l3_value(v: &Value) -> Result<L3Params, serde::Error> {
    if let Ok(p) = L3Params::from_value(v) {
        return Ok(p);
    }
    let s = serde::str_get(v)?;
    L3Params::parse(s).map_err(|e| serde::Error(e.0))
}

fn core_value(v: &Value) -> Result<CoreKind, serde::Error> {
    if let Ok(c) = CoreKind::from_value(v) {
        return Ok(c);
    }
    let s = serde::str_get(v)?;
    parse_core(s).map_err(|e| serde::Error(e.0))
}

fn scale_value(v: &Value) -> Result<Scale, serde::Error> {
    if let Ok(s) = Scale::from_value(v) {
        return Ok(s);
    }
    let s = serde::str_get(v)?;
    parse_scale(s).map_err(|e| serde::Error(e.0))
}

impl Deserialize for ConfigGrid {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let label = tolerant(v, "label", String::from_value, String::new())?;
        let mode = match v.get("mode") {
            Some(m) => mode_value(m).map_err(|e| serde::Error(format!("field `mode`: {e}")))?,
            None => return Err(serde::Error("config grid requires a `mode`".into())),
        };
        let mut grid = ConfigGrid::new(label, mode);
        if grid.label.is_empty() {
            grid.label = format!("{mode:?}").to_lowercase();
        }
        grid.core = tolerant(v, "core", core_value, CoreKind::OutOfOrder)?;
        grid.oracle = tolerant(v, "oracle", bool::from_value, false)?;
        grid.contexts = tolerant(v, "contexts", Vec::from_value, Vec::new())?;
        grid.spawn_latency = tolerant(v, "spawn_latency", Vec::from_value, Vec::new())?;
        grid.store_buffer = tolerant(v, "store_buffer", Vec::from_value, Vec::new())?;
        grid.mshrs = tolerant(v, "mshrs", Vec::from_value, Vec::new())?;
        grid.predictor = tolerant(v, "predictor", |x| predictor_value(x).map(Some), None)?;
        grid.selector = tolerant(v, "selector", |x| selector_value(x).map(Some), None)?;
        grid.spawn_policy = tolerant(v, "spawn_policy", |x| spawn_policy_value(x).map(Some), None)?;
        grid.prefetcher = tolerant(v, "prefetcher", |x| bool::from_value(x).map(Some), None)?;
        grid.warm_start = tolerant(v, "warm_start", |x| bool::from_value(x).map(Some), None)?;
        grid.max_values_per_load = tolerant(
            v,
            "max_values_per_load",
            |x| usize::from_value(x).map(Some),
            None,
        )?;
        grid.sampling = tolerant(v, "sampling", |x| sampling_value(x).map(Some), None)?;
        grid.cores = tolerant(v, "cores", Vec::from_value, Vec::new())?;
        grid.l3 = tolerant(v, "l3", |x| l3_value(x).map(Some), None)?;
        grid.interconnect_hop = tolerant(
            v,
            "interconnect_hop",
            |x| u64::from_value(x).map(Some),
            None,
        )?;
        grid.cross_core_spawn = tolerant(
            v,
            "cross_core_spawn",
            |x| bool::from_value(x).map(Some),
            None,
        )?;
        grid.co_workloads = tolerant(v, "co_workloads", Vec::from_value, Vec::new())?;
        Ok(grid)
    }
}

impl Deserialize for Scenario {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let name = tolerant(v, "name", String::from_value, String::new())?;
        if name.is_empty() {
            return Err(serde::Error("scenario requires a `name`".into()));
        }
        let mut s = Scenario::new(&name, "", "");
        s.title = tolerant(v, "title", String::from_value, name.clone())?;
        s.description = tolerant(v, "description", String::from_value, String::new())?;
        s.scale = tolerant(v, "scale", |x| scale_value(x).map(Some), None)?;
        s.benches = tolerant(v, "benches", Vec::from_value, Vec::new())?;
        s.baseline = tolerant(v, "baseline", |x| String::from_value(x).map(Some), None)?;
        s.series = tolerant(v, "series", Vec::from_value, Vec::new())?;
        s.grids = tolerant(v, "grids", Vec::from_value, Vec::new())?;
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_expands_nested_axes_with_labels() {
        let grid = ConfigGrid::new("mtvp{contexts}.s{spawn}", Mode::Mtvp)
            .oracle()
            .contexts(&[2, 4])
            .spawn_latency(&[1, 8]);
        let configs = grid.expand().unwrap();
        assert_eq!(
            configs.iter().map(|(l, _)| l.as_str()).collect::<Vec<_>>(),
            vec!["mtvp2.s1", "mtvp2.s8", "mtvp4.s1", "mtvp4.s8"]
        );
        assert_eq!(configs[0].1.contexts, 2);
        assert_eq!(configs[3].1.spawn_latency, 8);
        assert_eq!(configs[0].1.predictor, mtvp_pipeline::PredictorKind::Oracle);
    }

    #[test]
    fn duplicate_labels_are_rejected() {
        let mut s = Scenario::new("dup", "dup", "");
        s.grids = vec![
            ConfigGrid::new("same", Mode::Baseline),
            ConfigGrid::new("same", Mode::Mtvp),
        ];
        assert!(s.configs().is_err());
    }

    #[test]
    fn invalid_grid_points_are_rejected() {
        let grid = ConfigGrid::new("bad{contexts}", Mode::Baseline).contexts(&[8]);
        assert!(grid.expand().is_err());
    }

    #[test]
    fn dangling_baseline_is_rejected() {
        let mut s = Scenario::new("x", "x", "");
        s.grids = vec![ConfigGrid::new("base", Mode::Baseline)];
        s.baseline = Some("nope".to_string());
        assert!(s.configs().is_err());
    }

    #[test]
    fn scenario_round_trips_through_json() {
        let mut s = Scenario::new("fig-x", "Figure X", "speedup vs contexts");
        s.scale = Some(Scale::Tiny);
        s.benches = vec!["mcf".into(), "swim".into()];
        s.baseline = Some("base".into());
        s.grids = vec![
            ConfigGrid::new("base", Mode::Baseline),
            ConfigGrid::new("mtvp{contexts}", Mode::Mtvp)
                .oracle()
                .contexts(&[2, 4, 8]),
        ];
        let json = serde_json::to_string_pretty(&s).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn sparse_json_uses_cli_vocabulary_and_defaults() {
        let text = r#"{
            "name": "mini",
            "scale": "tiny",
            "benches": ["mcf"],
            "grids": [
                {"label": "base", "mode": "baseline"},
                {"label": "nostall", "mode": "mtvp-nostall",
                 "predictor": "wf-liberal", "selector": "l3",
                 "sampling": "2000:50000:1000"}
            ]
        }"#;
        let s = Scenario::from_json(text).unwrap();
        assert_eq!(s.title, "mini");
        assert_eq!(s.scale, Some(Scale::Tiny));
        let configs = s.configs().unwrap();
        assert_eq!(configs.len(), 2);
        assert_eq!(configs[1].1.mode, Mode::MtvpNoStall);
        assert_eq!(configs[0].1.sampling, None);
        assert_eq!(
            configs[1].1.sampling,
            Some(SamplingParams {
                window: 2000,
                interval: 50_000,
                warmup: 1000,
            })
        );
        assert_eq!(
            configs[1].1.predictor,
            mtvp_pipeline::PredictorKind::WangFranklinLiberal
        );
        assert_eq!(
            configs[1].1.selector,
            mtvp_pipeline::SelectorKind::L3MissOracle
        );
        // Unlabelled grids fall back to the mode name.
        let s = Scenario::from_json(r#"{"name": "x", "grids": [{"mode": "mtvp"}]}"#).unwrap();
        assert_eq!(s.configs().unwrap()[0].0, "mtvp");
    }

    #[test]
    fn spawn_policy_axis_round_trips_and_accepts_cli_vocabulary() {
        let mut s = Scenario::new("hinted-x", "x", "");
        s.grids = vec![
            ConfigGrid::new("dynamic", Mode::Mtvp),
            ConfigGrid::new("static", Mode::Mtvp).spawn_policy(SpawnPolicyKind::Static),
        ];
        let json = serde_json::to_string_pretty(&s).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        let configs = back.configs().unwrap();
        assert_eq!(configs[0].1.spawn_policy, SpawnPolicyKind::Dynamic);
        assert_eq!(configs[1].1.spawn_policy, SpawnPolicyKind::Static);

        // Sparse JSON with the CLI spelling.
        let text = r#"{
            "name": "mini",
            "grids": [
                {"label": "hints", "mode": "mtvp", "spawn_policy": "static"},
                {"label": "dyn", "mode": "mtvp"}
            ]
        }"#;
        let s = Scenario::from_json(text).unwrap();
        let configs = s.configs().unwrap();
        assert_eq!(configs[0].1.spawn_policy, SpawnPolicyKind::Static);
        assert_eq!(configs[1].1.spawn_policy, SpawnPolicyKind::Dynamic);

        // The static policy on the in-order core is rejected at expand.
        let bad = Scenario::from_json(
            r#"{"name": "bad", "grids": [
                {"label": "x", "mode": "baseline", "core": "inorder", "spawn_policy": "static"}
            ]}"#,
        )
        .unwrap();
        assert!(bad.configs().is_err());
    }

    #[test]
    fn core_axis_round_trips_and_accepts_cli_vocabulary() {
        let mut s = Scenario::new("baseline-x", "x", "");
        s.grids = vec![
            ConfigGrid::new("inorder", Mode::Baseline).core(CoreKind::InOrderScalar),
            ConfigGrid::new("ooo", Mode::Baseline),
        ];
        let json = serde_json::to_string_pretty(&s).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        let configs = back.configs().unwrap();
        assert_eq!(configs[0].1.core, CoreKind::InOrderScalar);
        assert_eq!(configs[1].1.core, CoreKind::OutOfOrder);

        // Sparse JSON: CLI spelling, and the field defaults to out-of-order.
        let text = r#"{
            "name": "mini",
            "grids": [
                {"label": "io", "mode": "baseline", "core": "inorder"},
                {"label": "base", "mode": "baseline"}
            ]
        }"#;
        let s = Scenario::from_json(text).unwrap();
        let configs = s.configs().unwrap();
        assert_eq!(configs[0].1.core, CoreKind::InOrderScalar);
        assert_eq!(configs[1].1.core, CoreKind::OutOfOrder);

        // Knobs the in-order core rejects are caught at expansion time.
        let grid = ConfigGrid::new("io{contexts}", Mode::Baseline)
            .core(CoreKind::InOrderScalar)
            .contexts(&[4]);
        let e = grid.expand().unwrap_err();
        assert!(e.0.contains("in-order"), "{e}");
    }

    #[test]
    fn cmp_axes_round_trip_and_expand() {
        let mut s = Scenario::new("cmp-x", "x", "");
        s.grids = vec![
            ConfigGrid::new("base", Mode::Mtvp),
            ConfigGrid::new("cmp{cores}c", Mode::Mtvp)
                .cores(&[2, 4])
                .l3(L3Params {
                    kb: 2048,
                    assoc: 8,
                    latency: 40,
                })
                .interconnect_hop(6)
                .cross_core_spawn(true),
        ];
        let json = serde_json::to_string_pretty(&s).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        let configs = back.configs().unwrap();
        assert_eq!(
            configs.iter().map(|(l, _)| l.as_str()).collect::<Vec<_>>(),
            vec!["base", "cmp2c", "cmp4c"]
        );
        assert_eq!(configs[0].1.cores, 1);
        assert_eq!(configs[2].1.cores, 4);
        assert_eq!(configs[2].1.l3.kb, 2048);
        assert_eq!(configs[2].1.interconnect_hop, 6);
        assert!(configs[2].1.cross_core_spawn);

        // Sparse JSON with the CLI l3 spelling and co-runner specs.
        let text = r#"{
            "name": "mini",
            "grids": [
                {"label": "mix{cores}", "mode": "mtvp", "cores": [2],
                 "l3": "1024:8:30", "co_workloads": ["synth:7"]}
            ]
        }"#;
        let s = Scenario::from_json(text).unwrap();
        let configs = s.configs().unwrap();
        assert_eq!(configs[0].0, "mix2");
        assert_eq!(configs[0].1.l3.assoc, 8);
        assert_eq!(configs[0].1.co_workloads, vec!["synth:7".to_string()]);

        // A mix wider than the sibling cores is caught at expansion.
        let bad = Scenario::from_json(
            r#"{"name": "bad", "grids": [
                {"label": "x", "mode": "mtvp", "cores": [2],
                 "co_workloads": ["synth:1", "synth:2"]}
            ]}"#,
        )
        .unwrap();
        assert!(bad.configs().is_err());
    }

    #[test]
    fn bad_scenarios_report_errors() {
        assert!(Scenario::from_json("not json").is_err());
        assert!(Scenario::from_json(r#"{"grids": []}"#).is_err());
        let e = Scenario::from_json(r#"{"name": "x", "grids": [{"mode": "warp9"}]}"#).unwrap_err();
        assert!(e.0.contains("unknown mode"), "{e}");
    }
}
