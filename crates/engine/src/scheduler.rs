//! Work-stealing job scheduler with longest-job-first ordering.
//!
//! The generalization of the old `parallel_map`: jobs carry a cost
//! estimate, are sorted heaviest-first, and are dealt round-robin into
//! per-worker deques. Each worker pops its own heaviest remaining job
//! from the front; an idle worker steals the *lightest* job from the back
//! of the fullest victim deque (the classic split: owners drain big work,
//! thieves take small tail work, so the critical path — the biggest
//! benchmark under the widest MTVP configuration — starts first and
//! nobody waits on a long tail).
//!
//! Results are reassembled in input order via an index channel, so
//! callers see a deterministic output regardless of completion order.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A work-stealing scheduler.
#[derive(Clone, Copy, Debug)]
pub struct Scheduler {
    /// Maximum worker threads.
    pub workers: usize,
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler::with_jobs_cap(None)
    }
}

impl Scheduler {
    /// A scheduler using all available cores, optionally capped at
    /// `jobs` threads (the CLI's `--jobs N`).
    pub fn with_jobs_cap(jobs: Option<usize>) -> Scheduler {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Scheduler {
            workers: jobs.unwrap_or(cores).clamp(1, cores.max(1)),
        }
    }

    /// Run `f` over every item, heaviest first (by `cost`), returning the
    /// results in input order. `on_done` is invoked on the calling thread
    /// as each result arrives, with `(completed_count, index)` — the
    /// progress hook.
    pub fn run<T, R, C, F, D>(&self, items: &[T], cost: C, f: F, mut on_done: D) -> Vec<R>
    where
        T: Sync,
        R: Send,
        C: Fn(&T) -> u64,
        F: Fn(&T) -> R + Sync,
        D: FnMut(usize, usize),
    {
        // Longest job first; ties broken by input index for determinism.
        let mut order: Vec<usize> = (0..items.len()).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(cost(&items[i])), i));

        let workers = self.workers.min(items.len()).max(1);
        if workers <= 1 {
            let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
            for (done, &i) in order.iter().enumerate() {
                out[i] = Some(f(&items[i]));
                on_done(done + 1, i);
            }
            return out.into_iter().map(|r| r.expect("every job ran")).collect();
        }

        // Deal the sorted jobs round-robin into per-worker deques.
        let mut queues: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
        for (pos, &i) in order.iter().enumerate() {
            queues[pos % workers].push_back(i);
        }
        let queues: Vec<Mutex<VecDeque<usize>>> = queues.into_iter().map(Mutex::new).collect();

        let (tx, rx) = std::sync::mpsc::channel::<(usize, R)>();
        std::thread::scope(|s| {
            for w in 0..workers {
                let tx = tx.clone();
                let queues = &queues;
                let f = &f;
                s.spawn(move || loop {
                    let job = claim(queues, w);
                    let Some(i) = job else { break };
                    let r = f(&items[i]);
                    if tx.send((i, r)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            let mut out: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
            let mut done = 0usize;
            for (i, r) in rx {
                out[i] = Some(r);
                done += 1;
                on_done(done, i);
            }
            out.into_iter().map(|r| r.expect("every job ran")).collect()
        })
    }
}

/// Claim the next job for worker `w`: own front first, then steal from
/// the back of the fullest other queue. Returns `None` when all queues
/// are empty.
fn claim(queues: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    if let Some(i) = queues[w].lock().expect("queue lock").pop_front() {
        return Some(i);
    }
    // Pick the victim with the most remaining work (peek without holding
    // more than one lock at a time; a stale read just means a retry).
    loop {
        let mut victim: Option<(usize, usize)> = None;
        for (q, queue) in queues.iter().enumerate() {
            if q == w {
                continue;
            }
            let len = queue.lock().expect("queue lock").len();
            if len > 0 && victim.is_none_or(|(_, best)| len > best) {
                victim = Some((q, len));
            }
        }
        let (q, _) = victim?;
        if let Some(i) = queues[q].lock().expect("queue lock").pop_back() {
            return Some(i);
        }
        // The victim drained between peek and steal; rescan.
    }
}

/// Order-preserving parallel map with uniform job costs — the old
/// `mtvp_core::sweep::parallel_map`, now a thin wrapper.
pub fn parallel_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    Scheduler::default().run(items, |_| 1, f, |_, _| {})
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(&items, |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_runs_longest_first() {
        let sched = Scheduler { workers: 1 };
        let items = vec![1u64, 100, 10];
        let log = Mutex::new(Vec::new());
        let out = sched.run(
            &items,
            |&c| c,
            |&c| {
                log.lock().unwrap().push(c);
                c
            },
            |_, _| {},
        );
        assert_eq!(out, items);
        assert_eq!(*log.lock().unwrap(), vec![100, 10, 1]);
    }

    #[test]
    fn stealing_completes_everything_under_skew() {
        // One huge job pins a worker; the rest must be stolen and finished.
        let sched = Scheduler { workers: 4 };
        let items: Vec<u64> = (0..64)
            .map(|i| if i == 0 { 1_000_000 } else { i })
            .collect();
        let ran = AtomicUsize::new(0);
        let out = sched.run(
            &items,
            |&c| c,
            |&c| {
                ran.fetch_add(1, Ordering::Relaxed);
                if c == 1_000_000 {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                }
                c + 1
            },
            |_, _| {},
        );
        assert_eq!(ran.load(Ordering::Relaxed), 64);
        assert_eq!(out, items.iter().map(|c| c + 1).collect::<Vec<_>>());
    }

    #[test]
    fn on_done_reports_monotonic_progress() {
        let sched = Scheduler { workers: 3 };
        let items: Vec<u64> = (0..20).collect();
        let mut seen = Vec::new();
        sched.run(&items, |_| 1, |&c| c, |done, _| seen.push(done));
        assert_eq!(seen, (1..=20).collect::<Vec<_>>());
    }

    #[test]
    fn jobs_cap_is_respected() {
        let s = Scheduler::with_jobs_cap(Some(2));
        assert_eq!(s.workers.min(2), s.workers);
        let s1 = Scheduler::with_jobs_cap(Some(0));
        assert_eq!(s1.workers, 1);
    }
}
