//! Sweep results: the (benchmark × configuration) measurement grid behind
//! every figure, plus the paper's aggregation arithmetic.
//!
//! The execution machinery that used to live here (`parallel_map`, the
//! two-phase trace/simulate driver) is now the engine proper — see
//! [`crate::engine::Engine`]. `Sweep::run`/`run_filtered` remain as
//! uncached conveniences for tests and probe binaries.

use crate::engine::Engine;
use mtvp_core::SimConfig;
use mtvp_pipeline::PipeStats;
use mtvp_workloads::{Scale, Suite, Workload};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// One (benchmark × configuration) measurement.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    /// Benchmark name.
    pub bench: String,
    /// Suite of the benchmark.
    pub suite_int: bool,
    /// Configuration label.
    pub config: String,
    /// Full statistics.
    pub stats: PipeStats,
}

/// Results of a sweep.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Sweep {
    /// All measurements.
    pub cells: Vec<Cell>,
}

impl Sweep {
    /// Run every configuration over every benchmark of the suite at
    /// `scale`, in parallel across available cores (uncached; see
    /// [`Engine`] for the cached, resumable driver).
    pub fn run(configs: &[(String, SimConfig)], scale: Scale) -> Sweep {
        Self::run_filtered(configs, scale, |_| true)
    }

    /// Run with a benchmark filter (uncached).
    pub fn run_filtered(
        configs: &[(String, SimConfig)],
        scale: Scale,
        keep: impl Fn(&Workload) -> bool,
    ) -> Sweep {
        Engine::ephemeral().run_cells(configs, scale, keep).sweep
    }

    /// The measurement for (`bench`, `config`).
    pub fn cell(&self, bench: &str, config: &str) -> Option<&Cell> {
        self.cells
            .iter()
            .find(|c| c.bench == bench && c.config == config)
    }

    /// Percent useful-IPC speedup of `config` over `baseline` on `bench`
    /// (the paper's y-axis).
    pub fn speedup(&self, bench: &str, config: &str, baseline: &str) -> Option<f64> {
        let c = self.cell(bench, config)?;
        let b = self.cell(bench, baseline)?;
        Some(c.stats.speedup_over(&b.stats))
    }

    /// Geometric-mean percent speedup of `config` over `baseline` across
    /// the benchmarks of `which` suite (or all when `None`) — the paper's
    /// "average" bars.
    pub fn geomean_speedup(&self, which: Option<Suite>, config: &str, baseline: &str) -> f64 {
        // One pass to index the baseline cells by bench name, so the loop
        // below is O(cells) instead of a linear `cell()` scan per bench.
        let baseline_by_bench: HashMap<&str, &Cell> = self
            .cells
            .iter()
            .filter(|c| c.config == baseline)
            .map(|c| (c.bench.as_str(), c))
            .collect();
        let mut log_sum = 0.0;
        let mut n = 0usize;
        for cell in self.cells.iter().filter(|c| c.config == config) {
            if let Some(suite) = which {
                if (suite == Suite::Int) != cell.suite_int {
                    continue;
                }
            }
            let Some(b) = baseline_by_bench.get(cell.bench.as_str()) else {
                continue;
            };
            let (ci, bi) = (cell.stats.ipc(), b.stats.ipc());
            if ci > 0.0 && bi > 0.0 {
                log_sum += (ci / bi).ln();
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            ((log_sum / n as f64).exp() - 1.0) * 100.0
        }
    }

    /// Benchmarks present, in first-seen order (suite order when the
    /// sweep was produced by the engine: integer first).
    pub fn benches(&self) -> Vec<(String, bool)> {
        let mut seen: HashSet<&str> = HashSet::with_capacity(self.cells.len());
        let mut out = Vec::new();
        for c in &self.cells {
            if seen.insert(c.bench.as_str()) {
                out.push((c.bench.clone(), c.suite_int));
            }
        }
        out
    }

    /// Serialize to pretty JSON (for EXPERIMENTS.md bookkeeping and the
    /// `exp run --json-out` artifact).
    ///
    /// # Errors
    /// Returns a serialization error instead of panicking (in practice
    /// `PipeStats` always serializes; callers decide how to report).
    pub fn to_json(&self) -> Result<String, serde::Error> {
        serde_json::to_string_pretty(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtvp_core::Mode;

    #[test]
    fn small_sweep_runs_and_aggregates() {
        let configs = vec![
            ("base".to_string(), SimConfig::new(Mode::Baseline)),
            ("mtvp4".to_string(), {
                let mut c = SimConfig::oracle(Mode::Mtvp);
                c.contexts = 4;
                c
            }),
        ];
        let sweep =
            Sweep::run_filtered(&configs, Scale::Tiny, |w| matches!(w.name, "mcf" | "mesa"));
        assert_eq!(sweep.cells.len(), 4);
        assert!(sweep.cell("mcf", "base").is_some());
        let s = sweep.speedup("mcf", "mtvp4", "base").unwrap();
        assert!(s.is_finite());
        let g = sweep.geomean_speedup(None, "mtvp4", "base");
        assert!(g.is_finite());
        let benches = sweep.benches();
        assert_eq!(benches.len(), 2);
        // JSON roundtrip.
        let json = sweep.to_json().unwrap();
        let back: Sweep = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sweep);
    }

    #[test]
    fn benches_dedups_in_first_seen_order() {
        let stats = PipeStats::default();
        let mk = |bench: &str, suite_int, config: &str| Cell {
            bench: bench.to_string(),
            suite_int,
            config: config.to_string(),
            stats: stats.clone(),
        };
        let sweep = Sweep {
            cells: vec![
                mk("mcf", true, "a"),
                mk("swim", false, "a"),
                mk("mcf", true, "b"),
                mk("twolf", true, "b"),
                mk("swim", false, "b"),
            ],
        };
        assert_eq!(
            sweep.benches(),
            vec![
                ("mcf".to_string(), true),
                ("swim".to_string(), false),
                ("twolf".to_string(), true)
            ]
        );
    }
}
