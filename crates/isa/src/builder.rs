//! Label-resolving program builder ("assembler").

use crate::inst::{Inst, Op};
use crate::program::{DataSegment, Program};
use crate::reg::{FReg, Reg};
use crate::DATA_BASE;

/// A forward-referenceable code label created by [`ProgramBuilder::label`].
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Label(usize);

/// Incremental builder for [`Program`]s with label resolution and a bump
/// allocator for initialized data.
///
/// # Example
///
/// ```
/// use mtvp_isa::{ProgramBuilder, Reg};
/// let mut b = ProgramBuilder::new();
/// let arr = b.alloc_u64(&[10, 20, 30]);
/// b.li(Reg(1), arr as i64);
/// b.ld(Reg(2), Reg(1), 8);
/// b.halt();
/// let p = b.build();
/// assert_eq!(p.len(), 3);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    name: String,
    code: Vec<Inst>,
    labels: Vec<Option<u64>>,
    /// (code index, label) pairs whose `imm` needs patching at build time.
    fixups: Vec<(usize, Label)>,
    data: Vec<DataSegment>,
    data_cursor: u64,
}

impl ProgramBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        ProgramBuilder {
            data_cursor: DATA_BASE,
            ..Default::default()
        }
    }

    /// Set the program name (shown in stats and harness output).
    pub fn name(&mut self, name: impl Into<String>) -> &mut Self {
        self.name = name.into();
        self
    }

    /// Current instruction index (the PC of the next emitted instruction).
    pub fn here(&self) -> u64 {
        self.code.len() as u64
    }

    /// Create a new, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Bind `label` to the current position.
    ///
    /// # Panics
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        let slot = &mut self.labels[label.0];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(self.code.len() as u64);
    }

    /// Convenience: create a label bound at the current position.
    pub fn here_label(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    // ---- data segment ----

    /// Allocate `len` zeroed bytes in the data segment; returns the base address.
    pub fn alloc_zeroed(&mut self, len: u64) -> u64 {
        self.alloc_bytes(&vec![0u8; len as usize])
    }

    /// Allocate and initialize a u64 array; returns the base address.
    pub fn alloc_u64(&mut self, words: &[u64]) -> u64 {
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        self.alloc_bytes(&bytes)
    }

    /// Allocate and initialize an f64 array; returns the base address.
    pub fn alloc_f64(&mut self, words: &[f64]) -> u64 {
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        self.alloc_bytes(&bytes)
    }

    /// Allocate raw bytes (8-byte aligned); returns the base address.
    pub fn alloc_bytes(&mut self, bytes: &[u8]) -> u64 {
        let base = self.data_cursor;
        self.data.push(DataSegment {
            base,
            bytes: bytes.to_vec(),
        });
        let len = (bytes.len() as u64 + 7) & !7;
        self.data_cursor = base + len.max(8);
        base
    }

    /// The address the next data allocation will receive.
    pub fn data_cursor(&self) -> u64 {
        self.data_cursor
    }

    /// Reserve address space without initializing it (reads return 0).
    pub fn reserve(&mut self, len: u64) -> u64 {
        let base = self.data_cursor;
        self.data_cursor = base + ((len + 7) & !7).max(8);
        base
    }

    // ---- raw emission ----

    /// Emit a raw instruction. Prefer the typed helpers below.
    pub fn emit(&mut self, inst: Inst) -> &mut Self {
        self.code.push(inst);
        self
    }

    fn rrr(&mut self, op: Op, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.emit(Inst {
            op,
            rd: rd.0,
            rs1: rs1.0,
            rs2: rs2.0,
            imm: 0,
        })
    }

    fn rri(&mut self, op: Op, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.emit(Inst {
            op,
            rd: rd.0,
            rs1: rs1.0,
            rs2: 0,
            imm,
        })
    }

    fn branch(&mut self, op: Op, rs1: Reg, rs2: Reg, target: Label) -> &mut Self {
        self.fixups.push((self.code.len(), target));
        self.emit(Inst {
            op,
            rd: 0,
            rs1: rs1.0,
            rs2: rs2.0,
            imm: 0,
        })
    }

    fn fff(&mut self, op: Op, rd: FReg, rs1: FReg, rs2: FReg) -> &mut Self {
        self.emit(Inst {
            op,
            rd: rd.0,
            rs1: rs1.0,
            rs2: rs2.0,
            imm: 0,
        })
    }

    fn ff(&mut self, op: Op, rd: FReg, rs1: FReg) -> &mut Self {
        self.emit(Inst {
            op,
            rd: rd.0,
            rs1: rs1.0,
            rs2: 0,
            imm: 0,
        })
    }
}

/// Generates a `&mut Self`-returning builder method per opcode group.
macro_rules! rrr_ops {
    ($($name:ident => $op:ident),* $(,)?) => {
        impl ProgramBuilder {
            $(
                #[doc = concat!("Emit `", stringify!($name), " rd, rs1, rs2`.")]
                pub fn $name(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
                    self.rrr(Op::$op, rd, rs1, rs2)
                }
            )*
        }
    };
}

macro_rules! rri_ops {
    ($($name:ident => $op:ident),* $(,)?) => {
        impl ProgramBuilder {
            $(
                #[doc = concat!("Emit `", stringify!($name), " rd, rs1, imm`.")]
                pub fn $name(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
                    self.rri(Op::$op, rd, rs1, imm)
                }
            )*
        }
    };
}

macro_rules! branch_ops {
    ($($name:ident => $op:ident),* $(,)?) => {
        impl ProgramBuilder {
            $(
                #[doc = concat!("Emit a `", stringify!($name), "` branch to `target`.")]
                pub fn $name(&mut self, rs1: Reg, rs2: Reg, target: Label) -> &mut Self {
                    self.branch(Op::$op, rs1, rs2, target)
                }
            )*
        }
    };
}

macro_rules! fff_ops {
    ($($name:ident => $op:ident),* $(,)?) => {
        impl ProgramBuilder {
            $(
                #[doc = concat!("Emit `", stringify!($name), " frd, frs1, frs2`.")]
                pub fn $name(&mut self, rd: FReg, rs1: FReg, rs2: FReg) -> &mut Self {
                    self.fff(Op::$op, rd, rs1, rs2)
                }
            )*
        }
    };
}

macro_rules! ff_ops {
    ($($name:ident => $op:ident),* $(,)?) => {
        impl ProgramBuilder {
            $(
                #[doc = concat!("Emit `", stringify!($name), " frd, frs1`.")]
                pub fn $name(&mut self, rd: FReg, rs1: FReg) -> &mut Self {
                    self.ff(Op::$op, rd, rs1)
                }
            )*
        }
    };
}

rrr_ops! {
    add => Add, sub => Sub, mul => Mul, divu => Divu, remu => Remu,
    and => And, or => Or, xor => Xor, sll => Sll, srl => Srl, sra => Sra,
    slt => Slt, sltu => Sltu,
}

rri_ops! {
    addi => Addi, andi => Andi, ori => Ori, xori => Xori,
    slli => Slli, srli => Srli, srai => Srai, slti => Slti,
}

branch_ops! {
    beq => Beq, bne => Bne, blt => Blt, bge => Bge, bltu => Bltu, bgeu => Bgeu,
}

fff_ops! {
    fadd => Fadd, fsub => Fsub, fmul => Fmul, fdiv => Fdiv,
    fmin => Fmin, fmax => Fmax, fmadd => Fmadd,
}

ff_ops! {
    fsqrt => Fsqrt, fneg => Fneg, fabs => Fabs, fmov => Fmov,
}

impl ProgramBuilder {
    /// Emit `li rd, imm`.
    pub fn li(&mut self, rd: Reg, imm: i64) -> &mut Self {
        self.emit(Inst {
            op: Op::Li,
            rd: rd.0,
            rs1: 0,
            rs2: 0,
            imm,
        })
    }

    /// Emit `li rd, <address of label>` (resolved at build time) — used to
    /// materialize code addresses for indirect jumps.
    pub fn li_label(&mut self, rd: Reg, target: Label) -> &mut Self {
        self.fixups.push((self.code.len(), target));
        self.emit(Inst {
            op: Op::Li,
            rd: rd.0,
            rs1: 0,
            rs2: 0,
            imm: 0,
        })
    }

    /// Emit an unconditional jump to `target`.
    pub fn j(&mut self, target: Label) -> &mut Self {
        self.fixups.push((self.code.len(), target));
        self.emit(Inst {
            op: Op::J,
            rd: 0,
            rs1: 0,
            rs2: 0,
            imm: 0,
        })
    }

    /// Emit `jal rd, target` (call, link in `rd`).
    pub fn jal(&mut self, rd: Reg, target: Label) -> &mut Self {
        self.fixups.push((self.code.len(), target));
        self.emit(Inst {
            op: Op::Jal,
            rd: rd.0,
            rs1: 0,
            rs2: 0,
            imm: 0,
        })
    }

    /// Emit `jr rs1` (indirect jump / return).
    pub fn jr(&mut self, rs1: Reg) -> &mut Self {
        self.emit(Inst {
            op: Op::Jr,
            rd: 0,
            rs1: rs1.0,
            rs2: 0,
            imm: 0,
        })
    }

    /// Emit `jalr rd, rs1` (indirect call).
    pub fn jalr(&mut self, rd: Reg, rs1: Reg) -> &mut Self {
        self.emit(Inst {
            op: Op::Jalr,
            rd: rd.0,
            rs1: rs1.0,
            rs2: 0,
            imm: 0,
        })
    }

    /// Emit `ld rd, off(base)`.
    pub fn ld(&mut self, rd: Reg, base: Reg, off: i64) -> &mut Self {
        self.emit(Inst {
            op: Op::Ld,
            rd: rd.0,
            rs1: base.0,
            rs2: 0,
            imm: off,
        })
    }

    /// Emit `st src, off(base)`.
    pub fn st(&mut self, src: Reg, base: Reg, off: i64) -> &mut Self {
        self.emit(Inst {
            op: Op::St,
            rd: 0,
            rs1: base.0,
            rs2: src.0,
            imm: off,
        })
    }

    /// Emit `fld frd, off(base)`.
    pub fn fld(&mut self, rd: FReg, base: Reg, off: i64) -> &mut Self {
        self.emit(Inst {
            op: Op::Fld,
            rd: rd.0,
            rs1: base.0,
            rs2: 0,
            imm: off,
        })
    }

    /// Emit `fst fsrc, off(base)`.
    pub fn fst(&mut self, src: FReg, base: Reg, off: i64) -> &mut Self {
        self.emit(Inst {
            op: Op::Fst,
            rd: 0,
            rs1: base.0,
            rs2: src.0,
            imm: off,
        })
    }

    /// Emit fp compare `frs1 < frs2` into integer `rd`.
    pub fn fclt(&mut self, rd: Reg, rs1: FReg, rs2: FReg) -> &mut Self {
        self.emit(Inst {
            op: Op::Fclt,
            rd: rd.0,
            rs1: rs1.0,
            rs2: rs2.0,
            imm: 0,
        })
    }

    /// Emit fp compare `frs1 <= frs2` into integer `rd`.
    pub fn fcle(&mut self, rd: Reg, rs1: FReg, rs2: FReg) -> &mut Self {
        self.emit(Inst {
            op: Op::Fcle,
            rd: rd.0,
            rs1: rs1.0,
            rs2: rs2.0,
            imm: 0,
        })
    }

    /// Emit fp compare `frs1 == frs2` into integer `rd`.
    pub fn fceq(&mut self, rd: Reg, rs1: FReg, rs2: FReg) -> &mut Self {
        self.emit(Inst {
            op: Op::Fceq,
            rd: rd.0,
            rs1: rs1.0,
            rs2: rs2.0,
            imm: 0,
        })
    }

    /// Emit int→fp conversion `frd <- rs1 as f64`.
    pub fn icvtf(&mut self, rd: FReg, rs1: Reg) -> &mut Self {
        self.emit(Inst {
            op: Op::Icvtf,
            rd: rd.0,
            rs1: rs1.0,
            rs2: 0,
            imm: 0,
        })
    }

    /// Emit fp→int conversion `rd <- frs1 as i64`.
    pub fn fcvti(&mut self, rd: Reg, rs1: FReg) -> &mut Self {
        self.emit(Inst {
            op: Op::Fcvti,
            rd: rd.0,
            rs1: rs1.0,
            rs2: 0,
            imm: 0,
        })
    }

    /// Emit `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Inst::NOP)
    }

    /// Emit `halt`.
    pub fn halt(&mut self) -> &mut Self {
        self.emit(Inst {
            op: Op::Halt,
            rd: 0,
            rs1: 0,
            rs2: 0,
            imm: 0,
        })
    }

    /// Resolve labels and produce the final [`Program`].
    ///
    /// # Panics
    /// Panics if any referenced label was never bound.
    pub fn build(mut self) -> Program {
        for (idx, label) in self.fixups.drain(..) {
            let target = self.labels[label.0].expect("branch to unbound label");
            self.code[idx].imm = target as i64;
        }
        Program {
            name: if self.name.is_empty() {
                "anonymous".into()
            } else {
                self.name
            },
            code: self.code,
            data: self.data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut b = ProgramBuilder::new();
        let fwd = b.label();
        b.j(fwd); // 0
        let back = b.here_label(); // at 1
        b.nop(); // 1
        b.bind(fwd); // at 2
        b.beq(Reg(1), Reg(2), back); // 2
        b.halt();
        let p = b.build();
        assert_eq!(p.code[0].imm, 2);
        assert_eq!(p.code[2].imm, 1);
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.j(l);
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.bind(l);
        b.bind(l);
    }

    #[test]
    fn data_allocation_is_aligned_and_disjoint() {
        let mut b = ProgramBuilder::new();
        let a = b.alloc_u64(&[1, 2, 3]);
        let c = b.alloc_bytes(&[9; 5]);
        let z = b.reserve(100);
        let d = b.alloc_f64(&[1.5]);
        assert_eq!(a, DATA_BASE);
        assert_eq!(a % 8, 0);
        assert!(c >= a + 24);
        assert_eq!(c % 8, 0);
        assert!(z >= c + 8);
        assert!(d >= z + 100);
        let p = b.build();
        assert_eq!(p.data.len(), 3); // reserve() creates no segment
    }

    #[test]
    fn name_defaults() {
        assert_eq!(ProgramBuilder::new().build().name, "anonymous");
        let mut b = ProgramBuilder::new();
        b.name("kernel");
        assert_eq!(b.build().name, "kernel");
    }
}
