//! Instruction definitions: opcodes, operand accessors, classification.

use crate::reg::{FReg, Reg};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Opcode of an [`Inst`].
///
/// Operand fields of [`Inst`] are interpreted per-opcode; the table below
/// uses `rd/rs1/rs2` for integer registers, `frd/frs1/frs2` for
/// floating-point registers, and `imm` for the immediate.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[allow(missing_docs)] // variants documented by the group comments
pub enum Op {
    // --- integer ALU, register-register: rd <- rs1 op rs2 ---
    Add,
    Sub,
    Mul,
    Divu,
    Remu,
    And,
    Or,
    Xor,
    Sll,
    Srl,
    Sra,
    Slt,
    Sltu,
    // --- integer ALU, immediate: rd <- rs1 op imm ---
    Addi,
    Andi,
    Ori,
    Xori,
    Slli,
    Srli,
    Srai,
    Slti,
    /// rd <- imm
    Li,
    // --- conditional branches: if rs1 cmp rs2, goto imm (absolute) ---
    Beq,
    Bne,
    Blt,
    Bge,
    Bltu,
    Bgeu,
    // --- jumps ---
    /// goto imm
    J,
    /// rd <- pc + 1; goto imm
    Jal,
    /// goto rs1
    Jr,
    /// rd <- pc + 1; goto rs1
    Jalr,
    // --- memory ---
    /// rd <- mem64[rs1 + imm]
    Ld,
    /// mem64[rs1 + imm] <- rs2
    St,
    /// frd <- mem64[rs1 + imm] (as f64 bits)
    Fld,
    /// mem64[rs1 + imm] <- frs2 (f64 bits)
    Fst,
    // --- floating point: frd <- frs1 op frs2 (f64) ---
    Fadd,
    Fsub,
    Fmul,
    Fdiv,
    Fmin,
    Fmax,
    /// frd <- sqrt(frs1)
    Fsqrt,
    /// frd <- -frs1
    Fneg,
    /// frd <- |frs1|
    Fabs,
    /// frd <- frs1
    Fmov,
    /// frd <- frd + frs1 * frs2 (reads frd)
    Fmadd,
    // --- fp compares, integer destination ---
    /// rd <- (frs1 < frs2) as u64
    Fclt,
    /// rd <- (frs1 <= frs2) as u64
    Fcle,
    /// rd <- (frs1 == frs2) as u64
    Fceq,
    // --- conversions ---
    /// frd <- rs1 as i64 as f64
    Icvtf,
    /// rd <- frs1 as i64 (trunc, saturating)
    Fcvti,
    // --- misc ---
    Nop,
    /// Stop the (architectural) thread; ends simulation.
    Halt,
}

impl Op {
    /// Assembly mnemonic (the names [`Inst`]'s `Display` prints), as a
    /// static string for observability labels.
    pub fn mnemonic(self) -> &'static str {
        use Op::*;
        match self {
            Add => "add",
            Sub => "sub",
            Mul => "mul",
            Divu => "divu",
            Remu => "remu",
            And => "and",
            Or => "or",
            Xor => "xor",
            Sll => "sll",
            Srl => "srl",
            Sra => "sra",
            Slt => "slt",
            Sltu => "sltu",
            Addi => "addi",
            Andi => "andi",
            Ori => "ori",
            Xori => "xori",
            Slli => "slli",
            Srli => "srli",
            Srai => "srai",
            Slti => "slti",
            Li => "li",
            Beq => "beq",
            Bne => "bne",
            Blt => "blt",
            Bge => "bge",
            Bltu => "bltu",
            Bgeu => "bgeu",
            J => "j",
            Jal => "jal",
            Jr => "jr",
            Jalr => "jalr",
            Ld => "ld",
            St => "st",
            Fld => "fld",
            Fst => "fst",
            Fadd => "fadd",
            Fsub => "fsub",
            Fmul => "fmul",
            Fdiv => "fdiv",
            Fmin => "fmin",
            Fmax => "fmax",
            Fsqrt => "fsqrt",
            Fneg => "fneg",
            Fabs => "fabs",
            Fmov => "fmov",
            Fmadd => "fmadd",
            Fclt => "fclt",
            Fcle => "fcle",
            Fceq => "fceq",
            Icvtf => "icvtf",
            Fcvti => "fcvti",
            Nop => "nop",
            Halt => "halt",
        }
    }
}

/// Functional-unit / issue-queue class of an instruction.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ExecUnit {
    /// Integer ALU (includes branches and jumps).
    Int,
    /// Floating-point unit.
    Fp,
    /// Load/store unit.
    Mem,
}

/// Destination operand of an instruction.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Def {
    /// No architectural destination.
    None,
    /// Integer destination register.
    Int(Reg),
    /// Floating-point destination register.
    Fp(FReg),
}

/// Source operands of an instruction (up to 2 integer + 3 fp).
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub struct Uses {
    /// Integer source registers.
    pub int: [Option<Reg>; 2],
    /// Floating-point source registers (3rd slot used by `Fmadd`).
    pub fp: [Option<FReg>; 3],
}

/// Static control-flow successors of one instruction, as reported by
/// [`Inst::successors`]. The `target` is the raw encoded absolute
/// instruction index and is *not* validated against the text segment —
/// consumers (the `mtvp-analysis` CFG builder) diagnose out-of-range
/// targets instead of silently dropping them.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Successors {
    /// Fall-through successor (`pc + 1`), when execution can continue
    /// past this instruction and `pc + 1` is inside the text segment.
    pub fall_through: Option<u64>,
    /// Static branch/jump target (absolute instruction index).
    pub target: Option<i64>,
    /// Whether control transfers through a register (`Jr`/`Jalr`), i.e.
    /// the successor set is not statically known.
    pub indirect: bool,
}

/// One machine instruction.
///
/// Field meaning is opcode-dependent (see [`Op`]); the [`Inst::def`] and
/// [`Inst::uses`] accessors provide a uniform operand view for renaming.
/// Instructions are built with [`crate::ProgramBuilder`], which enforces
/// per-opcode operand typing.
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Inst {
    /// Opcode.
    pub op: Op,
    /// Destination register number (int or fp per opcode).
    pub rd: u8,
    /// First source register number (int or fp per opcode).
    pub rs1: u8,
    /// Second source register number (int or fp per opcode).
    pub rs2: u8,
    /// Immediate: ALU operand, branch/jump target (absolute instruction
    /// index), or load/store displacement.
    pub imm: i64,
}

impl Inst {
    /// A canonical no-op.
    pub const NOP: Inst = Inst {
        op: Op::Nop,
        rd: 0,
        rs1: 0,
        rs2: 0,
        imm: 0,
    };

    /// Destination operand, if any.
    pub fn def(&self) -> Def {
        use Op::*;
        match self.op {
            Add | Sub | Mul | Divu | Remu | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu
            | Addi | Andi | Ori | Xori | Slli | Srli | Srai | Slti | Li | Jal | Jalr | Ld
            | Fclt | Fcle | Fceq | Fcvti => {
                if self.rd == 0 {
                    Def::None // r0 is hardwired zero
                } else {
                    Def::Int(Reg(self.rd))
                }
            }
            Fld | Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax | Fsqrt | Fneg | Fabs | Fmov | Fmadd
            | Icvtf => Def::Fp(FReg(self.rd)),
            Beq | Bne | Blt | Bge | Bltu | Bgeu | J | Jr | St | Fst | Nop | Halt => Def::None,
        }
    }

    /// Source operands.
    pub fn uses(&self) -> Uses {
        use Op::*;
        let mut u = Uses::default();
        let ir = |n: u8| if n == 0 { None } else { Some(Reg(n)) };
        match self.op {
            Add | Sub | Mul | Divu | Remu | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu | Beq
            | Bne | Blt | Bge | Bltu | Bgeu => {
                u.int = [ir(self.rs1), ir(self.rs2)];
            }
            Addi | Andi | Ori | Xori | Slli | Srli | Srai | Slti | Jr | Jalr | Ld | Fld | Icvtf => {
                u.int = [ir(self.rs1), None];
            }
            St => {
                u.int = [ir(self.rs1), ir(self.rs2)];
            }
            Fst => {
                u.int = [ir(self.rs1), None];
                u.fp = [Some(FReg(self.rs2)), None, None];
            }
            Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax | Fclt | Fcle | Fceq => {
                u.fp = [Some(FReg(self.rs1)), Some(FReg(self.rs2)), None];
            }
            Fsqrt | Fneg | Fabs | Fmov | Fcvti => {
                u.fp = [Some(FReg(self.rs1)), None, None];
            }
            Fmadd => {
                u.fp = [
                    Some(FReg(self.rs1)),
                    Some(FReg(self.rs2)),
                    Some(FReg(self.rd)),
                ];
            }
            Li | J | Jal | Nop | Halt => {}
        }
        u
    }

    /// Which issue queue / functional unit class executes this instruction.
    pub fn unit(&self) -> ExecUnit {
        use Op::*;
        match self.op {
            Ld | St | Fld | Fst => ExecUnit::Mem,
            Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax | Fsqrt | Fneg | Fabs | Fmov | Fmadd
            | Icvtf => ExecUnit::Fp,
            _ => ExecUnit::Int,
        }
    }

    /// Base execution latency in cycles (loads add memory-hierarchy time).
    pub fn base_latency(&self) -> u32 {
        use Op::*;
        match self.op {
            Mul => 3,
            Divu | Remu => 20,
            Fadd | Fsub | Fmin | Fmax | Fneg | Fabs | Fmov => 4,
            Fmul | Fmadd => 4,
            Fdiv => 12,
            Fsqrt => 24,
            Fclt | Fcle | Fceq | Icvtf | Fcvti => 2,
            Ld | St | Fld | Fst => 1, // address generation; cache time added on top
            _ => 1,
        }
    }

    /// Whether this is a load (`Ld` or `Fld`).
    pub fn is_load(&self) -> bool {
        matches!(self.op, Op::Ld | Op::Fld)
    }

    /// Whether this is a store (`St` or `Fst`).
    pub fn is_store(&self) -> bool {
        matches!(self.op, Op::St | Op::Fst)
    }

    /// Whether this is a control-flow instruction (branch or jump).
    pub fn is_control(&self) -> bool {
        use Op::*;
        matches!(
            self.op,
            Beq | Bne | Blt | Bge | Bltu | Bgeu | J | Jal | Jr | Jalr
        )
    }

    /// Whether this is a *conditional* branch.
    pub fn is_cond_branch(&self) -> bool {
        use Op::*;
        matches!(self.op, Beq | Bne | Blt | Bge | Bltu | Bgeu)
    }

    /// Whether the branch/jump target is a compile-time constant
    /// (everything except `Jr`/`Jalr`).
    pub fn has_static_target(&self) -> bool {
        use Op::*;
        matches!(self.op, Beq | Bne | Blt | Bge | Bltu | Bgeu | J | Jal)
    }

    /// Whether this instruction halts the thread.
    pub fn is_halt(&self) -> bool {
        self.op == Op::Halt
    }

    /// Static control-flow successors of this instruction at `pc` in a
    /// text segment of `code_len` instructions. `Halt` has none; falling
    /// off the end of the text (no `fall_through`, no `target`) ends the
    /// thread.
    pub fn successors(&self, pc: u64, code_len: usize) -> Successors {
        use Op::*;
        let next = (pc + 1 < code_len as u64).then_some(pc + 1);
        match self.op {
            Halt => Successors {
                fall_through: None,
                target: None,
                indirect: false,
            },
            Beq | Bne | Blt | Bge | Bltu | Bgeu => Successors {
                fall_through: next,
                target: Some(self.imm),
                indirect: false,
            },
            J | Jal => Successors {
                fall_through: None,
                target: Some(self.imm),
                indirect: false,
            },
            Jr | Jalr => Successors {
                fall_through: None,
                target: None,
                indirect: true,
            },
            _ => Successors {
                fall_through: next,
                target: None,
                indirect: false,
            },
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Op::*;
        let (op, rd, rs1, rs2, imm) = (self.op, self.rd, self.rs1, self.rs2, self.imm);
        match op {
            Add | Sub | Mul | Divu | Remu | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu => {
                write!(f, "{:?} r{rd}, r{rs1}, r{rs2}", op)
            }
            Addi | Andi | Ori | Xori | Slli | Srli | Srai | Slti => {
                write!(f, "{:?} r{rd}, r{rs1}, {imm}", op)
            }
            Li => write!(f, "li r{rd}, {imm}"),
            Beq | Bne | Blt | Bge | Bltu | Bgeu => {
                write!(f, "{:?} r{rs1}, r{rs2}, @{imm}", op)
            }
            J => write!(f, "j @{imm}"),
            Jal => write!(f, "jal r{rd}, @{imm}"),
            Jr => write!(f, "jr r{rs1}"),
            Jalr => write!(f, "jalr r{rd}, r{rs1}"),
            Ld => write!(f, "ld r{rd}, {imm}(r{rs1})"),
            St => write!(f, "st r{rs2}, {imm}(r{rs1})"),
            Fld => write!(f, "fld f{rd}, {imm}(r{rs1})"),
            Fst => write!(f, "fst f{rs2}, {imm}(r{rs1})"),
            Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax => {
                write!(f, "{:?} f{rd}, f{rs1}, f{rs2}", op)
            }
            Fsqrt | Fneg | Fabs | Fmov => write!(f, "{:?} f{rd}, f{rs1}", op),
            Fmadd => write!(f, "fmadd f{rd}, f{rs1}, f{rs2}"),
            Fclt | Fcle | Fceq => write!(f, "{:?} r{rd}, f{rs1}, f{rs2}", op),
            Icvtf => write!(f, "icvtf f{rd}, r{rs1}"),
            Fcvti => write!(f, "fcvti r{rd}, f{rs1}"),
            Nop => write!(f, "nop"),
            Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(op: Op, rd: u8, rs1: u8, rs2: u8, imm: i64) -> Inst {
        Inst {
            op,
            rd,
            rs1,
            rs2,
            imm,
        }
    }

    #[test]
    fn r0_dest_is_discarded() {
        let i = inst(Op::Add, 0, 1, 2, 0);
        assert_eq!(i.def(), Def::None);
        let i = inst(Op::Add, 3, 1, 2, 0);
        assert_eq!(i.def(), Def::Int(Reg(3)));
    }

    #[test]
    fn r0_source_is_elided() {
        let i = inst(Op::Add, 3, 0, 2, 0);
        assert_eq!(i.uses().int, [None, Some(Reg(2))]);
    }

    #[test]
    fn fmadd_reads_its_destination() {
        let i = inst(Op::Fmadd, 4, 1, 2, 0);
        let u = i.uses();
        assert_eq!(u.fp, [Some(FReg(1)), Some(FReg(2)), Some(FReg(4))]);
        assert_eq!(i.def(), Def::Fp(FReg(4)));
    }

    #[test]
    fn store_operands() {
        let st = inst(Op::St, 0, 5, 6, 8);
        assert_eq!(st.def(), Def::None);
        assert_eq!(st.uses().int, [Some(Reg(5)), Some(Reg(6))]);
        assert!(st.is_store() && !st.is_load());

        let fst = inst(Op::Fst, 0, 5, 6, 8);
        assert_eq!(fst.uses().int, [Some(Reg(5)), None]);
        assert_eq!(fst.uses().fp[0], Some(FReg(6)));
    }

    #[test]
    fn classification() {
        assert_eq!(inst(Op::Ld, 1, 2, 0, 0).unit(), ExecUnit::Mem);
        assert_eq!(inst(Op::Fadd, 1, 2, 3, 0).unit(), ExecUnit::Fp);
        assert_eq!(inst(Op::Beq, 0, 1, 2, 7).unit(), ExecUnit::Int);
        assert!(inst(Op::Beq, 0, 1, 2, 7).is_cond_branch());
        assert!(inst(Op::Jr, 0, 1, 0, 0).is_control());
        assert!(!inst(Op::Jr, 0, 1, 0, 0).has_static_target());
        assert!(inst(Op::Halt, 0, 0, 0, 0).is_halt());
    }

    #[test]
    fn display_smoke() {
        assert_eq!(inst(Op::Ld, 1, 2, 0, 16).to_string(), "ld r1, 16(r2)");
        assert_eq!(inst(Op::Beq, 0, 1, 2, 7).to_string(), "Beq r1, r2, @7");
        assert_eq!(Inst::NOP.to_string(), "nop");
    }

    #[test]
    fn static_successors() {
        // Plain instruction: fall-through only, clipped at end of text.
        let s = inst(Op::Add, 1, 2, 3, 0).successors(4, 10);
        assert_eq!(s.fall_through, Some(5));
        assert_eq!(s.target, None);
        assert!(!s.indirect);
        let s = inst(Op::Add, 1, 2, 3, 0).successors(9, 10);
        assert_eq!(s.fall_through, None);
        // Conditional branch: both edges; target is reported raw even
        // when it lies outside the text segment.
        let s = inst(Op::Beq, 0, 1, 2, 7).successors(3, 10);
        assert_eq!((s.fall_through, s.target), (Some(4), Some(7)));
        let s = inst(Op::Beq, 0, 1, 2, 99).successors(3, 10);
        assert_eq!(s.target, Some(99));
        // Unconditional jump: target only.
        let s = inst(Op::J, 0, 0, 0, 2).successors(5, 10);
        assert_eq!((s.fall_through, s.target), (None, Some(2)));
        // Indirect jump: statically unknown.
        let s = inst(Op::Jr, 0, 1, 0, 0).successors(5, 10);
        assert!(s.indirect && s.fall_through.is_none() && s.target.is_none());
        // Halt: no successors.
        let s = inst(Op::Halt, 0, 0, 0, 0).successors(5, 10);
        assert!(!s.indirect && s.fall_through.is_none() && s.target.is_none());
    }

    #[test]
    fn latencies_are_positive() {
        for op in [
            Op::Add,
            Op::Mul,
            Op::Divu,
            Op::Fadd,
            Op::Fdiv,
            Op::Fsqrt,
            Op::Ld,
            Op::Halt,
        ] {
            assert!(inst(op, 1, 2, 3, 0).base_latency() >= 1);
        }
    }
}
