//! Functional reference interpreter and shared instruction semantics.
//!
//! The pure evaluation functions in this module ([`eval_int`], [`eval_fp`],
//! [`eval_fp_cmp`], [`branch_taken`], [`effective_addr`]) are the *single*
//! definition of instruction semantics in the workspace: the out-of-order
//! pipeline in `mtvp-pipeline` calls the same functions at execute time, so
//! the cycle simulator and this interpreter can never disagree about what an
//! instruction computes — only about when.

use crate::inst::Op;
use crate::program::Program;
use crate::trace::{Trace, TraceEntry};
use std::cell::Cell;

/// Byte size of a [`SimpleBus`] page.
const PAGE_SIZE: u64 = 4096;
/// Pages per directory group: each group table spans 64 MiB of address
/// space and costs 64 KiB of `u32` slots when touched.
const GROUP_PAGES: u64 = 1 << 14;

/// Data-memory interface used by the interpreter (and implemented by the
/// cycle simulator's main memory in `mtvp-mem`).
///
/// All accesses are 64-bit; unaligned addresses are allowed and handled by
/// implementations byte-wise.
pub trait Bus {
    /// Read the 64-bit little-endian word at `addr`.
    fn read_u64(&mut self, addr: u64) -> u64;
    /// Write the 64-bit little-endian word `val` at `addr`.
    fn write_u64(&mut self, addr: u64, val: u64);
}

/// A simple sparse paged memory, sufficient for functional execution.
///
/// Pages live in a flat arena indexed through a two-level directory
/// (group → page slot) with a one-entry cache of the last page touched —
/// the same layout as `mtvp-mem`'s `MainMemory`, for the same reason:
/// functional fast-forward does one memory access per load/store, and a
/// compare + direct slice index beats a hash-map probe on every one of
/// them. Reads of absent pages never allocate.
#[derive(Clone, Debug, Default)]
pub struct SimpleBus {
    /// All resident pages, in allocation order.
    arena: Vec<Box<[u8]>>,
    /// Page number of each arena slot (parallel to `arena`).
    page_addrs: Vec<u64>,
    /// Group directory: `dir[page >> 14][page & 0x3fff]` is the arena
    /// slot + 1 of that page, or 0 when the page is absent.
    dir: Vec<Option<Box<[u32]>>>,
    /// `(page_number, arena_slot + 1)` of the last page touched; slot 0
    /// means the cache is empty. A `Cell` lets read paths keep `&self`.
    last_page: Cell<(u64, u32)>,
}

impl SimpleBus {
    /// Create an empty memory (all bytes read as zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// Arena slot of `page`, if resident.
    #[inline]
    fn slot_of(&self, page: u64) -> Option<usize> {
        let (cached_page, cached_slot) = self.last_page.get();
        if cached_slot != 0 && cached_page == page {
            return Some(cached_slot as usize - 1);
        }
        let group = (page / GROUP_PAGES) as usize;
        let slot = *self
            .dir
            .get(group)?
            .as_ref()?
            .get((page % GROUP_PAGES) as usize)?;
        if slot == 0 {
            return None;
        }
        self.last_page.set((page, slot));
        Some(slot as usize - 1)
    }

    fn page_mut(&mut self, page: u64) -> &mut [u8] {
        let idx = match self.slot_of(page) {
            Some(idx) => idx,
            None => {
                let group = (page / GROUP_PAGES) as usize;
                if group >= self.dir.len() {
                    self.dir.resize_with(group + 1, || None);
                }
                let table = self.dir[group]
                    .get_or_insert_with(|| vec![0u32; GROUP_PAGES as usize].into_boxed_slice());
                self.arena
                    .push(vec![0u8; PAGE_SIZE as usize].into_boxed_slice());
                self.page_addrs.push(page);
                let slot = self.arena.len() as u32; // slot + 1 encoding
                table[(page % GROUP_PAGES) as usize] = slot;
                self.last_page.set((page, slot));
                slot as usize - 1
            }
        };
        &mut self.arena[idx]
    }

    /// Read a single byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        let (page, off) = (addr / PAGE_SIZE, (addr % PAGE_SIZE) as usize);
        self.slot_of(page).map_or(0, |idx| self.arena[idx][off])
    }

    /// Write a single byte.
    pub fn write_u8(&mut self, addr: u64, val: u8) {
        let off = (addr % PAGE_SIZE) as usize;
        self.page_mut(addr / PAGE_SIZE)[off] = val;
    }

    /// Number of pages that have ever been written.
    pub fn touched_pages(&self) -> usize {
        self.arena.len()
    }

    /// Iterate over the resident pages as `(byte base address, contents)`,
    /// in allocation order (sort by address for a canonical image).
    pub fn pages(&self) -> impl Iterator<Item = (u64, &[u8])> {
        self.page_addrs
            .iter()
            .zip(self.arena.iter())
            .map(|(&page, bytes)| (page * PAGE_SIZE, &bytes[..]))
    }

    /// Install a full page image at `base` (must be page-aligned, and
    /// `bytes` must be exactly one page).
    pub fn install_page(&mut self, base: u64, bytes: &[u8]) {
        assert_eq!(base % PAGE_SIZE, 0, "page base must be aligned");
        assert_eq!(
            bytes.len() as u64,
            PAGE_SIZE,
            "page must be {PAGE_SIZE} bytes"
        );
        self.page_mut(base / PAGE_SIZE).copy_from_slice(bytes);
    }

    /// FNV-1a checksum over all resident page contents (page-order
    /// independent: each page hashed with its address). Matches
    /// `MainMemory::checksum` in `mtvp-mem`, so the interpreter's and the
    /// pipeline's final memory images are directly comparable.
    pub fn checksum(&self) -> u64 {
        let mut pages: Vec<(u64, &[u8])> = self
            .page_addrs
            .iter()
            .copied()
            .zip(self.arena.iter().map(|p| &p[..]))
            .collect();
        pages.sort_by_key(|&(addr, _)| addr);
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |b: u8| {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        for (addr, page) in pages {
            for b in addr.to_le_bytes() {
                mix(b);
            }
            for &b in page.iter() {
                mix(b);
            }
        }
        h
    }
}

impl Bus for SimpleBus {
    fn read_u64(&mut self, addr: u64) -> u64 {
        if addr % PAGE_SIZE <= PAGE_SIZE - 8 {
            let (page, off) = (addr / PAGE_SIZE, (addr % PAGE_SIZE) as usize);
            match self.slot_of(page) {
                Some(idx) => {
                    let p = &self.arena[idx];
                    u64::from_le_bytes(p[off..off + 8].try_into().expect("8 bytes"))
                }
                None => 0,
            }
        } else {
            // Page-straddling access: byte-wise.
            let mut bytes = [0u8; 8];
            for (i, b) in bytes.iter_mut().enumerate() {
                *b = self.read_u8(addr + i as u64);
            }
            u64::from_le_bytes(bytes)
        }
    }

    fn write_u64(&mut self, addr: u64, val: u64) {
        let bytes = val.to_le_bytes();
        if addr % PAGE_SIZE <= PAGE_SIZE - 8 {
            let off = (addr % PAGE_SIZE) as usize;
            self.page_mut(addr / PAGE_SIZE)[off..off + 8].copy_from_slice(&bytes);
        } else {
            for (i, b) in bytes.iter().enumerate() {
                self.write_u8(addr + i as u64, *b);
            }
        }
    }
}

/// Effective address of a load/store: `base + imm` with wrapping.
#[inline]
pub fn effective_addr(base: u64, imm: i64) -> u64 {
    base.wrapping_add(imm as u64)
}

/// Evaluate an integer ALU operation.
///
/// `a`/`b` are the source register values; immediate forms use `imm`.
/// Shift amounts are masked to 6 bits; division by zero yields all-ones
/// (quotient) / the dividend (remainder), Alpha-style.
///
/// # Panics
/// Panics if `op` is not an integer ALU opcode.
#[inline]
pub fn eval_int(op: Op, a: u64, b: u64, imm: i64) -> u64 {
    use Op::*;
    match op {
        Add => a.wrapping_add(b),
        Sub => a.wrapping_sub(b),
        Mul => a.wrapping_mul(b),
        Divu => a.checked_div(b).unwrap_or(u64::MAX),
        Remu => a.checked_rem(b).unwrap_or(a),
        And => a & b,
        Or => a | b,
        Xor => a ^ b,
        Sll => a << (b & 63),
        Srl => a >> (b & 63),
        Sra => ((a as i64) >> (b & 63)) as u64,
        Slt => ((a as i64) < (b as i64)) as u64,
        Sltu => (a < b) as u64,
        Addi => a.wrapping_add(imm as u64),
        Andi => a & (imm as u64),
        Ori => a | (imm as u64),
        Xori => a ^ (imm as u64),
        Slli => a << ((imm as u64) & 63),
        Srli => a >> ((imm as u64) & 63),
        Srai => ((a as i64) >> ((imm as u64) & 63)) as u64,
        Slti => ((a as i64) < imm) as u64,
        Li => imm as u64,
        _ => panic!("eval_int called with non-integer op {op:?}"),
    }
}

/// Evaluate a floating-point operation. `acc` is the accumulator source
/// read by `Fmadd` (the destination register's old value).
///
/// # Panics
/// Panics if `op` is not an fp-arithmetic opcode.
#[inline]
pub fn eval_fp(op: Op, a: f64, b: f64, acc: f64) -> f64 {
    use Op::*;
    match op {
        Fadd => a + b,
        Fsub => a - b,
        Fmul => a * b,
        Fdiv => a / b,
        Fmin => a.min(b),
        Fmax => a.max(b),
        Fsqrt => a.abs().sqrt(),
        Fneg => -a,
        Fabs => a.abs(),
        Fmov => a,
        Fmadd => acc + a * b,
        _ => panic!("eval_fp called with non-fp op {op:?}"),
    }
}

/// Evaluate an fp comparison, producing 0 or 1.
///
/// # Panics
/// Panics if `op` is not an fp-comparison opcode.
#[inline]
pub fn eval_fp_cmp(op: Op, a: f64, b: f64) -> u64 {
    use Op::*;
    match op {
        Fclt => (a < b) as u64,
        Fcle => (a <= b) as u64,
        Fceq => (a == b) as u64,
        _ => panic!("eval_fp_cmp called with non-compare op {op:?}"),
    }
}

/// Whether a conditional branch is taken given its source values.
///
/// # Panics
/// Panics if `op` is not a conditional-branch opcode.
#[inline]
pub fn branch_taken(op: Op, a: u64, b: u64) -> bool {
    use Op::*;
    match op {
        Beq => a == b,
        Bne => a != b,
        Blt => (a as i64) < (b as i64),
        Bge => (a as i64) >= (b as i64),
        Bltu => a < b,
        Bgeu => a >= b,
        _ => panic!("branch_taken called with non-branch op {op:?}"),
    }
}

/// Convert an f64 to the integer result of `Fcvti` (truncating, saturating,
/// NaN → 0 — matches Rust's `as` cast, which is deterministic).
#[inline]
pub fn fp_to_int(v: f64) -> u64 {
    (v as i64) as u64
}

/// Outcome of one interpreter step.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Step {
    /// Executed a normal instruction.
    Continue,
    /// Executed `Halt`; the program is finished.
    Halted,
    /// The PC left the text segment (a program bug — the reference
    /// interpreter never follows predicted wrong paths).
    OutOfText,
}

/// Final state of an interpreter run.
#[derive(Clone, Debug)]
pub struct InterpResult {
    /// Integer register file at the end of the run.
    pub int_regs: [u64; 32],
    /// Floating-point register file at the end of the run.
    pub fp_regs: [f64; 32],
    /// Dynamic instructions executed (including the final `Halt`).
    pub dyn_instrs: u64,
    /// Dynamic loads executed.
    pub loads: u64,
    /// Dynamic stores executed.
    pub stores: u64,
    /// Dynamic conditional branches executed.
    pub branches: u64,
    /// Dynamic taken conditional branches.
    pub taken_branches: u64,
    /// Whether the program reached `Halt` (vs. hitting the step limit).
    pub halted: bool,
}

/// The functional reference interpreter.
///
/// Executes a [`Program`] one instruction at a time against a [`Bus`].
/// Used for: oracle trace generation, workload validation, and differential
/// testing of the cycle-level pipeline.
#[derive(Clone, Debug)]
pub struct Interp<'p> {
    program: &'p Program,
    /// Integer register file (`r0` kept at zero by construction).
    pub int_regs: [u64; 32],
    /// Floating-point register file.
    pub fp_regs: [f64; 32],
    /// Current PC (instruction index).
    pub pc: u64,
    halted: bool,
    counts: Counts,
}

#[derive(Clone, Copy, Debug, Default)]
struct Counts {
    dyn_instrs: u64,
    loads: u64,
    stores: u64,
    branches: u64,
    taken: u64,
}

impl<'p> Interp<'p> {
    /// Create an interpreter positioned at PC 0 with zeroed registers.
    /// The caller is responsible for initializing data memory (see
    /// [`Program::init_memory`]); [`Interp::run`] does it automatically.
    pub fn new(program: &'p Program) -> Self {
        Interp {
            program,
            int_regs: [0; 32],
            fp_regs: [0.0; 32],
            pc: 0,
            halted: false,
            counts: Counts::default(),
        }
    }

    /// Whether `Halt` has been executed.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Dynamic instruction count so far.
    pub fn dyn_instrs(&self) -> u64 {
        self.counts.dyn_instrs
    }

    /// Reposition the interpreter at `pc` with `dyn_instrs` instructions
    /// already accounted for, clearing the halt flag.
    ///
    /// This is the import half of the sampled-simulation state-transfer
    /// contract: the caller is responsible for making the register files
    /// (public fields) and the memory image behind the [`Bus`] consistent
    /// with that execution point. The load/store/branch counters are *not*
    /// rewound — after a resume they describe only the functionally
    /// executed portion of the run.
    pub fn resume_at(&mut self, pc: u64, dyn_instrs: u64) {
        self.pc = pc;
        self.counts.dyn_instrs = dyn_instrs;
        self.halted = false;
    }

    #[inline]
    fn set_int(&mut self, rd: u8, val: u64) {
        if rd != 0 {
            self.int_regs[rd as usize] = val;
        }
    }

    /// Execute a single instruction. `trace`, when provided, receives the
    /// committed-path record for this instruction.
    pub fn step<B: Bus>(&mut self, bus: &mut B, mut trace: Option<&mut Trace>) -> Step {
        use Op::*;
        if self.halted {
            return Step::Halted;
        }
        let inst = match self.program.fetch(self.pc) {
            Some(i) => *i,
            None => return Step::OutOfText,
        };
        self.counts.dyn_instrs += 1;
        let pc32 = self.pc as u32;
        let mut entry = TraceEntry {
            pc: pc32,
            is_load: false,
            load_value: 0,
        };
        let mut next_pc = self.pc + 1;

        match inst.op {
            Add | Sub | Mul | Divu | Remu | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu => {
                let a = self.int_regs[inst.rs1 as usize];
                let b = self.int_regs[inst.rs2 as usize];
                self.set_int(inst.rd, eval_int(inst.op, a, b, inst.imm));
            }
            Addi | Andi | Ori | Xori | Slli | Srli | Srai | Slti | Li => {
                let a = self.int_regs[inst.rs1 as usize];
                self.set_int(inst.rd, eval_int(inst.op, a, 0, inst.imm));
            }
            Beq | Bne | Blt | Bge | Bltu | Bgeu => {
                self.counts.branches += 1;
                let a = self.int_regs[inst.rs1 as usize];
                let b = self.int_regs[inst.rs2 as usize];
                if branch_taken(inst.op, a, b) {
                    self.counts.taken += 1;
                    next_pc = inst.imm as u64;
                }
            }
            J => next_pc = inst.imm as u64,
            Jal => {
                self.set_int(inst.rd, self.pc + 1);
                next_pc = inst.imm as u64;
            }
            Jr => next_pc = self.int_regs[inst.rs1 as usize],
            Jalr => {
                let target = self.int_regs[inst.rs1 as usize];
                self.set_int(inst.rd, self.pc + 1);
                next_pc = target;
            }
            Ld => {
                self.counts.loads += 1;
                let addr = effective_addr(self.int_regs[inst.rs1 as usize], inst.imm);
                let v = bus.read_u64(addr);
                entry.is_load = true;
                entry.load_value = v;
                self.set_int(inst.rd, v);
            }
            Fld => {
                self.counts.loads += 1;
                let addr = effective_addr(self.int_regs[inst.rs1 as usize], inst.imm);
                let v = bus.read_u64(addr);
                entry.is_load = true;
                entry.load_value = v;
                self.fp_regs[inst.rd as usize] = f64::from_bits(v);
            }
            St => {
                self.counts.stores += 1;
                let addr = effective_addr(self.int_regs[inst.rs1 as usize], inst.imm);
                bus.write_u64(addr, self.int_regs[inst.rs2 as usize]);
            }
            Fst => {
                self.counts.stores += 1;
                let addr = effective_addr(self.int_regs[inst.rs1 as usize], inst.imm);
                bus.write_u64(addr, self.fp_regs[inst.rs2 as usize].to_bits());
            }
            Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax | Fsqrt | Fneg | Fabs | Fmov | Fmadd => {
                let a = self.fp_regs[inst.rs1 as usize];
                let b = self.fp_regs[inst.rs2 as usize];
                let acc = self.fp_regs[inst.rd as usize];
                self.fp_regs[inst.rd as usize] = eval_fp(inst.op, a, b, acc);
            }
            Fclt | Fcle | Fceq => {
                let a = self.fp_regs[inst.rs1 as usize];
                let b = self.fp_regs[inst.rs2 as usize];
                self.set_int(inst.rd, eval_fp_cmp(inst.op, a, b));
            }
            Icvtf => {
                self.fp_regs[inst.rd as usize] = self.int_regs[inst.rs1 as usize] as i64 as f64;
            }
            Fcvti => {
                self.set_int(inst.rd, fp_to_int(self.fp_regs[inst.rs1 as usize]));
            }
            Nop => {}
            Halt => {
                self.halted = true;
                if let Some(t) = trace.as_deref_mut() {
                    t.push(entry);
                }
                return Step::Halted;
            }
        }

        if let Some(t) = trace {
            t.push(entry);
        }
        self.pc = next_pc;
        Step::Continue
    }

    fn finish(&self) -> InterpResult {
        InterpResult {
            int_regs: self.int_regs,
            fp_regs: self.fp_regs,
            dyn_instrs: self.counts.dyn_instrs,
            loads: self.counts.loads,
            stores: self.counts.stores,
            branches: self.counts.branches,
            taken_branches: self.counts.taken,
            halted: self.halted,
        }
    }

    /// Initialize data memory and run until `Halt` or `max_steps`.
    pub fn run<B: Bus>(&mut self, bus: &mut B, max_steps: u64) -> InterpResult {
        self.program.init_memory(bus);
        for _ in 0..max_steps {
            match self.step(bus, None) {
                Step::Continue => {}
                Step::Halted | Step::OutOfText => break,
            }
        }
        self.finish()
    }

    /// Initialize data memory and run until `Halt` or `max_steps`, recording
    /// a committed-path [`Trace`].
    pub fn run_traced<B: Bus>(&mut self, bus: &mut B, max_steps: u64) -> (InterpResult, Trace) {
        self.program.init_memory(bus);
        let mut trace = Trace::new();
        for _ in 0..max_steps {
            match self.step(bus, Some(&mut trace)) {
                Step::Continue => {}
                Step::Halted | Step::OutOfText => break,
            }
        }
        (self.finish(), trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::reg::{FReg, Reg};

    #[test]
    fn simple_bus_roundtrip_and_straddle() {
        let mut bus = SimpleBus::new();
        bus.write_u64(0x1000, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(bus.read_u64(0x1000), 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(bus.read_u64(0x9999_0000), 0); // untouched reads zero
                                                  // Page-straddling write/read.
        let addr = 2 * 4096 - 3;
        bus.write_u64(addr, 0x0102_0304_0506_0708);
        assert_eq!(bus.read_u64(addr), 0x0102_0304_0506_0708);
        assert!(bus.touched_pages() >= 2);
    }

    #[test]
    fn bus_pages_export_install_checksum() {
        let mut bus = SimpleBus::new();
        bus.write_u64(0x1000, 7);
        // A page in a distant directory group.
        let far = GROUP_PAGES * PAGE_SIZE * 2 + 16;
        bus.write_u64(far, 9);
        assert_eq!(bus.read_u64(0xdead_0000), 0); // absent: no allocation
        assert_eq!(bus.touched_pages(), 2);
        let mut pages: Vec<(u64, Vec<u8>)> = bus.pages().map(|(a, b)| (a, b.to_vec())).collect();
        pages.sort_by_key(|&(a, _)| a);
        assert_eq!(pages.len(), 2);
        // Installing the exported image reproduces contents and checksum
        // even when installed in the opposite order.
        let mut copy = SimpleBus::new();
        for (a, b) in pages.iter().rev() {
            copy.install_page(*a, b);
        }
        assert_eq!(copy.read_u64(0x1000), 7);
        assert_eq!(copy.read_u64(far), 9);
        assert_eq!(copy.checksum(), bus.checksum());
        copy.write_u64(far, 10);
        assert_ne!(copy.checksum(), bus.checksum());
    }

    #[test]
    fn interp_resume_at_repositions() {
        let mut b = ProgramBuilder::new();
        b.li(Reg(1), 5)
            .li(Reg(2), 6)
            .add(Reg(3), Reg(1), Reg(2))
            .halt();
        let p = b.build();
        let mut bus = SimpleBus::new();
        p.init_memory(&mut bus);
        let mut it = Interp::new(&p);
        while !it.halted() {
            it.step(&mut bus, None);
        }
        assert_eq!(it.dyn_instrs(), 4);
        // Rewind to just before the add, as a sampled run would after a
        // detailed window, and re-execute the tail.
        it.resume_at(2, 2);
        assert!(!it.halted());
        it.int_regs[3] = 0;
        while !it.halted() {
            it.step(&mut bus, None);
        }
        assert_eq!(it.int_regs[3], 11);
        assert_eq!(it.dyn_instrs(), 4);
    }

    #[test]
    fn unaligned_within_page() {
        let mut bus = SimpleBus::new();
        bus.write_u64(0x1001, 0x1122_3344_5566_7788);
        assert_eq!(bus.read_u64(0x1001), 0x1122_3344_5566_7788);
    }

    #[test]
    fn int_semantics() {
        assert_eq!(eval_int(Op::Add, 3, u64::MAX, 0), 2); // wrapping
        assert_eq!(eval_int(Op::Sub, 1, 2, 0), u64::MAX);
        assert_eq!(eval_int(Op::Divu, 7, 0, 0), u64::MAX);
        assert_eq!(eval_int(Op::Remu, 7, 0, 0), 7);
        assert_eq!(eval_int(Op::Sra, (-8i64) as u64, 1, 0), (-4i64) as u64);
        assert_eq!(eval_int(Op::Slt, (-1i64) as u64, 0, 0), 1);
        assert_eq!(eval_int(Op::Sltu, (-1i64) as u64, 0, 0), 0);
        assert_eq!(eval_int(Op::Slli, 1, 0, 65), 2); // shift masked to 6 bits
        assert_eq!(eval_int(Op::Li, 999, 0, -5), (-5i64) as u64);
    }

    #[test]
    fn branch_semantics() {
        assert!(branch_taken(Op::Beq, 4, 4));
        assert!(!branch_taken(Op::Bne, 4, 4));
        assert!(branch_taken(Op::Blt, (-1i64) as u64, 0));
        assert!(!branch_taken(Op::Bltu, (-1i64) as u64, 0));
        assert!(branch_taken(Op::Bge, 0, 0));
        assert!(branch_taken(Op::Bgeu, (-1i64) as u64, 0));
    }

    #[test]
    fn fp_semantics() {
        assert_eq!(eval_fp(Op::Fadd, 1.5, 2.5, 0.0), 4.0);
        assert_eq!(eval_fp(Op::Fmadd, 2.0, 3.0, 10.0), 16.0);
        assert_eq!(eval_fp(Op::Fsqrt, -4.0, 0.0, 0.0), 2.0); // |x| then sqrt
        assert_eq!(eval_fp_cmp(Op::Fclt, 1.0, 2.0), 1);
        assert_eq!(eval_fp_cmp(Op::Fceq, f64::NAN, f64::NAN), 0);
        assert_eq!(fp_to_int(f64::NAN), 0);
        assert_eq!(fp_to_int(1e300), i64::MAX as u64); // saturating
    }

    #[test]
    fn loop_program_runs() {
        let mut b = ProgramBuilder::new();
        let (sum, i, n) = (Reg(1), Reg(2), Reg(3));
        b.li(sum, 0).li(i, 0).li(n, 100);
        let top = b.here_label();
        b.add(sum, sum, i).addi(i, i, 1).blt(i, n, top).halt();
        let p = b.build();
        let mut bus = SimpleBus::new();
        let res = Interp::new(&p).run(&mut bus, 10_000);
        assert!(res.halted);
        assert_eq!(res.int_regs[1], 4950);
        assert_eq!(res.branches, 100);
        assert_eq!(res.taken_branches, 99);
    }

    #[test]
    fn memory_and_fp_program() {
        let mut b = ProgramBuilder::new();
        let arr = b.alloc_f64(&[1.0, 2.0, 3.0, 4.0]);
        let out = b.reserve(8);
        let (base, i, n, t, acc, x) = (Reg(1), Reg(2), Reg(3), Reg(4), FReg(1), FReg(2));
        b.li(base, arr as i64).li(i, 0).li(n, 4);
        let top = b.here_label();
        b.slli(t, i, 3);
        b.add(t, t, base);
        b.fld(x, t, 0);
        b.fadd(acc, acc, x);
        b.addi(i, i, 1);
        b.blt(i, n, top);
        b.li(t, out as i64);
        b.fst(acc, t, 0);
        b.halt();
        let p = b.build();
        let mut bus = SimpleBus::new();
        let res = Interp::new(&p).run(&mut bus, 10_000);
        assert!(res.halted);
        assert_eq!(res.fp_regs[1], 10.0);
        assert_eq!(f64::from_bits(bus.read_u64(out)), 10.0);
        assert_eq!(res.loads, 4);
        assert_eq!(res.stores, 1);
    }

    #[test]
    fn trace_records_loads_and_path() {
        let mut b = ProgramBuilder::new();
        let a = b.alloc_u64(&[7]);
        b.li(Reg(1), a as i64);
        b.ld(Reg(2), Reg(1), 0);
        b.halt();
        let p = b.build();
        let mut bus = SimpleBus::new();
        let (res, trace) = Interp::new(&p).run_traced(&mut bus, 100);
        assert_eq!(res.dyn_instrs, 3);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.oracle_load_value(1, 1), Some(7));
        assert_eq!(trace.oracle_load_value(0, 0), None); // li, not a load
        assert_eq!(trace.get(2).unwrap().pc, 2); // halt is recorded
    }

    #[test]
    fn jal_jr_roundtrip() {
        let mut b = ProgramBuilder::new();
        let fun = b.label();
        let ra = Reg(31);
        b.jal(ra, fun); // 0: call
        b.halt(); // 1
        b.bind(fun);
        b.li(Reg(5), 42); // 2
        b.jr(ra); // 3: return to 1
        let p = b.build();
        let mut bus = SimpleBus::new();
        let res = Interp::new(&p).run(&mut bus, 100);
        assert!(res.halted);
        assert_eq!(res.int_regs[5], 42);
        assert_eq!(res.int_regs[31], 1);
    }

    #[test]
    fn step_limit_stops_infinite_loop() {
        let mut b = ProgramBuilder::new();
        let top = b.here_label();
        b.j(top);
        let p = b.build();
        let mut bus = SimpleBus::new();
        let res = Interp::new(&p).run(&mut bus, 1000);
        assert!(!res.halted);
        assert_eq!(res.dyn_instrs, 1000);
    }

    #[test]
    fn out_of_text_stops() {
        let mut b = ProgramBuilder::new();
        b.nop(); // falls off the end
        let p = b.build();
        let mut bus = SimpleBus::new();
        let mut it = Interp::new(&p);
        p.init_memory(&mut bus);
        assert_eq!(it.step(&mut bus, None), Step::Continue);
        assert_eq!(it.step(&mut bus, None), Step::OutOfText);
    }
}
