//! # mtvp-isa
//!
//! A minimal 64-bit RISC instruction set used by the MTVP (Multithreaded
//! Value Prediction) simulator suite, together with a label-resolving
//! program builder and a functional reference interpreter.
//!
//! The ISA is deliberately small: 32 integer registers (`r0` is hardwired
//! to zero), 32 floating-point registers, loads/stores, conditional
//! branches, and the usual integer/floating-point arithmetic. It exists to
//! give the cycle-level pipeline in `mtvp-pipeline` real programs whose
//! dynamic behaviour (dependence chains, value locality, branch patterns)
//! can be controlled precisely — the role SPEC CPU2000 binaries play in the
//! paper.
//!
//! # Example
//!
//! ```
//! use mtvp_isa::{ProgramBuilder, Reg, interp::{Interp, SimpleBus}};
//!
//! let mut b = ProgramBuilder::new();
//! // sum = 0; for i in 0..10 { sum += i }
//! let (sum, i, n) = (Reg(1), Reg(2), Reg(3));
//! b.li(sum, 0);
//! b.li(i, 0);
//! b.li(n, 10);
//! let top = b.label();
//! b.bind(top);
//! b.add(sum, sum, i);
//! b.addi(i, i, 1);
//! b.blt(i, n, top);
//! b.halt();
//! let prog = b.build();
//!
//! let mut bus = SimpleBus::new();
//! let res = Interp::new(&prog).run(&mut bus, 1_000_000);
//! assert_eq!(res.int_regs[1], 45);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod inst;
pub mod interp;
mod program;
mod reg;
pub mod trace;

pub use builder::{Label, ProgramBuilder};
pub use inst::{Def, ExecUnit, Inst, Op, Successors, Uses};
pub use program::{DataSegment, Program};
pub use reg::{FReg, Reg};

/// Base virtual address of the data segment created by [`ProgramBuilder`].
///
/// Program text lives in its own index space (the PC is an instruction
/// index, not a byte address), so all of data memory below this base is
/// unused by well-formed programs.
pub const DATA_BASE: u64 = 0x1000_0000;
