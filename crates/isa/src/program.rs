//! Executable program representation.

use crate::inst::Inst;
use serde::{Deserialize, Serialize};

/// A contiguous block of initialized data memory.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataSegment {
    /// Base virtual address of the segment.
    pub base: u64,
    /// Raw bytes, laid out starting at `base`.
    pub bytes: Vec<u8>,
}

/// A complete program: code, initial data image, and a name.
///
/// The program counter is an *instruction index* into [`Program::code`]
/// (not a byte address); data memory is a separate 64-bit address space.
/// Programs are produced by [`crate::ProgramBuilder`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Human-readable program name (benchmark kernels use their SPEC-like name).
    pub name: String,
    /// Instruction stream; `code[pc]` is the instruction at `pc`.
    pub code: Vec<Inst>,
    /// Initial data memory image.
    pub data: Vec<DataSegment>,
}

impl Program {
    /// Fetch the instruction at `pc`, or `None` if `pc` is outside the text
    /// segment (which happens when the pipeline fetches down a wrong path).
    #[inline]
    pub fn fetch(&self, pc: u64) -> Option<&Inst> {
        self.code.get(pc as usize)
    }

    /// Number of static instructions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Write the initial data image into `bus`.
    pub fn init_memory<B: crate::interp::Bus>(&self, bus: &mut B) {
        for seg in &self.data {
            let mut addr = seg.base;
            let mut chunks = seg.bytes.chunks_exact(8);
            for ch in &mut chunks {
                bus.write_u64(
                    addr,
                    u64::from_le_bytes(ch.try_into().expect("8-byte chunk")),
                );
                addr += 8;
            }
            let rem = chunks.remainder();
            if !rem.is_empty() {
                // Pad the trailing partial word with zeros.
                let mut word = [0u8; 8];
                word[..rem.len()].copy_from_slice(rem);
                bus.write_u64(addr, u64::from_le_bytes(word));
            }
        }
    }

    /// Total bytes of initialized data.
    pub fn data_bytes(&self) -> usize {
        self.data.iter().map(|s| s.bytes.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Bus, SimpleBus};
    use crate::Op;

    #[test]
    fn fetch_in_and_out_of_range() {
        let p = Program {
            name: "t".into(),
            code: vec![
                Inst::NOP,
                Inst {
                    op: Op::Halt,
                    ..Inst::NOP
                },
            ],
            data: vec![],
        };
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert!(p.fetch(1).unwrap().is_halt());
        assert!(p.fetch(2).is_none());
        assert!(p.fetch(u64::MAX).is_none());
    }

    #[test]
    fn init_memory_writes_segments() {
        let p = Program {
            name: "t".into(),
            code: vec![],
            data: vec![
                DataSegment {
                    base: 0x1000,
                    bytes: vec![1, 0, 0, 0, 0, 0, 0, 0, 2],
                },
                DataSegment {
                    base: 0x2000,
                    bytes: 0xAAu64.to_le_bytes().to_vec(),
                },
            ],
        };
        let mut bus = SimpleBus::new();
        p.init_memory(&mut bus);
        assert_eq!(bus.read_u64(0x1000), 1);
        assert_eq!(bus.read_u64(0x1008), 2); // padded partial word
        assert_eq!(bus.read_u64(0x2000), 0xAA);
        assert_eq!(p.data_bytes(), 17);
    }
}
