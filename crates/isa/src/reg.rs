//! Architectural register names.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of integer architectural registers.
pub(crate) const NUM_INT_REGS: usize = 32;
/// Number of floating-point architectural registers.
pub(crate) const NUM_FP_REGS: usize = 32;

/// An integer architectural register, `r0`..`r31`.
///
/// `r0` is hardwired to zero: reads return `0` and writes are discarded,
/// both in the reference interpreter and in the pipeline.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Reg(pub u8);

/// A floating-point architectural register, `f0`..`f31`.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FReg(pub u8);

impl Reg {
    /// The hardwired-zero register.
    pub const ZERO: Reg = Reg(0);

    /// Register index as a `usize`.
    ///
    /// # Panics
    /// Panics if the register number is out of range (>= 32); such a value
    /// can only be produced by constructing `Reg` with a bad literal.
    #[inline]
    pub fn index(self) -> usize {
        let i = self.0 as usize;
        assert!(i < NUM_INT_REGS, "integer register r{i} out of range");
        i
    }

    /// Whether this is the hardwired-zero register.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl FReg {
    /// Register index as a `usize`.
    ///
    /// # Panics
    /// Panics if the register number is out of range (>= 32).
    #[inline]
    pub fn index(self) -> usize {
        let i = self.0 as usize;
        assert!(i < NUM_FP_REGS, "fp register f{i} out of range");
        i
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Debug for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg(5).is_zero());
        assert_eq!(Reg::ZERO.index(), 0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Reg(7).to_string(), "r7");
        assert_eq!(FReg(31).to_string(), "f31");
        assert_eq!(format!("{:?}", Reg(3)), "r3");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let _ = Reg(32).index();
    }
}
