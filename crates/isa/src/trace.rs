//! Committed-path execution traces.
//!
//! A [`Trace`] records the architectural (committed-path) PC of every
//! dynamic instruction and, for loads, the value the load returned. The
//! oracle value predictor in `mtvp-vp` consults the trace: a fetched load
//! whose `(dynamic index, pc)` matches the trace gets its exact future
//! value; any mismatch means the pipeline is fetching down a wrong path,
//! where the paper's oracle abstains from predicting.

/// One dynamic instruction on the committed path.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// PC (instruction index) of this dynamic instruction.
    pub pc: u32,
    /// Whether the instruction is a load.
    pub is_load: bool,
    /// For loads, the value returned; 0 otherwise.
    pub load_value: u64,
}

/// The full committed-path trace of a program run.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// Create an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a dynamic instruction.
    pub fn push(&mut self, entry: TraceEntry) {
        self.entries.push(entry);
    }

    /// Number of dynamic instructions recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry at dynamic index `idx`, if in range.
    #[inline]
    pub fn get(&self, idx: usize) -> Option<&TraceEntry> {
        self.entries.get(idx)
    }

    /// The exact value the load at dynamic index `idx` will return, if
    /// `idx` is in range, matches `pc`, and is a load. This is the oracle
    /// predictor's query.
    #[inline]
    pub fn oracle_load_value(&self, idx: usize, pc: u64) -> Option<u64> {
        match self.entries.get(idx) {
            Some(e) if e.is_load && u64::from(e.pc) == pc => Some(e.load_value),
            _ => None,
        }
    }

    /// Iterate over the entries.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_query_requires_pc_match_and_load() {
        let mut t = Trace::new();
        t.push(TraceEntry {
            pc: 5,
            is_load: true,
            load_value: 42,
        });
        t.push(TraceEntry {
            pc: 6,
            is_load: false,
            load_value: 0,
        });
        assert_eq!(t.oracle_load_value(0, 5), Some(42));
        assert_eq!(t.oracle_load_value(0, 7), None); // wrong path
        assert_eq!(t.oracle_load_value(1, 6), None); // not a load
        assert_eq!(t.oracle_load_value(2, 5), None); // past end
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }
}
