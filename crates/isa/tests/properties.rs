//! Property-based tests of instruction semantics and the program builder.

use mtvp_isa::interp::{branch_taken, eval_int, Interp, SimpleBus};
use mtvp_isa::{Op, ProgramBuilder, Reg};
use proptest::prelude::*;

proptest! {
    #[test]
    fn add_is_commutative_and_wrapping(a: u64, b: u64) {
        prop_assert_eq!(eval_int(Op::Add, a, b, 0), eval_int(Op::Add, b, a, 0));
        prop_assert_eq!(eval_int(Op::Add, a, b, 0), a.wrapping_add(b));
    }

    #[test]
    fn sub_inverts_add(a: u64, b: u64) {
        let sum = eval_int(Op::Add, a, b, 0);
        prop_assert_eq!(eval_int(Op::Sub, sum, b, 0), a);
    }

    #[test]
    fn bitwise_ops_match_std(a: u64, b: u64) {
        prop_assert_eq!(eval_int(Op::And, a, b, 0), a & b);
        prop_assert_eq!(eval_int(Op::Or, a, b, 0), a | b);
        prop_assert_eq!(eval_int(Op::Xor, a, b, 0), a ^ b);
        prop_assert_eq!(eval_int(Op::Xor, eval_int(Op::Xor, a, b, 0), b, 0), a);
    }

    #[test]
    fn shifts_mask_their_amount(a: u64, sh in 0u64..256) {
        prop_assert_eq!(eval_int(Op::Sll, a, sh, 0), a << (sh & 63));
        prop_assert_eq!(eval_int(Op::Srl, a, sh, 0), a >> (sh & 63));
    }

    #[test]
    fn slt_matches_branch_semantics(a: u64, b: u64) {
        let lt = eval_int(Op::Slt, a, b, 0) == 1;
        prop_assert_eq!(lt, branch_taken(Op::Blt, a, b));
        prop_assert_eq!(!lt, branch_taken(Op::Bge, a, b));
        let ltu = eval_int(Op::Sltu, a, b, 0) == 1;
        prop_assert_eq!(ltu, branch_taken(Op::Bltu, a, b));
    }

    #[test]
    fn beq_bne_partition(a: u64, b: u64) {
        prop_assert_ne!(branch_taken(Op::Beq, a, b), branch_taken(Op::Bne, a, b));
    }

    #[test]
    fn division_never_panics(a: u64, b: u64) {
        let q = eval_int(Op::Divu, a, b, 0);
        let r = eval_int(Op::Remu, a, b, 0);
        if b != 0 {
            prop_assert_eq!(q * b + r, a);
        }
    }

    #[test]
    fn interp_computes_sum_of_arbitrary_array(values in prop::collection::vec(any::<u64>(), 1..40)) {
        let mut b = ProgramBuilder::new();
        let arr = b.alloc_u64(&values);
        let (base, i, n, t, sum) = (Reg(1), Reg(2), Reg(3), Reg(4), Reg(5));
        b.li(base, arr as i64).li(i, 0).li(n, values.len() as i64).li(sum, 0);
        let top = b.here_label();
        b.slli(t, i, 3);
        b.add(t, t, base);
        b.ld(t, t, 0);
        b.add(sum, sum, t);
        b.addi(i, i, 1);
        b.blt(i, n, top);
        b.halt();
        let p = b.build();
        let mut bus = SimpleBus::new();
        let res = Interp::new(&p).run(&mut bus, 1_000_000);
        prop_assert!(res.halted);
        let expect = values.iter().fold(0u64, |a, v| a.wrapping_add(*v));
        prop_assert_eq!(res.int_regs[5], expect);
    }

    #[test]
    fn memory_roundtrip_arbitrary_addresses(writes in prop::collection::vec((0u64..1_000_000, any::<u64>()), 1..50)) {
        use mtvp_isa::interp::Bus;
        let mut bus = SimpleBus::new();
        let mut last = std::collections::HashMap::new();
        for (addr, val) in &writes {
            let addr = addr & !7;
            bus.write_u64(addr, *val);
            last.insert(addr, *val);
        }
        for (addr, val) in &last {
            prop_assert_eq!(bus.read_u64(*addr), *val);
        }
    }
}
