//! Tag-only set-associative cache with true-LRU replacement.

use serde::{Deserialize, Serialize};

/// Size/shape of a cache.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
}

impl CacheGeometry {
    /// Construct a geometry.
    ///
    /// # Panics
    /// Panics unless `line_bytes` is a power of two and
    /// `size_bytes` is a multiple of `assoc * line_bytes`.
    pub fn new(size_bytes: u64, assoc: u32, line_bytes: u64) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(assoc >= 1, "associativity must be at least 1");
        assert_eq!(
            size_bytes % (u64::from(assoc) * line_bytes),
            0,
            "capacity must divide evenly into sets"
        );
        let sets = size_bytes / (u64::from(assoc) * line_bytes);
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        CacheGeometry {
            size_bytes,
            assoc,
            line_bytes,
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (u64::from(self.assoc) * self.line_bytes)
    }
}

/// Hit/miss counters for one cache.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Fills that evicted a valid line.
    pub evictions: u64,
    /// Evictions of dirty lines (write-back traffic).
    pub dirty_evictions: u64,
}

impl CacheStats {
    /// Miss rate in [0, 1]; 0 if no accesses.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

#[derive(Copy, Clone, Debug, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Monotonic timestamp of last touch; smallest = LRU victim.
    lru: u64,
}

/// A tag-only set-associative cache.
///
/// Tracks presence, recency, and dirtiness of lines — the data itself lives
/// in [`crate::MainMemory`] (plus speculative store buffers in the
/// pipeline). Addresses passed in are byte addresses; the cache extracts
/// set index and tag from the *line* address.
#[derive(Clone, Debug)]
pub struct TagCache {
    geom: CacheGeometry,
    lines: Vec<Line>,
    set_mask: u64,
    line_shift: u32,
    clock: u64,
    stats: CacheStats,
}

impl TagCache {
    /// Create an empty cache.
    pub fn new(geom: CacheGeometry) -> Self {
        let sets = geom.num_sets();
        TagCache {
            geom,
            lines: vec![Line::default(); (sets * u64::from(geom.assoc)) as usize],
            set_mask: sets - 1,
            line_shift: geom.line_bytes.trailing_zeros(),
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The geometry this cache was built with.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    #[inline]
    fn line_addr(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    #[inline]
    fn set_range(&self, line_addr: u64) -> std::ops::Range<usize> {
        let set = (line_addr & self.set_mask) as usize;
        let assoc = self.geom.assoc as usize;
        set * assoc..(set + 1) * assoc
    }

    /// Look up `addr`; on a hit, refresh LRU state and optionally mark the
    /// line dirty. Counts toward [`CacheStats`].
    pub fn access(&mut self, addr: u64, write: bool) -> bool {
        self.clock += 1;
        let la = self.line_addr(addr);
        let tag = la; // full line address as tag (set bits redundant but harmless)
        let range = self.set_range(la);
        for line in &mut self.lines[range] {
            if line.valid && line.tag == tag {
                line.lru = self.clock;
                line.dirty |= write;
                self.stats.hits += 1;
                return true;
            }
        }
        self.stats.misses += 1;
        false
    }

    /// Check presence without updating LRU or statistics.
    pub fn probe(&self, addr: u64) -> bool {
        let la = self.line_addr(addr);
        let range = self.set_range(la);
        self.lines[range].iter().any(|l| l.valid && l.tag == la)
    }

    /// Install the line containing `addr`, evicting the LRU way if needed.
    /// Returns the evicted line's byte address if a *dirty* line was
    /// evicted (write-back traffic). Filling an already-present line just
    /// refreshes it.
    pub fn fill(&mut self, addr: u64, dirty: bool) -> Option<u64> {
        self.clock += 1;
        let la = self.line_addr(addr);
        let range = self.set_range(la);
        // Already present (e.g. racing fills): refresh.
        let clock = self.clock;
        for line in &mut self.lines[range.clone()] {
            if line.valid && line.tag == la {
                line.lru = clock;
                line.dirty |= dirty;
                return None;
            }
        }
        // Choose victim: invalid way first, else LRU.
        let lines = &mut self.lines[range];
        let victim = lines
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru + 1 } else { 0 })
            .expect("associativity >= 1");
        let mut evicted = None;
        if victim.valid {
            self.stats.evictions += 1;
            if victim.dirty {
                self.stats.dirty_evictions += 1;
                evicted = Some(victim.tag << self.line_shift);
            }
        }
        *victim = Line {
            tag: la,
            valid: true,
            dirty,
            lru: clock,
        };
        evicted
    }

    /// Invalidate the line containing `addr` if present.
    pub fn invalidate(&mut self, addr: u64) {
        let la = self.line_addr(addr);
        let range = self.set_range(la);
        for line in &mut self.lines[range] {
            if line.valid && line.tag == la {
                line.valid = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TagCache {
        // 4 sets x 2 ways x 64B lines = 512B
        TagCache::new(CacheGeometry::new(512, 2, 64))
    }

    #[test]
    fn geometry_math() {
        let g = CacheGeometry::new(64 * 1024, 2, 64);
        assert_eq!(g.num_sets(), 512);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        CacheGeometry::new(512, 2, 48);
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small();
        assert!(!c.access(0x1000, false));
        assert_eq!(c.fill(0x1000, false), None);
        assert!(c.access(0x1000, false));
        assert!(c.access(0x1020, false)); // same 64B line
        assert!(!c.access(0x1040, false)); // next line
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        // Three lines mapping to the same set (set stride = 4 sets * 64B = 256B).
        let (a, b, d) = (0x0, 0x100, 0x200);
        c.fill(a, false);
        c.fill(b, false);
        c.access(a, false); // a is now MRU
        c.fill(d, false); // must evict b
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small();
        c.fill(0x0, true);
        c.fill(0x100, false);
        let evicted = c.fill(0x200, false); // evicts dirty 0x0
        assert_eq!(evicted, Some(0x0));
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small();
        c.fill(0x0, false);
        assert!(c.access(0x0, true));
        c.fill(0x100, false);
        let evicted = c.fill(0x200, false);
        assert_eq!(evicted, Some(0x0));
    }

    #[test]
    fn refill_refreshes_instead_of_duplicating() {
        let mut c = small();
        c.fill(0x0, false);
        c.fill(0x0, true); // refresh + dirty
        c.fill(0x100, false);
        c.fill(0x200, false); // evicts... 0x0 was refreshed, so 0x100 is victim? No: 0x0 lru=2, 0x100 lru=3 -> victim 0x0
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small();
        c.fill(0x40, false);
        assert!(c.probe(0x40));
        c.invalidate(0x40);
        assert!(!c.probe(0x40));
    }

    #[test]
    fn probe_does_not_perturb_state() {
        let mut c = small();
        c.fill(0x0, false);
        let before = c.stats();
        assert!(c.probe(0x0));
        assert!(!c.probe(0x40));
        assert_eq!(c.stats(), before);
    }
}
