//! # mtvp-mem
//!
//! Memory hierarchy for the MTVP simulator suite: a sparse functional main
//! memory plus the *timing* side of the hierarchy from Table 1 of the
//! paper — L1I/L1D/L2/L3 set-associative caches with LRU replacement,
//! miss-status holding registers (MSHRs) that merge outstanding misses to
//! the same line, and an aggressive PC-based stride prefetcher (256-entry
//! table, 8 stream buffers).
//!
//! Caches here are tag-only: the cycle simulator keeps data in the
//! functional [`MainMemory`] and per-thread store buffers, and asks this
//! crate only *when* an access completes.
//!
//! # Example
//!
//! ```
//! use mtvp_mem::{MemConfig, MemSystem, AccessKind};
//!
//! let mut mem = MemSystem::new(MemConfig::hpca2005());
//! // A cold access misses all the way to main memory (1000 cycles + tags).
//! let a = mem.access_data(0, /*pc=*/4, /*addr=*/0x1000, AccessKind::Read);
//! assert!(a.ready_at >= 1000);
//! // A second access to the same line hits in L1 once the line arrives.
//! let b = mem.access_data(a.ready_at, 4, 0x1008, AccessKind::Read);
//! assert_eq!(b.ready_at, a.ready_at + 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod main_memory;
mod mshr;
mod prefetch;
mod shared;
mod system;

pub use cache::{CacheGeometry, CacheStats, TagCache};
pub use main_memory::MainMemory;
pub use mshr::Mshr;
pub use prefetch::{PrefetchConfig, Prefetcher, StreamBuffer};
pub use shared::{asid_line, SharedL3Handle, SharedL3Spec};
pub use system::{Access, AccessKind, HitLevel, MemConfig, MemEvent, MemStats, MemSystem};
