//! Sparse functional main memory.

use mtvp_isa::interp::Bus;
use std::cell::Cell;

const PAGE_SIZE: u64 = 4096;
/// Pages per directory group: each group table spans 64 MiB of address
/// space and costs 64 KiB of `u32` slots when touched.
const GROUP_PAGES: u64 = 1 << 14;

/// Sparse, paged, byte-addressable main memory holding the architectural
/// data image during a cycle-level simulation.
///
/// Implements [`mtvp_isa::interp::Bus`], so the reference interpreter and
/// the pipeline can run against identical memory semantics. Untouched
/// memory reads as zero.
///
/// Pages live in a flat arena indexed through a two-level directory
/// (group → page slot), with a one-entry cache of the last page touched.
/// Loads and stores show strong page locality, so the common case is a
/// compare + direct slice index instead of a hash-map probe. Reads of
/// absent pages never allocate, which keeps wrong-path and
/// value-speculated addresses free.
#[derive(Clone, Debug, Default)]
pub struct MainMemory {
    /// All resident pages, in allocation order.
    arena: Vec<Box<[u8]>>,
    /// Page number of each arena slot (parallel to `arena`).
    page_addrs: Vec<u64>,
    /// Group directory: `dir[page >> 14][page & 0x3fff]` is the arena
    /// slot + 1 of that page, or 0 when the page is absent.
    dir: Vec<Option<Box<[u32]>>>,
    /// `(page_number, arena_slot + 1)` of the last page touched; slot 0
    /// means the cache is empty. A `Cell` lets read paths keep `&self`.
    last_page: Cell<(u64, u32)>,
    reads: u64,
    writes: u64,
}

impl MainMemory {
    /// Create an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arena slot of `page`, if resident.
    #[inline]
    fn slot_of(&self, page: u64) -> Option<usize> {
        let (cached_page, cached_slot) = self.last_page.get();
        if cached_slot != 0 && cached_page == page {
            return Some(cached_slot as usize - 1);
        }
        let group = (page / GROUP_PAGES) as usize;
        let slot = *self
            .dir
            .get(group)?
            .as_ref()?
            .get((page % GROUP_PAGES) as usize)?;
        if slot == 0 {
            return None;
        }
        self.last_page.set((page, slot));
        Some(slot as usize - 1)
    }

    fn page_mut(&mut self, page: u64) -> &mut [u8] {
        let idx = match self.slot_of(page) {
            Some(idx) => idx,
            None => {
                let group = (page / GROUP_PAGES) as usize;
                if group >= self.dir.len() {
                    self.dir.resize_with(group + 1, || None);
                }
                let table = self.dir[group]
                    .get_or_insert_with(|| vec![0u32; GROUP_PAGES as usize].into_boxed_slice());
                self.arena
                    .push(vec![0u8; PAGE_SIZE as usize].into_boxed_slice());
                self.page_addrs.push(page);
                let slot = self.arena.len() as u32; // slot + 1 encoding
                table[(page % GROUP_PAGES) as usize] = slot;
                self.last_page.set((page, slot));
                slot as usize - 1
            }
        };
        &mut self.arena[idx]
    }

    /// Read one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        let (page, off) = (addr / PAGE_SIZE, (addr % PAGE_SIZE) as usize);
        self.slot_of(page).map_or(0, |idx| self.arena[idx][off])
    }

    /// Write one byte.
    pub fn write_u8(&mut self, addr: u64, val: u8) {
        let off = (addr % PAGE_SIZE) as usize;
        self.page_mut(addr / PAGE_SIZE)[off] = val;
    }

    /// Read the 64-bit word at `addr` without counting it as a simulated
    /// access (used by oracles and test assertions).
    pub fn peek_u64(&self, addr: u64) -> u64 {
        if addr % PAGE_SIZE <= PAGE_SIZE - 8 {
            let (page, off) = (addr / PAGE_SIZE, (addr % PAGE_SIZE) as usize);
            match self.slot_of(page) {
                Some(idx) => {
                    let p = &self.arena[idx];
                    u64::from_le_bytes(p[off..off + 8].try_into().expect("8 bytes"))
                }
                None => 0,
            }
        } else {
            let mut bytes = [0u8; 8];
            for (i, b) in bytes.iter_mut().enumerate() {
                *b = self.read_u8(addr + i as u64);
            }
            u64::from_le_bytes(bytes)
        }
    }

    /// Number of (read, write) word accesses performed through [`Bus`].
    pub fn access_counts(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }

    /// Number of resident pages.
    pub fn resident_pages(&self) -> usize {
        self.arena.len()
    }

    /// Iterate over the resident pages as `(byte base address, contents)`,
    /// in allocation order (sort by address for a canonical image). Used
    /// to export the architectural image for sampled-simulation
    /// checkpoints.
    pub fn pages(&self) -> impl Iterator<Item = (u64, &[u8])> {
        self.page_addrs
            .iter()
            .zip(self.arena.iter())
            .map(|(&page, bytes)| (page * PAGE_SIZE, &bytes[..]))
    }

    /// The resident page at byte address `base` (must be page-aligned),
    /// or `None` if absent. Does not count as an access. Checkpoint
    /// writers use this to diff a memory image against the program's
    /// initial data image and persist only the pages that changed.
    pub fn page(&self, base: u64) -> Option<&[u8]> {
        assert_eq!(base % PAGE_SIZE, 0, "page base must be aligned");
        self.slot_of(base / PAGE_SIZE)
            .map(|idx| &self.arena[idx][..])
    }

    /// Install a full page image at `base` (must be page-aligned, and
    /// `bytes` must be exactly one page). The import half of the
    /// checkpoint/state-transfer contract; does not count as an access.
    pub fn install_page(&mut self, base: u64, bytes: &[u8]) {
        assert_eq!(base % PAGE_SIZE, 0, "page base must be aligned");
        assert_eq!(
            bytes.len() as u64,
            PAGE_SIZE,
            "page must be {PAGE_SIZE} bytes"
        );
        self.page_mut(base / PAGE_SIZE).copy_from_slice(bytes);
    }

    /// FNV-1a checksum over all resident page contents (page-order
    /// independent: each page hashed with its address). Used by
    /// differential tests to compare final memory images.
    pub fn checksum(&self) -> u64 {
        let mut pages: Vec<(u64, &[u8])> = self
            .page_addrs
            .iter()
            .copied()
            .zip(self.arena.iter().map(|p| &p[..]))
            .collect();
        pages.sort_by_key(|&(addr, _)| addr);
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |b: u8| {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        for (addr, page) in pages {
            for b in addr.to_le_bytes() {
                mix(b);
            }
            for &b in page.iter() {
                mix(b);
            }
        }
        h
    }
}

impl Bus for MainMemory {
    fn read_u64(&mut self, addr: u64) -> u64 {
        self.reads += 1;
        self.peek_u64(addr)
    }

    fn write_u64(&mut self, addr: u64, val: u64) {
        self.writes += 1;
        let bytes = val.to_le_bytes();
        if addr % PAGE_SIZE <= PAGE_SIZE - 8 {
            let off = (addr % PAGE_SIZE) as usize;
            self.page_mut(addr / PAGE_SIZE)[off..off + 8].copy_from_slice(&bytes);
        } else {
            for (i, b) in bytes.iter().enumerate() {
                self.write_u8(addr + i as u64, *b);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_zero_default() {
        let mut m = MainMemory::new();
        assert_eq!(m.read_u64(0x4000), 0);
        m.write_u64(0x4000, 123);
        assert_eq!(m.read_u64(0x4000), 123);
        assert_eq!(m.peek_u64(0x4000), 123);
        let (r, w) = m.access_counts();
        assert_eq!((r, w), (2, 1)); // peek doesn't count
    }

    #[test]
    fn straddling_access() {
        let mut m = MainMemory::new();
        let addr = PAGE_SIZE - 4;
        m.write_u64(addr, 0xA1B2_C3D4_E5F6_0708);
        assert_eq!(m.read_u64(addr), 0xA1B2_C3D4_E5F6_0708);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn checksum_distinguishes_states() {
        let mut a = MainMemory::new();
        let mut b = MainMemory::new();
        a.write_u64(0x1000, 1);
        b.write_u64(0x1000, 1);
        assert_eq!(a.checksum(), b.checksum());
        b.write_u64(0x1008, 2);
        assert_ne!(a.checksum(), b.checksum());
        // Same contents written in different order hash equal.
        let mut c = MainMemory::new();
        c.write_u64(0x1008, 2);
        c.write_u64(0x1000, 1);
        assert_eq!(b.checksum(), c.checksum());
    }

    #[test]
    fn pages_export_and_install_round_trip() {
        let mut m = MainMemory::new();
        m.write_u64(0x2000, 11);
        m.write_u64(GROUP_PAGES * PAGE_SIZE + 8, 22);
        let mut copy = MainMemory::new();
        for (base, bytes) in m.pages() {
            copy.install_page(base, bytes);
        }
        assert_eq!(copy.peek_u64(0x2000), 11);
        assert_eq!(copy.peek_u64(GROUP_PAGES * PAGE_SIZE + 8), 22);
        assert_eq!(copy.checksum(), m.checksum());
        assert_eq!(copy.access_counts(), (0, 0)); // installs are not accesses
    }

    #[test]
    fn page_lookup() {
        let mut m = MainMemory::new();
        m.write_u64(0x3008, 7);
        let page = m.page(0x3000).expect("resident");
        assert_eq!(page.len() as u64, PAGE_SIZE);
        assert_eq!(u64::from_le_bytes(page[8..16].try_into().unwrap()), 7);
        assert!(m.page(0x5000).is_none());
    }

    #[test]
    fn distant_pages_and_absent_reads() {
        let mut m = MainMemory::new();
        // Pages far apart land in different directory groups.
        let far = GROUP_PAGES * PAGE_SIZE * 3 + 8;
        m.write_u64(8, 1);
        m.write_u64(far, 2);
        assert_eq!(m.peek_u64(8), 1);
        assert_eq!(m.peek_u64(far), 2);
        assert_eq!(m.resident_pages(), 2);
        // Reading an absent page (even beyond the directory) allocates
        // nothing and yields zero.
        assert_eq!(m.peek_u64(far * 1000), 0);
        assert_eq!(m.read_u8(u64::MAX), 0);
        assert_eq!(m.resident_pages(), 2);
    }
}
