//! Miss-status holding registers: merge concurrent misses to the same line.

/// Tracks outstanding cache-line fills so that a second miss to a line
/// already in flight completes when the first fill does, instead of paying
/// the full memory latency again.
///
/// Capacity is a soft limit: when the register file is full of still-live
/// entries, new misses are recorded in `overflows` (for statistics) but
/// still merge/allocate, which models an unbounded MSHR with contention
/// accounting. All of the paper's experiments are insensitive to MSHR
/// capacity; the counter lets tests confirm pressure exists where expected.
///
/// Entries are kept in a small `Vec` sorted by line address. With the
/// paper's 16-entry configuration this is both smaller and faster than a
/// hash map on the simulator's hottest memory path.
#[derive(Clone, Debug)]
pub struct Mshr {
    /// `(line_addr, ready_at)`, sorted by line address.
    inflight: Vec<(u64, u64)>,
    capacity: usize,
    merges: u64,
    allocations: u64,
    overflows: u64,
}

impl Mshr {
    /// Create an MSHR file with the given (soft) capacity.
    pub fn new(capacity: usize) -> Self {
        Mshr {
            inflight: Vec::with_capacity(capacity),
            capacity,
            merges: 0,
            allocations: 0,
            overflows: 0,
        }
    }

    /// Look up an in-flight fill for `line_addr`; returns its completion
    /// cycle if one is outstanding at time `now`.
    pub fn lookup(&mut self, now: u64, line_addr: u64) -> Option<u64> {
        match self
            .inflight
            .binary_search_by_key(&line_addr, |&(line, _)| line)
        {
            Ok(idx) => {
                let ready = self.inflight[idx].1;
                if ready > now {
                    self.merges += 1;
                    Some(ready)
                } else {
                    self.inflight.remove(idx);
                    None
                }
            }
            Err(_) => None,
        }
    }

    /// Record a new outstanding fill completing at `ready_at`.
    pub fn allocate(&mut self, now: u64, line_addr: u64, ready_at: u64) {
        if self.inflight.len() >= self.capacity {
            // Drop expired entries before declaring pressure.
            self.inflight.retain(|&(_, ready)| ready > now);
            if self.inflight.len() >= self.capacity {
                self.overflows += 1;
            }
        }
        self.allocations += 1;
        match self
            .inflight
            .binary_search_by_key(&line_addr, |&(line, _)| line)
        {
            Ok(idx) => self.inflight[idx].1 = ready_at,
            Err(idx) => self.inflight.insert(idx, (line_addr, ready_at)),
        }
    }

    /// (allocations, merges, overflows) counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.allocations, self.merges, self.overflows)
    }

    /// Number of currently tracked fills (including possibly expired ones).
    pub fn len(&self) -> usize {
        self.inflight.len()
    }

    /// Number of fills still outstanding at `now` (prunes expired entries).
    pub fn live_count(&mut self, now: u64) -> usize {
        self.inflight.retain(|&(_, ready)| ready > now);
        self.inflight.len()
    }

    /// Whether no fills are tracked.
    pub fn is_empty(&self) -> bool {
        self.inflight.is_empty()
    }

    /// The tracked `(line, ready)` entries, sorted by line address.
    /// Exposed for invariant checking in tests.
    pub fn entries(&self) -> &[(u64, u64)] {
        &self.inflight
    }

    /// Earliest cycle strictly after `now` at which an in-flight fill
    /// completes, if any is still outstanding. Pure observation: does not
    /// prune expired entries.
    pub fn next_ready(&self, now: u64) -> Option<u64> {
        self.inflight
            .iter()
            .map(|&(_, ready)| ready)
            .filter(|&r| r > now)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_returns_same_completion() {
        let mut m = Mshr::new(4);
        m.allocate(0, 0x40, 1000);
        assert_eq!(m.lookup(10, 0x40), Some(1000));
        assert_eq!(m.lookup(10, 0x80), None);
        let (alloc, merges, _) = m.counters();
        assert_eq!((alloc, merges), (1, 1));
    }

    #[test]
    fn expired_entries_are_pruned_on_lookup() {
        let mut m = Mshr::new(4);
        m.allocate(0, 0x40, 100);
        assert_eq!(m.lookup(100, 0x40), None); // completed exactly at 100
        assert!(m.is_empty());
    }

    #[test]
    fn overflow_counted_when_full_of_live_entries() {
        let mut m = Mshr::new(2);
        m.allocate(0, 0x40, 1000);
        m.allocate(0, 0x80, 1000);
        m.allocate(0, 0xC0, 1000);
        assert_eq!(m.counters().2, 1);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn full_but_expired_entries_are_reclaimed() {
        let mut m = Mshr::new(2);
        m.allocate(0, 0x40, 10);
        m.allocate(0, 0x80, 10);
        m.allocate(50, 0xC0, 1000); // both prior entries expired by now=50
        assert_eq!(m.counters().2, 0);
    }

    #[test]
    fn next_ready_reports_earliest_live_fill() {
        let mut m = Mshr::new(4);
        assert_eq!(m.next_ready(0), None);
        m.allocate(0, 0x40, 300);
        m.allocate(0, 0x80, 100);
        m.allocate(0, 0xC0, 200);
        assert_eq!(m.next_ready(0), Some(100));
        assert_eq!(m.next_ready(100), Some(200)); // exactly-at-now is past
        assert_eq!(m.next_ready(250), Some(300));
        assert_eq!(m.next_ready(300), None);
        // Observation must not prune: entries still tracked.
        assert_eq!(m.len(), 3);
    }
}
