//! PC-based stride prefetcher with stream buffers (Table 1: 256 entries,
//! 8 stream buffers).
//!
//! The prefetcher is trained by L1D *load misses* in execute order — which,
//! in an out-of-order pipeline, is not program order. The paper (§5.1)
//! highlights that value prediction increases this reordering and can
//! mistrain the prefetcher; that emergent behaviour falls out of this
//! implementation naturally because confidence drops whenever observed
//! strides are inconsistent.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Configuration of the stride prefetcher.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefetchConfig {
    /// Whether prefetching is enabled at all.
    pub enabled: bool,
    /// Entries in the PC-indexed stride table (direct mapped).
    pub table_entries: usize,
    /// Number of stream buffers.
    pub stream_buffers: usize,
    /// Lines fetched ahead per stream.
    pub stream_depth: usize,
    /// Confidence (consecutive identical strides) needed to allocate a stream.
    pub train_threshold: u8,
    /// Cache line size in bytes (must match the cache hierarchy).
    pub line_bytes: u64,
}

impl PrefetchConfig {
    /// The paper's configuration: 256-entry PC table, 8 stream buffers.
    pub fn hpca2005() -> Self {
        PrefetchConfig {
            enabled: true,
            table_entries: 256,
            stream_buffers: 8,
            stream_depth: 8,
            train_threshold: 2,
            line_bytes: 64,
        }
    }

    /// Disabled prefetcher (for the paper's "without a stride prefetcher"
    /// observation).
    pub fn disabled() -> Self {
        PrefetchConfig {
            enabled: false,
            ..Self::hpca2005()
        }
    }
}

#[derive(Copy, Clone, Debug, Default)]
struct StrideEntry {
    valid: bool,
    pc: u64,
    last_addr: u64,
    stride: i64,
    conf: u8,
}

/// One stream buffer: a short FIFO of prefetched lines for a single
/// load-PC stream.
#[derive(Clone, Debug)]
pub struct StreamBuffer {
    /// Load PC that owns this stream.
    pub pc: u64,
    /// Byte stride between successive prefetch addresses.
    pub stride: i64,
    /// Next byte address to prefetch when the stream advances.
    pub next_addr: u64,
    /// Prefetched lines: (line byte address, cycle the data arrives).
    pub lines: VecDeque<(u64, u64)>,
    /// Last cycle this stream was used (for LRU replacement).
    pub last_use: u64,
    /// Whether this buffer holds a live stream.
    pub valid: bool,
}

impl StreamBuffer {
    fn empty() -> Self {
        StreamBuffer {
            pc: 0,
            stride: 0,
            next_addr: 0,
            lines: VecDeque::new(),
            last_use: 0,
            valid: false,
        }
    }
}

/// Prefetcher statistics.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefetchStats {
    /// Training events (L1D load misses observed).
    pub trains: u64,
    /// Streams allocated.
    pub streams_allocated: u64,
    /// Prefetch requests issued to the hierarchy.
    pub issued: u64,
    /// Demand accesses satisfied from a stream buffer.
    pub stream_hits: u64,
}

/// Outcome of probing the stream buffers for a demand miss.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StreamProbe {
    /// The line was (or will be) prefetched; data available at `ready_at`.
    /// `refill` is the follow-on prefetch the stream wants issued.
    Hit {
        /// Cycle at which the prefetched data arrives.
        ready_at: u64,
        /// Index of the stream buffer that hit.
        stream: usize,
        /// Byte address the stream wants prefetched next, if any.
        refill: Option<u64>,
    },
    /// No stream buffer holds the line.
    Miss,
}

/// The PC-based stride prefetcher.
pub struct Prefetcher {
    cfg: PrefetchConfig,
    table: Vec<StrideEntry>,
    streams: Vec<StreamBuffer>,
    stats: PrefetchStats,
}

impl Prefetcher {
    /// Create a prefetcher from a configuration.
    pub fn new(cfg: PrefetchConfig) -> Self {
        Prefetcher {
            table: vec![StrideEntry::default(); cfg.table_entries.max(1)],
            streams: (0..cfg.stream_buffers.max(1))
                .map(|_| StreamBuffer::empty())
                .collect(),
            cfg,
            stats: PrefetchStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> PrefetchStats {
        self.stats
    }

    /// Read-only view of the stream buffers (for tests/inspection).
    pub fn streams(&self) -> &[StreamBuffer] {
        &self.streams
    }

    #[inline]
    fn line_of(&self, addr: u64) -> u64 {
        addr & !(self.cfg.line_bytes - 1)
    }

    /// Probe the stream buffers for the line containing `addr`. On a hit
    /// the entry is consumed and the stream advances; the caller must issue
    /// the returned `refill` address (if any) via [`Prefetcher::push_line`]
    /// once it has computed the fill latency.
    pub fn probe(&mut self, now: u64, addr: u64) -> StreamProbe {
        if !self.cfg.enabled {
            return StreamProbe::Miss;
        }
        let line = self.line_of(addr);
        for (idx, sb) in self.streams.iter_mut().enumerate() {
            if !sb.valid {
                continue;
            }
            if let Some(pos) = sb.lines.iter().position(|&(l, _)| l == line) {
                let (_, ready_at) = sb.lines.remove(pos).expect("position just found");
                sb.last_use = now;
                self.stats.stream_hits += 1;
                // Advance the stream by one line.
                let refill = if sb.stride != 0 {
                    let next = sb.next_addr;
                    sb.next_addr = sb.next_addr.wrapping_add(sb.stride as u64);
                    Some(next)
                } else {
                    None
                };
                return StreamProbe::Hit {
                    ready_at,
                    stream: idx,
                    refill,
                };
            }
        }
        StreamProbe::Miss
    }

    /// Train on an L1D load miss at (`pc`, `addr`). If training crosses the
    /// confidence threshold and no stream exists for `pc`, a stream buffer
    /// is allocated (LRU victim) and this returns the stream index plus the
    /// byte addresses of the initial prefetch burst; the caller computes
    /// their latencies and installs them with [`Prefetcher::push_line`].
    pub fn train(&mut self, now: u64, pc: u64, addr: u64) -> Option<(usize, Vec<u64>)> {
        if !self.cfg.enabled {
            return None;
        }
        self.stats.trains += 1;
        let idx = (pc as usize) % self.table.len();
        let e = &mut self.table[idx];
        if !e.valid || e.pc != pc {
            *e = StrideEntry {
                valid: true,
                pc,
                last_addr: addr,
                stride: 0,
                conf: 0,
            };
            return None;
        }
        let new_stride = addr.wrapping_sub(e.last_addr) as i64;
        e.last_addr = addr;
        if new_stride == e.stride && new_stride != 0 {
            e.conf = (e.conf + 1).min(3);
        } else {
            e.conf = e.conf.saturating_sub(1);
            if e.conf == 0 {
                e.stride = new_stride;
            }
            return None;
        }
        if e.conf < self.cfg.train_threshold {
            return None;
        }
        let stride = e.stride;
        // A confident stride: make sure a stream exists for this pc.
        if self.streams.iter().any(|s| s.valid && s.pc == pc) {
            return None;
        }
        let victim = self
            .streams
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| if s.valid { s.last_use + 1 } else { 0 })
            .map(|(i, _)| i)
            .expect("at least one stream buffer");
        let mut addrs = Vec::with_capacity(self.cfg.stream_depth);
        let mut a = addr;
        let mut last_line = self.line_of(addr);
        while addrs.len() < self.cfg.stream_depth {
            a = a.wrapping_add(stride as u64);
            let l = self.line_of(a);
            if l != last_line {
                addrs.push(a);
                last_line = l;
            }
            if stride == 0 {
                break;
            }
        }
        self.streams[victim] = StreamBuffer {
            pc,
            stride,
            next_addr: a.wrapping_add(stride as u64),
            lines: VecDeque::new(),
            last_use: now,
            valid: true,
        };
        self.stats.streams_allocated += 1;
        Some((victim, addrs))
    }

    /// Install a prefetched line (arriving at `ready_at`) into stream
    /// buffer `stream`. Ignored if the stream was reallocated in between.
    pub fn push_line(&mut self, stream: usize, addr: u64, ready_at: u64) {
        let line = self.line_of(addr);
        let depth = self.cfg.stream_depth;
        if let Some(sb) = self.streams.get_mut(stream) {
            if sb.valid {
                if sb.lines.len() >= depth {
                    sb.lines.pop_front();
                }
                sb.lines.push_back((line, ready_at));
                self.stats.issued += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pf() -> Prefetcher {
        Prefetcher::new(PrefetchConfig {
            stream_depth: 3,
            ..PrefetchConfig::hpca2005()
        })
    }

    /// Feed a steady stride until a stream allocates; returns (stream, addrs).
    fn train_to_stream(p: &mut Prefetcher, pc: u64, base: u64, stride: u64) -> (usize, Vec<u64>) {
        for i in 0..16 {
            if let Some(alloc) = p.train(i, pc, base + i * stride) {
                return alloc;
            }
        }
        panic!("stream never allocated");
    }

    #[test]
    fn steady_stride_allocates_stream() {
        let mut p = pf();
        let (stream, addrs) = train_to_stream(&mut p, 0x10, 0x1_0000, 64);
        assert_eq!(addrs.len(), 3);
        // Ahead of the training address, successive lines.
        assert!(addrs.windows(2).all(|w| w[1] == w[0] + 64));
        assert_eq!(p.stats().streams_allocated, 1);
        for (i, a) in addrs.iter().enumerate() {
            p.push_line(stream, *a, 100 + i as u64);
        }
        // Demand access to a prefetched line hits.
        match p.probe(200, addrs[0]) {
            StreamProbe::Hit {
                ready_at, refill, ..
            } => {
                assert_eq!(ready_at, 100);
                assert!(refill.is_some());
            }
            StreamProbe::Miss => panic!("expected stream hit"),
        }
        assert_eq!(p.stats().stream_hits, 1);
    }

    #[test]
    fn small_strides_skip_duplicate_lines() {
        let mut p = pf();
        // stride 8 < line 64: prefetch addresses must land on distinct lines.
        let (_, addrs) = train_to_stream(&mut p, 0x20, 0x2_0000, 8);
        let lines: Vec<u64> = addrs.iter().map(|a| a & !63).collect();
        let mut dedup = lines.clone();
        dedup.dedup();
        assert_eq!(lines, dedup);
    }

    #[test]
    fn irregular_strides_never_allocate() {
        let mut p = pf();
        let addrs = [0x1000u64, 0x1040, 0x3000, 0x1080, 0x9000, 0x10C0];
        for (i, a) in addrs.iter().enumerate() {
            assert!(p.train(i as u64, 0x30, *a).is_none());
        }
        assert_eq!(p.stats().streams_allocated, 0);
    }

    #[test]
    fn interleaved_pcs_use_separate_table_entries() {
        let mut p = pf();
        let mut allocs = 0;
        for i in 0..16u64 {
            if p.train(i, 0x10, 0x1_0000 + i * 64).is_some() {
                allocs += 1;
            }
            if p.train(i, 0x21, 0x8_0000 + i * 128).is_some() {
                allocs += 1;
            }
        }
        assert_eq!(allocs, 2);
    }

    #[test]
    fn aliasing_pcs_mistrain_each_other() {
        // 0x100 and 0x200 map to the same direct-mapped entry (table size
        // 256): interleaved training keeps resetting the entry, so neither
        // stream ever allocates. This aliasing is intentional behaviour of
        // a direct-mapped stride table.
        let mut p = pf();
        for i in 0..16u64 {
            assert!(p.train(i, 0x100, 0x1_0000 + i * 64).is_none());
            assert!(p.train(i, 0x200, 0x8_0000 + i * 128).is_none());
        }
        assert_eq!(p.stats().streams_allocated, 0);
    }

    #[test]
    fn mistraining_tears_down_confidence() {
        let mut p = pf();
        // Build confidence, then feed out-of-order (shuffled) addresses as
        // an OoO pipeline would on reordered misses.
        let (_, _) = train_to_stream(&mut p, 0x40, 0x1_0000, 64);
        let before = p.stats().streams_allocated;
        for (i, a) in [0x5000u64, 0x4000, 0x7000, 0x2000].iter().enumerate() {
            p.train(100 + i as u64, 0x41, *a);
        }
        assert_eq!(p.stats().streams_allocated, before);
    }

    #[test]
    fn lru_stream_replacement() {
        let cfg = PrefetchConfig {
            stream_buffers: 2,
            stream_depth: 2,
            ..PrefetchConfig::hpca2005()
        };
        let mut p = Prefetcher::new(cfg);
        train_to_stream(&mut p, 0x1, 0x10_0000, 64);
        train_to_stream(&mut p, 0x2, 0x20_0000, 64);
        // Third stream evicts the LRU (pc=0x1).
        train_to_stream(&mut p, 0x3, 0x30_0000, 64);
        let pcs: Vec<u64> = p
            .streams()
            .iter()
            .filter(|s| s.valid)
            .map(|s| s.pc)
            .collect();
        assert!(pcs.contains(&0x3));
        assert!(!pcs.contains(&0x1));
    }

    #[test]
    fn disabled_prefetcher_is_inert() {
        let mut p = Prefetcher::new(PrefetchConfig::disabled());
        for i in 0..32u64 {
            assert!(p.train(i, 0x10, 0x1000 + i * 64).is_none());
        }
        assert_eq!(p.probe(100, 0x1000), StreamProbe::Miss);
        assert_eq!(p.stats().trains, 0);
    }

    #[test]
    fn probe_consumes_entry() {
        let mut p = pf();
        let (stream, addrs) = train_to_stream(&mut p, 0x50, 0x5_0000, 64);
        p.push_line(stream, addrs[0], 10);
        assert!(matches!(p.probe(20, addrs[0]), StreamProbe::Hit { .. }));
        assert_eq!(p.probe(21, addrs[0]), StreamProbe::Miss); // consumed
    }
}
