//! A shared last-level cache with a point-to-point interconnect model.
//!
//! CMP topologies replace each core's private L3 with one [`SharedL3`]
//! reached over a simple point-to-point link: every access pays a
//! round-trip `hop` latency on top of the array's hit latency. The cache
//! is tag-only, like every cache in this crate, and is shared *by
//! handle*: each core's [`crate::MemSystem`] holds a clone of the same
//! [`SharedL3Handle`] and consults it instead of its private L3.
//!
//! Address-space isolation: co-scheduled programs use overlapping virtual
//! addresses, so each attachment carries an ASID that is folded into the
//! *tag* bits (above bit 48) of every line address. Two cores never hit
//! on each other's lines, but they do contend for the same sets and ways
//! — exactly the destructive interference a shared LLC exhibits.
//!
//! Timing is install-at-access: a miss installs its tag immediately
//! rather than when the fill would arrive. The window in which a real
//! fill would still be in flight is covered by each core's private MSHRs
//! (which already model arrival), and keeping the shared array
//! request-ordered makes the lockstep CMP loop deterministic without
//! cross-core fill plumbing. See DESIGN.md §17.

use crate::cache::{CacheGeometry, CacheStats, TagCache};
use std::sync::{Arc, Mutex};

/// Sizing and timing of a shared last-level cache.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SharedL3Spec {
    /// Array geometry (size, associativity, line).
    pub geometry: CacheGeometry,
    /// Array hit latency in cycles (before interconnect hops).
    pub latency: u64,
    /// One-way point-to-point hop latency in cycles; every access pays
    /// `2 * hop` (request + response) on top of the array latency.
    pub hop: u64,
}

struct SharedL3 {
    cache: TagCache,
    latency: u64,
    hop: u64,
}

/// A cloneable handle to one shared L3. All clones address the same
/// array; the mutex is uncontended in practice (the CMP cycle loop steps
/// its cores from a single thread).
#[derive(Clone)]
pub struct SharedL3Handle(Arc<Mutex<SharedL3>>);

impl std::fmt::Debug for SharedL3Handle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.0.lock().expect("shared L3 lock");
        f.debug_struct("SharedL3Handle")
            .field("geometry", &g.cache.geometry())
            .field("latency", &g.latency)
            .field("hop", &g.hop)
            .finish()
    }
}

/// Fold an address-space id into the tag bits of a line address. Set
/// selection uses the low address bits, so lines from different ASIDs
/// still contend for the same sets — only hits are isolated.
#[inline]
pub fn asid_line(asid: u16, line: u64) -> u64 {
    line ^ (u64::from(asid) << 48)
}

impl SharedL3Handle {
    /// A fresh shared L3.
    pub fn new(spec: SharedL3Spec) -> SharedL3Handle {
        SharedL3Handle(Arc::new(Mutex::new(SharedL3 {
            cache: TagCache::new(spec.geometry),
            latency: spec.latency,
            hop: spec.hop,
        })))
    }

    /// Round-trip interconnect cost of one shared-L3 access.
    pub fn round_trip(&self) -> u64 {
        let g = self.0.lock().expect("shared L3 lock");
        2 * g.hop
    }

    /// Array hit latency (before hops).
    pub fn latency(&self) -> u64 {
        self.0.lock().expect("shared L3 lock").latency
    }

    /// LRU access for `asid`'s `line`: `true` on hit (line touched),
    /// `false` on miss (no install — pair with [`SharedL3Handle::fill`]).
    pub fn access(&self, asid: u16, line: u64) -> bool {
        let mut g = self.0.lock().expect("shared L3 lock");
        g.cache.access(asid_line(asid, line), false)
    }

    /// Install `asid`'s `line` (clean).
    pub fn fill(&self, asid: u16, line: u64) {
        let mut g = self.0.lock().expect("shared L3 lock");
        g.cache.fill(asid_line(asid, line), false);
    }

    /// Non-mutating residency probe.
    pub fn probe(&self, asid: u16, line: u64) -> bool {
        let g = self.0.lock().expect("shared L3 lock");
        g.cache.probe(asid_line(asid, line))
    }

    /// Aggregate statistics of the shared array (all attached cores).
    pub fn stats(&self) -> CacheStats {
        self.0.lock().expect("shared L3 lock").cache.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn handle() -> SharedL3Handle {
        SharedL3Handle::new(SharedL3Spec {
            geometry: CacheGeometry::new(64 * 1024, 8, 64),
            latency: 20,
            hop: 4,
        })
    }

    #[test]
    fn asids_isolate_hits_but_share_capacity() {
        let h = handle();
        assert!(!h.access(0, 0x1000));
        h.fill(0, 0x1000);
        assert!(h.access(0, 0x1000), "same asid hits its own line");
        assert!(!h.access(1, 0x1000), "another asid must not hit it");
        assert!(h.probe(0, 0x1000));
        assert!(!h.probe(1, 0x1000));
        // Filling the same set from asid 1 evicts asid 0 eventually:
        // 64KB 8-way => 128 sets, set stride 128 * 64 = 8KB.
        for i in 0..8u64 {
            h.fill(1, 0x1000 + i * 8 * 1024);
        }
        assert!(
            !h.probe(0, 0x1000),
            "capacity must be shared across asids (destructive interference)"
        );
    }

    #[test]
    fn handle_clones_share_one_array() {
        let a = handle();
        let b = a.clone();
        a.fill(3, 0x40);
        assert!(b.probe(3, 0x40));
        assert_eq!(b.round_trip(), 8);
        assert_eq!(b.latency(), 20);
        assert!(b.stats().misses + b.stats().hits > 0 || b.stats().evictions == 0);
    }
}
