//! The assembled memory hierarchy (Table 1 of the paper).

use crate::cache::{CacheGeometry, CacheStats, TagCache};
use crate::mshr::Mshr;
use crate::prefetch::{PrefetchConfig, PrefetchStats, Prefetcher, StreamProbe};
use crate::shared::SharedL3Handle;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Full memory-hierarchy configuration.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemConfig {
    /// Cache line size in bytes.
    pub line_bytes: u64,
    /// L1 instruction cache geometry.
    pub l1i: CacheGeometry,
    /// L1 data cache geometry.
    pub l1d: CacheGeometry,
    /// Unified L2 geometry.
    pub l2: CacheGeometry,
    /// Unified L3 geometry.
    pub l3: CacheGeometry,
    /// L1 hit latency (cycles).
    pub l1_latency: u64,
    /// L2 hit latency (cycles).
    pub l2_latency: u64,
    /// L3 hit latency (cycles).
    pub l3_latency: u64,
    /// Main-memory latency (cycles).
    pub mem_latency: u64,
    /// MSHR capacity: the maximum number of outstanding memory-level
    /// misses. Demand loads beyond it are refused and must retry
    /// (`access_data_demand` returns `None`), bounding memory-level
    /// parallelism the way real miss queues and DRAM bandwidth do.
    pub mshrs: usize,
    /// Stride prefetcher configuration.
    pub prefetch: PrefetchConfig,
}

impl MemConfig {
    /// Table 1 of the paper: 64KB/2-way L1s @2, 512KB/8-way L2 @20,
    /// 4MB/16-way L3 @50, 1000-cycle memory, aggressive stride prefetcher.
    pub fn hpca2005() -> Self {
        MemConfig {
            line_bytes: 64,
            l1i: CacheGeometry::new(64 * 1024, 2, 64),
            l1d: CacheGeometry::new(64 * 1024, 2, 64),
            l2: CacheGeometry::new(512 * 1024, 8, 64),
            l3: CacheGeometry::new(4 * 1024 * 1024, 16, 64),
            l1_latency: 2,
            l2_latency: 20,
            l3_latency: 50,
            mem_latency: 1000,
            mshrs: 16,
            prefetch: PrefetchConfig::hpca2005(),
        }
    }

    /// A scaled-down hierarchy for fast tests: tiny caches, short memory.
    pub fn tiny() -> Self {
        MemConfig {
            line_bytes: 64,
            l1i: CacheGeometry::new(4 * 1024, 2, 64),
            l1d: CacheGeometry::new(4 * 1024, 2, 64),
            l2: CacheGeometry::new(16 * 1024, 4, 64),
            l3: CacheGeometry::new(64 * 1024, 8, 64),
            l1_latency: 2,
            l2_latency: 10,
            l3_latency: 20,
            mem_latency: 100,
            mshrs: 16,
            prefetch: PrefetchConfig {
                table_entries: 64,
                ..PrefetchConfig::hpca2005()
            },
        }
    }
}

/// Which level of the hierarchy satisfied an access.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HitLevel {
    /// L1 (instruction or data) hit.
    L1,
    /// Satisfied by a stream buffer (prefetched line).
    Stream,
    /// Merged with an outstanding miss in the MSHRs.
    Mshr,
    /// L2 hit.
    L2,
    /// L3 hit.
    L3,
    /// Main memory.
    Memory,
}

impl HitLevel {
    /// Stable display name (observability labels).
    pub fn name(self) -> &'static str {
        match self {
            HitLevel::L1 => "L1",
            HitLevel::Stream => "Stream",
            HitLevel::Mshr => "Mshr",
            HitLevel::L2 => "L2",
            HitLevel::L3 => "L3",
            HitLevel::Memory => "Memory",
        }
    }
}

/// An observable hierarchy occurrence, recorded only when observation has
/// been switched on with [`MemSystem::obs_enable`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MemEvent {
    /// A pending fill arrived and its line was installed.
    Fill {
        /// Cycle the install happened (the drain cycle, not the request).
        at: u64,
        /// Cache-line byte address.
        line: u64,
    },
}

/// Kind of data access.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store (write-allocate).
    Write,
}

/// Result of a data access: when it completes and where it hit.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Access {
    /// Cycle at which the data is available.
    pub ready_at: u64,
    /// Level that supplied the line.
    pub level: HitLevel,
}

/// Aggregate hierarchy statistics.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemStats {
    /// Demand data accesses by level served.
    pub l1_hits: u64,
    /// Demand accesses served by stream buffers.
    pub stream_hits: u64,
    /// Demand accesses merged into outstanding misses.
    pub mshr_merges: u64,
    /// Demand accesses served by L2.
    pub l2_hits: u64,
    /// Demand accesses served by L3.
    pub l3_hits: u64,
    /// Demand accesses served by main memory.
    pub mem_accesses: u64,
    /// Instruction-fetch accesses that missed L1I.
    pub icache_misses: u64,
    /// Instruction-fetch accesses.
    pub icache_accesses: u64,
    /// Demand accesses refused because every MSHR was busy.
    pub mshr_rejections: u64,
}

/// Pending cache fill: (arrival cycle, line byte address, level mask, dirty).
type PendingFill = Reverse<(u64, u64, u8, bool)>;

const FILL_L1D: u8 = 1;
const FILL_L2: u8 = 2;
const FILL_L3: u8 = 4;
const FILL_L1I: u8 = 8;

/// The timing side of the memory system: caches + MSHRs + prefetcher.
///
/// Data accesses report *when* they complete ([`Access::ready_at`]); the
/// data value itself is read from [`crate::MainMemory`] (or a store
/// buffer) by the pipeline. Fills are installed when they arrive, not when
/// they are requested, so a line is not visible in L1 while its miss is
/// still outstanding (the MSHRs cover that window).
pub struct MemSystem {
    cfg: MemConfig,
    l1i: TagCache,
    l1d: TagCache,
    l2: TagCache,
    l3: TagCache,
    mshr: Mshr,
    prefetcher: Prefetcher,
    pending: BinaryHeap<PendingFill>,
    stats: MemStats,
    /// CMP topology: when attached, the private L3 is bypassed and every
    /// below-L2 access consults the shared last-level cache instead,
    /// paying the interconnect round trip. `None` (the default) leaves
    /// the single-core hierarchy byte-identical.
    shared_l3: Option<SharedAttach>,
    /// Observation log: `None` (the default) records nothing and costs one
    /// branch per fill install; `Some` accumulates events until drained.
    obs: Option<Vec<MemEvent>>,
}

/// One core's attachment to a shared L3: the handle plus timing constants
/// cached at attach time so the hot path takes the lock only for tag
/// operations.
struct SharedAttach {
    handle: SharedL3Handle,
    asid: u16,
    latency: u64,
    round_trip: u64,
}

impl MemSystem {
    /// Build the hierarchy from a configuration.
    pub fn new(cfg: MemConfig) -> Self {
        MemSystem {
            l1i: TagCache::new(cfg.l1i),
            l1d: TagCache::new(cfg.l1d),
            l2: TagCache::new(cfg.l2),
            l3: TagCache::new(cfg.l3),
            mshr: Mshr::new(cfg.mshrs),
            prefetcher: Prefetcher::new(cfg.prefetch),
            pending: BinaryHeap::new(),
            cfg,
            stats: MemStats::default(),
            shared_l3: None,
            obs: None,
        }
    }

    /// Attach this hierarchy to a shared L3 as address space `asid`. From
    /// now on the private L3 is bypassed: every access below L2 consults
    /// the shared array over the interconnect instead. Call before any
    /// timed access (the pipeline attaches at construction).
    pub fn attach_shared_l3(&mut self, handle: SharedL3Handle, asid: u16) {
        let latency = handle.latency();
        let round_trip = handle.round_trip();
        self.shared_l3 = Some(SharedAttach {
            handle,
            asid,
            latency,
            round_trip,
        });
    }

    /// Whether a shared L3 is attached.
    pub fn has_shared_l3(&self) -> bool {
        self.shared_l3.is_some()
    }

    /// Switch on event observation. Until this is called, the hierarchy
    /// records nothing beyond its aggregate statistics.
    pub fn obs_enable(&mut self) {
        if self.obs.is_none() {
            self.obs = Some(Vec::new());
        }
    }

    /// Take the events observed since the last drain (empty when
    /// observation is off).
    pub fn obs_drain(&mut self) -> Vec<MemEvent> {
        match self.obs.as_mut() {
            Some(buf) => std::mem::take(buf),
            None => Vec::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Hierarchy statistics.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Prefetcher statistics.
    pub fn prefetch_stats(&self) -> PrefetchStats {
        self.prefetcher.stats()
    }

    /// Per-cache statistics: (l1i, l1d, l2, l3).
    pub fn cache_stats(&self) -> (CacheStats, CacheStats, CacheStats, CacheStats) {
        (
            self.l1i.stats(),
            self.l1d.stats(),
            self.l2.stats(),
            self.l3.stats(),
        )
    }

    #[inline]
    fn line_of(&self, addr: u64) -> u64 {
        addr & !(self.cfg.line_bytes - 1)
    }

    /// Install fills that have arrived by `now`.
    fn drain_pending(&mut self, now: u64) {
        while let Some(Reverse((ready, line, mask, dirty))) = self.pending.peek().copied() {
            if ready > now {
                break;
            }
            self.pending.pop();
            if mask & FILL_L3 != 0 {
                self.l3.fill(line, false);
            }
            if mask & FILL_L2 != 0 {
                self.l2.fill(line, false);
            }
            if mask & FILL_L1D != 0 {
                self.l1d.fill(line, dirty);
            }
            if mask & FILL_L1I != 0 {
                self.l1i.fill(line, false);
            }
            if let Some(obs) = self.obs.as_mut() {
                obs.push(MemEvent::Fill { at: ready, line });
            }
        }
    }

    fn schedule_fill(&mut self, ready: u64, line: u64, mask: u8, dirty: bool) {
        self.pending.push(Reverse((ready, line, mask, dirty)));
    }

    /// Whether a new memory-level miss can be accepted right now.
    fn mshr_has_room(&mut self, now: u64) -> bool {
        self.mshr.live_count(now) < self.cfg.mshrs
    }

    /// Access below L1: probe L2, then the last level (private L3, or the
    /// shared L3 over the interconnect when attached), then memory.
    /// Returns (ready cycle, level, fill mask for the levels that missed).
    fn below_l1(&mut self, now: u64, line: u64) -> (u64, HitLevel, u8) {
        if self.l2.access(line, false) {
            (now + self.cfg.l2_latency, HitLevel::L2, 0)
        } else if let Some(sh) = &self.shared_l3 {
            if sh.handle.access(sh.asid, line) {
                (now + sh.latency + sh.round_trip, HitLevel::L3, FILL_L2)
            } else {
                // Install-at-access (see `crate::shared`): the tag goes in
                // now; the arrival window is modelled by this core's MSHR.
                sh.handle.fill(sh.asid, line);
                let ready = now + sh.round_trip + self.cfg.mem_latency;
                self.mshr.allocate(now, line, ready);
                (ready, HitLevel::Memory, FILL_L2)
            }
        } else if self.l3.access(line, false) {
            (now + self.cfg.l3_latency, HitLevel::L3, FILL_L2)
        } else {
            let ready = now + self.cfg.mem_latency;
            self.mshr.allocate(now, line, ready);
            (ready, HitLevel::Memory, FILL_L2 | FILL_L3)
        }
    }

    /// Last-level residency probe: the shared L3 when attached, the
    /// private L3 otherwise.
    fn llc_probe(&self, line: u64) -> bool {
        match &self.shared_l3 {
            Some(sh) => sh.handle.probe(sh.asid, line),
            None => self.l3.probe(line),
        }
    }

    /// Whether a demand access to `addr` would need a new memory-level
    /// miss it cannot get an MSHR for (pure check, no state change).
    fn would_block(&mut self, now: u64, addr: u64) -> bool {
        let line = self.line_of(addr);
        !self.l1d.probe(line)
            && self.mshr.lookup(now, line).is_none()
            && !self.l2.probe(line)
            && !self.llc_probe(line)
            && !self.stream_holds(line)
            && !self.mshr_has_room(now)
    }

    fn stream_holds(&self, line: u64) -> bool {
        self.prefetcher
            .streams()
            .iter()
            .any(|sb| sb.valid && sb.lines.iter().any(|&(l, _)| l == line))
    }

    /// Demand *load* access with MSHR back-pressure: returns `None` when
    /// the access would need a memory-level miss but all MSHRs are busy —
    /// the load must retry later (it stays in its issue queue).
    pub fn access_data_demand(
        &mut self,
        now: u64,
        pc: u64,
        addr: u64,
        kind: AccessKind,
    ) -> Option<Access> {
        self.drain_pending(now);
        if self.would_block(now, addr) {
            self.stats.mshr_rejections += 1;
            return None;
        }
        Some(self.access_data(now, pc, addr, kind))
    }

    /// Issue a prefetch for `addr` into stream buffer `stream`. Prefetches
    /// are dropped (not queued) when no MSHR is available.
    fn issue_prefetch(&mut self, now: u64, stream: usize, addr: u64) {
        let line = self.line_of(addr);
        // Prefetch merges with outstanding demand misses.
        let ready = if let Some(r) = self.mshr.lookup(now, line) {
            r
        } else {
            if !self.l2.probe(line) && !self.llc_probe(line) && !self.mshr_has_room(now) {
                return;
            }
            let (ready, _, mask) = self.below_l1(now, line);
            if mask != 0 {
                self.schedule_fill(ready, line, mask, false);
            }
            ready
        };
        self.prefetcher.push_line(stream, line, ready);
    }

    /// Perform a demand data access at cycle `now` from the load/store at
    /// `pc` to byte address `addr`.
    pub fn access_data(&mut self, now: u64, pc: u64, addr: u64, kind: AccessKind) -> Access {
        self.drain_pending(now);
        let write = kind == AccessKind::Write;
        let line = self.line_of(addr);

        if self.l1d.access(line, write) {
            self.stats.l1_hits += 1;
            return Access {
                ready_at: now + self.cfg.l1_latency,
                level: HitLevel::L1,
            };
        }

        // L1 miss: loads train the stride prefetcher (§5.1).
        if !write {
            if let Some((stream, addrs)) = self.prefetcher.train(now, pc, addr) {
                for a in addrs {
                    self.issue_prefetch(now, stream, a);
                }
            }
        }

        // Stream-buffer probe.
        if let StreamProbe::Hit {
            ready_at,
            stream,
            refill,
        } = self.prefetcher.probe(now, line)
        {
            self.stats.stream_hits += 1;
            let ready = ready_at.max(now + self.cfg.l1_latency);
            self.schedule_fill(ready, line, FILL_L1D, write);
            if let Some(r) = refill {
                self.issue_prefetch(now, stream, r);
            }
            return Access {
                ready_at: ready,
                level: HitLevel::Stream,
            };
        }

        // Merge with an outstanding miss.
        if let Some(ready) = self.mshr.lookup(now, line) {
            self.stats.mshr_merges += 1;
            self.schedule_fill(ready, line, FILL_L1D, write);
            return Access {
                ready_at: ready,
                level: HitLevel::Mshr,
            };
        }

        let (ready, level, mask) = self.below_l1(now, line);
        match level {
            HitLevel::L2 => self.stats.l2_hits += 1,
            HitLevel::L3 => self.stats.l3_hits += 1,
            HitLevel::Memory => self.stats.mem_accesses += 1,
            _ => unreachable!("below_l1 only returns L2/L3/Memory"),
        }
        self.schedule_fill(ready, line, mask | FILL_L1D, write);
        Access {
            ready_at: ready,
            level,
        }
    }

    /// Earliest cycle strictly after `now` at which the hierarchy's state
    /// changes on its own: a scheduled cache fill arrives or an in-flight
    /// MSHR fill completes. Returns `None` when nothing is outstanding.
    ///
    /// Pure observation — nothing is drained or pruned — so callers (the
    /// pipeline's idle fast-forward) can poll it without perturbing timing.
    pub fn next_event_cycle(&self, now: u64) -> Option<u64> {
        let fill = self
            .pending
            .iter()
            .map(|&Reverse((ready, _, _, _))| ready)
            .filter(|&r| r > now)
            .min();
        match (fill, self.mshr.next_ready(now)) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Warm-start fill: install the line containing `addr` into every
    /// cache level without touching statistics. Used to pre-load the
    /// program's data image at simulator construction, modelling the cache
    /// state after the fast-forward phase of a sampled simulation.
    pub fn warm_line(&mut self, addr: u64) {
        let line = self.line_of(addr);
        match &self.shared_l3 {
            Some(sh) => sh.handle.fill(sh.asid, line),
            None => {
                self.l3.fill(line, false);
            }
        }
        self.l2.fill(line, false);
        self.l1d.fill(line, false);
    }

    /// Non-mutating probe: where would a demand access to `addr` hit right
    /// now? Used by the paper's cache-level-oracle load selector (§5.1),
    /// which assumes perfect knowledge of a load's cache behaviour.
    /// Stream buffers and MSHRs are not consulted — the selector cares
    /// about the *cache residency* of the line.
    pub fn probe_level(&self, addr: u64) -> HitLevel {
        let line = self.line_of(addr);
        if self.l1d.probe(line) {
            HitLevel::L1
        } else if self.l2.probe(line) {
            HitLevel::L2
        } else if self.llc_probe(line) {
            HitLevel::L3
        } else {
            HitLevel::Memory
        }
    }

    /// Perform an instruction fetch at cycle `now` for the cache line
    /// containing instruction-byte address `addr`. Returns the cycle at
    /// which the fetch block is available.
    pub fn access_inst(&mut self, now: u64, addr: u64) -> Access {
        self.drain_pending(now);
        self.stats.icache_accesses += 1;
        let line = self.line_of(addr);
        if self.l1i.access(line, false) {
            return Access {
                ready_at: now + self.cfg.l1_latency,
                level: HitLevel::L1,
            };
        }
        self.stats.icache_misses += 1;
        if let Some(ready) = self.mshr.lookup(now, line) {
            self.schedule_fill(ready, line, FILL_L1I, false);
            return Access {
                ready_at: ready,
                level: HitLevel::Mshr,
            };
        }
        let (ready, level, mask) = self.below_l1(now, line);
        self.schedule_fill(ready, line, mask | FILL_L1I, false);
        Access {
            ready_at: ready,
            level,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> MemSystem {
        MemSystem::new(MemConfig::hpca2005())
    }

    #[test]
    fn cold_miss_goes_to_memory_then_hits_l1() {
        let mut m = sys();
        let a = m.access_data(0, 4, 0x10_0000, AccessKind::Read);
        assert_eq!(a.level, HitLevel::Memory);
        assert_eq!(a.ready_at, 1000);
        // Before arrival, a second access merges in the MSHR.
        let b = m.access_data(10, 4, 0x10_0008, AccessKind::Read);
        assert_eq!(b.level, HitLevel::Mshr);
        assert_eq!(b.ready_at, 1000);
        // After arrival, L1 hit.
        let c = m.access_data(1000, 4, 0x10_0010, AccessKind::Read);
        assert_eq!(c.level, HitLevel::L1);
        assert_eq!(c.ready_at, 1002);
    }

    #[test]
    fn l2_and_l3_hits_after_l1_eviction() {
        let mut m = sys();
        // Bring a line in, then evict it from L1 by filling its set.
        let base = 0x20_0000u64;
        let first = m.access_data(0, 4, base, AccessKind::Read);
        let mut now = first.ready_at;
        // L1D is 64KB 2-way: set stride = 512 sets * 64B = 32KB. Two more
        // lines in the same set evict the first.
        for i in 1..=2u64 {
            let a = m.access_data(now, 8, base + i * 32 * 1024, AccessKind::Read);
            now = a.ready_at;
        }
        let again = m.access_data(now, 4, base, AccessKind::Read);
        assert_eq!(again.level, HitLevel::L2);
        assert_eq!(again.ready_at, now + 20);
    }

    #[test]
    fn streaming_loads_get_prefetched() {
        let mut m = sys();
        let pc = 0x40;
        let mut now = 0u64;
        let mut levels = Vec::new();
        for i in 0..32u64 {
            let a = m.access_data(now, pc, 0x100_0000 + i * 64, AccessKind::Read);
            levels.push(a.level);
            now = a.ready_at + 1;
        }
        // After training, stream-buffer hits appear.
        assert!(
            levels.iter().filter(|l| **l == HitLevel::Stream).count() >= 8,
            "expected stream hits, got {levels:?}"
        );
        assert!(m.prefetch_stats().issued > 0);
        // Stream hits cost far less than memory latency.
        let tail = &levels[16..];
        assert!(
            tail.iter().all(|l| *l != HitLevel::Memory),
            "late accesses still going to memory: {tail:?}"
        );
    }

    #[test]
    fn prefetch_hides_most_of_memory_latency_in_steady_state() {
        let mut m = sys();
        let pc = 0x44;
        let mut now = 100_000u64; // avoid interactions with cycle 0
        let mut last_cost = 0;
        for i in 0..64u64 {
            let a = m.access_data(now, pc, 0x200_0000 + i * 64, AccessKind::Read);
            last_cost = a.ready_at - now;
            now = a.ready_at + 200; // ample gap for prefetches to land
        }
        assert!(
            last_cost <= m.config().l3_latency,
            "steady-state streaming access cost {last_cost} too high"
        );
    }

    #[test]
    fn writes_allocate_and_dirty() {
        let mut m = sys();
        let w = m.access_data(0, 4, 0x30_0000, AccessKind::Write);
        assert_eq!(w.level, HitLevel::Memory);
        let r = m.access_data(w.ready_at, 4, 0x30_0000, AccessKind::Read);
        assert_eq!(r.level, HitLevel::L1);
    }

    #[test]
    fn icache_miss_and_hit() {
        let mut m = sys();
        let a = m.access_inst(0, 0);
        assert_eq!(a.level, HitLevel::Memory);
        let b = m.access_inst(a.ready_at, 8);
        assert_eq!(b.level, HitLevel::L1);
        assert_eq!(m.stats().icache_misses, 1);
        assert_eq!(m.stats().icache_accesses, 2);
    }

    #[test]
    fn fills_are_not_visible_before_arrival() {
        let mut m = sys();
        let a = m.access_data(0, 4, 0x50_0000, AccessKind::Read);
        // At cycle 500 the line is still in flight: not an L1 hit.
        let b = m.access_data(500, 4, 0x50_0000, AccessKind::Read);
        assert_eq!(b.level, HitLevel::Mshr);
        assert_eq!(b.ready_at, a.ready_at);
    }

    #[test]
    fn next_event_cycle_tracks_fills_and_mshrs() {
        let mut m = sys();
        assert_eq!(m.next_event_cycle(0), None);
        let a = m.access_data(0, 4, 0x10_0000, AccessKind::Read);
        assert_eq!(a.level, HitLevel::Memory);
        // The in-flight fill is the next event from any earlier cycle...
        assert_eq!(m.next_event_cycle(0), Some(a.ready_at));
        assert_eq!(m.next_event_cycle(a.ready_at - 1), Some(a.ready_at));
        // ...and is in the past once `now` reaches it ("strictly after").
        assert_eq!(m.next_event_cycle(a.ready_at), None);
        // Observation does not install the fill: the line still becomes an
        // L1 hit at arrival, exactly as without the query.
        let b = m.access_data(a.ready_at, 4, 0x10_0000, AccessKind::Read);
        assert_eq!(b.level, HitLevel::L1);
        assert_eq!(m.next_event_cycle(b.ready_at), None);
    }

    fn shared_pair() -> (MemSystem, MemSystem, crate::shared::SharedL3Handle) {
        let cfg = MemConfig::hpca2005();
        let h = crate::shared::SharedL3Handle::new(crate::shared::SharedL3Spec {
            geometry: cfg.l3,
            latency: cfg.l3_latency,
            hop: 4,
        });
        let mut a = MemSystem::new(cfg);
        let mut b = MemSystem::new(cfg);
        a.attach_shared_l3(h.clone(), 0);
        b.attach_shared_l3(h.clone(), 1);
        (a, b, h)
    }

    #[test]
    fn shared_l3_pays_the_interconnect_and_isolates_asids() {
        let (mut a, mut b, h) = shared_pair();
        // Core A's cold miss travels over the link to memory and installs
        // the shared tag at access time.
        let first = a.access_data(0, 4, 0x10_0000, AccessKind::Read);
        assert_eq!(first.level, HitLevel::Memory);
        assert_eq!(first.ready_at, 8 + 1000, "round trip + memory latency");
        assert!(h.probe(0, 0x10_0000));
        // Core B uses the same virtual address but a different ASID: its
        // access must not hit core A's line.
        let other = b.access_data(0, 4, 0x10_0000, AccessKind::Read);
        assert_eq!(other.level, HitLevel::Memory);
        // Once A's private copies are evicted, the shared L3 serves it
        // with the hop cost on top of the array latency. Evict from L1
        // (2-way, 32KB stride) and L2 (8-way, 64KB stride) by conflict.
        let mut now = first.ready_at;
        for i in 1..=8u64 {
            let x = a.access_data(now, 8, 0x10_0000 + i * 64 * 1024, AccessKind::Read);
            now = x.ready_at + 1;
        }
        let back = a.access_data(now, 4, 0x10_0000, AccessKind::Read);
        assert_eq!(back.level, HitLevel::L3);
        assert_eq!(back.ready_at, now + 50 + 8);
    }

    #[test]
    fn unattached_hierarchy_is_unchanged_by_the_shared_module() {
        // The single-core path must be byte-identical to the pre-CMP
        // hierarchy: exact latencies of the original cold-miss test.
        let mut m = sys();
        assert!(!m.has_shared_l3());
        let a = m.access_data(0, 4, 0x10_0000, AccessKind::Read);
        assert_eq!((a.level, a.ready_at), (HitLevel::Memory, 1000));
        let c = m.access_data(1000, 4, 0x10_0010, AccessKind::Read);
        assert_eq!((c.level, c.ready_at), (HitLevel::L1, 1002));
    }

    #[test]
    fn warm_line_fills_the_shared_array_when_attached() {
        let (mut a, _b, h) = shared_pair();
        a.warm_line(0x42_0000);
        assert!(h.probe(0, 0x42_0000));
        assert!(!h.probe(1, 0x42_0000));
        assert_eq!(a.probe_level(0x42_0000), HitLevel::L1);
    }

    #[test]
    fn tiny_config_is_consistent() {
        let mut m = MemSystem::new(MemConfig::tiny());
        let a = m.access_data(0, 4, 0x1000, AccessKind::Read);
        assert_eq!(a.ready_at, 100);
        let b = m.access_data(100, 4, 0x1000, AccessKind::Read);
        assert_eq!(b.ready_at, 102);
    }
}
