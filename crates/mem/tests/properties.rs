//! Property-based tests of the cache and memory hierarchy invariants.

use mtvp_mem::{AccessKind, CacheGeometry, MainMemory, MemConfig, MemSystem, Mshr, TagCache};
use proptest::prelude::*;

proptest! {
    #[test]
    fn cache_fill_makes_line_present(addrs in prop::collection::vec(0u64..1_000_000, 1..100)) {
        let mut c = TagCache::new(CacheGeometry::new(4096, 2, 64));
        for a in &addrs {
            c.fill(*a, false);
            prop_assert!(c.probe(*a), "just-filled line must be present");
        }
    }

    #[test]
    fn cache_stats_accounting(addrs in prop::collection::vec(0u64..100_000, 1..200)) {
        let mut c = TagCache::new(CacheGeometry::new(2048, 2, 64));
        for a in &addrs {
            if !c.access(*a, false) {
                c.fill(*a, false);
            }
        }
        let s = c.stats();
        prop_assert_eq!(s.hits + s.misses, addrs.len() as u64);
        prop_assert!(s.dirty_evictions <= s.evictions);
    }

    #[test]
    fn hierarchy_latency_is_monotone_in_level(addr in (0u64..1_000_000).prop_map(|a| a & !7)) {
        let mut m = MemSystem::new(MemConfig::hpca2005());
        let cold = m.access_data(0, 4, addr, AccessKind::Read);
        let warm = m.access_data(cold.ready_at + 1, 4, addr, AccessKind::Read);
        prop_assert!(cold.ready_at >= 1000, "cold access must pay memory latency");
        prop_assert!(warm.ready_at - (cold.ready_at + 1) <= 2, "warm access must hit L1");
    }

    #[test]
    fn completion_times_never_precede_request(reqs in prop::collection::vec((0u64..50_000, 0u64..(1u64<<20)), 1..100)) {
        let mut m = MemSystem::new(MemConfig::tiny());
        let mut now = 0;
        for (dt, addr) in reqs {
            now += dt;
            let a = m.access_data(now, 4, addr & !7, AccessKind::Read);
            prop_assert!(a.ready_at > now);
        }
    }

    #[test]
    fn mshr_sorted_vec_invariants(
        ops in prop::collection::vec((0u64..100, 0u64..64, 0u64..500, any::<bool>()), 1..200)
    ) {
        // The MSHR keeps its in-flight fills in a Vec sorted by line
        // address with no duplicates, and `next_ready` must report the
        // earliest still-outstanding completion. Exercise it with a
        // random interleaving of allocates and lookups over a small line
        // pool (so merges, replacements and expirations all occur).
        let mut m = Mshr::new(8);
        let mut now = 0u64;
        for &(dt, line, extra, is_alloc) in &ops {
            now += dt;
            let line = line << 6;
            if is_alloc {
                m.allocate(now, line, now + 1 + extra);
            } else if let Some(ready) = m.lookup(now, line) {
                prop_assert!(ready > now, "merged fill must still be in flight");
            }
            let entries = m.entries();
            for w in entries.windows(2) {
                prop_assert!(
                    w[0].0 < w[1].0,
                    "entries must be strictly sorted by line (no duplicates): {:?}",
                    entries
                );
            }
            let expected = entries.iter().map(|&(_, r)| r).filter(|&r| r > now).min();
            prop_assert_eq!(m.next_ready(now), expected);
        }
    }

    #[test]
    fn main_memory_matches_model(writes in prop::collection::vec((0u64..10_000, any::<u64>()), 1..100)) {
        use mtvp_isa::interp::Bus;
        let mut mem = MainMemory::new();
        let mut model = std::collections::HashMap::new();
        for (addr, val) in &writes {
            let a = addr & !7;
            mem.write_u64(a, *val);
            model.insert(a, *val);
        }
        for (a, v) in &model {
            prop_assert_eq!(mem.peek_u64(*a), *v);
        }
    }
}
