//! Chrome trace-event JSON exporter.
//!
//! The output follows the Trace Event Format consumed by Chrome's
//! `about:tracing` and by Perfetto: a `{"traceEvents": [...]}` document
//! where each hardware context is a separate thread track (`tid`), every
//! uop's rename→retire lifetime is a complete ("X") span, and thread
//! lifecycle moments (spawn, reconcile, kill, promote, predictions,
//! redispatches, fills) are instant ("i") markers.

use crate::event::Event;
use serde::Value;

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn s(text: &str) -> Value {
    Value::Str(text.to_string())
}

fn u(v: u64) -> Value {
    Value::U64(v)
}

fn span(name: &str, tid: usize, ts: u64, dur: u64, args: Vec<(&str, Value)>) -> Value {
    obj(vec![
        ("name", s(name)),
        ("ph", s("X")),
        ("pid", u(0)),
        ("tid", u(tid as u64)),
        ("ts", u(ts)),
        ("dur", u(dur.max(1))),
        ("args", obj(args)),
    ])
}

fn instant(name: &str, tid: usize, ts: u64, args: Vec<(&str, Value)>) -> Value {
    obj(vec![
        ("name", s(name)),
        ("ph", s("i")),
        ("s", s("t")),
        ("pid", u(0)),
        ("tid", u(tid as u64)),
        ("ts", u(ts)),
        ("args", obj(args)),
    ])
}

/// State of one in-flight uop while we scan the stream.
struct Open {
    seq: u64,
    pc: u64,
    op: &'static str,
    rename_at: u64,
    fetched_at: u64,
    issue_at: Option<u64>,
    writeback_at: Option<u64>,
}

/// Render an event stream (as produced by
/// [`RingTracer::events`](crate::RingTracer::events)) to a Chrome
/// trace-event JSON string. Cycles are reported as microseconds, so one
/// simulated cycle displays as 1 µs in the viewer.
pub fn chrome_trace<'a, I>(events: I) -> String
where
    I: IntoIterator<Item = &'a (u64, Event)>,
{
    let mut out: Vec<Value> = Vec::new();
    let mut tracks: Vec<usize> = Vec::new();
    // Open uops per context; windows are in program order per context so a
    // Vec keyed by (ctx, seq) scan is fine at pipeview scales.
    let mut open: Vec<(usize, Open)> = Vec::new();
    let mut body: Vec<Value> = Vec::new();

    let note_track = |tracks: &mut Vec<usize>, ctx: usize| {
        if !tracks.contains(&ctx) {
            tracks.push(ctx);
        }
    };

    let close = |open: &mut Vec<(usize, Open)>,
                 body: &mut Vec<Value>,
                 ctx: usize,
                 seq: u64,
                 end: u64,
                 outcome: &str| {
        if let Some(i) = open.iter().position(|(c, o)| *c == ctx && o.seq == seq) {
            let (_, o) = open.remove(i);
            let mut args = vec![
                ("pc", u(o.pc)),
                ("seq", u(o.seq)),
                ("fetched_at", u(o.fetched_at)),
                ("outcome", s(outcome)),
            ];
            if let Some(t) = o.issue_at {
                args.push(("issue_at", u(t)));
            }
            if let Some(t) = o.writeback_at {
                args.push(("writeback_at", u(t)));
            }
            body.push(span(
                o.op,
                ctx,
                o.rename_at,
                end.saturating_sub(o.rename_at),
                args,
            ));
        }
    };

    for &(cycle, ev) in events {
        match ev {
            Event::Rename {
                ctx,
                seq,
                pc,
                op,
                fetched_at,
            } => {
                note_track(&mut tracks, ctx);
                open.push((
                    ctx,
                    Open {
                        seq,
                        pc,
                        op,
                        rename_at: cycle,
                        fetched_at,
                        issue_at: None,
                        writeback_at: None,
                    },
                ));
            }
            Event::Issue { ctx, seq } => {
                if let Some((_, o)) = open.iter_mut().find(|(c, o)| *c == ctx && o.seq == seq) {
                    o.issue_at = Some(cycle);
                }
            }
            Event::Writeback { ctx, seq } => {
                if let Some((_, o)) = open.iter_mut().find(|(c, o)| *c == ctx && o.seq == seq) {
                    o.writeback_at = Some(cycle);
                }
            }
            Event::Commit { ctx, seq, spec, .. } => {
                note_track(&mut tracks, ctx);
                let outcome = if spec { "spec_commit" } else { "commit" };
                close(&mut open, &mut body, ctx, seq, cycle, outcome);
            }
            Event::Squash {
                ctx, seq, cause, ..
            } => {
                close(&mut open, &mut body, ctx, seq, cycle, cause.name());
            }
            Event::Spawn {
                parent,
                child,
                pc,
                seq,
                value,
            } => {
                note_track(&mut tracks, parent);
                note_track(&mut tracks, child);
                let mut args = vec![("child", u(child as u64)), ("pc", u(pc)), ("seq", u(seq))];
                if let Some(v) = value {
                    args.push(("value", u(v)));
                }
                body.push(instant("spawn", parent, cycle, args));
            }
            Event::Reconcile {
                parent,
                child,
                seq,
                correct,
                run_len,
            } => {
                let name = if correct {
                    "reconcile_ok"
                } else {
                    "reconcile_abort"
                };
                body.push(instant(
                    name,
                    parent,
                    cycle,
                    vec![
                        ("child", u(child as u64)),
                        ("seq", u(seq)),
                        ("run_len", u(run_len)),
                    ],
                ));
            }
            Event::Promote {
                parent,
                child,
                run_len,
            } => {
                body.push(instant(
                    "promote",
                    child,
                    cycle,
                    vec![("parent", u(parent as u64)), ("run_len", u(run_len))],
                ));
            }
            Event::Kill {
                ctx,
                cause,
                run_len,
            } => {
                note_track(&mut tracks, ctx);
                body.push(instant(
                    "kill",
                    ctx,
                    cycle,
                    vec![("cause", s(cause.name())), ("run_len", u(run_len))],
                ));
            }
            Event::Predict {
                ctx,
                pc,
                kind,
                value,
            } => {
                let mut args = vec![("pc", u(pc)), ("kind", s(kind.name()))];
                if let Some(v) = value {
                    args.push(("value", u(v)));
                }
                body.push(instant("predict", ctx, cycle, args));
            }
            Event::Redispatch { ctx, seq, cause } => {
                body.push(instant(
                    "redispatch",
                    ctx,
                    cycle,
                    vec![("seq", u(seq)), ("cause", s(cause.name()))],
                ));
            }
            Event::SpecStoreCommit { ctx, seq, addr } => {
                body.push(instant(
                    "spec_store",
                    ctx,
                    cycle,
                    vec![("seq", u(seq)), ("addr", u(addr))],
                ));
            }
            Event::MemAccess {
                ctx,
                pc,
                level,
                latency,
            } => {
                // L1 hits are the overwhelming common case and add little
                // to a timeline; keep only the misses.
                if level != "L1" {
                    body.push(instant(
                        "miss",
                        ctx,
                        cycle,
                        vec![("pc", u(pc)), ("level", s(level)), ("latency", u(latency))],
                    ));
                }
            }
            Event::BranchResolve {
                ctx,
                seq,
                pc,
                mispredict,
            } => {
                if mispredict {
                    body.push(instant(
                        "mispredict",
                        ctx,
                        cycle,
                        vec![("seq", u(seq)), ("pc", u(pc))],
                    ));
                }
            }
            Event::MemFill { .. } | Event::Fetch { .. } | Event::Occupancy { .. } => {}
        }
    }

    // Uops still open when the stream ends (run truncated / ring window):
    // close them at their last known cycle so they still render.
    let leftovers: Vec<(usize, u64, u64)> = open
        .iter()
        .map(|(c, o)| {
            (
                *c,
                o.seq,
                o.writeback_at.or(o.issue_at).unwrap_or(o.rename_at) + 1,
            )
        })
        .collect();
    for (ctx, seq, end) in leftovers {
        close(&mut open, &mut body, ctx, seq, end, "in_flight");
    }

    tracks.sort_unstable();
    for ctx in &tracks {
        let label = if *ctx == 0 {
            format!("ctx {ctx} (root)")
        } else {
            format!("ctx {ctx}")
        };
        out.push(obj(vec![
            ("name", s("thread_name")),
            ("ph", s("M")),
            ("pid", u(0)),
            ("tid", u(*ctx as u64)),
            ("args", obj(vec![("name", Value::Str(label))])),
        ]));
    }
    out.extend(body);

    Value::Map(vec![
        ("traceEvents".to_string(), Value::Seq(out)),
        ("displayTimeUnit".to_string(), Value::Str("ns".to_string())),
    ])
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exports_valid_json_with_tracks_and_spans() {
        let events = vec![
            (
                5u64,
                Event::Rename {
                    ctx: 0,
                    seq: 1,
                    pc: 100,
                    op: "ld",
                    fetched_at: 2,
                },
            ),
            (7, Event::Issue { ctx: 0, seq: 1 }),
            (9, Event::Writeback { ctx: 0, seq: 1 }),
            (
                10,
                Event::Spawn {
                    parent: 0,
                    child: 1,
                    pc: 100,
                    seq: 1,
                    value: Some(42),
                },
            ),
            (
                12,
                Event::Commit {
                    ctx: 0,
                    seq: 1,
                    pc: 100,
                    spec: false,
                },
            ),
            (
                13,
                Event::Kill {
                    ctx: 1,
                    cause: crate::KillCause::WrongValue,
                    run_len: 3,
                },
            ),
        ];
        let text = chrome_trace(&events);
        let v: Value = serde_json::from_str(&text).expect("valid JSON");
        let items = match &v["traceEvents"] {
            Value::Seq(items) => items.clone(),
            other => panic!("traceEvents not an array: {other}"),
        };
        // Two thread_name metadata records (ctx 0 and 1), one span, two
        // instants (spawn + kill).
        let ph = |e: &Value| e["ph"].as_str().map(str::to_string);
        let metas = items
            .iter()
            .filter(|e| ph(e).as_deref() == Some("M"))
            .count();
        let spans = items
            .iter()
            .filter(|e| ph(e).as_deref() == Some("X"))
            .count();
        let instants = items
            .iter()
            .filter(|e| ph(e).as_deref() == Some("i"))
            .count();
        assert_eq!(metas, 2);
        assert_eq!(spans, 1);
        assert_eq!(instants, 2);
        let span = items
            .iter()
            .find(|e| ph(e).as_deref() == Some("X"))
            .unwrap();
        assert_eq!(span["name"].as_str(), Some("ld"));
        assert_eq!(span["ts"].as_u64(), Some(5));
        assert_eq!(span["dur"].as_u64(), Some(7));
        assert_eq!(span["args"]["issue_at"].as_u64(), Some(7));
    }

    #[test]
    fn truncated_stream_closes_open_uops() {
        let events = vec![(
            3u64,
            Event::Rename {
                ctx: 2,
                seq: 8,
                pc: 40,
                op: "add",
                fetched_at: 1,
            },
        )];
        let text = chrome_trace(&events);
        let v: Value = serde_json::from_str(&text).expect("valid JSON");
        let items = match &v["traceEvents"] {
            Value::Seq(items) => items.clone(),
            _ => panic!("no traceEvents"),
        };
        let span = items
            .iter()
            .find(|e| e["ph"].as_str() == Some("X"))
            .expect("open uop rendered");
        assert_eq!(span["args"]["outcome"].as_str(), Some("in_flight"));
    }
}
