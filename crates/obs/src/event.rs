//! The event taxonomy: everything the pipeline can tell an observer.
//!
//! Events are cheap POD values; the hot path constructs them only inside
//! `if T::ENABLED` blocks, so with the [`crate::NullTracer`] none of this
//! code survives monomorphization.

use serde::{Serialize, Value};

/// Why a uop was squashed from a context's window.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SquashCause {
    /// A branch earlier in the window resolved against its prediction.
    BranchMispredict,
    /// The whole context was killed (wrong-value child, parent squash, ...).
    ThreadKill,
    /// A spawned child survived reconciliation, so the parent's own
    /// post-load instructions are redundant.
    SpawnResolved,
    /// A sampled-simulation drain discarded all in-flight work at the end
    /// of a detailed window (see `Machine::drain_to_arch`).
    Drain,
}

/// Why a uop was sent back for re-execution without being squashed.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ReissueCause {
    /// Selective reissue after a wrong value prediction.
    ValueMispredict,
    /// A store executed late and a younger load had already read memory.
    MemOrder,
}

/// Why a speculative thread (context subtree) was killed.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum KillCause {
    /// The parent load committed with a value different from the spawn's.
    WrongValue,
    /// The spawning load itself was squashed from the parent.
    ParentSquashed,
    /// A memory-order violation invalidated the child's starting state.
    MemOrder,
    /// The child's flash-copied rename map became stale (parent redispatch).
    StaleRename,
    /// A sampled-simulation drain ended the detailed window while the
    /// subtree was still speculative.
    Drained,
}

/// Which value-prediction mechanism produced a prediction.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum VpKind {
    /// Single-threaded value prediction (prediction written to the preg).
    Stvp,
    /// Multithreaded value prediction (a thread was spawned).
    Mtvp,
    /// Spawn-only comparator mode (thread spawned, no value predicted).
    SpawnOnly,
}

/// One observable pipeline or thread-lifecycle occurrence.
///
/// `ctx` is the hardware context id, `seq` the per-context program-order
/// sequence number assigned at rename — together they identify a uop for
/// the lifetime of one window occupancy.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum Event {
    /// An instruction was fetched for a context.
    Fetch {
        /// Fetching context.
        ctx: usize,
        /// Program counter of the fetched instruction.
        pc: u64,
    },
    /// A fetched instruction was renamed into the window.
    Rename {
        /// Owning context.
        ctx: usize,
        /// Per-context sequence number assigned at rename.
        seq: u64,
        /// Program counter.
        pc: u64,
        /// Mnemonic of the instruction's opcode.
        op: &'static str,
        /// Cycle the instruction was fetched (front-end entry).
        fetched_at: u64,
    },
    /// A uop was issued to a functional unit.
    Issue {
        /// Owning context.
        ctx: usize,
        /// Sequence number.
        seq: u64,
    },
    /// A uop wrote back its result.
    Writeback {
        /// Owning context.
        ctx: usize,
        /// Sequence number.
        seq: u64,
    },
    /// A uop retired from the head of its context's window.
    Commit {
        /// Owning context.
        ctx: usize,
        /// Sequence number.
        seq: u64,
        /// Program counter.
        pc: u64,
        /// True if this commit was speculative (into the store buffer of a
        /// spawned thread) rather than architectural.
        spec: bool,
    },
    /// A uop was squashed from the window.
    Squash {
        /// Owning context.
        ctx: usize,
        /// Sequence number.
        seq: u64,
        /// Program counter.
        pc: u64,
        /// Why it was squashed.
        cause: SquashCause,
    },
    /// A uop was returned to the dispatched state for re-execution.
    Redispatch {
        /// Owning context.
        ctx: usize,
        /// Sequence number.
        seq: u64,
        /// Why it was redispatched.
        cause: ReissueCause,
    },
    /// The value predictor produced (and the machine followed) a prediction.
    Predict {
        /// Context of the predicted load.
        ctx: usize,
        /// Program counter of the load.
        pc: u64,
        /// Mechanism that consumed the prediction.
        kind: VpKind,
        /// Predicted value (absent for spawn-only threads).
        value: Option<u64>,
    },
    /// A speculative thread was spawned on a free hardware context.
    Spawn {
        /// Parent context (owner of the predicted load).
        parent: usize,
        /// Child context the speculative thread occupies.
        child: usize,
        /// Program counter of the spawning load.
        pc: u64,
        /// Sequence number of the spawning load in the parent.
        seq: u64,
        /// Value the child runs ahead with (absent for spawn-only).
        value: Option<u64>,
    },
    /// A speculative thread committed a store into its store buffer.
    SpecStoreCommit {
        /// Speculative context.
        ctx: usize,
        /// Sequence number of the store.
        seq: u64,
        /// Store address.
        addr: u64,
    },
    /// The spawning load committed and a child was checked against the
    /// actual loaded value.
    Reconcile {
        /// Parent context.
        parent: usize,
        /// Child context that was checked.
        child: usize,
        /// Sequence number of the spawning load in the parent.
        seq: u64,
        /// True if the child's predicted value matched and it survives.
        correct: bool,
        /// Instructions the child had speculatively committed by then.
        run_len: u64,
    },
    /// A surviving child replaced its drained parent as the named thread.
    Promote {
        /// Parent context being retired.
        parent: usize,
        /// Child context taking over.
        child: usize,
        /// Speculative commits transferred to the child's credit.
        run_len: u64,
    },
    /// A speculative context (and transitively its children) was killed.
    Kill {
        /// Killed context.
        ctx: usize,
        /// Why it was killed.
        cause: KillCause,
        /// Speculative commits discarded with it.
        run_len: u64,
    },
    /// A demand memory access left the load/store unit.
    MemAccess {
        /// Accessing context.
        ctx: usize,
        /// Program counter of the access.
        pc: u64,
        /// Hierarchy level that serviced it ("L1", "L2", "Memory", ...).
        level: &'static str,
        /// Latency in cycles until the value is ready.
        latency: u64,
    },
    /// An in-flight miss completed and its line was installed.
    MemFill {
        /// Cache-line address that filled.
        line: u64,
    },
    /// A branch resolved in the execute stage.
    BranchResolve {
        /// Owning context.
        ctx: usize,
        /// Sequence number.
        seq: u64,
        /// Program counter of the branch.
        pc: u64,
        /// True if the front end had followed a wrong path.
        mispredict: bool,
    },
    /// Per-cycle occupancy sample of the shared machine queues.
    Occupancy {
        /// Total reorder-buffer entries across live contexts.
        rob: u64,
        /// Integer issue-queue entries.
        iq: u64,
        /// Floating-point issue-queue entries.
        fq: u64,
        /// Memory issue-queue entries.
        mq: u64,
    },
}

impl SquashCause {
    /// Stable lower-case name for export.
    pub fn name(self) -> &'static str {
        match self {
            SquashCause::BranchMispredict => "branch_mispredict",
            SquashCause::ThreadKill => "thread_kill",
            SquashCause::SpawnResolved => "spawn_resolved",
            SquashCause::Drain => "drain",
        }
    }
}

impl ReissueCause {
    /// Stable lower-case name for export.
    pub fn name(self) -> &'static str {
        match self {
            ReissueCause::ValueMispredict => "value_mispredict",
            ReissueCause::MemOrder => "mem_order",
        }
    }
}

impl KillCause {
    /// Stable lower-case name for export.
    pub fn name(self) -> &'static str {
        match self {
            KillCause::WrongValue => "wrong_value",
            KillCause::ParentSquashed => "parent_squashed",
            KillCause::MemOrder => "mem_order",
            KillCause::StaleRename => "stale_rename",
            KillCause::Drained => "drained",
        }
    }
}

impl VpKind {
    /// Stable lower-case name for export.
    pub fn name(self) -> &'static str {
        match self {
            VpKind::Stvp => "stvp",
            VpKind::Mtvp => "mtvp",
            VpKind::SpawnOnly => "spawn_only",
        }
    }
}

impl Event {
    /// Stable lower-case kind tag (used as counter names and the JSON
    /// `type` discriminant).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Event::Fetch { .. } => "fetch",
            Event::Rename { .. } => "rename",
            Event::Issue { .. } => "issue",
            Event::Writeback { .. } => "writeback",
            Event::Commit { .. } => "commit",
            Event::Squash { .. } => "squash",
            Event::Redispatch { .. } => "redispatch",
            Event::Predict { .. } => "predict",
            Event::Spawn { .. } => "spawn",
            Event::SpecStoreCommit { .. } => "spec_store_commit",
            Event::Reconcile { .. } => "reconcile",
            Event::Promote { .. } => "promote",
            Event::Kill { .. } => "kill",
            Event::MemAccess { .. } => "mem_access",
            Event::MemFill { .. } => "mem_fill",
            Event::BranchResolve { .. } => "branch_resolve",
            Event::Occupancy { .. } => "occupancy",
        }
    }
}

fn opt_u64(v: Option<u64>) -> Value {
    match v {
        Some(v) => Value::U64(v),
        None => Value::Null,
    }
}

// The vendored serde-derive shim cannot handle data-carrying enum
// variants, so the serialization is written out by hand: a flat map with a
// "type" discriminant, the shape the exporters and external consumers read.
impl Serialize for Event {
    fn to_value(&self) -> Value {
        let mut m: Vec<(String, Value)> =
            vec![("type".into(), Value::Str(self.kind_name().into()))];
        let mut push = |k: &str, v: Value| m.push((k.into(), v));
        match *self {
            Event::Fetch { ctx, pc } => {
                push("ctx", Value::U64(ctx as u64));
                push("pc", Value::U64(pc));
            }
            Event::Rename {
                ctx,
                seq,
                pc,
                op,
                fetched_at,
            } => {
                push("ctx", Value::U64(ctx as u64));
                push("seq", Value::U64(seq));
                push("pc", Value::U64(pc));
                push("op", Value::Str(op.into()));
                push("fetched_at", Value::U64(fetched_at));
            }
            Event::Issue { ctx, seq } | Event::Writeback { ctx, seq } => {
                push("ctx", Value::U64(ctx as u64));
                push("seq", Value::U64(seq));
            }
            Event::Commit { ctx, seq, pc, spec } => {
                push("ctx", Value::U64(ctx as u64));
                push("seq", Value::U64(seq));
                push("pc", Value::U64(pc));
                push("spec", Value::Bool(spec));
            }
            Event::Squash {
                ctx,
                seq,
                pc,
                cause,
            } => {
                push("ctx", Value::U64(ctx as u64));
                push("seq", Value::U64(seq));
                push("pc", Value::U64(pc));
                push("cause", Value::Str(cause.name().into()));
            }
            Event::Redispatch { ctx, seq, cause } => {
                push("ctx", Value::U64(ctx as u64));
                push("seq", Value::U64(seq));
                push("cause", Value::Str(cause.name().into()));
            }
            Event::Predict {
                ctx,
                pc,
                kind,
                value,
            } => {
                push("ctx", Value::U64(ctx as u64));
                push("pc", Value::U64(pc));
                push("kind", Value::Str(kind.name().into()));
                push("value", opt_u64(value));
            }
            Event::Spawn {
                parent,
                child,
                pc,
                seq,
                value,
            } => {
                push("parent", Value::U64(parent as u64));
                push("child", Value::U64(child as u64));
                push("pc", Value::U64(pc));
                push("seq", Value::U64(seq));
                push("value", opt_u64(value));
            }
            Event::SpecStoreCommit { ctx, seq, addr } => {
                push("ctx", Value::U64(ctx as u64));
                push("seq", Value::U64(seq));
                push("addr", Value::U64(addr));
            }
            Event::Reconcile {
                parent,
                child,
                seq,
                correct,
                run_len,
            } => {
                push("parent", Value::U64(parent as u64));
                push("child", Value::U64(child as u64));
                push("seq", Value::U64(seq));
                push("correct", Value::Bool(correct));
                push("run_len", Value::U64(run_len));
            }
            Event::Promote {
                parent,
                child,
                run_len,
            } => {
                push("parent", Value::U64(parent as u64));
                push("child", Value::U64(child as u64));
                push("run_len", Value::U64(run_len));
            }
            Event::Kill {
                ctx,
                cause,
                run_len,
            } => {
                push("ctx", Value::U64(ctx as u64));
                push("cause", Value::Str(cause.name().into()));
                push("run_len", Value::U64(run_len));
            }
            Event::MemAccess {
                ctx,
                pc,
                level,
                latency,
            } => {
                push("ctx", Value::U64(ctx as u64));
                push("pc", Value::U64(pc));
                push("level", Value::Str(level.into()));
                push("latency", Value::U64(latency));
            }
            Event::MemFill { line } => {
                push("line", Value::U64(line));
            }
            Event::BranchResolve {
                ctx,
                seq,
                pc,
                mispredict,
            } => {
                push("ctx", Value::U64(ctx as u64));
                push("seq", Value::U64(seq));
                push("pc", Value::U64(pc));
                push("mispredict", Value::Bool(mispredict));
            }
            Event::Occupancy { rob, iq, fq, mq } => {
                push("rob", Value::U64(rob));
                push("iq", Value::U64(iq));
                push("fq", Value::U64(fq));
                push("mq", Value::U64(mq));
            }
        }
        Value::Map(m)
    }
}
