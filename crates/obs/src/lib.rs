//! Zero-cost cycle-level observability for the MTVP simulator.
//!
//! The crate provides three things:
//!
//! 1. **[`Tracer`]** — a statically dispatched sink for per-cycle
//!    [`Event`]s. The default [`NullTracer`] has `ENABLED == false` and an
//!    empty, `#[inline(always)]` `record`, so every emit site in the
//!    pipeline compiles down to nothing: the machine with tracing disabled
//!    is bit-identical (statistics and throughput) to one built before this
//!    crate existed. [`RingTracer`] keeps the most recent events in a
//!    bounded ring and aggregates counters/histograms as events stream by.
//! 2. **[`Registry`]** — named counters and log2-bucketed [`Histogram`]s
//!    (queue occupancy, load-miss latency, spawn run-length) with JSON
//!    serialization, replacing ad-hoc growth of `PipeStats`.
//! 3. **Exporters** — [`chrome_trace`] renders the event stream as Chrome
//!    trace-event JSON (open in `about:tracing` / Perfetto; one track per
//!    hardware context so speculative threads get their own rows), and
//!    [`pipeview`] renders a textual cycles × uops diagram in the spirit
//!    of gem5's O3 pipeview.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod event;
mod pipeview;
mod registry;
mod tracer;

pub use chrome::chrome_trace;
pub use event::{Event, KillCause, ReissueCause, SquashCause, VpKind};
pub use pipeview::pipeview;
pub use registry::{Histogram, Registry};
pub use tracer::{NullTracer, RingTracer, Tracer};
