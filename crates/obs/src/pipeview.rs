//! Textual pipeline viewer: a cycles × uops diagram in the spirit of
//! gem5's O3 pipeview.
//!
//! Each retained uop becomes one row whose columns are cycles. Stage
//! letters mark transitions, fillers show what the uop was doing between
//! them:
//!
//! ```text
//! f..r--i=w--C   fetch, wait, rename, wait in window, issue, execute,
//!                writeback, wait for retirement, commit
//! ```
//!
//! - `f` fetched, `r` renamed, `i` issued, `w` wrote back
//! - `C` architectural commit, `c` speculative commit (store buffer),
//!   `x` squashed, `>` still in flight when the stream ended
//! - `.` waiting in the fetch buffer or window, `=` executing, `-` in
//!   transit between adjacent stage letters

use crate::event::Event;
use std::fmt::Write as _;

/// Per-uop milestones collected from the stream.
struct Row {
    ctx: usize,
    seq: u64,
    pc: u64,
    op: &'static str,
    fetched_at: u64,
    rename_at: u64,
    issue_at: Option<u64>,
    writeback_at: Option<u64>,
    end_at: Option<u64>,
    end_ch: char,
}

impl Row {
    fn glyph_at(&self, cycle: u64) -> char {
        if cycle == self.fetched_at && cycle < self.rename_at {
            return 'f';
        }
        if cycle == self.rename_at {
            return 'r';
        }
        if let Some(end) = self.end_at {
            if cycle == end {
                return self.end_ch;
            }
            if cycle > end {
                return ' ';
            }
        }
        if let Some(wb) = self.writeback_at {
            if cycle == wb {
                return 'w';
            }
            if cycle > wb {
                return '.';
            }
        }
        if let Some(iss) = self.issue_at {
            if cycle == iss {
                return 'i';
            }
            if cycle > iss {
                return '=';
            }
        }
        if cycle > self.rename_at {
            return '.';
        }
        if cycle > self.fetched_at {
            return '-';
        }
        ' '
    }
}

/// Render an event stream (as produced by
/// [`RingTracer::events`](crate::RingTracer::events)) as a textual
/// cycles × uops diagram. At most `max_rows` uops are shown (oldest
/// first); wider runs are clipped to the cycle span the surviving rows
/// cover.
pub fn pipeview<'a, I>(events: I, max_rows: usize) -> String
where
    I: IntoIterator<Item = &'a (u64, Event)>,
{
    let mut rows: Vec<Row> = Vec::new();
    let find = |rows: &mut Vec<Row>, ctx: usize, seq: u64| -> Option<usize> {
        rows.iter()
            .position(|r| r.ctx == ctx && r.seq == seq && r.end_at.is_none())
    };
    for &(cycle, ev) in events {
        match ev {
            Event::Rename {
                ctx,
                seq,
                pc,
                op,
                fetched_at,
            } => rows.push(Row {
                ctx,
                seq,
                pc,
                op,
                fetched_at,
                rename_at: cycle,
                issue_at: None,
                writeback_at: None,
                end_at: None,
                end_ch: '>',
            }),
            Event::Issue { ctx, seq } => {
                if let Some(i) = find(&mut rows, ctx, seq) {
                    rows[i].issue_at = Some(cycle);
                }
            }
            Event::Writeback { ctx, seq } => {
                if let Some(i) = find(&mut rows, ctx, seq) {
                    rows[i].writeback_at = Some(cycle);
                }
            }
            Event::Commit { ctx, seq, spec, .. } => {
                if let Some(i) = find(&mut rows, ctx, seq) {
                    rows[i].end_at = Some(cycle);
                    rows[i].end_ch = if spec { 'c' } else { 'C' };
                }
            }
            Event::Squash { ctx, seq, .. } => {
                if let Some(i) = find(&mut rows, ctx, seq) {
                    rows[i].end_at = Some(cycle);
                    rows[i].end_ch = 'x';
                }
            }
            _ => {}
        }
    }
    if rows.len() > max_rows {
        rows.drain(..rows.len() - max_rows);
    }
    if rows.is_empty() {
        return String::from("(no uop lifecycle events in window)\n");
    }

    let first = rows.iter().map(|r| r.fetched_at).min().unwrap_or(0);
    let last = rows
        .iter()
        .map(|r| {
            r.end_at
                .or(r.writeback_at)
                .or(r.issue_at)
                .unwrap_or(r.rename_at)
        })
        .max()
        .unwrap_or(first);
    let span = last - first + 1;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "pipeview: {} uops, cycles {first}..{last} \
         (f fetch, r rename, i issue, w writeback, C commit, c spec-commit, x squash)",
        rows.len()
    );
    // Cycle ruler: a tick every 10 columns labelled with the cycle offset.
    let mut ruler = String::new();
    let mut col = 0;
    while col < span {
        let label = format!("{}", first + col);
        if col % 10 == 0 && ruler.len() <= col as usize {
            ruler.push('|');
            ruler.push_str(&label);
        } else {
            ruler.push(' ');
        }
        col += 1;
    }
    ruler.truncate(span as usize);
    let _ = writeln!(out, "{:>32} {ruler}", "cycle");

    for r in &rows {
        let mut line = String::with_capacity(span as usize);
        for cycle in first..=last {
            line.push(r.glyph_at(cycle));
        }
        let label = format!("c{}#{} {:#06x} {}", r.ctx, r.seq, r.pc, r.op);
        let _ = writeln!(out, "{label:>32} {line}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SquashCause;

    fn lifecycle(ctx: usize, seq: u64) -> Vec<(u64, Event)> {
        vec![
            (
                2,
                Event::Rename {
                    ctx,
                    seq,
                    pc: 0x40 + seq * 4,
                    op: "add",
                    fetched_at: 0,
                },
            ),
            (4, Event::Issue { ctx, seq }),
            (6, Event::Writeback { ctx, seq }),
            (
                8,
                Event::Commit {
                    ctx,
                    seq,
                    pc: 0x40 + seq * 4,
                    spec: false,
                },
            ),
        ]
    }

    #[test]
    fn renders_full_lifecycle_glyphs() {
        let events = lifecycle(0, 1);
        let text = pipeview(&events, 100);
        let row = text.lines().last().unwrap();
        // cycles 0..8 -> f-r.i=w.C
        assert!(row.ends_with("f-r.i=w.C"), "row was: {row:?}");
        assert!(row.contains("c0#1"));
        assert!(row.contains("add"));
    }

    #[test]
    fn squash_and_in_flight_markers() {
        let mut events = vec![(
            1u64,
            Event::Rename {
                ctx: 0,
                seq: 1,
                pc: 0x40,
                op: "ld",
                fetched_at: 0,
            },
        )];
        events.push((
            3,
            Event::Squash {
                ctx: 0,
                seq: 1,
                pc: 0x40,
                cause: SquashCause::BranchMispredict,
            },
        ));
        events.push((
            3,
            Event::Rename {
                ctx: 1,
                seq: 1,
                pc: 0x44,
                op: "add",
                fetched_at: 2,
            },
        ));
        let text = pipeview(&events, 100);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[2].ends_with("fr.x"), "squashed row: {:?}", lines[2]);
        // The second uop never ended: open marker absent, row just runs on.
        assert!(lines[3].contains('r'), "open row: {:?}", lines[3]);
    }

    #[test]
    fn clips_to_max_rows_keeping_newest() {
        let mut events = Vec::new();
        for seq in 0..10u64 {
            events.extend(lifecycle(0, seq));
        }
        let text = pipeview(&events, 3);
        assert!(text.contains("3 uops"));
        assert!(text.contains("c0#9"));
        assert!(!text.contains("c0#0 "));
    }

    #[test]
    fn empty_stream_has_placeholder() {
        let text = pipeview(&[], 10);
        assert!(text.contains("no uop lifecycle events"));
    }
}
