//! Named counters and log2-bucketed histograms.
//!
//! The registry is the structured replacement for growing `PipeStats` by
//! hand: observers bump counters and observe histogram samples by name,
//! and the whole collection serializes to JSON for offline analysis.

use serde::{Deserialize, Serialize};

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `k` holds
/// values whose highest set bit is `k - 1`, so 65 buckets cover all of
/// `u64`.
const BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    /// Number of samples observed.
    pub count: u64,
    /// Sum of all samples (saturating at `u64::MAX`).
    pub sum: u64,
    /// Smallest sample observed (0 when empty).
    pub min: u64,
    /// Largest sample observed (0 when empty).
    pub max: u64,
    /// Per-bucket sample counts; see [`Histogram::bucket_of`].
    pub buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for a sample: 0 for 0, else `64 - leading_zeros(v)`
    /// (i.e. one plus the position of the highest set bit).
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Record one sample.
    pub fn observe(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.buckets[Self::bucket_of(v)] += 1;
    }

    /// Arithmetic mean of the samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A collection of named counters and histograms.
///
/// Names are stored in insertion order in plain `Vec`s: the registries in
/// this simulator hold a few dozen entries, so linear lookup beats a map
/// and serialization stays deterministic.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Registry {
    /// Named monotonic counters.
    pub counters: Vec<(String, u64)>,
    /// Named histograms.
    pub histograms: Vec<(String, Histogram)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `by` to the counter `name`, creating it at zero if absent.
    pub fn add(&mut self, name: &str, by: u64) {
        match self.counters.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v += by,
            None => self.counters.push((name.to_string(), by)),
        }
    }

    /// Increment the counter `name` by one.
    pub fn bump(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Set the counter `name` to an absolute value, creating it if
    /// absent. Useful for exporting already-aggregated totals (e.g. lint
    /// summaries) where `add` semantics would double-count.
    pub fn set(&mut self, name: &str, v: u64) {
        match self.counters.iter_mut().find(|(n, _)| n == name) {
            Some((_, c)) => *c = v,
            None => self.counters.push((name.to_string(), v)),
        }
    }

    /// Current value of the counter `name` (0 if never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Record a sample in the histogram `name`, creating it if absent.
    pub fn observe(&mut self, name: &str, v: u64) {
        match self.histograms.iter_mut().find(|(n, _)| n == name) {
            Some((_, h)) => h.observe(v),
            None => {
                let mut h = Histogram::new();
                h.observe(v);
                self.histograms.push((name.to_string(), h));
            }
        }
    }

    /// The histogram `name`, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Serialize to a JSON string.
    pub fn to_json(&self) -> String {
        self.to_value().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn histogram_tracks_extremes_and_mean() {
        let mut h = Histogram::new();
        h.observe(10);
        h.observe(0);
        h.observe(1000);
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        assert_eq!(h.sum, 1010);
        assert!((h.mean() - 1010.0 / 3.0).abs() < 1e-12);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[4], 1); // 10 -> bucket 4
        assert_eq!(h.buckets[10], 1); // 1000 -> bucket 10
    }

    #[test]
    fn registry_counters_and_histograms() {
        let mut r = Registry::new();
        r.bump("events.fetch");
        r.add("events.fetch", 2);
        r.observe("queue.rob", 17);
        r.observe("queue.rob", 3);
        assert_eq!(r.counter("events.fetch"), 3);
        assert_eq!(r.counter("missing"), 0);
        r.set("events.fetch", 11);
        r.set("gauge.new", 5);
        assert_eq!(r.counter("events.fetch"), 11);
        assert_eq!(r.counter("gauge.new"), 5);
        let h = r.histogram("queue.rob").expect("histogram exists");
        assert_eq!(h.count, 2);
        assert!(r.histogram("missing").is_none());
    }

    #[test]
    fn registry_round_trips_through_json() {
        let mut r = Registry::new();
        r.add("a", 7);
        r.bump("b");
        r.observe("lat", 0);
        r.observe("lat", 999);
        r.observe("lat", u64::MAX);
        let v = r.to_value();
        let back = Registry::from_value(&v).expect("round trip");
        assert_eq!(back, r);
        // And the JSON text itself parses back to the same value tree.
        let text = r.to_json();
        let reparsed = serde_json::from_str(&text).expect("json parses");
        assert_eq!(Registry::from_value(&reparsed).expect("decodes"), r);
    }
}
