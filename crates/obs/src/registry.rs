//! Named counters and log2-bucketed histograms.
//!
//! The registry is the structured replacement for growing `PipeStats` by
//! hand: observers bump counters and observe histogram samples by name,
//! and the whole collection serializes to JSON for offline analysis.

use serde::{Deserialize, Serialize};

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `k` holds
/// values whose highest set bit is `k - 1`, so 65 buckets cover all of
/// `u64`.
const BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    /// Number of samples observed.
    pub count: u64,
    /// Sum of all samples (saturating at `u64::MAX`).
    pub sum: u64,
    /// Smallest sample observed (0 when empty).
    pub min: u64,
    /// Largest sample observed (0 when empty).
    pub max: u64,
    /// Per-bucket sample counts; see [`Histogram::bucket_of`].
    pub buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for a sample: 0 for 0, else `64 - leading_zeros(v)`
    /// (i.e. one plus the position of the highest set bit).
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Record one sample.
    pub fn observe(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.buckets[Self::bucket_of(v)] += 1;
    }

    /// Arithmetic mean of the samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Inclusive `[lo, hi]` value range of bucket `i`: bucket 0 holds
    /// exactly 0, bucket `k >= 1` holds `[2^(k-1), 2^k - 1]` (bucket 64
    /// tops out at `u64::MAX`).
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        assert!(i < BUCKETS, "bucket index {i} out of range");
        if i == 0 {
            (0, 0)
        } else if i == BUCKETS - 1 {
            (1u64 << (i - 1), u64::MAX)
        } else {
            (1u64 << (i - 1), (1u64 << i) - 1)
        }
    }

    /// Fold another histogram into this one, as if every sample of
    /// `other` had been observed here (bucket counts, sum, count, and
    /// extremes all combine; sums saturate like [`Histogram::observe`]).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Upper-bound estimate of the `p`-th percentile (`p` in `[0, 100]`).
    ///
    /// Walks the buckets to the one containing the rank-`ceil(p/100 * n)`
    /// sample and returns that bucket's upper bound, clamped to the
    /// observed `[min, max]`. Because buckets are log2-spaced the estimate
    /// can overshoot the true sample by at most 2x — a known, bounded
    /// error that makes `/metrics` p50/p99 trustworthy as ceilings.
    /// Returns 0 when the histogram is empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        // Rank of the percentile sample, 1-based (p = 0 maps to rank 1).
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                let (lo, hi) = Self::bucket_bounds(i);
                return hi.min(self.max).max(lo.max(self.min));
            }
        }
        self.max
    }
}

/// A collection of named counters and histograms.
///
/// Names are stored in insertion order in plain `Vec`s: the registries in
/// this simulator hold a few dozen entries, so linear lookup beats a map
/// and serialization stays deterministic.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Registry {
    /// Named monotonic counters.
    pub counters: Vec<(String, u64)>,
    /// Named histograms.
    pub histograms: Vec<(String, Histogram)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `by` to the counter `name`, creating it at zero if absent.
    pub fn add(&mut self, name: &str, by: u64) {
        match self.counters.iter_mut().find(|(n, _)| n == name) {
            Some((_, v)) => *v += by,
            None => self.counters.push((name.to_string(), by)),
        }
    }

    /// Increment the counter `name` by one.
    pub fn bump(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Set the counter `name` to an absolute value, creating it if
    /// absent. Useful for exporting already-aggregated totals (e.g. lint
    /// summaries) where `add` semantics would double-count.
    pub fn set(&mut self, name: &str, v: u64) {
        match self.counters.iter_mut().find(|(n, _)| n == name) {
            Some((_, c)) => *c = v,
            None => self.counters.push((name.to_string(), v)),
        }
    }

    /// Current value of the counter `name` (0 if never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Record a sample in the histogram `name`, creating it if absent.
    pub fn observe(&mut self, name: &str, v: u64) {
        match self.histograms.iter_mut().find(|(n, _)| n == name) {
            Some((_, h)) => h.observe(v),
            None => {
                let mut h = Histogram::new();
                h.observe(v);
                self.histograms.push((name.to_string(), h));
            }
        }
    }

    /// The histogram `name`, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Fold another registry into this one: counters add, histograms
    /// merge sample-for-sample, and names absent here are created (in
    /// `other`'s order, after the existing entries). The cluster
    /// coordinator uses this to aggregate per-worker fabric counters
    /// into one report.
    pub fn merge(&mut self, other: &Registry) {
        for (name, v) in &other.counters {
            self.add(name, *v);
        }
        for (name, h) in &other.histograms {
            match self.histograms.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => mine.merge(h),
                None => self.histograms.push((name.clone(), h.clone())),
            }
        }
    }

    /// Serialize to a JSON string.
    pub fn to_json(&self) -> String {
        self.to_value().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_are_pinned() {
        // The buckets are log2 of the raw value: bucket 0 is {0}, bucket
        // k >= 1 covers [2^(k-1), 2^k - 1]. Pin the boundaries so the
        // `/metrics` percentile arithmetic can never silently drift.
        assert_eq!(Histogram::bucket_bounds(0), (0, 0));
        assert_eq!(Histogram::bucket_bounds(1), (1, 1));
        assert_eq!(Histogram::bucket_bounds(2), (2, 3));
        assert_eq!(Histogram::bucket_bounds(3), (4, 7));
        assert_eq!(Histogram::bucket_bounds(10), (512, 1023));
        assert_eq!(Histogram::bucket_bounds(11), (1024, 2047));
        assert_eq!(Histogram::bucket_bounds(63), (1 << 62, (1 << 63) - 1));
        assert_eq!(Histogram::bucket_bounds(64), (1 << 63, u64::MAX));
        // Every bucket boundary agrees with bucket_of on both edges.
        for i in 0..65 {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert_eq!(Histogram::bucket_of(lo), i, "lo edge of bucket {i}");
            assert_eq!(Histogram::bucket_of(hi), i, "hi edge of bucket {i}");
        }
    }

    #[test]
    fn percentile_is_a_clamped_bucket_upper_bound() {
        let mut h = Histogram::new();
        assert_eq!(h.percentile(50.0), 0, "empty histogram");
        for v in [1u64, 2, 3, 4] {
            h.observe(v);
        }
        // Ranks: p25 -> rank 1 (bucket 1, hi 1), p50 -> rank 2 (bucket 2,
        // hi 3), p75 -> rank 3 (bucket 2, hi 3), p100 -> rank 4 (bucket 3,
        // hi 7 clamped to max 4).
        assert_eq!(h.percentile(25.0), 1);
        assert_eq!(h.percentile(50.0), 3);
        assert_eq!(h.percentile(75.0), 3);
        assert_eq!(h.percentile(100.0), 4);
        // p0 is the smallest-rank bucket's bound, and out-of-range
        // arguments clamp instead of panicking.
        assert_eq!(h.percentile(0.0), 1);
        assert_eq!(h.percentile(-3.0), 1);
        assert_eq!(h.percentile(250.0), 4);

        // A skewed distribution: 99 fast samples and one slow outlier.
        let mut lat = Histogram::new();
        for _ in 0..99 {
            lat.observe(100);
        }
        lat.observe(1_000_000);
        assert_eq!(lat.percentile(50.0), 127, "p50 stays in the fast bucket");
        assert_eq!(lat.percentile(99.0), 127, "p99 rank 99 is still fast");
        assert_eq!(lat.percentile(100.0), 1_000_000, "p100 clamps to max");
        // The estimate never undershoots the true percentile sample and
        // never exceeds 2x (log2 buckets).
        assert!(lat.percentile(50.0) >= 100 && lat.percentile(50.0) < 200);
    }

    #[test]
    fn histogram_tracks_extremes_and_mean() {
        let mut h = Histogram::new();
        h.observe(10);
        h.observe(0);
        h.observe(1000);
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        assert_eq!(h.sum, 1010);
        assert!((h.mean() - 1010.0 / 3.0).abs() < 1e-12);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[4], 1); // 10 -> bucket 4
        assert_eq!(h.buckets[10], 1); // 1000 -> bucket 10
    }

    #[test]
    fn registry_counters_and_histograms() {
        let mut r = Registry::new();
        r.bump("events.fetch");
        r.add("events.fetch", 2);
        r.observe("queue.rob", 17);
        r.observe("queue.rob", 3);
        assert_eq!(r.counter("events.fetch"), 3);
        assert_eq!(r.counter("missing"), 0);
        r.set("events.fetch", 11);
        r.set("gauge.new", 5);
        assert_eq!(r.counter("events.fetch"), 11);
        assert_eq!(r.counter("gauge.new"), 5);
        let h = r.histogram("queue.rob").expect("histogram exists");
        assert_eq!(h.count, 2);
        assert!(r.histogram("missing").is_none());
    }

    #[test]
    fn merge_is_observation_order_independent() {
        // Merging two registries equals observing everything in one.
        let mut a = Registry::new();
        let mut b = Registry::new();
        let mut whole = Registry::new();
        for (i, v) in [3u64, 0, 17, 1024, 999, 5].iter().enumerate() {
            let r = if i % 2 == 0 { &mut a } else { &mut b };
            r.observe("lat", *v);
            whole.observe("lat", *v);
            r.add("n", *v);
            whole.add("n", *v);
        }
        b.bump("only.b");
        whole.bump("only.b");
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.counter("n"), whole.counter("n"));
        assert_eq!(merged.counter("only.b"), 1);
        assert_eq!(merged.histogram("lat"), whole.histogram("lat"));
        // Merging an empty registry is the identity.
        let before = merged.clone();
        merged.merge(&Registry::new());
        assert_eq!(merged, before);
    }

    #[test]
    fn registry_round_trips_through_json() {
        let mut r = Registry::new();
        r.add("a", 7);
        r.bump("b");
        r.observe("lat", 0);
        r.observe("lat", 999);
        r.observe("lat", u64::MAX);
        let v = r.to_value();
        let back = Registry::from_value(&v).expect("round trip");
        assert_eq!(back, r);
        // And the JSON text itself parses back to the same value tree.
        let text = r.to_json();
        let reparsed = serde_json::from_str(&text).expect("json parses");
        assert_eq!(Registry::from_value(&reparsed).expect("decodes"), r);
    }
}
