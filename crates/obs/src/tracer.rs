//! The `Tracer` trait and its two implementations.

use crate::event::Event;
use crate::registry::Registry;
use std::collections::VecDeque;

/// A statically dispatched sink for pipeline events.
///
/// The machine is generic over its tracer, and every emit site is guarded
/// by `if T::ENABLED`. Because `ENABLED` is an associated constant, the
/// guard is resolved at monomorphization time: with [`NullTracer`] the
/// event construction and the call disappear entirely, which is what keeps
/// the untraced simulator bit-identical in statistics *and* throughput.
pub trait Tracer {
    /// Whether emit sites should construct and record events at all.
    const ENABLED: bool;

    /// Record one event at the given cycle.
    fn record(&mut self, cycle: u64, ev: Event);
}

/// The zero-cost default tracer: records nothing.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct NullTracer;

impl Tracer for NullTracer {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _cycle: u64, _ev: Event) {}
}

/// A bounded-memory tracer: keeps the most recent events in a ring,
/// aggregating counters and histograms for everything that streams by.
///
/// When the ring is full the oldest event is dropped (and counted in
/// [`RingTracer::dropped`]); relative order of the retained events is
/// never disturbed. High-rate sample events ([`Event::Occupancy`]) are
/// folded into histograms instead of occupying ring slots.
#[derive(Clone, Debug)]
pub struct RingTracer {
    cap: usize,
    ring: VecDeque<(u64, Event)>,
    dropped: u64,
    window: Option<(u64, u64)>,
    registry: Registry,
}

impl RingTracer {
    /// A tracer retaining at most `cap` events (minimum 1).
    pub fn new(cap: usize) -> Self {
        RingTracer {
            cap: cap.max(1),
            ring: VecDeque::new(),
            dropped: 0,
            window: None,
            registry: Registry::new(),
        }
    }

    /// Restrict ring retention to cycles in `[start, end)`. Counters and
    /// histograms still aggregate over the whole run.
    pub fn with_window(mut self, start: u64, end: u64) -> Self {
        self.window = Some((start, end));
        self
    }

    /// The retained `(cycle, event)` pairs, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &(u64, Event)> {
        self.ring.iter()
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True if no events are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Number of events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The aggregated counters and histograms.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }
}

impl Tracer for RingTracer {
    const ENABLED: bool = true;

    fn record(&mut self, cycle: u64, ev: Event) {
        let mut name = String::with_capacity(7 + ev.kind_name().len());
        name.push_str("events.");
        name.push_str(ev.kind_name());
        self.registry.bump(&name);
        match ev {
            // High-rate samples aggregate into histograms; they would
            // otherwise flush the ring in a handful of cycles.
            Event::Occupancy { rob, iq, fq, mq } => {
                self.registry.observe("queue.rob", rob);
                self.registry.observe("queue.iq", iq);
                self.registry.observe("queue.fq", fq);
                self.registry.observe("queue.mq", mq);
                return;
            }
            Event::MemAccess { level, latency, .. } if level != "L1" => {
                self.registry.observe("load.miss_latency", latency);
            }
            Event::Reconcile {
                correct: true,
                run_len,
                ..
            } => {
                self.registry.observe("spawn.run_length", run_len);
            }
            Event::Kill { run_len, .. } => {
                self.registry.observe("spawn.killed_run_length", run_len);
            }
            _ => {}
        }
        if let Some((start, end)) = self.window {
            if cycle < start || cycle >= end {
                return;
            }
        }
        if self.ring.len() == self.cap {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back((cycle, ev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn issue(seq: u64) -> Event {
        Event::Issue { ctx: 0, seq }
    }

    #[test]
    fn null_tracer_is_disabled() {
        assert_eq!(<NullTracer as Tracer>::ENABLED as u8, 0);
        let mut t = NullTracer;
        t.record(0, issue(1)); // must be a no-op
    }

    #[test]
    fn ring_wraps_dropping_oldest_without_reordering() {
        let mut t = RingTracer::new(4);
        for i in 0..10u64 {
            t.record(i, issue(i));
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 6);
        let seqs: Vec<u64> = t
            .events()
            .map(|(c, ev)| match ev {
                Event::Issue { seq, .. } => {
                    assert_eq!(c, seq); // cycle stamp rides along
                    *seq
                }
                _ => unreachable!(),
            })
            .collect();
        // Oldest events dropped; survivors in original order.
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        // The aggregate counter still saw every event.
        assert_eq!(t.registry().counter("events.issue"), 10);
    }

    #[test]
    fn window_filters_ring_but_not_registry() {
        let mut t = RingTracer::new(100).with_window(3, 6);
        for i in 0..10u64 {
            t.record(i, issue(i));
        }
        assert_eq!(t.len(), 3); // cycles 3, 4, 5
        assert_eq!(t.registry().counter("events.issue"), 10);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn occupancy_goes_to_histograms_not_ring() {
        let mut t = RingTracer::new(4);
        t.record(
            0,
            Event::Occupancy {
                rob: 12,
                iq: 3,
                fq: 0,
                mq: 5,
            },
        );
        assert_eq!(t.len(), 0);
        assert_eq!(t.registry().histogram("queue.rob").unwrap().sum, 12);
        assert_eq!(t.registry().histogram("queue.mq").unwrap().sum, 5);
    }

    #[test]
    fn miss_latency_and_run_length_histograms() {
        let mut t = RingTracer::new(16);
        t.record(
            0,
            Event::MemAccess {
                ctx: 0,
                pc: 0,
                level: "L1",
                latency: 3,
            },
        );
        t.record(
            1,
            Event::MemAccess {
                ctx: 0,
                pc: 0,
                level: "Memory",
                latency: 1000,
            },
        );
        t.record(
            2,
            Event::Reconcile {
                parent: 0,
                child: 1,
                seq: 9,
                correct: true,
                run_len: 42,
            },
        );
        let miss = t.registry().histogram("load.miss_latency").unwrap();
        assert_eq!(miss.count, 1); // the L1 hit is not a miss
        assert_eq!(miss.sum, 1000);
        let run = t.registry().histogram("spawn.run_length").unwrap();
        assert_eq!(run.sum, 42);
    }
}
