//! CMP topology: M cores × T contexts over a shared last-level cache.
//!
//! A [`CmpMachine`] runs one *primary* core — the measured workload —
//! alongside zero or more *co-runner* cores executing independent
//! programs, all attached to one [`SharedL3Handle`] (each under its own
//! ASID, so co-scheduled programs contend for capacity without ever
//! hitting each other's lines). Cores without a co-runner are *idle
//! siblings*: the primary may borrow their contexts as remote spawn
//! slots (`PipelineConfig::remote_contexts`), paying the interconnect on
//! spawn (register-map flash-copy crosses the link) and on reconcile
//! (the remote store buffer drains back before the slot frees).
//!
//! The cycle loop is *lockstep*: every live core steps one cycle per
//! iteration, in core order, from a single thread — so shared-L3
//! interleaving is deterministic by construction. When every core's
//! cycle is fully idle, all cores jump together to the earliest
//! scheduled event on *any* core, preserving each core's idle-cycle
//! accounting exactly as its own single-core fast-forward would.
//!
//! A `CmpMachine` with no co-runners and no shared L3 (a `cores = 1`
//! topology) delegates to the primary's own [`StagedCore::run`] loop
//! verbatim, so its statistics and trace events are bit-identical to a
//! plain [`crate::Machine`] — the differential tests lock this down.

use crate::framework::{SmtOooStages, StageSet};
use crate::machine::{StagedCore, WATCHDOG_CYCLES};
use crate::stats::PipeStats;
use mtvp_mem::SharedL3Handle;
use mtvp_obs::{NullTracer, Tracer};

/// One co-runner core: an independent program occupying a sibling core
/// of the CMP, built from its own pipeline configuration (no remote
/// slots — only the primary borrows contexts).
pub struct CoRunner<'p, S: StageSet = SmtOooStages> {
    core: StagedCore<'p, NullTracer, S>,
}

impl<'p, S: StageSet> CoRunner<'p, S> {
    /// Wrap an already-built core as a co-runner. The core should share
    /// the primary's stage set and must not borrow remote contexts.
    pub fn new(core: StagedCore<'p, NullTracer, S>) -> Self {
        CoRunner { core }
    }
}

/// An M-core chip multiprocessor stepping its cores in lockstep.
///
/// Generic over the primary core's tracer `T` (co-runners are never
/// traced) and the stage set `S` every core is composed with.
pub struct CmpMachine<'p, T: Tracer = NullTracer, S: StageSet = SmtOooStages> {
    /// Total cores in the topology, including idle siblings that only
    /// donate remote context slots (`>= 1 + co.len()`).
    cores: usize,
    primary: StagedCore<'p, T, S>,
    co: Vec<StagedCore<'p, NullTracer, S>>,
    shared: Option<SharedL3Handle>,
}

impl<'p, T: Tracer, S: StageSet> CmpMachine<'p, T, S> {
    /// Assemble a CMP from an already-built primary core, its co-runner
    /// cores, and (for topologies with more than one core) the shared
    /// L3 every core attaches to.
    ///
    /// Attachment order fixes ASIDs: the primary is ASID 0, co-runner
    /// `i` is ASID `i + 1`. Each attach re-warms that core's data image
    /// into the shared array when the core is configured to warm-start
    /// (see [`StagedCore::attach_shared_l3`]).
    ///
    /// # Panics
    /// Panics if `cores` cannot seat the primary and every co-runner.
    pub fn assemble(
        cores: usize,
        mut primary: StagedCore<'p, T, S>,
        co_runners: Vec<CoRunner<'p, S>>,
        shared: Option<SharedL3Handle>,
    ) -> Self {
        assert!(
            cores > co_runners.len(),
            "{cores} cores cannot seat a primary and {} co-runners",
            co_runners.len()
        );
        let mut co: Vec<StagedCore<'p, NullTracer, S>> =
            co_runners.into_iter().map(|r| r.core).collect();
        if let Some(h) = &shared {
            primary.attach_shared_l3(h.clone(), 0);
            for (i, m) in co.iter_mut().enumerate() {
                m.attach_shared_l3(h.clone(), (i + 1) as u16);
            }
        }
        CmpMachine {
            cores,
            primary,
            co,
            shared,
        }
    }

    /// Run the topology until the primary finishes (halt, instruction
    /// limit, or cycle limit) and return the primary's statistics with
    /// the [`crate::CmpSummary`] filled in.
    ///
    /// Co-runners that finish first sit idle; co-runners still running
    /// when the primary finishes are abandoned where they are (their
    /// committed path up to that point was trace-validated as usual).
    ///
    /// # Panics
    /// Panics if the primary wedges (no commit for two million cycles)
    /// or any core fails commit-time trace validation.
    pub fn run(&mut self) -> PipeStats {
        if self.co.is_empty() && self.shared.is_none() {
            // Single-core topology: literally the plain machine.
            return self.primary.run();
        }
        loop {
            if self.primary.done {
                break;
            }
            let mut progress = self.primary.cmp_step();
            for m in &mut self.co {
                if !m.done {
                    progress |= m.cmp_step();
                }
            }
            if !progress && self.primary.cfg.fast_forward {
                self.fast_forward_all();
            }
            if self.primary.cycles_since_commit() > WATCHDOG_CYCLES {
                panic!(
                    "primary core wedged at cycle {} (committed={})",
                    self.primary.now, self.primary.stats.committed
                );
            }
            if self.primary.now >= self.primary.cfg.max_cycles {
                break;
            }
            let limit = self.primary.cfg.inst_limit;
            if limit > 0 && self.primary.stats.committed >= limit {
                break;
            }
        }
        self.finish()
    }

    /// All cores were fully idle this cycle: jump every live core to the
    /// earliest scheduled event on *any* live core (or straight into the
    /// primary's watchdog/cycle cap when nothing is scheduled anywhere).
    fn fast_forward_all(&mut self) {
        let cap = self
            .primary
            .cfg
            .max_cycles
            .min(self.primary.now.saturating_add(WATCHDOG_CYCLES + 1));
        let mut target = cap;
        let mut note = |w: Option<u64>| {
            if let Some(t) = w {
                target = target.min(t);
            }
        };
        note(self.primary.next_wakeup_cycle());
        for m in &self.co {
            if !m.done {
                note(m.next_wakeup_cycle());
            }
        }
        self.primary.cmp_fast_forward_to(target);
        for m in &mut self.co {
            if !m.done {
                m.cmp_fast_forward_to(target);
            }
        }
    }

    /// Finalize every core's counters and fold the topology summary into
    /// the primary's statistics.
    fn finish(&mut self) -> PipeStats {
        let mut stats = self.primary.stats_now();
        stats.cmp.cores = self.cores;
        for m in &mut self.co {
            let s = m.stats_now();
            stats.cmp.co_committed += s.committed;
            stats.cmp.co_cycles += s.cycles;
        }
        if let Some(h) = &self.shared {
            let cs = h.stats();
            stats.cmp.shared_l3_hits = cs.hits;
            stats.cmp.shared_l3_misses = cs.misses;
        }
        stats
    }

    /// Per-co-runner statistics snapshots (tests and reporting).
    pub fn co_stats(&mut self) -> Vec<PipeStats> {
        self.co.iter_mut().map(|m| m.stats_now()).collect()
    }

    /// Consume the machine, yielding the primary's tracer.
    pub fn into_tracer(self) -> T {
        self.primary.into_tracer()
    }

    /// The primary core (tests).
    pub fn primary(&self) -> &StagedCore<'p, T, S> {
        &self.primary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use crate::machine::Machine;
    use mtvp_isa::{Program, ProgramBuilder, Reg};
    use mtvp_mem::{CacheGeometry, MemConfig, SharedL3Spec};

    fn loop_program(iters: i64, stride: i64, words: u64) -> Program {
        let mut b = ProgramBuilder::new();
        let init: Vec<u64> = (0..words).map(|i| i * 3 + 1).collect();
        let arena = b.alloc_u64(&init);
        let (sum, i, n, base, addr, v) = (Reg(1), Reg(2), Reg(3), Reg(4), Reg(5), Reg(6));
        b.li(sum, 0).li(i, 0).li(n, iters).li(base, arena as i64);
        let top = b.here_label();
        let mask = ((words - 1) << 3) as i64 & !7;
        b.mul(addr, i, Reg(3));
        b.addi(addr, addr, stride);
        b.andi(addr, addr, mask);
        b.add(addr, addr, base);
        b.ld(v, addr, 0);
        b.add(sum, sum, v);
        b.addi(i, i, 1);
        b.blt(i, n, top);
        b.halt();
        b.build()
    }

    fn shared_handle() -> SharedL3Handle {
        SharedL3Handle::new(SharedL3Spec {
            geometry: CacheGeometry::new(64 * 1024, 8, 64),
            latency: 20,
            hop: 4,
        })
    }

    #[test]
    fn single_core_topology_is_bit_identical_to_the_plain_machine() {
        let p = loop_program(60, 5, 256);
        let mut cfg = PipelineConfig::tiny();
        cfg.fast_forward = false;
        let mut plain = Machine::with_mem_config(cfg.clone(), MemConfig::tiny(), &p, None);
        let expect = plain.run();
        let primary = Machine::with_mem_config(cfg, MemConfig::tiny(), &p, None);
        let mut cmp = CmpMachine::assemble(1, primary, Vec::new(), None);
        let got = cmp.run();
        assert_eq!(got, expect);
        assert_eq!(got.cmp.cores, 0, "single-core runs carry no CMP summary");
    }

    #[test]
    fn co_runner_contends_for_the_shared_array_and_both_validate() {
        let pa = loop_program(80, 7, 512);
        let pb = loop_program(80, 11, 512);
        let cfg = PipelineConfig::tiny();
        let primary = Machine::with_mem_config(cfg.clone(), MemConfig::tiny(), &pa, None);
        let co = Machine::with_mem_config(cfg, MemConfig::tiny(), &pb, None);
        let mut cmp =
            CmpMachine::assemble(2, primary, vec![CoRunner::new(co)], Some(shared_handle()));
        let stats = cmp.run();
        assert!(stats.halted, "primary must run to halt");
        assert_eq!(stats.cmp.cores, 2);
        let co_stats = cmp.co_stats();
        assert_eq!(co_stats.len(), 1);
        assert!(co_stats[0].committed > 0, "co-runner made progress");
        assert!(
            stats.cmp.shared_l3_hits + stats.cmp.shared_l3_misses > 0,
            "demand traffic reached the shared array"
        );
        assert_eq!(stats.cmp.co_committed, co_stats[0].committed);
    }

    #[test]
    fn lockstep_run_is_deterministic() {
        let build = || {
            let pa = loop_program(50, 3, 256);
            let pb = loop_program(70, 9, 256);
            (pa, pb)
        };
        let run = |pa: &Program, pb: &Program| {
            let cfg = PipelineConfig::tiny();
            let primary = Machine::with_mem_config(cfg.clone(), MemConfig::tiny(), pa, None);
            let co = Machine::with_mem_config(cfg, MemConfig::tiny(), pb, None);
            CmpMachine::assemble(3, primary, vec![CoRunner::new(co)], Some(shared_handle())).run()
        };
        let (pa, pb) = build();
        let a = run(&pa, &pb);
        let b = run(&pa, &pb);
        assert_eq!(a, b);
        assert_eq!(a.cmp.cores, 3);
    }
}
