//! Pipeline and value-prediction configuration.

use mtvp_branch::GskewConfig;
use mtvp_vp::{DfcmConfig, IlpPredConfig, WangFranklinConfig};
use serde::{Deserialize, Serialize};

/// Which load-value predictor drives speculation (§3.1, §5.1, §5.4).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PredictorKind {
    /// No value prediction at all (the baseline and wide-window machines).
    None,
    /// Exact future values from the committed-path trace (§5.1).
    Oracle,
    /// The Wang–Franklin hybrid (§5.4), the realistic default.
    WangFranklin,
    /// Wang–Franklin with liberal confidence, for multiple-value MTVP (§5.6).
    WangFranklinLiberal,
    /// Order-3 differential FCM with Burtscher indexing (§5.4).
    Dfcm,
    /// Classic stride predictor (baseline comparison).
    Stride,
    /// Classic last-value predictor (baseline comparison).
    LastValue,
}

/// Which criticality/load-selection policy gates predictions (§5.1).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectorKind {
    /// Predict every confident load.
    Always,
    /// The paper's forward-progress predictor (ILP-pred).
    IlpPred,
    /// The cache-level oracle: MTVP only for loads whose line is not
    /// resident below L3 (used for multiple-value prediction in §5.6).
    /// When the load's base register is not yet available at rename, the
    /// load is treated as an L3 miss (pointer-chasing loads — precisely
    /// the long-latency ones — typically have unavailable bases).
    L3MissOracle,
}

/// Fetch policy after a thread spawn (§5.5).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FetchPolicy {
    /// Single fetch path: the spawning thread stops fetching until the
    /// prediction resolves, handing already-fetched younger instructions
    /// to the spawned thread. The paper's default (§3.3).
    SingleFetchPath,
    /// The spawning thread keeps fetching under ICOUNT ("no stall", §5.5).
    NoStall,
}

/// Everything that controls value-speculation behaviour.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct VpConfig {
    /// Value predictor choice.
    pub predictor: PredictorKind,
    /// Load selector choice.
    pub selector: SelectorKind,
    /// Permit single-threaded value prediction.
    pub allow_stvp: bool,
    /// Permit multithreaded (spawning) value prediction.
    pub allow_mtvp: bool,
    /// Spawn threads at selected loads *without* predicting a value —
    /// the "spawn only" split-window comparator of §5.7.
    pub spawn_only: bool,
    /// Fetch policy for spawning threads.
    pub fetch_policy: FetchPolicy,
    /// Maximum predicted values followed per load (>1 enables §5.6
    /// multiple-value prediction).
    pub max_values_per_load: usize,
    /// Cycles to flash-copy the register map when spawning (§5.2).
    pub spawn_latency: u64,
    /// Wang–Franklin sizing.
    pub wang_franklin: WangFranklinConfig,
    /// DFCM sizing.
    pub dfcm: DfcmConfig,
    /// ILP-pred sizing.
    pub ilp_pred: IlpPredConfig,
    /// Table size for the simple (stride/last-value) predictors.
    pub simple_entries: usize,
    /// Load pcs the static spawn-hint analysis selected; consumed by the
    /// `StaticHintSpawn` policy as a spawn filter (empty = no hints).
    pub hinted_pcs: Vec<u64>,
}

impl VpConfig {
    /// No value prediction (baseline machine).
    pub fn baseline() -> Self {
        VpConfig {
            predictor: PredictorKind::None,
            selector: SelectorKind::IlpPred,
            allow_stvp: false,
            allow_mtvp: false,
            spawn_only: false,
            fetch_policy: FetchPolicy::SingleFetchPath,
            max_values_per_load: 1,
            spawn_latency: 8,
            wang_franklin: WangFranklinConfig::hpca2005(),
            dfcm: DfcmConfig::hpca2005(),
            ilp_pred: IlpPredConfig::hpca2005(),
            simple_entries: 4096,
            hinted_pcs: Vec::new(),
        }
    }

    /// Single-threaded value prediction with the given predictor.
    pub fn stvp(predictor: PredictorKind) -> Self {
        VpConfig {
            predictor,
            allow_stvp: true,
            ..Self::baseline()
        }
    }

    /// Multithreaded value prediction (single fetch path, STVP fallback
    /// when no context is free — §5.1).
    pub fn mtvp(predictor: PredictorKind) -> Self {
        VpConfig {
            predictor,
            allow_stvp: true,
            allow_mtvp: true,
            ..Self::baseline()
        }
    }

    /// The spawn-only split-window comparator (§5.7).
    pub fn spawn_only() -> Self {
        VpConfig {
            predictor: PredictorKind::None,
            allow_mtvp: true,
            spawn_only: true,
            ..Self::baseline()
        }
    }
}

/// Full machine configuration (Table 1 plus mode switches).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Hardware thread contexts (1, 2, 4 or 8 in the paper).
    pub hw_contexts: usize,
    /// Additional *remote* context slots borrowed from idle sibling cores
    /// in a CMP topology (0 outside CMP runs). Remote slots sit after the
    /// local ones, so the spawn path naturally prefers local contexts;
    /// spawning into one pays `remote_spawn_extra` on top of the normal
    /// spawn latency, and freeing one keeps it unavailable for
    /// `remote_reconcile` cycles (store-buffer reconciliation over the
    /// interconnect).
    pub remote_contexts: usize,
    /// Extra spawn latency (cycles) for a remote slot: the flash-copied
    /// register map crosses the interconnect to the sibling core.
    pub remote_spawn_extra: u64,
    /// Cycles a remote slot stays busy after its thread is killed or
    /// promoted: speculative store-buffer state is reconciled (drained or
    /// discarded) across the interconnect before the slot can be reused.
    pub remote_reconcile: u64,
    /// Total instructions fetched per cycle (16).
    pub fetch_width: usize,
    /// Threads fetched per cycle (2 — "from 2 cachelines").
    pub fetch_threads: usize,
    /// Fetch-to-rename latency in cycles, modelling the deep front end of
    /// the 30-stage pipeline.
    pub front_end_latency: u64,
    /// Rename/dispatch width per cycle.
    pub rename_width: usize,
    /// Commit width per cycle.
    pub commit_width: usize,
    /// Total ROB entries shared by all contexts (256; 8192 for the
    /// idealized wide-window machine of §5.7).
    pub rob_entries: usize,
    /// Integer issue-queue entries (64).
    pub iq_entries: usize,
    /// Floating-point issue-queue entries (64).
    pub fq_entries: usize,
    /// Memory issue-queue entries (64).
    pub mq_entries: usize,
    /// Integer issue width (6).
    pub int_issue: usize,
    /// FP issue width (2).
    pub fp_issue: usize,
    /// Load/store issue width (4).
    pub mem_issue: usize,
    /// Rename registers per class beyond the architectural registers
    /// (224; effectively unlimited for the wide-window machine).
    pub rename_regs: usize,
    /// Per-context speculative store buffer entries (§5.3; 128 default).
    pub store_buffer_entries: usize,
    /// Return-address-stack depth per context.
    pub ras_entries: usize,
    /// BTB entries for indirect jumps.
    pub btb_entries: usize,
    /// Direction predictor sizing (Table 1: 2bcgskew).
    pub gskew: GskewConfig,
    /// Value-speculation configuration.
    pub vp: VpConfig,
    /// Pre-load the program's data image into the cache tags at
    /// construction (the state after a fast-forward phase). Disable to
    /// measure cold-start behaviour.
    pub warm_start: bool,
    /// Hard cycle limit (safety net).
    pub max_cycles: u64,
    /// Stop once this many architectural instructions have committed
    /// (0 = run to `halt`).
    pub inst_limit: u64,
    /// Skip straight to the next scheduled event when an entire cycle
    /// makes no observable progress (long memory stalls). Statistics are
    /// bit-identical with this on or off; it only changes wall-clock
    /// speed. On by default; the differential tests turn it off.
    pub fast_forward: bool,
}

impl PipelineConfig {
    /// Table 1 of the paper, with 1 hardware context and no value
    /// prediction: the baseline machine.
    pub fn hpca2005() -> Self {
        PipelineConfig {
            hw_contexts: 1,
            remote_contexts: 0,
            remote_spawn_extra: 0,
            remote_reconcile: 0,
            fetch_width: 16,
            fetch_threads: 2,
            front_end_latency: 10,
            rename_width: 8,
            commit_width: 8,
            rob_entries: 256,
            iq_entries: 64,
            fq_entries: 64,
            mq_entries: 64,
            int_issue: 6,
            fp_issue: 2,
            mem_issue: 4,
            rename_regs: 224,
            store_buffer_entries: 128,
            ras_entries: 16,
            btb_entries: 4096,
            gskew: GskewConfig::hpca2005(),
            vp: VpConfig::baseline(),
            warm_start: true,
            max_cycles: u64::MAX,
            inst_limit: 0,
            fast_forward: true,
        }
    }

    /// The idealized wide-window checkpoint comparator of §5.7: 8192-entry
    /// ROB and queues, unlimited rename registers, no value prediction.
    pub fn wide_window() -> Self {
        PipelineConfig {
            rob_entries: 8192,
            iq_entries: 8192,
            fq_entries: 8192,
            mq_entries: 8192,
            rename_regs: 16384,
            ..Self::hpca2005()
        }
    }

    /// The in-order scalar baseline core
    /// ([`crate::InOrderMachine`]): one hardware context, scalar
    /// rename/commit, a short front end and a small window. The issue
    /// widths are 1 for coherence, though the in-order issue stage
    /// enforces the stricter rule (only the oldest instruction, one per
    /// cycle). No value prediction — the in-order core has no spawn
    /// policy to use it.
    pub fn in_order_scalar() -> Self {
        PipelineConfig {
            fetch_width: 4,
            fetch_threads: 1,
            front_end_latency: 5,
            rename_width: 1,
            commit_width: 1,
            rob_entries: 32,
            iq_entries: 16,
            fq_entries: 16,
            mq_entries: 16,
            int_issue: 1,
            fp_issue: 1,
            mem_issue: 1,
            rename_regs: 64,
            store_buffer_entries: 32,
            ..Self::hpca2005()
        }
    }

    /// A scaled-down configuration for fast unit tests (small predictor
    /// tables, shallow front end).
    pub fn tiny() -> Self {
        PipelineConfig {
            front_end_latency: 3,
            rob_entries: 64,
            iq_entries: 16,
            fq_entries: 16,
            mq_entries: 16,
            rename_regs: 96,
            store_buffer_entries: 32,
            gskew: GskewConfig::tiny(),
            ..Self::hpca2005()
        }
    }

    /// Total context slots: local hardware contexts plus borrowed remote
    /// slots (indices `>= hw_contexts` are remote).
    pub fn total_contexts(&self) -> usize {
        self.hw_contexts + self.remote_contexts
    }

    /// Number of physical registers per class.
    pub fn phys_regs_per_class(&self) -> usize {
        32 * self.total_contexts() + self.rename_regs
    }
}
