//! Hardware thread contexts and per-context speculative store buffers.

use crate::regfile::PregId;
use crate::uop::{CtxId, UopId};
use mtvp_branch::ReturnAddressStack;
use mtvp_isa::Inst;
use std::collections::VecDeque;

/// One entry of a per-context speculative store buffer (§3.2/§5.3): a
/// committed store of a speculative thread, held back from memory until
/// the thread's value prediction chain is confirmed.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SbEntry {
    /// Byte address of the 64-bit store.
    pub addr: u64,
    /// Stored value.
    pub value: u64,
    /// Global age of the store (visibility: a descendant sees an ancestor
    /// entry only if `seq` is older than the descendant's spawn point).
    pub seq: u64,
    /// PC of the store (for cache-timing drain).
    pub pc: u64,
}

/// An instruction sitting in a context's fetch buffer, traversing the deep
/// front end.
#[derive(Clone, Debug)]
pub struct FetchedInst {
    /// The instruction.
    pub inst: Inst,
    /// Its PC.
    pub pc: u64,
    /// Cycle at which it reaches rename (fetch cycle + front-end latency;
    /// the fetch cycle itself is recovered by subtracting that latency).
    pub ready_at: u64,
    /// Committed-path index the fetcher believes this instruction is at.
    pub trace_idx: u64,
    /// PC the fetcher continued at after this instruction (encodes the
    /// predicted direction for conditional branches).
    pub pred_next: u64,
    /// Global history before this instruction's prediction shifted in.
    pub ghist_prior: u64,
    /// RAS snapshot *after* this instruction's push/pop (for recovery).
    pub ras_after: ReturnAddressStack,
}

/// Lifecycle of a hardware context.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CtxState {
    /// Unused, available for spawning.
    Free,
    /// Running (speculative or architectural).
    Active,
    /// Spawn-confirmed-correct parent: fetch stopped, draining its ROB; the
    /// surviving child is promoted when the ROB empties.
    Dying,
}

/// One hardware thread context.
#[derive(Clone, Debug)]
pub struct Context {
    /// Lifecycle state.
    pub state: CtxState,
    /// Whether this context's work is still speculative (it has a parent).
    pub speculative: bool,
    /// Parent context (the thread that spawned this one).
    pub parent: Option<CtxId>,
    /// Global age of the spawning load: ancestor stores older than this
    /// are visible to this thread.
    pub spawn_seq: u64,
    /// Next PC to fetch.
    pub pc: u64,
    /// Committed-path index of the next instruction to fetch.
    pub trace_cursor: u64,
    /// Fetch is administratively stopped (single-fetch-path parent after a
    /// spawn, or a dying thread).
    pub fetch_stopped: bool,
    /// Fetch is waiting for a control instruction to resolve and redirect
    /// (unknown indirect target, or a fetched `halt`).
    pub wait_redirect: bool,
    /// Thread committed `halt`.
    pub halted: bool,
    /// Thread committed `halt` while speculative (chain ends here if this
    /// thread is eventually promoted).
    pub committed_halt: bool,
    /// A freed *remote* (borrowed cross-core) slot may not be re-spawned
    /// into before this cycle: store-buffer reconciliation and the
    /// interconnect round trip keep the slot busy after a kill/promote.
    /// Always 0 for local slots.
    pub free_at: u64,
    /// Fetch may not resume before this cycle (I-cache miss in progress,
    /// or spawn latency for a fresh child).
    pub fetch_ready_at: u64,
    /// Rename may not start before this cycle (spawn flash-copy latency).
    pub rename_ready_at: u64,
    /// The load uop (id, slab generation) that spawned this context.
    pub spawn_load: Option<(UopId, u32)>,
    /// For a dying parent: the confirmed child awaiting promotion.
    pub pending_child: Option<CtxId>,
    /// Resume state (PC, trace index, history, RAS) saved when entering
    /// the dying state, in case the pending child is killed by a
    /// memory-order violation and this thread must take over again.
    pub resume_pc: u64,
    /// Trace index to resume at.
    pub resume_trace: u64,
    /// Global history to resume with.
    pub resume_ghist: u64,
    /// RAS to resume with.
    pub resume_ras: ReturnAddressStack,
    /// Integer rename map.
    pub int_map: [PregId; 32],
    /// Floating-point rename map.
    pub fp_map: [PregId; 32],
    /// Program-order window of this context's in-flight uops.
    pub rob: VecDeque<UopId>,
    /// In-flight stores only (seq, uop), program order — the LSQ walked by
    /// load forwarding so it never scans the whole window.
    pub lsq: VecDeque<(u64, UopId)>,
    /// Fetched, not yet renamed instructions.
    pub fetch_buffer: VecDeque<FetchedInst>,
    /// Committed-but-speculative stores (drained to memory at promotion).
    pub store_buffer: VecDeque<SbEntry>,
    /// Speculatively committed instructions (counted architectural at
    /// promotion, discarded on a kill).
    pub committed_spec: u64,
    /// Children this context has spawned that are still alive.
    pub live_children: usize,
    /// Return-address stack (fetch-time prediction state).
    pub ras: ReturnAddressStack,
    /// Global branch history register (fetch-time prediction state).
    pub ghist: u64,
    /// Uops occupying issue-queue slots (ICOUNT component).
    pub queued_count: usize,
    /// Loads committed while speculative: (address, age). An ancestor
    /// store that later resolves to one of these addresses (with an older
    /// age) is a cross-thread memory-order violation — the thread is
    /// killed, exactly like a wrong value prediction.
    pub spec_committed_loads: Vec<(u64, u64)>,
    /// Trace-validation mismatches observed during *speculative* commits:
    /// (trace index, pc, got, expected). Harmless while speculative (the
    /// thread may be doomed), fatal if the thread is promoted.
    pub spec_commit_errors: Vec<(u64, u64, u64, u64)>,
}

impl Context {
    /// A free context slot.
    pub fn free(ras_entries: usize) -> Self {
        Context {
            state: CtxState::Free,
            speculative: false,
            parent: None,
            spawn_seq: 0,
            pc: 0,
            trace_cursor: 0,
            fetch_stopped: false,
            wait_redirect: false,
            halted: false,
            committed_halt: false,
            free_at: 0,
            fetch_ready_at: 0,
            rename_ready_at: 0,
            spawn_load: None,
            pending_child: None,
            resume_pc: 0,
            resume_trace: 0,
            resume_ghist: 0,
            resume_ras: ReturnAddressStack::new(ras_entries),
            int_map: [0; 32],
            fp_map: [0; 32],
            rob: VecDeque::new(),
            lsq: VecDeque::new(),
            fetch_buffer: VecDeque::new(),
            store_buffer: VecDeque::new(),
            committed_spec: 0,
            live_children: 0,
            ras: ReturnAddressStack::new(ras_entries),
            ghist: 0,
            queued_count: 0,
            spec_committed_loads: Vec::new(),
            spec_commit_errors: Vec::new(),
        }
    }

    /// ICOUNT fetch priority: instructions in the front of the machine.
    /// Lower is hungrier (gets fetch priority).
    pub fn icount(&self) -> usize {
        self.fetch_buffer.len() + self.queued_count
    }

    /// Whether this context can fetch this cycle.
    pub fn fetchable(&self, now: u64, fetch_buffer_cap: usize) -> bool {
        self.state == CtxState::Active
            && !self.fetch_stopped
            && !self.wait_redirect
            && !self.halted
            && now >= self.fetch_ready_at
            && self.fetch_buffer.len() < fetch_buffer_cap
    }

    /// Search this context's store buffer (youngest first) for a store to
    /// `addr` with age older than `limit`.
    pub fn search_store_buffer(&self, addr: u64, limit: u64) -> Option<u64> {
        self.store_buffer
            .iter()
            .rev()
            .find(|e| e.seq < limit && e.addr == addr)
            .map(|e| e.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_context_is_free() {
        let c = Context::free(8);
        assert_eq!(c.state, CtxState::Free);
        assert_eq!(c.icount(), 0);
        assert!(!c.fetchable(0, 32));
    }

    #[test]
    fn store_buffer_search_respects_age_limit_and_order() {
        let mut c = Context::free(8);
        c.store_buffer.push_back(SbEntry {
            addr: 0x100,
            value: 1,
            seq: 10,
            pc: 0,
        });
        c.store_buffer.push_back(SbEntry {
            addr: 0x100,
            value: 2,
            seq: 20,
            pc: 0,
        });
        c.store_buffer.push_back(SbEntry {
            addr: 0x200,
            value: 3,
            seq: 30,
            pc: 0,
        });
        // Youngest matching entry under the limit wins.
        assert_eq!(c.search_store_buffer(0x100, u64::MAX), Some(2));
        assert_eq!(c.search_store_buffer(0x100, 15), Some(1));
        assert_eq!(c.search_store_buffer(0x100, 5), None);
        assert_eq!(c.search_store_buffer(0x200, 25), None);
        assert_eq!(c.search_store_buffer(0x300, u64::MAX), None);
    }

    #[test]
    fn fetchable_gating() {
        let mut c = Context::free(8);
        c.state = CtxState::Active;
        assert!(c.fetchable(0, 32));
        c.fetch_ready_at = 10;
        assert!(!c.fetchable(5, 32));
        assert!(c.fetchable(10, 32));
        c.fetch_stopped = true;
        assert!(!c.fetchable(10, 32));
    }
}
