//! The statically-dispatched microarchitecture framework.
//!
//! A concrete machine is a [`StagedCore`] monomorphized over a
//! [`StageSet`]: a compile-time bundle of stage modules (fetch,
//! rename/dispatch, issue, writeback, commit) plus a [`SpawnPolicy`]
//! deciding what happens when a load is renamed. Every hook is an
//! associated type resolved at compile time — there are no trait objects
//! anywhere on the cycle path, so a composed machine monomorphizes to
//! exactly the hand-wired loop it replaced (the `tests/framework.rs`
//! differential and the sim_bench perf guard both hold it to that).
//!
//! Two stage sets ship today:
//!
//! - [`SmtOooStages`] — the paper's SMT out-of-order core with MTVP
//!   spawn/reconcile ([`Machine`](crate::Machine) is an alias for it);
//! - [`InOrderStages`] — a single-context in-order scalar baseline
//!   ([`InOrderMachine`](crate::InOrderMachine)) that issues one
//!   instruction per cycle in strict program order.
//!
//! To add a core module: implement [`Stage`] for any stage you replace
//! (delegating to a new method on `StagedCore`), bundle the stages in a
//! new [`StageSet`], alias `StagedCore<'p, T, YourStages>`, and wire a
//! `CoreKind` through `SimConfig` so the engine can select it. The
//! [`Core`] trait is implemented automatically for every composition,
//! which is what lets the engine, the sampled two-tier driver, serve and
//! the cluster run any stage set without knowing its concrete type.

use crate::config::PipelineConfig;
use crate::context::FetchedInst;
use crate::machine::StagedCore;
use crate::stats::PipeStats;
use crate::uop::{CtxId, UopId};
use mtvp_isa::trace::Trace;
use mtvp_isa::Program;
use mtvp_mem::{MainMemory, MemConfig};
use mtvp_obs::{NullTracer, Tracer};
use std::sync::Arc;

/// One pipeline stage of a [`StageSet`].
///
/// `tick` runs the stage for one cycle. Implementations are zero-sized
/// and stateless — all machine state lives in the [`StagedCore`]; a stage
/// is pure behaviour, so composing stages never adds data to the machine.
pub trait Stage {
    /// Advance this stage by one cycle.
    fn tick<T: Tracer, S: StageSet>(m: &mut StagedCore<'_, T, S>);
}

/// Policy hook invoked when the rename stage renames a load: decide
/// whether to value-predict it and/or spawn a speculative thread.
///
/// [`ValuePredictSpawn`] implements the paper's §3.1 decision tree
/// (STVP / MTVP / spawn-only, selector-gated); [`NoSpawn`] compiles the
/// whole decision point away for cores without value prediction.
pub trait SpawnPolicy {
    /// Consider the freshly renamed load `load` of context `ctx`.
    fn consider<T: Tracer, S: StageSet>(
        m: &mut StagedCore<'_, T, S>,
        ctx: CtxId,
        load: UopId,
        fi: &FetchedInst,
    );
}

/// A complete microarchitecture: the five stage modules plus the spawn
/// policy, bound together at compile time.
///
/// Stages run back-to-front each cycle (writeback, commit, issue,
/// rename, fetch) so results never skip a stage within a single cycle —
/// the framework fixes that ordering; a stage set only chooses *what*
/// each stage does.
pub trait StageSet: Sized + 'static {
    /// Stable identifier of the composition (diagnostics and lints).
    const NAME: &'static str;
    /// Instruction fetch (front end, branch prediction).
    type Fetch: Stage;
    /// Register rename and dispatch into the issue queues.
    type Rename: Stage;
    /// Instruction selection and execution start.
    type Issue: Stage;
    /// Completion: result write, branch resolution, load verification.
    type Writeback: Stage;
    /// In-order retirement, MTVP reconcile/promotion, squashes.
    type Commit: Stage;
    /// Load-rename decision point (value prediction, thread spawning).
    type Spawn: SpawnPolicy;
}

// ---- stage modules ------------------------------------------------------

/// ICOUNT fetch of up to `fetch_width` instructions from `fetch_threads`
/// contexts per cycle, with gskew direction prediction, BTB and RAS.
pub struct IcountFetch;

impl Stage for IcountFetch {
    #[inline(always)]
    fn tick<T: Tracer, S: StageSet>(m: &mut StagedCore<'_, T, S>) {
        m.fetch_stage();
    }
}

/// Rename up to `rename_width` instructions per cycle, rotating fairness
/// among contexts, dispatching into the per-class issue queues and
/// consulting the stage set's [`SpawnPolicy`] on every load.
pub struct RenameDispatch;

impl Stage for RenameDispatch {
    #[inline(always)]
    fn tick<T: Tracer, S: StageSet>(m: &mut StagedCore<'_, T, S>) {
        m.rename_stage();
    }
}

/// Out-of-order issue: oldest-ready-first selection per execution-unit
/// class, up to the per-class issue widths.
pub struct OooIssue;

impl Stage for OooIssue {
    #[inline(always)]
    fn tick<T: Tracer, S: StageSet>(m: &mut StagedCore<'_, T, S>) {
        m.issue_stage();
    }
}

/// In-order scalar issue: at most one instruction per cycle, and only
/// the oldest dispatched instruction of the (single) context — a source
/// or MSHR stall at the head stalls everything behind it.
pub struct InOrderIssue;

impl Stage for InOrderIssue {
    #[inline(always)]
    fn tick<T: Tracer, S: StageSet>(m: &mut StagedCore<'_, T, S>) {
        m.in_order_issue_stage();
    }
}

/// Drain completion events due this cycle: write results, resolve
/// branches, replay memory-order violations, verify value predictions.
pub struct EventWriteback;

impl Stage for EventWriteback {
    #[inline(always)]
    fn tick<T: Tracer, S: StageSet>(m: &mut StagedCore<'_, T, S>) {
        m.writeback_stage();
    }
}

/// In-order commit with MTVP reconciliation: verify spawns at the
/// triggering load's commit, promote or kill children, retire stores.
pub struct ReconcileCommit;

impl Stage for ReconcileCommit {
    #[inline(always)]
    fn tick<T: Tracer, S: StageSet>(m: &mut StagedCore<'_, T, S>) {
        m.commit_stage();
    }
}

// ---- spawn policies -----------------------------------------------------

/// The paper's load-rename decision tree (§3.1): query the value
/// predictor, gate on the selector, then spawn an MTVP child thread,
/// fall back to STVP, or do nothing.
pub struct ValuePredictSpawn;

impl SpawnPolicy for ValuePredictSpawn {
    #[inline(always)]
    fn consider<T: Tracer, S: StageSet>(
        m: &mut StagedCore<'_, T, S>,
        ctx: CtxId,
        load: UopId,
        fi: &FetchedInst,
    ) {
        m.maybe_value_predict(ctx, load, fi);
    }
}

/// Hint-guided spawn policy: the full §3.1 decision tree, but only at
/// loads the static spawn-site analysis selected (`VpConfig.hinted_pcs`,
/// lowered to a per-pc mask at build time). Unhinted loads rename like
/// any other instruction — the predictor is neither queried nor trained
/// on them, so spawning concentrates on regions whose live-ins were
/// proven predictable.
pub struct StaticHintSpawn;

impl SpawnPolicy for StaticHintSpawn {
    #[inline(always)]
    fn consider<T: Tracer, S: StageSet>(
        m: &mut StagedCore<'_, T, S>,
        ctx: CtxId,
        load: UopId,
        fi: &FetchedInst,
    ) {
        if m.hinted(fi.pc) {
            m.maybe_value_predict(ctx, load, fi);
        }
    }
}

/// No value prediction and no thread spawning: loads rename like any
/// other instruction. The entire decision point compiles away.
pub struct NoSpawn;

impl SpawnPolicy for NoSpawn {
    #[inline(always)]
    fn consider<T: Tracer, S: StageSet>(
        _m: &mut StagedCore<'_, T, S>,
        _ctx: CtxId,
        _load: UopId,
        _fi: &FetchedInst,
    ) {
    }
}

// ---- shipped stage sets -------------------------------------------------

/// The paper's machine: SMT out-of-order core with ICOUNT fetch and the
/// full MTVP spawn/reconcile policy. [`Machine`](crate::Machine) is
/// `StagedCore` composed with this set.
pub struct SmtOooStages;

impl StageSet for SmtOooStages {
    const NAME: &'static str = "smt-ooo";
    type Fetch = IcountFetch;
    type Rename = RenameDispatch;
    type Issue = OooIssue;
    type Writeback = EventWriteback;
    type Commit = ReconcileCommit;
    type Spawn = ValuePredictSpawn;
}

/// The SMT out-of-order core with spawning restricted to statically
/// hinted loads: identical to [`SmtOooStages`] except the spawn decision
/// point is [`StaticHintSpawn`].
/// [`StaticHintMachine`](crate::StaticHintMachine) is `StagedCore`
/// composed with this set.
pub struct SmtOooStaticHintStages;

impl StageSet for SmtOooStaticHintStages {
    const NAME: &'static str = "smt-ooo-static-hint";
    type Fetch = IcountFetch;
    type Rename = RenameDispatch;
    type Issue = OooIssue;
    type Writeback = EventWriteback;
    type Commit = ReconcileCommit;
    type Spawn = StaticHintSpawn;
}

/// A single-context in-order scalar baseline: same front end, memory
/// hierarchy and retirement as the SMT core, but strict program-order
/// scalar issue and no value prediction or thread spawning.
/// [`InOrderMachine`](crate::InOrderMachine) is `StagedCore` composed
/// with this set.
pub struct InOrderStages;

impl StageSet for InOrderStages {
    const NAME: &'static str = "in-order-scalar";
    type Fetch = IcountFetch;
    type Rename = RenameDispatch;
    type Issue = InOrderIssue;
    type Writeback = EventWriteback;
    type Commit = ReconcileCommit;
    type Spawn = NoSpawn;
}

// ---- the engine-facing core trait ---------------------------------------

/// What the engine (and the sampled two-tier driver, serve, cluster)
/// needs from a machine, independent of its stage set. Implemented
/// automatically for every `StagedCore` composition — adding a core
/// module requires no engine changes.
///
/// The state-transfer half ([`Core::drain_to_arch`],
/// [`Core::jump_arch_state`], [`Core::load_arch_state`],
/// [`Core::replace_memory`], [`Core::into_memory`]) is the sampled
/// simulation surface: any core exposing it can run under the two-tier
/// functional/detailed driver.
pub trait Core<'p, T: Tracer = NullTracer>: Sized {
    /// Stable identifier of the composed machine (diagnostics).
    const NAME: &'static str;

    /// Build a machine. `init_memory: false` skips writing the initial
    /// data image (the sampled driver's state handoff supplies it).
    fn build_core(
        cfg: PipelineConfig,
        mem_cfg: MemConfig,
        program: &'p Program,
        trace: Option<Arc<Trace>>,
        tracer: T,
        init_memory: bool,
    ) -> Self;

    /// Run to completion (halt or configured limit) and return stats.
    fn run(&mut self) -> PipeStats;
    /// Run until `target` architectural commits; returns the count reached.
    fn run_until_committed(&mut self, target: u64) -> u64;
    /// Statistics as of the current cycle (hierarchy counters folded in).
    fn stats_now(&mut self) -> PipeStats;
    /// Current cycle.
    fn now(&self) -> u64;
    /// Inject architectural state on a freshly built machine (cycle 0).
    fn load_arch_state(&mut self, pc: u64, committed: u64, int: &[u64; 32], fp: &[f64; 32]);
    /// Fast-forward a drained machine along the committed path.
    fn jump_arch_state(&mut self, pc: u64, committed: u64, int: &[u64; 32], fp: &[f64; 32]);
    /// Discard all in-flight work, leaving only architectural state.
    fn drain_to_arch(&mut self);
    /// Replace the architectural memory image before the first cycle.
    fn replace_memory(&mut self, memory: MainMemory);
    /// The architectural memory image (mutable, for the functional tier).
    fn memory_mut(&mut self) -> &mut MainMemory;
    /// The architectural memory image.
    fn memory(&self) -> &MainMemory;
    /// Consume the machine, yielding the memory image.
    fn into_memory(self) -> MainMemory;
    /// The architectural integer register file.
    fn arch_int_regs(&self) -> [u64; 32];
    /// The architectural floating-point register file.
    fn arch_fp_regs(&self) -> [f64; 32];
    /// Physical-register-file consistency check (tests).
    fn check_regfile(&self) -> Result<(), String>;
    /// Consume the machine, yielding its tracer.
    fn into_tracer(self) -> T;
}

impl<'p, T: Tracer, S: StageSet> Core<'p, T> for StagedCore<'p, T, S> {
    const NAME: &'static str = S::NAME;

    fn build_core(
        cfg: PipelineConfig,
        mem_cfg: MemConfig,
        program: &'p Program,
        trace: Option<Arc<Trace>>,
        tracer: T,
        init_memory: bool,
    ) -> Self {
        StagedCore::build(cfg, mem_cfg, program, trace, tracer, init_memory)
    }

    fn run(&mut self) -> PipeStats {
        StagedCore::run(self)
    }

    fn run_until_committed(&mut self, target: u64) -> u64 {
        StagedCore::run_until_committed(self, target)
    }

    fn stats_now(&mut self) -> PipeStats {
        StagedCore::stats_now(self)
    }

    fn now(&self) -> u64 {
        StagedCore::now(self)
    }

    fn load_arch_state(&mut self, pc: u64, committed: u64, int: &[u64; 32], fp: &[f64; 32]) {
        StagedCore::load_arch_state(self, pc, committed, int, fp)
    }

    fn jump_arch_state(&mut self, pc: u64, committed: u64, int: &[u64; 32], fp: &[f64; 32]) {
        StagedCore::jump_arch_state(self, pc, committed, int, fp)
    }

    fn drain_to_arch(&mut self) {
        StagedCore::drain_to_arch(self)
    }

    fn replace_memory(&mut self, memory: MainMemory) {
        StagedCore::replace_memory(self, memory)
    }

    fn memory_mut(&mut self) -> &mut MainMemory {
        StagedCore::memory_mut(self)
    }

    fn memory(&self) -> &MainMemory {
        StagedCore::memory(self)
    }

    fn into_memory(self) -> MainMemory {
        StagedCore::into_memory(self)
    }

    fn arch_int_regs(&self) -> [u64; 32] {
        StagedCore::arch_int_regs(self)
    }

    fn arch_fp_regs(&self) -> [f64; 32] {
        StagedCore::arch_fp_regs(self)
    }

    fn check_regfile(&self) -> Result<(), String> {
        StagedCore::check_regfile(self)
    }

    fn into_tracer(self) -> T {
        StagedCore::into_tracer(self)
    }
}
