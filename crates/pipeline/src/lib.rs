//! # mtvp-pipeline
//!
//! An execution-driven, cycle-level simultaneous-multithreading (SMT)
//! out-of-order pipeline implementing **threaded value prediction** — the
//! architecture of *Multithreaded Value Prediction* (Tuck & Tullsen,
//! HPCA-11 2005).
//!
//! The machine models, per Table 1 of the paper: ICOUNT fetch of 16
//! instructions from 2 threads, a deep front end (30-stage pipeline), a
//! 256-entry ROB and 64-entry issue queues, 8-wide issue (6 int / 2 fp /
//! 4 memory), 224 rename registers in a shared physical register file, a
//! 2bcgskew branch predictor, and the full cache hierarchy with a stride
//! prefetcher from `mtvp-mem`.
//!
//! On top of the base SMT core it implements:
//! - **single-threaded value prediction** with selective reissue recovery;
//! - **multithreaded value prediction (MTVP)**: a confident prediction for
//!   a load spawns a speculative hardware thread that executes — and
//!   commits, into a private store buffer — past the stalled load, with
//!   flash-copied rename maps and use-counted physical registers;
//! - the **single fetch path** simplification (§3.3) and the aggressive
//!   no-stall fetch policy (§5.5);
//! - **multiple-value prediction** (§5.6): several children per load;
//! - the **spawn-only** split-window comparator and the idealized
//!   **wide-window** configuration (§5.7).
//!
//! # Example
//!
//! ```
//! use mtvp_isa::{ProgramBuilder, Reg};
//! use mtvp_pipeline::{Machine, PipelineConfig};
//!
//! let mut b = ProgramBuilder::new();
//! let (sum, i, n) = (Reg(1), Reg(2), Reg(3));
//! b.li(sum, 0).li(i, 0).li(n, 50);
//! let top = b.here_label();
//! b.add(sum, sum, i).addi(i, i, 1).blt(i, n, top).halt();
//! let program = b.build();
//!
//! let mut m = Machine::new(PipelineConfig::tiny(), &program, None);
//! let stats = m.run();
//! assert!(stats.halted);
//! assert_eq!(m.arch_int_regs()[1], (0..50).sum::<u64>());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cmp;
mod config;
mod context;
pub mod framework;
mod machine;
mod regfile;
mod stats;
mod uop;

pub use cmp::{CmpMachine, CoRunner};
pub use config::{FetchPolicy, PipelineConfig, PredictorKind, SelectorKind, VpConfig};
pub use framework::{
    Core, InOrderStages, SmtOooStages, SmtOooStaticHintStages, SpawnPolicy, Stage, StageSet,
    StaticHintSpawn,
};
pub use machine::{InOrderMachine, Machine, StagedCore, StaticHintMachine};
pub use regfile::{PhysRegFile, PregId, RegClass};
pub use stats::{BranchStats, CmpSummary, PipeStats, VpStats};
