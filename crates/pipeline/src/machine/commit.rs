//! Commit stage: in-order retirement, MTVP resolution (§3.2–§3.3),
//! thread promotion and kills, squash machinery, predictor training.

use super::StagedCore;
use crate::context::{Context, CtxState, SbEntry};
use crate::framework::StageSet;
use crate::uop::{CtxId, UopId, UopState};
use mtvp_isa::interp::Bus;
use mtvp_isa::Op;
use mtvp_mem::AccessKind;
use mtvp_obs::{Event, KillCause, SquashCause, Tracer};

impl<T: Tracer, S: StageSet> StagedCore<'_, T, S> {
    /// Commit up to `commit_width` instructions across contexts.
    pub(crate) fn commit_stage(&mut self) {
        let n = self.ctxs.len();
        let mut budget = self.cfg.commit_width;
        for k in 0..n {
            let ctx = (self.rr_cursor + k) % n;
            if self.ctxs[ctx].state == CtxState::Free {
                continue;
            }
            while budget > 0 && self.commit_one(ctx) {
                budget -= 1;
                if self.done {
                    return;
                }
            }
            // A dying parent with an empty window hands over to its child.
            if self.ctxs[ctx].state == CtxState::Dying && self.ctxs[ctx].rob.is_empty() {
                self.finalize_promotion(ctx);
            }
        }
    }

    /// Try to commit the head of `ctx`'s window. Returns false if nothing
    /// committed.
    fn commit_one(&mut self, ctx: CtxId) -> bool {
        let Some(&head) = self.ctxs[ctx].rob.front() else {
            return false;
        };
        if self.uops.get(head).state != UopState::Completed {
            return false;
        }

        // Resolve value-prediction children before retiring the load (§3.2:
        // "when the load value returns ... it either kills the spawned
        // thread or kills itself").
        if !self.uops.get(head).vp.children.is_empty() {
            self.resolve_children(ctx, head);
        }

        let speculative = self.ctxs[ctx].speculative;
        let (inst, pc, seq, trace_idx) = {
            let u = self.uops.get(head);
            (u.inst, u.pc, u.seq, u.trace_idx)
        };

        // Stores: architectural write, or hold in the speculative store
        // buffer (stalling commit when it is full — §5.3).
        if inst.is_store() {
            let (addr, value) = {
                let u = self.uops.get(head);
                (
                    u.eff_addr.expect("committed store has addr"),
                    u.store_data.expect("data"),
                )
            };
            if speculative {
                if self.ctxs[ctx].store_buffer.len() >= self.cfg.store_buffer_entries {
                    self.stats.vp.store_buffer_stalls += 1;
                    return false;
                }
                self.ctxs[ctx].store_buffer.push_back(SbEntry {
                    addr,
                    value,
                    seq,
                    pc,
                });
                if T::ENABLED {
                    let ev = Event::SpecStoreCommit { ctx, seq, addr };
                    self.tracer.record(self.now, ev);
                }
            } else {
                self.memory.write_u64(addr, value);
                self.mem_sys
                    .access_data(self.now, pc, addr, AccessKind::Write);
            }
        }

        // Trainers run at commit (§5.4).
        if inst.is_load() {
            let actual = self
                .uops
                .get(head)
                .exec_value
                .expect("committed load has value");
            self.predictor.train(pc, actual);
            if speculative {
                let addr = self
                    .uops
                    .get(head)
                    .eff_addr
                    .expect("committed load has addr");
                self.ctxs[ctx].spec_committed_loads.push((addr, seq));
            }
        }
        if inst.is_cond_branch() {
            let u = self.uops.get(head);
            let ghist_prior = u.branch.as_ref().expect("branch info").ghist_prior;
            let taken = u.resolved_taken;
            self.dir_pred.update(pc, ghist_prior, taken);
            self.stats.branches.cond_committed += 1;
        }
        if matches!(inst.op, Op::Jr | Op::Jalr) {
            let target = self.uops.get(head).resolved_target;
            self.btb.update(pc, target);
        }

        // Retire: free the previous mapping, count, validate.
        let head_exec_value = self.uops.get(head).exec_value;
        let uop = self.uops.remove(head);
        self.ctxs[ctx].rob.pop_front();
        if uop.inst.is_store() {
            let popped = self.ctxs[ctx].lsq.pop_front();
            debug_assert_eq!(
                popped.map(|(s, _)| s),
                Some(uop.seq),
                "LSQ out of sync at commit"
            );
        }
        if uop.in_queue {
            self.ctxs[ctx].queued_count = self.ctxs[ctx].queued_count.saturating_sub(1);
        }
        if let Some(d) = uop.dst {
            // The new mapping's reference lives on in the context map; only
            // the superseded mapping can now be recycled.
            self.rf.decref(d.class, d.old_preg);
        }
        self.note_commit_progress();
        if T::ENABLED {
            let ev = Event::Commit {
                ctx,
                seq,
                pc,
                spec: speculative,
            };
            self.tracer.record(self.now, ev);
        }
        if speculative {
            // Validate optimistically against the committed-path trace;
            // only fatal if this thread is eventually promoted.
            if let Some(trace) = &self.trace {
                if let Some(e) = trace.get(trace_idx as usize) {
                    let path_ok = u64::from(e.pc) == pc;
                    let value_ok = !e.is_load || head_exec_value == Some(e.load_value);
                    if path_ok && !value_ok {
                        self.ctxs[ctx].spec_commit_errors.push((
                            trace_idx,
                            pc,
                            head_exec_value.unwrap_or(0),
                            e.load_value,
                        ));
                    }
                }
            }
            self.ctxs[ctx].committed_spec += 1;
        } else {
            if let Some(trace) = &self.trace {
                if let Some(e) = trace.get(self.stats.committed as usize) {
                    assert_eq!(
                        (u64::from(e.pc), self.stats.committed),
                        (pc, trace_idx),
                        "committed-path divergence at instruction {} of {}",
                        self.stats.committed,
                        self.program.name
                    );
                    if e.is_load {
                        let got = self.uops_exec_value_for_validation(head_exec_value);
                        assert_eq!(
                            got,
                            Some(e.load_value),
                            "committed load value divergence at instruction {} (pc {}) of {}",
                            self.stats.committed,
                            pc,
                            self.program.name
                        );
                    }
                }
            }
            self.stats.committed += 1;
        }

        if inst.is_halt() {
            if speculative {
                self.ctxs[ctx].committed_halt = true;
                self.ctxs[ctx].halted = true;
            } else {
                self.stats.halted = true;
                self.done = true;
            }
        }
        true
    }

    /// Identity helper so the validation block reads naturally.
    fn uops_exec_value_for_validation(&self, v: Option<u64>) -> Option<u64> {
        v
    }

    /// Commit-time resolution of a load's spawned children: the child whose
    /// predicted value matches survives (spawn-only children always match);
    /// all others are killed. If a child survives, the parent dies.
    fn resolve_children(&mut self, ctx: CtxId, load: UopId) {
        let (actual, children, alternates, seq, pc, trace_idx) = {
            let u = self.uops.get_mut(load);
            let children = std::mem::take(&mut u.vp.children);
            (
                u.exec_value.expect("committed load has value"),
                children,
                std::mem::take(&mut u.vp.alternates),
                u.seq,
                u.pc,
                u.trace_idx,
            )
        };

        let mut survivor: Option<CtxId> = None;
        let mut was_value_spawn = false;
        for (child, value) in &children {
            if !value.is_none() {
                was_value_spawn = true;
            }
            let correct = value.is_none_or(|v| v == actual);
            let keep = correct && survivor.is_none();
            if T::ENABLED {
                let ev = Event::Reconcile {
                    parent: ctx,
                    child: *child,
                    seq,
                    correct: keep,
                    run_len: self.ctxs[*child].committed_spec,
                };
                self.tracer.record(self.now, ev);
            }
            if keep {
                survivor = Some(*child);
            } else {
                self.kill_subtree(*child, KillCause::WrongValue);
            }
        }

        if was_value_spawn {
            if survivor.is_some() {
                self.stats.vp.mtvp_correct += 1;
            } else {
                self.stats.vp.mtvp_wrong += 1;
                self.stats.vp.followed_wrong += 1;
                if alternates.contains(&actual) {
                    self.stats.vp.wrong_but_alternate_held += 1;
                }
            }
        }

        match survivor {
            Some(child) => {
                // Kill the parent's own post-load work (a no-stall parent
                // kept fetching; a single-fetch-path parent has none) and
                // let it drain. Resume state is kept in case the child is
                // later killed by a memory-order violation.
                self.squash_younger(ctx, seq, SquashCause::SpawnResolved);
                let (resume_ghist, resume_ras) = {
                    let u = self.uops.get(load);
                    let b = u
                        .branch
                        .as_ref()
                        .expect("spawning load stored resume state");
                    (b.ghist_prior, b.ras_after.clone())
                };
                let c = &mut self.ctxs[ctx];
                c.state = CtxState::Dying;
                c.fetch_stopped = true;
                c.wait_redirect = false;
                c.fetch_buffer.clear();
                c.pending_child = Some(child);
                c.resume_pc = pc + 1;
                c.resume_trace = trace_idx + 1;
                c.resume_ghist = resume_ghist;
                c.resume_ras = resume_ras;
            }
            None => {
                // All predictions wrong: the children are gone; the parent
                // has the right value. Under single fetch path it stopped
                // fetching at the spawn and resumes after the load.
                if self.ctxs[ctx].fetch_stopped && self.ctxs[ctx].state == CtxState::Active {
                    let (ghist, ras) = {
                        let u = self.uops.get(load);
                        let b = u
                            .branch
                            .as_ref()
                            .expect("spawning load stored resume state");
                        (b.ghist_prior, b.ras_after.clone())
                    };
                    let c = &mut self.ctxs[ctx];
                    c.pc = pc + 1;
                    c.trace_cursor = trace_idx + 1;
                    c.fetch_buffer.clear();
                    c.ghist = ghist;
                    c.ras = ras;
                    c.fetch_stopped = false;
                    c.wait_redirect = false;
                }
            }
        }
    }

    /// A dying parent's window has drained: hand the architectural state to
    /// the surviving child (§3.2: "either the spawning thread or the
    /// spawned thread commits, never both").
    fn finalize_promotion(&mut self, parent: CtxId) {
        let child = self.ctxs[parent]
            .pending_child
            .expect("dying parent has a pending child");
        debug_assert_eq!(
            self.ctxs[parent].live_children, 1,
            "dying parent with stray children"
        );

        // The child takes the parent's place in the spawn tree.
        let (grand, parent_spawn_load, parent_spawn_seq) = {
            let p = &self.ctxs[parent];
            (p.parent, p.spawn_load, p.spawn_seq)
        };
        if let Some((lid, lgen)) = parent_spawn_load {
            if self.uops.is_live(lid, lgen) {
                for entry in &mut self.uops.get_mut(lid).vp.children {
                    if entry.0 == parent {
                        entry.0 = child;
                    }
                }
            }
        }
        // The parent's buffered speculative stores are all older than the
        // child's spawn point: prepend them.
        let parent_sb = std::mem::take(&mut self.ctxs[parent].store_buffer);
        for e in parent_sb.into_iter().rev() {
            self.ctxs[child].store_buffer.push_front(e);
        }
        let parent_spec_commits = self.ctxs[parent].committed_spec;
        let parent_spec_errors = std::mem::take(&mut self.ctxs[parent].spec_commit_errors);
        let parent_spec_loads = std::mem::take(&mut self.ctxs[parent].spec_committed_loads);

        // Release the parent's map references and free the context.
        let (int_map, fp_map) = (self.ctxs[parent].int_map, self.ctxs[parent].fp_map);
        for preg in int_map {
            self.rf.decref(crate::regfile::RegClass::Int, preg);
        }
        for preg in fp_map {
            self.rf.decref(crate::regfile::RegClass::Fp, preg);
        }
        self.ctxs[parent] = Context::free(self.cfg.ras_entries);

        let c = &mut self.ctxs[child];
        c.parent = grand;
        c.spawn_load = parent_spawn_load;
        c.spawn_seq = parent_spawn_seq;
        // The parent's own speculative commits (if it was speculative) now
        // belong to the child's account.
        c.committed_spec += parent_spec_commits;
        c.spec_commit_errors.extend(parent_spec_errors);
        c.spec_committed_loads.extend(parent_spec_loads);
        let promoted_run = c.committed_spec;

        if grand.is_none() {
            // Fully architectural now: credit the speculative commits,
            // release the store buffer to memory (§3.2), take over as root.
            assert!(
                c.spec_commit_errors.is_empty(),
                "promoted thread had wrong-valued speculative commits: {:?} ({})",
                &c.spec_commit_errors[..c.spec_commit_errors.len().min(4)],
                self.program.name,
            );
            c.speculative = false;
            // Architectural now: in-order commit protects it from its own
            // stores and it has no ancestors left to violate it.
            c.spec_committed_loads.clear();
            let commits = c.committed_spec;
            c.committed_spec = 0;
            let drained: Vec<SbEntry> = c.store_buffer.drain(..).collect();
            let child_halted = c.committed_halt;
            self.stats.committed += commits;
            for e in drained {
                self.memory.write_u64(e.addr, e.value);
                self.mem_sys
                    .access_data(self.now, e.pc, e.addr, AccessKind::Write);
            }
            self.root_ctx = child;
            if child_halted {
                self.stats.halted = true;
                self.done = true;
            }
        }
        if T::ENABLED {
            let ev = Event::Promote {
                parent,
                child,
                run_len: promoted_run,
            };
            self.tracer.record(self.now, ev);
        }
        self.note_commit_progress();
    }

    /// Squash every uop of `ctx` younger than `seq`, killing any threads
    /// they spawned and rolling the rename map back.
    pub(crate) fn squash_younger(&mut self, ctx: CtxId, seq: u64, cause: SquashCause) {
        while let Some(&tail) = self.ctxs[ctx].rob.back() {
            if self.uops.get(tail).seq <= seq {
                break;
            }
            self.ctxs[ctx].rob.pop_back();
            self.squash_uop(ctx, tail, cause);
        }
    }

    /// Squash one uop already removed from its ROB.
    fn squash_uop(&mut self, ctx: CtxId, id: UopId, cause: SquashCause) {
        let uop = self.uops.remove(id);
        debug_assert_eq!(uop.ctx, ctx);
        if uop.inst.is_store() {
            let popped = self.ctxs[ctx].lsq.pop_back();
            debug_assert_eq!(
                popped.map(|(s, _)| s),
                Some(uop.seq),
                "LSQ out of sync at squash"
            );
        }
        for (child, _) in &uop.vp.children {
            self.kill_subtree(*child, KillCause::ParentSquashed);
        }
        if uop.in_queue {
            self.ctxs[ctx].queued_count = self.ctxs[ctx].queued_count.saturating_sub(1);
        }
        if let Some(d) = uop.dst {
            // Roll the map back (squash walks youngest-first, so this
            // restores the precise pre-rename state).
            match d.class {
                crate::regfile::RegClass::Int => {
                    self.ctxs[ctx].int_map[d.arch as usize] = d.old_preg;
                }
                crate::regfile::RegClass::Fp => {
                    self.ctxs[ctx].fp_map[d.arch as usize] = d.old_preg;
                }
            }
            self.rf.decref(d.class, d.preg);
        }
        self.stats.squashed += 1;
        if T::ENABLED {
            let ev = Event::Squash {
                ctx,
                seq: uop.seq,
                pc: uop.pc,
                cause,
            };
            self.tracer.record(self.now, ev);
        }
    }

    /// Kill a speculative thread and every thread it spawned.
    pub(crate) fn kill_subtree(&mut self, ctx: CtxId, cause: KillCause) {
        debug_assert!(
            self.ctxs[ctx].speculative,
            "killing a non-speculative context"
        );
        // Squash the whole window (recursively killing grandchildren).
        while let Some(&tail) = self.ctxs[ctx].rob.back() {
            self.ctxs[ctx].rob.pop_back();
            self.squash_uop(ctx, tail, SquashCause::ThreadKill);
        }
        // A dying context's surviving child is not attached to any uop.
        if let Some(pending) = self.ctxs[ctx].pending_child.take() {
            self.kill_subtree(pending, cause);
        }
        debug_assert_eq!(
            self.ctxs[ctx].live_children, 0,
            "children outlived their uops"
        );
        if let Some(p) = self.ctxs[ctx].parent {
            self.ctxs[p].live_children = self.ctxs[p].live_children.saturating_sub(1);
        }
        // Unlink from the spawning load's children list (it may still be
        // in flight and must not resolve against a freed context). If that
        // leaves the load with no children, a single-fetch-path parent that
        // stopped fetching at the spawn must resume past the load now.
        if let Some((lid, lgen)) = self.ctxs[ctx].spawn_load {
            if self.uops.is_live(lid, lgen) {
                self.uops
                    .get_mut(lid)
                    .vp
                    .children
                    .retain(|(c, _)| *c != ctx);
                let (orphaned, lctx, lpc, ltrace, resume) = {
                    let u = self.uops.get(lid);
                    let resume = u
                        .branch
                        .as_ref()
                        .map(|b| (b.ghist_prior, b.ras_after.clone()));
                    (u.vp.children.is_empty(), u.ctx, u.pc, u.trace_idx, resume)
                };
                if orphaned && lctx != ctx {
                    let stalled =
                        self.ctxs[lctx].state == CtxState::Active && self.ctxs[lctx].fetch_stopped;
                    if stalled {
                        let (ghist, ras) = resume.expect("spawning load stored resume state");
                        let c = &mut self.ctxs[lctx];
                        c.pc = lpc + 1;
                        c.trace_cursor = ltrace + 1;
                        c.fetch_buffer.clear();
                        c.ghist = ghist;
                        c.ras = ras;
                        c.fetch_stopped = false;
                        c.wait_redirect = false;
                    }
                }
            }
        }
        // If a dying parent was waiting to promote this thread, it must
        // take over again from its saved resume point.
        if let Some(p) = self.ctxs[ctx].parent {
            if self.ctxs[p].pending_child == Some(ctx) {
                let pc = &mut self.ctxs[p];
                pc.pending_child = None;
                pc.state = CtxState::Active;
                pc.fetch_stopped = false;
                pc.wait_redirect = false;
                pc.halted = false;
                pc.pc = pc.resume_pc;
                pc.trace_cursor = pc.resume_trace;
                pc.ghist = pc.resume_ghist;
                pc.ras = pc.resume_ras.clone();
                pc.fetch_buffer.clear();
            }
        }
        self.stats.discarded_spec_commits += self.ctxs[ctx].committed_spec;
        if T::ENABLED {
            let ev = Event::Kill {
                ctx,
                cause,
                run_len: self.ctxs[ctx].committed_spec,
            };
            self.tracer.record(self.now, ev);
        }
        let (int_map, fp_map) = (self.ctxs[ctx].int_map, self.ctxs[ctx].fp_map);
        for preg in int_map {
            self.rf.decref(crate::regfile::RegClass::Int, preg);
        }
        for preg in fp_map {
            self.rf.decref(crate::regfile::RegClass::Fp, preg);
        }
        self.ctxs[ctx] = Context::free(self.cfg.ras_entries);
    }
}
