//! Issue, execution, writeback, branch resolution, STVP verification and
//! selective reissue.

use super::StagedCore;
use crate::framework::StageSet;
use crate::regfile::RegClass;
use crate::uop::{UopId, UopState};
use mtvp_isa::interp::{branch_taken, effective_addr, eval_fp, eval_fp_cmp, eval_int, fp_to_int};
use mtvp_isa::{ExecUnit, Op};
use mtvp_mem::AccessKind;
use mtvp_obs::{Event, KillCause, ReissueCause, SquashCause, Tracer};
use std::cmp::Reverse;

impl<T: Tracer, S: StageSet> StagedCore<'_, T, S> {
    /// Select and begin execution of ready instructions, oldest first, up
    /// to the per-class issue widths (6 int / 2 fp / 4 mem).
    pub(crate) fn issue_stage(&mut self) {
        for (unit, width) in [
            (ExecUnit::Int, self.cfg.int_issue),
            (ExecUnit::Fp, self.cfg.fp_issue),
            (ExecUnit::Mem, self.cfg.mem_issue),
        ] {
            // Gather ready candidates (purging dead queue entries). Both
            // buffers are taken out of `self` and put back afterwards, so
            // the scan allocates nothing in steady state.
            let mut queue = std::mem::take(self.queue_for(unit));
            let mut ready = std::mem::take(&mut self.scratch_ready);
            ready.clear();
            queue.retain(|&(id, gen)| {
                if !self.uops.is_live(id, gen) {
                    return false;
                }
                let u = self.uops.get(id);
                if !u.in_queue {
                    return false; // issued earlier; slot already released
                }
                if u.state == UopState::Dispatched && u.srcs_ready(&self.rf) {
                    ready.push((u.seq, id));
                }
                true
            });
            *self.queue_for(unit) = queue;

            ready.sort_unstable();
            // Bounded attempts: an MSHR-blocked load costs a slot, so a
            // full miss queue cannot trigger unbounded issue work.
            let mut issued = 0usize;
            for &(_, id) in ready.iter().take(width * 4) {
                if issued >= width {
                    break;
                }
                if self.issue_one(id) {
                    issued += 1;
                }
            }
            self.scratch_ready = ready;
        }
    }

    /// In-order scalar issue (the [`crate::framework::InOrderIssue`]
    /// stage): issue at most one instruction per cycle, and only the
    /// oldest dispatched instruction of the root context. A head stalled
    /// on sources or an MSHR stalls everything behind it — in-order
    /// issue, out-of-order completion (latencies still drain through the
    /// event heap and the shared writeback stage).
    pub(crate) fn in_order_issue_stage(&mut self) {
        // Purge dead and already-issued queue entries: the out-of-order
        // issue scan normally releases those slots lazily; without this
        // sweep the rename stage would see phantom occupancy and wedge.
        for unit in [ExecUnit::Int, ExecUnit::Fp, ExecUnit::Mem] {
            let mut q = std::mem::take(self.queue_for(unit));
            q.retain(|&(id, generation)| {
                self.uops.is_live(id, generation) && self.uops.get(id).in_queue
            });
            *self.queue_for(unit) = q;
        }
        let head = self.ctxs[self.root_ctx]
            .rob
            .iter()
            .copied()
            .find(|&uid| self.uops.get(uid).state == UopState::Dispatched);
        if let Some(uid) = head {
            if self.uops.get(uid).srcs_ready(&self.rf) {
                // An MSHR-blocked load simply retries next cycle.
                let _ = self.issue_one(uid);
            }
        }
    }

    /// Begin execution of one instruction. Returns false when a load could
    /// not get an MSHR and must retry (it stays queued).
    pub(crate) fn issue_one(&mut self, id: UopId) -> bool {
        debug_assert_eq!(self.uops.get(id).state, UopState::Dispatched);
        let generation = self.uops.generation(id);
        let (ctx, seq, inst, pc) = {
            let u = self.uops.get(id);
            (u.ctx, u.seq, u.inst, u.pc)
        };

        let src_val = |m: &Self, i: usize| {
            let u = m.uops.get(id);
            u.srcs[i].map(|s| m.rf.read(s.class, s.preg)).unwrap_or(0)
        };

        let done_at = if inst.is_load() {
            let base = src_val(self, 0);
            let addr = effective_addr(base, inst.imm);
            let value = self.chain_load_value(ctx, seq, addr);
            let from_store = {
                // Forwarded if the chain produced something memory doesn't
                // hold — detect by probing whether a visible store matched.
                // (Recomputing is cheap and avoids widening the helper API.)
                self.store_forwards(ctx, seq, addr)
            };
            let done_at = if from_store {
                self.now + self.mem_sys.config().l1_latency
            } else {
                match self
                    .mem_sys
                    .access_data_demand(self.now, pc, addr, AccessKind::Read)
                {
                    Some(access) => {
                        if T::ENABLED {
                            let ev = Event::MemAccess {
                                ctx,
                                pc,
                                level: access.level.name(),
                                latency: access.ready_at.saturating_sub(self.now),
                            };
                            self.tracer.record(self.now, ev);
                        }
                        access.ready_at.max(self.now + 1)
                    }
                    None => return false, // all MSHRs busy: retry next cycle
                }
            };
            let u = self.uops.get_mut(id);
            u.eff_addr = Some(addr);
            u.exec_value = Some(value);
            done_at
        } else if inst.is_store() {
            let base = src_val(self, 0);
            let data = src_val(self, 1);
            let u = self.uops.get_mut(id);
            u.eff_addr = Some(effective_addr(base, inst.imm));
            u.store_data = Some(data);
            self.now + 1
        } else {
            self.now + u64::from(inst.base_latency())
        };

        let token = {
            let u = self.uops.get_mut(id);
            u.state = UopState::Issued;
            u.in_queue = false;
            u.exec_token = u.exec_token.wrapping_add(1);
            u.exec_token
        };
        self.ctxs[ctx].queued_count = self.ctxs[ctx].queued_count.saturating_sub(1);
        self.stats.issued += 1;
        self.issued_total += 1;
        self.events.push(Reverse((done_at, id, generation, token)));
        if T::ENABLED {
            self.tracer.record(self.now, Event::Issue { ctx, seq });
        }
        true
    }

    /// Whether a visible store (LSQ or store buffer along the ancestor
    /// chain) supplies the value for (`ctx`, `seq`, `addr`).
    fn store_forwards(&self, ctx: usize, load_seq: u64, addr: u64) -> bool {
        let mut limit = load_seq;
        let mut c = ctx;
        loop {
            let cx = &self.ctxs[c];
            for &(sseq, uid) in cx.lsq.iter().rev() {
                if sseq >= limit {
                    continue;
                }
                if self.uops.get(uid).eff_addr == Some(addr) {
                    return true;
                }
            }
            if cx.search_store_buffer(addr, limit).is_some() {
                return true;
            }
            match cx.parent {
                Some(p) => {
                    limit = limit.min(cx.spawn_seq);
                    c = p;
                }
                None => return false,
            }
        }
    }

    /// A store's address/data just resolved: replay every younger,
    /// already-executed load in its visibility subtree that reads the same
    /// address (speculative-disambiguation violation replay). The replay
    /// cascades through the load's consumers via the reissue machinery.
    fn replay_younger_loads(&mut self, store: UopId) {
        let (sctx, sseq, saddr, sdata) = {
            let u = self.uops.get(store);
            (
                u.ctx,
                u.seq,
                u.eff_addr.expect("resolved store"),
                u.store_data,
            )
        };
        // A speculative descendant that has already *committed* a load of
        // this address past the store cannot be replayed — the violation
        // kills the thread, like any other misspeculation (§3.2 recovery).
        // Kills run first so the replay scan below only sees survivors.
        self.kill_violating_descendants(sctx, sseq, Some(saddr));
        let victims: Vec<(UopId, u32)> = self
            .ctxs
            .iter()
            .flat_map(|c| c.rob.iter().copied())
            .filter(|&uid| {
                let u = self.uops.get(uid);
                u.inst.is_load()
                    && u.seq > sseq
                    && u.state != UopState::Dispatched
                    && u.eff_addr == Some(saddr)
                    // Skip loads that already observed the right value
                    // (e.g. via an even-younger forwarding store).
                    && u.exec_value != sdata
                    && self.store_visible_to(sctx, sseq, u.ctx)
            })
            .map(|uid| (uid, self.uops.generation(uid)))
            .collect();
        if victims.is_empty() {
            return;
        }
        let mut work = Vec::new();
        let mut tainted_stores = Vec::new();
        for (uid, generation) in victims {
            // A redispatch can kill descendant subtrees, taking other
            // collected victims with them.
            if self.uops.is_live(uid, generation) {
                self.redispatch(uid, &mut work, &mut tainted_stores);
            }
        }
        self.propagate_taint(work, tainted_stores);
    }

    /// Kill every speculative descendant of `ctx` whose spawn point is
    /// younger than `seq` — they were built from a rename map that
    /// includes the superseded result of the instruction being replayed.
    pub(crate) fn kill_descendants_after(&mut self, ctx: usize, seq: u64) {
        let candidates: Vec<usize> = (0..self.ctxs.len())
            .filter(|&d| {
                d != ctx
                    && self.ctxs[d].state != crate::context::CtxState::Free
                    && self.ctxs[d].speculative
                    && self.store_visible_to(ctx, seq, d)
            })
            .collect();
        for d in candidates {
            if self.ctxs[d].state != crate::context::CtxState::Free && self.ctxs[d].speculative {
                self.kill_subtree(d, KillCause::StaleRename);
            }
        }
    }

    /// Kill every speculative descendant of `sctx` that committed a load
    /// younger than `sseq` from `addr` (or from anywhere when `addr` is
    /// `None` — used when a reissued store's old address is unknown).
    pub(crate) fn kill_violating_descendants(&mut self, sctx: usize, sseq: u64, addr: Option<u64>) {
        let candidates: Vec<usize> = (0..self.ctxs.len())
            .filter(|&d| {
                d != sctx
                    && self.ctxs[d].state != crate::context::CtxState::Free
                    && self.ctxs[d].speculative
                    && self.store_visible_to(sctx, sseq, d)
                    && self.ctxs[d]
                        .spec_committed_loads
                        .iter()
                        .any(|&(a, q)| q > sseq && addr.is_none_or(|sa| a == sa))
            })
            .collect();
        for d in candidates {
            if self.ctxs[d].state != crate::context::CtxState::Free && self.ctxs[d].speculative {
                self.kill_subtree(d, KillCause::MemOrder);
            }
        }
    }

    /// Drain completion events due this cycle: write results, resolve
    /// branches, verify STVP predictions.
    pub(crate) fn writeback_stage(&mut self) {
        while let Some(&Reverse((t, id, generation, token))) = self.events.peek() {
            if t > self.now {
                break;
            }
            self.events.pop();
            if !self.uops.is_live(id, generation) {
                continue; // squashed
            }
            if self.uops.get(id).exec_token != token {
                continue; // superseded by a reissue
            }
            self.complete_one(id);
        }
    }

    fn complete_one(&mut self, id: UopId) {
        let (inst, pc) = {
            let u = self.uops.get(id);
            debug_assert_eq!(u.state, UopState::Issued);
            (u.inst, u.pc)
        };

        // Compute and write the result.
        let result = self.compute_result(id);
        if let Some(v) = result {
            if let Some(d) = self.uops.get(id).dst {
                self.rf.write(d.class, d.preg, v);
            }
        }
        self.uops.get_mut(id).state = UopState::Completed;
        if T::ENABLED {
            let (ctx, seq) = {
                let u = self.uops.get(id);
                (u.ctx, u.seq)
            };
            self.tracer.record(self.now, Event::Writeback { ctx, seq });
        }

        if inst.is_control() {
            self.resolve_control(id);
        }
        if inst.is_store() {
            self.replay_younger_loads(id);
        }
        if inst.is_load() {
            self.verify_load(id);
            // Record the ILP-pred episode at confirmation time (§5.1).
            if let Some((class, issued_at, cycle_at)) = self.uops.get_mut(id).vp.episode.take() {
                self.record_episode(pc, class, issued_at, cycle_at);
            }
        }
    }

    /// Result value of a uop (reads source registers at completion; they
    /// are stable because any invalidation would have re-dispatched us).
    fn compute_result(&self, id: UopId) -> Option<u64> {
        use Op::*;
        let u = self.uops.get(id);
        let src = |i: usize| {
            u.srcs[i]
                .map(|s| self.rf.read(s.class, s.preg))
                .unwrap_or(0)
        };
        let fsrc = |i: usize| f64::from_bits(src(i));
        match u.inst.op {
            Add | Sub | Mul | Divu | Remu | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu => {
                Some(eval_int(u.inst.op, src(0), src(1), u.inst.imm))
            }
            Addi | Andi | Ori | Xori | Slli | Srli | Srai | Slti | Li => {
                Some(eval_int(u.inst.op, src(0), 0, u.inst.imm))
            }
            Jal | Jalr => Some(u.pc + 1),
            Ld | Fld => u.exec_value,
            Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax | Fsqrt | Fneg | Fabs | Fmov => {
                Some(eval_fp(u.inst.op, fsrc(0), fsrc(1), 0.0).to_bits())
            }
            Fmadd => {
                // Sources: frs1, frs2, and the accumulator (old frd).
                Some(eval_fp(Fmadd, fsrc(0), fsrc(1), fsrc(2)).to_bits())
            }
            Fclt | Fcle | Fceq => Some(eval_fp_cmp(u.inst.op, fsrc(0), fsrc(1))),
            Icvtf => Some(((src(0) as i64) as f64).to_bits()),
            Fcvti => Some(fp_to_int(fsrc(0))),
            Beq | Bne | Blt | Bge | Bltu | Bgeu | J | Jr | St | Fst | Nop | Halt => None,
        }
    }

    /// Resolve a control instruction: compute the true next PC, detect
    /// mispredictions (including re-resolutions after selective reissue),
    /// squash and redirect.
    fn resolve_control(&mut self, id: UopId) {
        use Op::*;
        let (ctx, seq, pc, inst, trace_idx) = {
            let u = self.uops.get(id);
            (u.ctx, u.seq, u.pc, u.inst, u.trace_idx)
        };
        let src = |m: &Self, i: usize| {
            let u = m.uops.get(id);
            u.srcs[i].map(|s| m.rf.read(s.class, s.preg)).unwrap_or(0)
        };
        let (taken, target) = match inst.op {
            Beq | Bne | Blt | Bge | Bltu | Bgeu => {
                let t = branch_taken(inst.op, src(self, 0), src(self, 1));
                (t, if t { inst.imm as u64 } else { pc + 1 })
            }
            J | Jal => (true, inst.imm as u64),
            Jr | Jalr => (true, src(self, 0)),
            _ => unreachable!("resolve_control on non-control op"),
        };

        // Fetch may have stalled waiting for this resolution.
        self.ctxs[ctx].wait_redirect = false;

        let (was_resolved, prev_target, pred_target) = {
            let u = self.uops.get_mut(id);
            let b = u.branch.as_mut().expect("control uop has branch info");
            let out = (b.resolved, u.resolved_target, b.pred_target);
            b.resolved = true;
            u.resolved_taken = taken;
            u.resolved_target = target;
            out
        };

        // First resolution compares against the fetch-time prediction;
        // re-resolutions compare against what the machine actually followed.
        let followed = if was_resolved {
            prev_target
        } else {
            pred_target
        };
        if T::ENABLED {
            let ev = Event::BranchResolve {
                ctx,
                seq,
                pc,
                mispredict: followed != target,
            };
            self.tracer.record(self.now, ev);
        }
        if followed == target {
            return;
        }

        self.stats.branches.mispredicts += 1;
        if matches!(inst.op, Jr | Jalr) {
            self.stats.branches.indirect_mispredicts += 1;
        }

        self.squash_younger(ctx, seq, SquashCause::BranchMispredict);
        let (ghist, ras) = {
            let u = self.uops.get(id);
            let b = u.branch.as_ref().expect("branch info");
            let ghist = if inst.is_cond_branch() {
                (b.ghist_prior << 1) | taken as u64
            } else {
                b.ghist_prior
            };
            (ghist, b.ras_after.clone())
        };
        let c = &mut self.ctxs[ctx];
        c.pc = target;
        c.trace_cursor = trace_idx + 1;
        c.fetch_buffer.clear();
        c.ghist = ghist;
        c.ras = ras;
        c.wait_redirect = false;
        // An SFP parent whose spawn got squashed by this mispredict must
        // resume fetching; a dying context must not.
        if c.state == crate::context::CtxState::Active {
            c.fetch_stopped = false;
        }
        c.halted = false;
    }

    /// Verify a completed load against its STVP prediction; on a mismatch,
    /// selectively reissue the dependent instructions (§3.1).
    fn verify_load(&mut self, id: UopId) {
        let (predicted, verified, actual, alternates_hit) = {
            let u = self.uops.get(id);
            let actual = u.exec_value.expect("completed load has a value");
            (
                u.vp.stvp_value,
                u.vp.stvp_verified,
                actual,
                u.vp.alternates.contains(&actual),
            )
        };
        let Some(pv) = predicted else {
            return;
        };
        if verified {
            return;
        }
        self.uops.get_mut(id).vp.stvp_verified = true;
        if pv == actual {
            self.stats.vp.stvp_correct += 1;
            return;
        }
        self.stats.vp.stvp_wrong += 1;
        self.stats.vp.followed_wrong += 1;
        if alternates_hit {
            self.stats.vp.wrong_but_alternate_held += 1;
        }
        // The correct value is already written to the destination register
        // (complete_one ran first); now re-execute everything that consumed
        // the wrong value.
        let dest = self.uops.get(id).dst;
        if let Some(d) = dest {
            self.selective_reissue(id, vec![(d.class, d.preg)]);
        }
    }

    /// Taint-propagating re-execution: every instruction (in any context —
    /// children reference parent registers) that consumed one of the
    /// invalidated registers, or a load that may have forwarded from a
    /// re-executed store, goes back to its issue queue.
    pub(crate) fn selective_reissue(
        &mut self,
        origin: UopId,
        seed: Vec<(RegClass, crate::regfile::PregId)>,
    ) {
        self.reissue_origin = Some(origin);
        self.propagate_taint(seed, Vec::new());
        self.reissue_origin = None;
    }

    /// Fixpoint taint propagation over registers and memory.
    fn propagate_taint(
        &mut self,
        seed: Vec<(RegClass, crate::regfile::PregId)>,
        stores: Vec<(usize, u64)>,
    ) {
        let origin = self.reissue_origin;
        let mut work: Vec<(RegClass, crate::regfile::PregId)> = seed;
        let mut tainted_stores: Vec<(usize, u64)> = stores;

        while !work.is_empty() || !tainted_stores.is_empty() {
            // Register taint pass.
            while let Some((class, preg)) = work.pop() {
                let victims: Vec<(UopId, u32)> = self
                    .live_uop_ids()
                    .into_iter()
                    .filter(|&uid| {
                        if Some(uid) == origin {
                            return false;
                        }
                        let u = self.uops.get(uid);
                        u.state != UopState::Dispatched
                            && u.srcs
                                .iter()
                                .flatten()
                                .any(|s| s.class == class && s.preg == preg)
                    })
                    .map(|uid| (uid, self.uops.generation(uid)))
                    .collect();
                for (uid, generation) in victims {
                    if self.uops.is_live(uid, generation) {
                        self.redispatch(uid, &mut work, &mut tainted_stores);
                    }
                }
            }
            // Memory taint pass: loads younger than a re-executed store in
            // that store's context subtree may have forwarded stale data.
            while let Some((sctx, sseq)) = tainted_stores.pop() {
                let subtree = self.subtree_of(sctx);
                let victims: Vec<(UopId, u32)> = self
                    .live_uop_ids()
                    .into_iter()
                    .filter(|&uid| {
                        let u = self.uops.get(uid);
                        u.inst.is_load()
                            && u.seq > sseq
                            && u.state != UopState::Dispatched
                            && subtree.contains(&u.ctx)
                    })
                    .map(|uid| (uid, self.uops.generation(uid)))
                    .collect();
                for (uid, generation) in victims {
                    if self.uops.is_live(uid, generation) {
                        self.redispatch(uid, &mut work, &mut tainted_stores);
                    }
                }
            }
        }
    }

    /// All live uop ids (ROB contents of every context).
    fn live_uop_ids(&self) -> Vec<UopId> {
        self.ctxs
            .iter()
            .flat_map(|c| c.rob.iter().copied())
            .collect()
    }

    /// Context ids of `root` and all its descendants.
    fn subtree_of(&self, root: usize) -> Vec<usize> {
        let mut out = vec![root];
        loop {
            let before = out.len();
            for (i, c) in self.ctxs.iter().enumerate() {
                if let Some(p) = c.parent {
                    if out.contains(&p) && !out.contains(&i) {
                        out.push(i);
                    }
                }
            }
            if out.len() == before {
                return out;
            }
        }
    }

    /// Send a uop back to its issue queue for re-execution.
    fn redispatch(
        &mut self,
        id: UopId,
        work: &mut Vec<(RegClass, crate::regfile::PregId)>,
        tainted_stores: &mut Vec<(usize, u64)>,
    ) {
        let generation = self.uops.generation(id);
        let (ctx, unit, was_queued, dst, is_store, is_load, seq, old_store_addr) = {
            let u = self.uops.get_mut(id);
            u.state = UopState::Dispatched;
            u.exec_token = u.exec_token.wrapping_add(1);
            let was_queued = u.in_queue;
            u.in_queue = true;
            let old_store_addr = if u.inst.is_store() { u.eff_addr } else { None };
            if u.inst.is_load() {
                u.exec_value = None;
                u.eff_addr = None;
            }
            if u.inst.is_store() {
                u.eff_addr = None;
                u.store_data = None;
            }
            (
                u.ctx,
                u.inst.unit(),
                was_queued,
                u.dst,
                u.inst.is_store(),
                u.inst.is_load(),
                u.seq,
                old_store_addr,
            )
        };
        let _ = old_store_addr;
        // Any speculative descendant spawned after this instruction saw a
        // rename map built on its (now superseded) result — and may have
        // *committed* consumers of it, which replay cannot reach. Kill
        // those subtrees, like any other misspeculation recovery.
        self.kill_descendants_after(ctx, seq);
        self.stats.vp.reissued_uops += 1;
        if T::ENABLED {
            let cause = if self.reissue_origin.is_some() {
                ReissueCause::ValueMispredict
            } else {
                ReissueCause::MemOrder
            };
            let ev = Event::Redispatch { ctx, seq, cause };
            self.tracer.record(self.now, ev);
        }
        if !was_queued {
            // The issue stage releases queue slots lazily: an already-issued
            // uop may still have a stale entry in the queue vector. Setting
            // `in_queue` above revives such an entry — pushing a second one
            // here would make the issue stage see (and issue) the uop twice.
            let already_present = self
                .queue_for(unit)
                .iter()
                .any(|&(qid, qgen)| qid == id && qgen == generation);
            if !already_present {
                self.queue_for(unit).push((id, generation));
            }
            self.ctxs[ctx].queued_count += 1;
        }
        if let Some(d) = dst {
            self.rf.unready(d.class, d.preg);
            work.push((d.class, d.preg));
        }
        if is_store {
            tainted_stores.push((ctx, seq));
        }
        let _ = is_load;
    }
}
